//! Oracle-equivalence suite for the precomputation subsystem.
//!
//! Every precomputed fast path — fixed-base multiplication tables, prepared
//! (fixed-argument) pairings, cached scheme-layer tables, and batched
//! re-encryption — must produce **bit-identical** results to the naive path
//! it replaces.  The naive paths (`G1Affine::mul_scalar`,
//! `PairingParams::pairing`, per-ciphertext algebra spelled out by hand) stay
//! alive in the API precisely so these tests can cross-check against them.
//!
//! The suite always runs at the toy level.  Setting `TIBPRE_BENCH_LEVELS` to
//! a list containing `80` (as the scheduled CI job does) additionally runs
//! every check at the paper-era 80-bit parameter level; `112` and `128` are
//! honoured too for manual deep soaks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_core::{hybrid, proxy, Delegatee, Delegator, TypeTag};
use tibpre_ibe::{bf, Identity, Kgc};
use tibpre_pairing::{G1Precomp, PairingParams, SecurityLevel};

/// The levels to exercise: always `Toy`; heavier levels opt-in through the
/// same `TIBPRE_BENCH_LEVELS` environment variable the benchmarks use, so
/// the scheduled 80-bit CI job reuses one switch.
fn levels() -> Vec<Arc<PairingParams>> {
    let mut levels = vec![SecurityLevel::Toy];
    if let Ok(spec) = std::env::var("TIBPRE_BENCH_LEVELS") {
        for tag in spec.split(',') {
            match tag.trim() {
                "80" => levels.push(SecurityLevel::Low80),
                "112" => levels.push(SecurityLevel::Medium112),
                "128" => levels.push(SecurityLevel::High128),
                _ => {}
            }
        }
    }
    levels.into_iter().map(PairingParams::cached).collect()
}

#[test]
fn fixed_base_tables_match_naive_scalar_multiplication() {
    for params in levels() {
        let mut rng = StdRng::seed_from_u64(0xFB01);
        // The cached generator table and a fresh table for a random point.
        let bases = [params.generator().clone(), params.random_g1(&mut rng)];
        for base in &bases {
            let table = G1Precomp::new(base, params.q().bits());
            for _ in 0..6 {
                let k = params.random_scalar(&mut rng);
                let fast = table.mul_scalar(&k);
                let naive = base.mul_scalar(&k);
                assert_eq!(fast, naive);
                assert_eq!(
                    fast.to_bytes(),
                    naive.to_bytes(),
                    "encodings must match bit for bit"
                );
            }
        }
        // The params-level cached table and convenience multiplier.
        let k = params.random_scalar(&mut rng);
        assert_eq!(params.mul_generator(&k), params.generator().mul_scalar(&k));
        assert_eq!(
            params.generator_precomp().mul_scalar(&k),
            params.generator().mul_scalar(&k)
        );
    }
}

#[test]
fn prepared_pairings_match_naive_pairings() {
    for params in levels() {
        let mut rng = StdRng::seed_from_u64(0xFB02);
        for _ in 0..3 {
            let fixed = params.random_g1(&mut rng);
            let prepared = params.prepare(&fixed);
            for _ in 0..3 {
                let other = params.random_g1(&mut rng);
                let fast = prepared.pairing(&other);
                let naive = params.pairing(&fixed, &other);
                assert_eq!(fast, naive);
                assert_eq!(
                    fast.to_bytes(),
                    naive.to_bytes(),
                    "encodings must match bit for bit"
                );
                // Symmetry: the prepared argument may sit in either slot.
                assert_eq!(fast, params.pairing(&other, &fixed));
            }
            assert!(prepared.pairing(&params.g1_identity()).is_one());
        }
        // The cached prepared generator reproduces ê(g, g).
        assert_eq!(
            &params.prepared_generator().pairing(params.generator()),
            params.gt_generator()
        );
    }
}

#[test]
fn ibe_encryption_matches_naive_algebra() {
    for params in levels() {
        let mut rng = StdRng::seed_from_u64(0xFB03);
        let kgc = Kgc::setup(params.clone(), "oracle-kgc", &mut rng);
        let pp = kgc.public_params();
        let id = Identity::new("oracle@example.org");
        let sk = kgc.extract(&id);
        let m = params.random_gt(&mut rng);
        let r = params.random_nonzero_scalar(&mut rng);

        // Precomputed path.
        let ct = bf::encrypt_gt_with_randomness(pp, &id, &m, &r);
        // Naive algebra, spelled out with the oracle primitives.
        let pk_id = pp.identity_public_key(&id);
        let naive_c1 = params.generator().mul_scalar(&r);
        let naive_shared = params.pairing(&pk_id, pp.kgc_public_key()).pow_scalar(&r);
        assert_eq!(ct.c1.to_bytes(), naive_c1.to_bytes());
        assert_eq!(ct.c2.to_bytes(), m.mul(&naive_shared).to_bytes());

        // Precomputed decryption equals the naive mask removal.
        let fast = bf::decrypt_gt(&sk, &ct).unwrap();
        let naive_mask = params.pairing(sk.key(), &ct.c1);
        assert_eq!(fast, ct.c2.div(&naive_mask).unwrap());
        assert_eq!(fast, m);
    }
}

#[test]
fn typed_encryption_matches_naive_algebra() {
    for params in levels() {
        let mut rng = StdRng::seed_from_u64(0xFB04);
        let kgc = Kgc::setup(params.clone(), "oracle-kgc1", &mut rng);
        let alice = Identity::new("alice");
        let delegator = Delegator::new(kgc.public_params().clone(), kgc.extract(&alice));
        let t = TypeTag::new("illness-history");
        let m = params.random_gt(&mut rng);
        let r = params.random_nonzero_scalar(&mut rng);

        let ct = delegator.encrypt_typed_with_randomness(&m, &t, &r);
        // Naive Encrypt1: c1 = g^r, c2 = m · ê(pk_id, pk)^{r·H2(sk‖t)}.
        let pk_id = kgc.public_params().identity_public_key(&alice);
        let exponent = r.mul(&delegator.type_exponent(&t));
        let naive_mask = params
            .pairing(&pk_id, kgc.public_params().kgc_public_key())
            .pow_scalar(&exponent);
        assert_eq!(
            ct.c1.to_bytes(),
            params.generator().mul_scalar(&r).to_bytes()
        );
        assert_eq!(ct.c2.to_bytes(), m.mul(&naive_mask).to_bytes());

        // Precomputed Decrypt1 equals the naive mask removal and round-trips.
        let naive_mask = params
            .pairing(delegator.private_key().key(), &ct.c1)
            .pow_scalar(&delegator.type_exponent(&t));
        assert_eq!(
            delegator.decrypt_typed(&ct).unwrap(),
            ct.c2.div(&naive_mask).unwrap()
        );
        assert_eq!(delegator.decrypt_typed(&ct).unwrap(), m);
    }
}

#[test]
fn reencrypt_batch_matches_naive_per_ciphertext_conversion() {
    for params in levels() {
        let mut rng = StdRng::seed_from_u64(0xFB05);
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
        let delegatee = Delegatee::new(kgc2.extract(&bob));
        let t = TypeTag::new("emergency");
        let rekey = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();

        let messages: Vec<_> = (0..5).map(|_| params.random_gt(&mut rng)).collect();
        let ciphertexts: Vec<_> = messages
            .iter()
            .map(|m| delegator.encrypt_typed(m, &t, &mut rng))
            .collect();

        let batch = proxy::re_encrypt_batch(&ciphertexts, &rekey).unwrap();
        assert_eq!(batch.len(), ciphertexts.len());
        for ((ct, converted), m) in ciphertexts.iter().zip(&batch).zip(&messages) {
            // The naive Preenc algebra: c'2 = c2 · ê(c1, rk₂).
            let adjustment = params.pairing(&ct.c1, rekey.rk_point());
            assert_eq!(converted.c2.to_bytes(), ct.c2.mul(&adjustment).to_bytes());
            assert_eq!(converted.c1.to_bytes(), ct.c1.to_bytes());
            // Single-ciphertext conversion produces the identical result.
            assert_eq!(&proxy::re_encrypt(ct, &rekey).unwrap(), converted);
            // And the delegatee recovers the message.
            assert_eq!(&delegatee.decrypt_reencrypted(converted).unwrap(), m);
        }

        // Mixed-type batches fail atomically.
        let mut mixed = ciphertexts.clone();
        mixed.push(delegator.encrypt_typed(&messages[0], &TypeTag::new("diet"), &mut rng));
        assert!(proxy::re_encrypt_batch(&mixed, &rekey).is_err());
        // Empty batches are fine.
        assert!(proxy::re_encrypt_batch(&[], &rekey).unwrap().is_empty());
    }
}

#[test]
fn hybrid_batch_matches_single_conversions() {
    for params in levels() {
        let mut rng = StdRng::seed_from_u64(0xFB06);
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
        let delegatee = Delegatee::new(kgc2.extract(&bob));
        let t = TypeTag::new("lab-results");
        let rekey = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();

        let payloads: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 64 + usize::from(i)]).collect();
        let ciphertexts: Vec<_> = payloads
            .iter()
            .map(|p| delegator.encrypt_bytes(p, b"aad", &t, &mut rng))
            .collect();

        let batch = hybrid::re_encrypt_hybrid_batch(&ciphertexts, &rekey).unwrap();
        for ((ct, converted), payload) in ciphertexts.iter().zip(&batch).zip(&payloads) {
            assert_eq!(converted, &hybrid::re_encrypt_hybrid(ct, &rekey).unwrap());
            assert_eq!(converted.body, ct.body, "bodies are forwarded untouched");
            assert_eq!(
                &delegatee.decrypt_bytes(converted, b"aad").unwrap(),
                payload
            );
        }
    }
}

#[test]
fn rekey_generation_is_oracle_consistent() {
    // Pextract's sk-table path must satisfy the re-encryption equation it is
    // specified by: decrypting a converted ciphertext recovers the message.
    for params in levels() {
        let mut rng = StdRng::seed_from_u64(0xFB07);
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
        let delegatee = Delegatee::new(kgc2.extract(&bob));
        for label in ["t1", "t2"] {
            let t = TypeTag::new(label);
            let rekey = delegator
                .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
                .unwrap();
            // rk₂ must equal sk^{−H2(sk‖t)} · H1(X) computed with the naive
            // scalar multiplication; verify through the algebra, which only
            // holds when rk₂ is exactly right.
            let m = params.random_gt(&mut rng);
            let ct = delegator.encrypt_typed(&m, &t, &mut rng);
            let converted = proxy::re_encrypt(&ct, &rekey).unwrap();
            assert_eq!(delegatee.decrypt_reencrypted(&converted).unwrap(), m);
        }
    }
}
