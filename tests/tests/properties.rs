//! Property-based tests spanning the pairing substrate and the PRE scheme.
//!
//! Uses the cached toy parameter set (generation is done once per process) and
//! modest case counts, since every case performs several pairings.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tibpre_core::{proxy, Delegatee, Delegator, TypeTag};
use tibpre_ibe::{bf, Identity, Kgc};
use tibpre_pairing::{PairingParams, Scalar};

fn rng_from(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ê(aG, bG) = ê(G, G)^{ab} for random a, b.
    #[test]
    fn pairing_bilinearity(seed in any::<u64>()) {
        let params = PairingParams::insecure_toy();
        let mut rng = rng_from(seed);
        let a = params.random_nonzero_scalar(&mut rng);
        let b = params.random_nonzero_scalar(&mut rng);
        let g = params.generator();
        let lhs = params.pairing(&g.mul_scalar(&a), &g.mul_scalar(&b));
        let rhs = params.gt_generator().pow_scalar(&a.mul(&b));
        prop_assert_eq!(lhs, rhs);
    }

    /// ê(P, Q) = ê(Q, P): the Type-1 pairing is symmetric.
    #[test]
    fn pairing_symmetry(seed in any::<u64>()) {
        let params = PairingParams::insecure_toy();
        let mut rng = rng_from(seed);
        let p = params.random_g1(&mut rng);
        let q = params.random_g1(&mut rng);
        prop_assert_eq!(params.pairing(&p, &q), params.pairing(&q, &p));
    }

    /// Scalar multiplication in G1 is a group homomorphism from Z_q.
    #[test]
    fn scalar_mul_homomorphism(seed in any::<u64>()) {
        let params = PairingParams::insecure_toy();
        let mut rng = rng_from(seed);
        let a = params.random_scalar(&mut rng);
        let b = params.random_scalar(&mut rng);
        let g = params.generator();
        prop_assert_eq!(
            g.mul_scalar(&a).add(&g.mul_scalar(&b)),
            g.mul_scalar(&a.add(&b))
        );
        prop_assert_eq!(
            g.mul_scalar(&a).mul_scalar(&b),
            g.mul_scalar(&a.mul(&b))
        );
    }

    /// Boneh–Franklin round trip for arbitrary identities.
    #[test]
    fn ibe_round_trip(seed in any::<u64>(), id in "[a-z0-9@.-]{1,40}") {
        let params = PairingParams::insecure_toy();
        let mut rng = rng_from(seed);
        let kgc = Kgc::setup(params.clone(), "kgc", &mut rng);
        let identity = Identity::new(&id);
        let sk = kgc.extract(&identity);
        let m = params.random_gt(&mut rng);
        let ct = bf::encrypt_gt(kgc.public_params(), &identity, &m, &mut rng);
        prop_assert_eq!(bf::decrypt_gt(&sk, &ct).unwrap(), m);
    }

    /// Typed encryption round-trips for arbitrary type tags, and delegation
    /// through a proxy recovers the message at the delegatee.
    #[test]
    fn scheme_round_trip(seed in any::<u64>(), type_label in ".{0,24}") {
        let params = PairingParams::insecure_toy();
        let mut rng = rng_from(seed);
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
        let delegatee = Delegatee::new(kgc2.extract(&bob));
        let t = TypeTag::new(&type_label);
        let m = params.random_gt(&mut rng);

        let ct = delegator.encrypt_typed(&m, &t, &mut rng);
        prop_assert_eq!(delegator.decrypt_typed(&ct).unwrap(), m.clone());

        let rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();
        let transformed = proxy::re_encrypt(&ct, &rk).unwrap();
        prop_assert_eq!(delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
    }

    /// A re-encryption key never helps with a *different* type, whatever the
    /// two labels are (as long as they differ).
    #[test]
    fn type_isolation(seed in any::<u64>(), label_a in "[a-z]{1,12}", label_b in "[a-z]{1,12}") {
        prop_assume!(label_a != label_b);
        let params = PairingParams::insecure_toy();
        let mut rng = rng_from(seed);
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
        let delegatee = Delegatee::new(kgc2.extract(&bob));
        let t_a = TypeTag::new(&label_a);
        let t_b = TypeTag::new(&label_b);
        let m = params.random_gt(&mut rng);

        let ct_b = delegator.encrypt_typed(&m, &t_b, &mut rng);
        let rk_a = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t_a, &mut rng)
            .unwrap();
        // Honest proxy refuses.
        prop_assert!(proxy::re_encrypt(&ct_b, &rk_a).is_err());
        // Dishonest proxy relabels — and produces garbage.
        let mut relabelled = ct_b;
        relabelled.type_tag = t_a;
        let forced = proxy::re_encrypt(&relabelled, &rk_a).unwrap();
        prop_assert_ne!(delegatee.decrypt_reencrypted(&forced).unwrap(), m);
    }

    /// Hybrid round trip for random payloads and associated data.
    #[test]
    fn hybrid_round_trip(seed in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..512), aad in proptest::collection::vec(any::<u8>(), 0..32)) {
        let params = PairingParams::insecure_toy();
        let mut rng = rng_from(seed);
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let delegator = Delegator::new(
            kgc1.public_params().clone(),
            kgc1.extract(&Identity::new("alice")),
        );
        let delegatee = Delegatee::new(kgc2.extract(&Identity::new("bob")));
        let t = TypeTag::new("payload-type");
        let ct = delegator.encrypt_bytes(&payload, &aad, &t, &mut rng);
        prop_assert_eq!(delegator.decrypt_bytes(&ct, &aad).unwrap(), payload.clone());
        let rk = delegator
            .make_reencryption_key(&Identity::new("bob"), kgc2.public_params(), &t, &mut rng)
            .unwrap();
        let transformed = tibpre_core::hybrid::re_encrypt_hybrid(&ct, &rk).unwrap();
        prop_assert_eq!(delegatee.decrypt_bytes(&transformed, &aad).unwrap(), payload);
    }

    /// Serialization of every wire object round-trips for random instances.
    #[test]
    fn wire_formats_round_trip(seed in any::<u64>()) {
        let params = PairingParams::insecure_toy();
        let mut rng = rng_from(seed);
        // Scalars.
        let s = params.random_scalar(&mut rng);
        prop_assert_eq!(
            Scalar::from_bytes(params.scalar_ctx(), &s.to_bytes()).unwrap(),
            s
        );
        // Curve points, both encodings.
        let p = params.random_g1(&mut rng);
        prop_assert_eq!(
            tibpre_pairing::G1Affine::from_bytes(params.fp_ctx(), &p.to_bytes()).unwrap(),
            p.clone()
        );
        prop_assert_eq!(
            tibpre_pairing::G1Affine::from_bytes(params.fp_ctx(), &p.to_bytes_compressed())
                .unwrap(),
            p
        );
        // Target-group elements, with subgroup validation.
        let g = params.random_gt(&mut rng);
        prop_assert_eq!(
            tibpre_pairing::Gt::from_bytes(params.fp_ctx(), params.q(), &g.to_bytes()).unwrap(),
            g
        );
    }
}
