//! Backward-compatibility harness for the versioned wire formats: a golden
//! durable store written by the **pre-`tibpre-wire`** code (PR 4, commit
//! `e2b7967`, via the `gen_v0_fixture` example) is committed under
//! `tests/fixtures/v0-store` and must keep opening forever.
//!
//! The fixture was produced with the cached deterministic toy parameters
//! and fixed RNG seeds, so this harness can re-derive the same KGCs and
//! end-to-end **decrypt** a legacy record — proving not just that the bytes
//! parse but that the recovered ciphertexts are cryptographically intact.
//!
//! On top of plain decoding, the harness pins the v0→v1 migration story:
//! opening a legacy store, forcing snapshots, and compacting must shrink
//! the on-disk footprint (new snapshots are written compressed, WAL
//! segments wholly behind the oldest kept snapshot are deleted) while a
//! subsequent recovery replays only the post-snapshot tail.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tibpre_core::Delegator;
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::audit::AuditEvent;
use tibpre_phr::category::Category;
use tibpre_phr::durable::Durability;
use tibpre_phr::proxy_service::ProxyService;
use tibpre_phr::store::EncryptedPhrStore;
use tibpre_phr::FsyncPolicy;
use tibpre_storage::TempDir;

/// Recursively copies the committed fixture into a scratch directory (the
/// store mutates its directory on open: lock files, truncation, meta).
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/v0-store")
}

struct FixtureWorld {
    _tmp: TempDir,
    store_dir: PathBuf,
    proxy_dir: PathBuf,
    params: Arc<PairingParams>,
    alice_keys: Delegator,
    alice: Identity,
    bob: Identity,
    doctor: Identity,
}

impl FixtureWorld {
    /// Copies the fixture and re-derives the deterministic key material the
    /// generator used (toy params are cached with a fixed seed; the KGCs
    /// were set up from `StdRng::seed_from_u64(4242)`).
    fn new(tag: &str) -> Self {
        let tmp = TempDir::new(tag).unwrap();
        copy_dir(&fixture_dir(), tmp.path());
        let params = PairingParams::insecure_toy();
        let mut rng = StdRng::seed_from_u64(4242);
        let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
        let _provider_kgc = Kgc::setup(params.clone(), "providers", &mut rng);
        let alice = Identity::new("alice@phr.example");
        let alice_keys = Delegator::new(
            patient_kgc.public_params().clone(),
            patient_kgc.extract(&alice),
        );
        FixtureWorld {
            store_dir: tmp.path().join("store"),
            proxy_dir: tmp.path().join("proxy"),
            _tmp: tmp,
            params,
            alice_keys,
            alice,
            bob: Identity::new("bob@phr.example"),
            doctor: Identity::new("dr.smith@clinic.example"),
        }
    }

    fn durability(&self) -> Durability {
        Durability::new(self.params.clone())
            .shards(2)
            .fsync(FsyncPolicy::Never)
            .snapshot_every(3)
    }

    /// Total bytes and file count of the store directory, split into
    /// (wal_segment_count, wal_bytes, snapshot_bytes).
    fn disk_usage(&self) -> (usize, u64, u64) {
        let mut wal_files = 0usize;
        let mut wal_bytes = 0u64;
        let mut snap_bytes = 0u64;
        for entry in std::fs::read_dir(&self.store_dir).unwrap() {
            let entry = entry.unwrap();
            let name = entry.file_name().to_string_lossy().into_owned();
            let len = entry.metadata().unwrap().len();
            if name.ends_with(".wal") {
                wal_files += 1;
                wal_bytes += len;
            } else if name.ends_with(".snap") {
                snap_bytes += len;
            }
        }
        (wal_files, wal_bytes, snap_bytes)
    }

    /// Asserts the legacy store's full contents: five surviving records
    /// (one was deleted pre-commit), their payloads decryptable with the
    /// re-derived keys, and a strictly ordered audit trail.
    fn assert_fixture_contents(&self, store: &EncryptedPhrStore) {
        assert_eq!(store.shard_count(), 2, "meta file must win over config");
        assert_eq!(store.record_count(), 5);
        assert_eq!(store.count_for_patient(&self.alice), 3);
        assert_eq!(store.count_for_patient(&self.bob), 2);

        // Record 1 decrypts end-to-end with the re-derived delegator key.
        let record = store.get(tibpre_phr::record::RecordId(1)).unwrap();
        assert_eq!(record.title, "blood-type");
        assert_eq!(record.category, Category::Emergency);
        let aad = format!(
            "{}|{}|{}",
            self.alice.display(),
            record.category.label(),
            record.title
        );
        let plaintext = self
            .alice_keys
            .decrypt_bytes(&record.ciphertext, aad.as_bytes())
            .unwrap();
        assert_eq!(plaintext, b"O-; allergies: penicillin");

        // The deleted record stays deleted; its id is never reused.
        assert!(store.get(tibpre_phr::record::RecordId(3)).is_err());

        // The audit trail survived: 6 stores, 1 delete, 2 grants, 1 revoke,
        // 1 disclosure = 11 events, strictly ordered.
        let audit = store.audit_snapshot();
        assert_eq!(audit.len(), 11);
        for pair in audit.windows(2) {
            assert!(pair[0].at() < pair[1].at());
        }
        assert_eq!(
            audit
                .iter()
                .filter(|e| matches!(e.as_ref(), AuditEvent::RecordStored { .. }))
                .count(),
            6
        );
        assert_eq!(
            audit
                .iter()
                .filter(|e| matches!(e.as_ref(), AuditEvent::DisclosurePerformed { .. }))
                .count(),
            1
        );
    }
}

#[test]
fn golden_v0_store_opens_and_decrypts() {
    let w = FixtureWorld::new("compat-open");
    let store = EncryptedPhrStore::open(&w.store_dir, w.durability()).unwrap();
    w.assert_fixture_contents(&store);
}

#[test]
fn golden_v0_proxy_wal_replays_grants_and_revocations() {
    let w = FixtureWorld::new("compat-proxy");
    let store = Arc::new(EncryptedPhrStore::open(&w.store_dir, w.durability()).unwrap());
    let proxy = ProxyService::open(
        "fixture-proxy",
        store.clone(),
        &w.proxy_dir,
        &w.durability(),
    )
    .unwrap();
    // One active grant (emergency) and one revoked (illness history).
    assert_eq!(proxy.key_count(), 1);
    assert!(proxy.has_grant(&w.alice, &Category::Emergency, &w.doctor));
    assert!(!proxy.has_grant(&w.alice, &Category::IllnessHistory, &w.doctor));
    // The surviving legacy re-encryption key still converts: disclose the
    // emergency record to the doctor and decrypt it with a fresh delegatee
    // key from the re-derived provider KGC.
    let mut rng = StdRng::seed_from_u64(4242);
    let _patients = Kgc::setup(w.params.clone(), "patients", &mut rng);
    let providers = Kgc::setup(w.params.clone(), "providers", &mut rng);
    let doctor_keys = tibpre_core::Delegatee::new(providers.extract(&w.doctor));
    let bundle = proxy
        .disclose(&w.alice, tibpre_phr::record::RecordId(1), &w.doctor)
        .unwrap();
    let aad = format!("{}|{}|{}", w.alice.display(), "emergency", "blood-type");
    assert_eq!(
        doctor_keys
            .decrypt_bytes(&bundle.ciphertext, aad.as_bytes())
            .unwrap(),
        b"O-; allergies: penicillin"
    );
}

#[test]
fn legacy_store_compacts_and_repersists_as_v1() {
    let w = FixtureWorld::new("compat-compact");
    let (files_before, wal_before, _snap_before) = w.disk_usage();
    assert!(wal_before > 0);

    let store = EncryptedPhrStore::open(&w.store_dir, w.durability()).unwrap();
    // Two forced snapshots: the first rotates each shard's WAL and writes a
    // compressed (v1) snapshot; the second makes that rotation boundary the
    // oldest kept offset, at which point every legacy segment lies wholly
    // behind it and is deleted.
    store.force_snapshot().unwrap();
    store.force_snapshot().unwrap();
    let (files_after, wal_after, _snap_after) = w.disk_usage();
    assert!(
        wal_after < wal_before,
        "WAL bytes must shrink: {wal_before} -> {wal_after}"
    );
    assert!(
        wal_after == 0 || files_after <= files_before,
        "legacy segments must be collected: {files_before} files -> {files_after}"
    );

    // New snapshots use the indexed (TBS2) layout, and every migrated
    // record is re-persisted under the v1 envelope: the trailer's audit
    // metadata and each blob's index metadata carry the v1 tag.
    let gens = tibpre_storage::snapshot::list_generations(&w.store_dir, "shard-00").unwrap();
    let newest = tibpre_storage::snapshot::load_indexed(&w.store_dir, "shard-00", gens[0]).unwrap();
    assert_eq!(newest.meta()[0], 0xE1, "audit metadata must be v1");
    assert!(newest.blob_count() > 0);
    for i in 0..newest.blob_count() {
        assert_eq!(
            newest.index_meta(i).unwrap()[0],
            0xE1,
            "migrated record {i} must be resident as v1"
        );
    }

    // Everything still recovers from the compacted, re-persisted state —
    // and the replayed tail is only what came after the snapshot (the WAL
    // was emptied by compaction, so recovery is snapshot-only).
    drop(store);
    let reopened = EncryptedPhrStore::open(&w.store_dir, w.durability()).unwrap();
    w.assert_fixture_contents(&reopened);

    // Post-migration writes land in v1 segments and keep round-tripping.
    let mut rng = StdRng::seed_from_u64(99);
    let ct = w
        .alice_keys
        .encrypt_bytes(b"new-era", b"", &Category::Emergency.type_tag(), &mut rng);
    let id = reopened.put(&w.alice, &Category::Emergency, "post-migration", ct);
    drop(reopened);
    let reopened = EncryptedPhrStore::open(&w.store_dir, w.durability()).unwrap();
    assert_eq!(reopened.get(id).unwrap().title, "post-migration");
    assert_eq!(reopened.record_count(), 6);
}

#[test]
fn v0_and_v1_artifacts_interconvert() {
    // A value serialized under v0 decodes and re-serializes under v1 (and
    // back), bit-identically at the object level.
    use tibpre_core::{HybridCiphertext, TypeTag};
    use tibpre_wire::{WireDecode, WireEncode, WireVersion};

    let w = FixtureWorld::new("compat-interconvert");
    let mut rng = StdRng::seed_from_u64(7);
    let ct = w
        .alice_keys
        .encrypt_bytes(b"payload", b"aad", &TypeTag::new("t"), &mut rng);
    let ctx = tibpre_pairing::DecodeCtx::from(&w.params);

    let v0 = ct.to_wire_bytes_versioned(WireVersion::V0);
    let v1 = ct.to_wire_bytes_versioned(WireVersion::V1);
    assert!(v1.len() < v0.len());
    let from_v0 = HybridCiphertext::from_wire_bytes(&v0, &ctx).unwrap();
    let from_v1 = HybridCiphertext::from_wire_bytes(&v1, &ctx).unwrap();
    assert_eq!(from_v0, ct);
    assert_eq!(from_v1, ct);
    assert_eq!(from_v0.to_wire_bytes_versioned(WireVersion::V1), v1);
    assert_eq!(from_v1.to_wire_bytes_versioned(WireVersion::V0), v0);
}
