//! Healthcare-workflow integration tests spanning `tibpre-phr`, `tibpre-core`
//! and the substrates: multiple patients, several proxies and providers,
//! auditability, and the proxy-compromise containment claim.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::{
    audit::AuditEvent, category::Category, patient::Patient, provider::HealthcareProvider,
    proxy_service::ProxyService, record::HealthRecord, store::EncryptedPhrStore, PhrError,
};

struct Clinic {
    patient_kgc: Kgc,
    provider_kgc: Kgc,
    store: Arc<EncryptedPhrStore>,
    rng: StdRng,
}

fn clinic(seed: u64) -> Clinic {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = PairingParams::insecure_toy();
    let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
    let provider_kgc = Kgc::setup(params.clone(), "providers", &mut rng);
    Clinic {
        patient_kgc,
        provider_kgc,
        store: Arc::new(EncryptedPhrStore::new("regional-phr-store")),
        rng,
    }
}

fn add_record(
    clinic: &mut Clinic,
    patient: &Patient,
    category: Category,
    title: &str,
    body: &str,
) -> tibpre_phr::RecordId {
    let record = HealthRecord::new(
        patient.identity().clone(),
        category,
        title,
        body.as_bytes().to_vec(),
    );
    patient
        .store_record(&clinic.store, &record, &mut clinic.rng)
        .unwrap()
}

#[test]
fn multi_patient_multi_provider_workflow() {
    let mut c = clinic(1);
    let mut alice = Patient::new("alice@phr.example", &c.patient_kgc);
    let mut bob = Patient::new("bob@phr.example", &c.patient_kgc);

    let cardiologist = Identity::new("cardiologist@clinic");
    let dietician = Identity::new("dietician@wellness");
    let cardiologist_provider = HealthcareProvider::new(c.provider_kgc.extract(&cardiologist));
    let dietician_provider = HealthcareProvider::new(c.provider_kgc.extract(&dietician));

    let mut hospital_proxy = ProxyService::new("hospital-proxy", c.store.clone());
    let mut wellness_proxy = ProxyService::new("wellness-proxy", c.store.clone());

    // Records for both patients across categories.
    let alice_illness = add_record(&mut c, &alice, Category::IllnessHistory, "angina", "stable");
    let alice_diet = add_record(
        &mut c,
        &alice,
        Category::FoodStatistics,
        "diary",
        "2100 kcal",
    );
    let bob_illness = add_record(&mut c, &bob, Category::IllnessHistory, "asthma", "mild");

    // Alice shares illness history with the cardiologist, diet with the dietician.
    let pp = c.provider_kgc.public_params().clone();
    alice
        .grant_access(
            Category::IllnessHistory,
            &cardiologist,
            &pp,
            &mut hospital_proxy,
            &mut c.rng,
        )
        .unwrap();
    alice
        .grant_access(
            Category::FoodStatistics,
            &dietician,
            &pp,
            &mut wellness_proxy,
            &mut c.rng,
        )
        .unwrap();
    // Bob shares nothing.

    // Entitled requests succeed.
    let bundle = hospital_proxy
        .disclose(alice.identity(), alice_illness, &cardiologist)
        .unwrap();
    assert_eq!(cardiologist_provider.open(&bundle).unwrap().body, b"stable");
    let bundle = wellness_proxy
        .disclose(alice.identity(), alice_diet, &dietician)
        .unwrap();
    assert_eq!(dietician_provider.open(&bundle).unwrap().body, b"2100 kcal");

    // Cross-category and cross-patient requests fail.
    assert!(matches!(
        hospital_proxy.disclose(alice.identity(), alice_diet, &cardiologist),
        Err(PhrError::AccessDenied { .. })
    ));
    assert!(matches!(
        hospital_proxy.disclose(bob.identity(), bob_illness, &cardiologist),
        Err(PhrError::AccessDenied { .. })
    ));
    // Asking the wrong proxy for an otherwise-entitled record also fails
    // (the wellness proxy never received the illness-history key).
    assert!(matches!(
        wellness_proxy.disclose(alice.identity(), alice_illness, &cardiologist),
        Err(PhrError::AccessDenied { .. })
    ));

    // Each patient reads their own data directly.
    assert_eq!(
        alice.read_own_record(&c.store, alice_diet).unwrap().body,
        b"2100 kcal"
    );
    assert_eq!(
        bob.read_own_record(&c.store, bob_illness).unwrap().body,
        b"mild"
    );
    // But not each other's.
    assert!(bob.read_own_record(&c.store, alice_illness).is_err());

    // Bob later decides to share his illness history with the cardiologist too.
    bob.grant_access(
        Category::IllnessHistory,
        &cardiologist,
        &pp,
        &mut hospital_proxy,
        &mut c.rng,
    )
    .unwrap();
    let bundle = hospital_proxy
        .disclose(bob.identity(), bob_illness, &cardiologist)
        .unwrap();
    assert_eq!(cardiologist_provider.open(&bundle).unwrap().body, b"mild");

    // Policy bookkeeping matches.
    assert_eq!(alice.policy().grant_count(), 2);
    assert_eq!(bob.policy().grant_count(), 1);
    assert_eq!(hospital_proxy.key_count(), 2);
    assert_eq!(wellness_proxy.key_count(), 1);
}

#[test]
fn audit_trail_is_complete_and_ordered() {
    let mut c = clinic(2);
    let mut alice = Patient::new("alice", &c.patient_kgc);
    let doctor = Identity::new("doctor");
    let provider = HealthcareProvider::new(c.provider_kgc.extract(&doctor));
    let mut proxy = ProxyService::new("proxy", c.store.clone());
    let pp = c.provider_kgc.public_params().clone();

    let id = add_record(&mut c, &alice, Category::Medication, "rx", "aspirin");
    // Denied request (before grant), then grant, disclose, revoke.
    assert!(proxy.disclose(alice.identity(), id, &doctor).is_err());
    alice
        .grant_access(Category::Medication, &doctor, &pp, &mut proxy, &mut c.rng)
        .unwrap();
    let bundle = proxy.disclose(alice.identity(), id, &doctor).unwrap();
    assert_eq!(provider.open(&bundle).unwrap().body, b"aspirin");
    alice
        .revoke_access(&Category::Medication, &doctor, &mut proxy)
        .unwrap();

    let audit = c.store.audit_snapshot();
    // Stored, denied, granted, disclosed, revoked — in that order.
    let kinds: Vec<&'static str> = audit
        .iter()
        .map(|e| match e.as_ref() {
            AuditEvent::RecordStored { .. } => "stored",
            AuditEvent::RecordDeleted { .. } => "deleted",
            AuditEvent::AccessGranted { .. } => "granted",
            AuditEvent::AccessRevoked { .. } => "revoked",
            AuditEvent::DisclosurePerformed { .. } => "disclosed",
            AuditEvent::DisclosureDenied { .. } => "denied",
        })
        .collect();
    assert_eq!(
        kinds,
        vec!["stored", "denied", "granted", "disclosed", "revoked"]
    );
    for pair in audit.windows(2) {
        assert!(pair[0].at() < pair[1].at());
    }
    // The proxy kept its own trail of the disclosure decisions.
    let proxy_audit = proxy.audit_snapshot();
    assert!(proxy_audit
        .iter()
        .any(|e| matches!(e, AuditEvent::DisclosurePerformed { .. })));
    assert!(proxy_audit
        .iter()
        .any(|e| matches!(e, AuditEvent::DisclosureDenied { .. })));
}

#[test]
fn proxy_compromise_is_contained_to_delegated_categories() {
    // Quantified version of the paper's Section 5 argument, mirroring
    // experiment E6: corrupting one per-category proxy exposes only that
    // category's records.
    let mut c = clinic(3);
    let mut alice = Patient::new("alice", &c.patient_kgc);
    let categories = [
        Category::IllnessHistory,
        Category::FoodStatistics,
        Category::Emergency,
        Category::LabResults,
    ];
    let records_per_category = 3usize;
    for category in &categories {
        for i in 0..records_per_category {
            add_record(
                &mut c,
                &alice,
                category.clone(),
                &format!("{category} #{i}"),
                "secret",
            );
        }
    }

    // One proxy and one grantee per category.
    let pp = c.provider_kgc.public_params().clone();
    let mut proxies = Vec::new();
    let mut grantees = Vec::new();
    for category in &categories {
        let grantee = Identity::new(format!("provider-{category}"));
        let mut proxy = ProxyService::new(format!("proxy-{category}"), c.store.clone());
        alice
            .grant_access(category.clone(), &grantee, &pp, &mut proxy, &mut c.rng)
            .unwrap();
        proxies.push(proxy);
        grantees.push(grantee);
    }

    let total = c.store.count_for_patient(alice.identity());
    assert_eq!(total, categories.len() * records_per_category);

    // Compromise each proxy in turn: the breach is always exactly one category.
    for (proxy, grantee) in proxies.iter().zip(&grantees) {
        let exposed = proxy.simulate_compromise(alice.identity(), grantee);
        assert_eq!(exposed.len(), records_per_category);
    }
    // A compromised proxy plus a grantee it does NOT serve exposes nothing.
    let exposed = proxies[0].simulate_compromise(alice.identity(), &grantees[1]);
    assert!(exposed.is_empty());
}

#[test]
fn simulate_compromise_edge_cases() {
    // The containment claim's boundary conditions: no keys, an empty
    // delegated category, an unknown patient, and a revoked grant must all
    // expose exactly nothing.
    let mut c = clinic(17);
    let mut alice = Patient::new("alice", &c.patient_kgc);
    add_record(&mut c, &alice, Category::IllnessHistory, "angio", "2007");
    let pp = c.provider_kgc.public_params().clone();
    let mut proxy = ProxyService::new("proxy", c.store.clone());
    let dietician = Identity::new("dietician");

    // A key-less proxy exposes nothing, whoever the attacker colludes with.
    assert!(proxy
        .simulate_compromise(alice.identity(), &dietician)
        .is_empty());

    // A grant for a category the patient has NO records in: still nothing.
    alice
        .grant_access(
            Category::FoodStatistics,
            &dietician,
            &pp,
            &mut proxy,
            &mut c.rng,
        )
        .unwrap();
    assert!(proxy
        .simulate_compromise(alice.identity(), &dietician)
        .is_empty());

    // Records arrive in the delegated category: the breach is exactly those.
    let id = add_record(
        &mut c,
        &alice,
        Category::FoodStatistics,
        "diary",
        "low sodium",
    );
    assert_eq!(
        proxy.simulate_compromise(alice.identity(), &dietician),
        vec![id]
    );
    // An unknown patient yields nothing, delegated key or not.
    assert!(proxy
        .simulate_compromise(&Identity::new("nobody"), &dietician)
        .is_empty());

    // After revocation the same collusion exposes nothing again — the
    // revoked-rekey edge: the key is gone from the proxy, not merely unused.
    alice
        .revoke_access(&Category::FoodStatistics, &dietician, &mut proxy)
        .unwrap();
    assert_eq!(proxy.key_count(), 0);
    assert!(proxy
        .simulate_compromise(alice.identity(), &dietician)
        .is_empty());
}

#[test]
fn emergency_disclosure_edge_cases() {
    use tibpre_phr::emergency::{emergency_disclosure, provision_travel_access};

    let mut c = clinic(18);
    let mut alice = Patient::new("alice", &c.patient_kgc);
    let team_id = Identity::new("er-team");
    let team = HealthcareProvider::new(c.provider_kgc.extract(&team_id));
    let pp = c.provider_kgc.public_params().clone();
    let mut proxy = ProxyService::new("er-proxy", c.store.clone());

    // Empty category: provisioning succeeds, but a disclosure against zero
    // emergency records reports RecordNotFound (records in *other*
    // categories must not leak into the answer).
    add_record(&mut c, &alice, Category::IllnessHistory, "angio", "2007");
    provision_travel_access(&mut alice, &team_id, &pp, &mut proxy, &mut c.rng).unwrap();
    assert!(matches!(
        emergency_disclosure(&proxy, alice.identity(), &team),
        Err(PhrError::RecordNotFound)
    ));

    // With emergency records present the disclosure works...
    add_record(&mut c, &alice, Category::Emergency, "blood group", "O-");
    let disclosed = emergency_disclosure(&proxy, alice.identity(), &team).unwrap();
    assert_eq!(disclosed.len(), 1);
    assert_eq!(disclosed[0].body, b"O-".to_vec());

    // ...and a revoked rekey turns it back into AccessDenied, even though
    // the records are still in the store.
    alice
        .revoke_access(&Category::Emergency, &team_id, &mut proxy)
        .unwrap();
    assert!(matches!(
        emergency_disclosure(&proxy, alice.identity(), &team),
        Err(PhrError::AccessDenied { .. })
    ));
    // Re-provisioning restores access (grant → revoke → grant is a normal
    // travel pattern, not a conflict).
    provision_travel_access(&mut alice, &team_id, &pp, &mut proxy, &mut c.rng).unwrap();
    assert_eq!(
        emergency_disclosure(&proxy, alice.identity(), &team)
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn large_record_bodies_survive_the_full_path() {
    let mut c = clinic(4);
    let mut alice = Patient::new("alice", &c.patient_kgc);
    let radiologist = Identity::new("radiologist");
    let provider = HealthcareProvider::new(c.provider_kgc.extract(&radiologist));
    let mut proxy = ProxyService::new("imaging-proxy", c.store.clone());
    let pp = c.provider_kgc.public_params().clone();

    // A 256 KiB "imaging" payload.
    let body: Vec<u8> = (0..256 * 1024).map(|i| (i * 31 % 251) as u8).collect();
    let record = HealthRecord::new(
        alice.identity().clone(),
        Category::Custom("imaging".into()),
        "chest x-ray 2008-02",
        body.clone(),
    );
    let id = alice.store_record(&c.store, &record, &mut c.rng).unwrap();
    alice
        .grant_access(
            Category::Custom("imaging".into()),
            &radiologist,
            &pp,
            &mut proxy,
            &mut c.rng,
        )
        .unwrap();
    let bundle = proxy.disclose(alice.identity(), id, &radiologist).unwrap();
    let disclosed = provider.open(&bundle).unwrap();
    assert_eq!(disclosed.body, body);
    assert_eq!(disclosed.title, "chest x-ray 2008-02");
}
