//! Property tests for `tibpre_wire::framing` under pathological I/O.
//!
//! Real sockets hand `read`/`write` arbitrary fragments; the nastiest
//! schedule is one byte at a time.  A trickle reader/writer shim forces
//! that schedule on every call, and the properties check the three
//! contractual behaviours of the framing layer:
//!
//! * round trips are byte-identical no matter how the stream fragments,
//! * truncation at any byte is either a clean end-of-stream (exactly at a
//!   frame boundary) or `UnexpectedEof` — never a short or corrupted
//!   payload,
//! * oversized length prefixes are refused on both sides, before any
//!   payload allocation on the read side.

use proptest::prelude::*;
use std::io::{self, Read, Write};
use tibpre_wire::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};

/// Bytes of the length prefix (mirrors `framing::FRAME_PREFIX_LEN`).
const PREFIX: usize = 4;

/// Delivers the wrapped bytes at most one per `read` call.
struct TrickleReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> TrickleReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        TrickleReader { data, pos: 0 }
    }
}

impl Read for TrickleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() || buf.is_empty() {
            return Ok(0);
        }
        buf[0] = self.data[self.pos];
        self.pos += 1;
        Ok(1)
    }
}

/// Accepts at most one byte per `write` call — every `write_all` in the
/// framing layer must loop over short writes to survive this.
#[derive(Default)]
struct TrickleWriter {
    data: Vec<u8>,
}

impl Write for TrickleWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match buf.first() {
            Some(&byte) => {
                self.data.push(byte);
                Ok(1)
            }
            None => Ok(0),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 0..6)
}

proptest! {
    /// Frames written through a 1-byte-at-a-time writer and read back
    /// through a 1-byte-at-a-time reader round-trip byte-identically, and
    /// the stream ends with a clean `Ok(None)`.
    #[test]
    fn round_trips_are_byte_identical_under_trickled_io(frames in payloads()) {
        let mut writer = TrickleWriter::default();
        for frame in &frames {
            write_frame(&mut writer, frame, DEFAULT_MAX_FRAME).unwrap();
        }
        prop_assert_eq!(
            writer.data.len(),
            frames.iter().map(|f| PREFIX + f.len()).sum::<usize>()
        );

        let mut reader = TrickleReader::new(&writer.data);
        for frame in &frames {
            let got = read_frame(&mut reader, DEFAULT_MAX_FRAME).unwrap().unwrap();
            prop_assert_eq!(&got, frame);
        }
        prop_assert!(read_frame(&mut reader, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    /// Cutting the stream at an arbitrary byte yields a prefix of the
    /// original frames followed by either a clean end (cut exactly on a
    /// frame boundary) or `UnexpectedEof` — never a truncated payload.
    #[test]
    fn truncation_is_loud_or_clean_never_silent(
        frames in payloads(),
        cut_seed in any::<u64>(),
    ) {
        let mut stream = Vec::new();
        let mut boundaries = vec![0usize];
        for frame in &frames {
            write_frame(&mut stream, frame, DEFAULT_MAX_FRAME).unwrap();
            boundaries.push(stream.len());
        }
        let cut = (cut_seed as usize) % (stream.len() + 1);
        let truncated = &stream[..cut];

        let mut reader = TrickleReader::new(truncated);
        let mut recovered = 0usize;
        let outcome = loop {
            match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
                Ok(Some(frame)) => {
                    prop_assert_eq!(&frame, &frames[recovered]);
                    recovered += 1;
                }
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        // Every fully contained frame is recovered intact...
        let contained = boundaries.iter().filter(|b| **b <= cut).count() - 1;
        prop_assert_eq!(recovered, contained);
        // ...and the tail is a clean end iff the cut hit a boundary.
        match outcome {
            Ok(()) => prop_assert!(boundaries.contains(&cut)),
            Err(FrameError::Io(e)) => {
                prop_assert!(!boundaries.contains(&cut));
                prop_assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// A hostile length prefix above the maximum is refused while reading
    /// the prefix — before any payload bytes are consumed or allocated.
    #[test]
    fn oversized_prefixes_are_rejected_before_allocation(
        claimed in (64u32 + 1)..u32::MAX,
    ) {
        let max = 64usize;
        let mut stream = Vec::from(claimed.to_be_bytes());
        // Garbage "payload" that must never be read.
        stream.extend_from_slice(&[0xAB; 16]);
        let mut reader = TrickleReader::new(&stream);
        match read_frame(&mut reader, max) {
            Err(FrameError::Oversized { len, max: got_max }) => {
                prop_assert_eq!(len, u64::from(claimed));
                prop_assert_eq!(got_max, max);
                prop_assert_eq!(reader.pos, PREFIX);
            }
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }

    /// The writer refuses oversized payloads up front and leaves the
    /// stream untouched, so a bad caller cannot poison the connection.
    #[test]
    fn oversized_writes_leave_the_stream_untouched(extra in 1usize..64) {
        let max = 32usize;
        let payload = vec![0u8; max + extra];
        let mut writer = TrickleWriter::default();
        match write_frame(&mut writer, &payload, max) {
            Err(FrameError::Oversized { len, max: got_max }) => {
                prop_assert_eq!(len, payload.len() as u64);
                prop_assert_eq!(got_max, max);
                prop_assert!(writer.data.is_empty());
            }
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }
}

/// A reader that ends before the first prefix byte is a clean `Ok(None)`,
/// not an error — the idle-connection shutdown path relies on it.
#[test]
fn eof_before_any_byte_is_a_clean_end() {
    let mut reader = TrickleReader::new(&[]);
    assert!(read_frame(&mut reader, DEFAULT_MAX_FRAME)
        .unwrap()
        .is_none());
}
