//! Property-based serialization round-trips for the three ciphertext types
//! (`IbeCiphertext`, `TypedCiphertext`, `ReEncryptedCiphertext`), including
//! rejection of truncated and length-field-corrupted encodings.
//!
//! Uses the cached toy parameter set; every case performs a handful of
//! pairings, so the case counts are modest.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_core::{proxy, Delegator, ReEncryptedCiphertext, TypeTag, TypedCiphertext};
use tibpre_ibe::{bf, bf::IbeCiphertext, Identity, Kgc};
use tibpre_pairing::PairingParams;

struct World {
    params: Arc<PairingParams>,
    delegator: Delegator,
    kgc2: Kgc,
    rng: StdRng,
}

fn world(seed: u64) -> World {
    let params = PairingParams::insecure_toy();
    let mut rng = StdRng::seed_from_u64(seed);
    let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
    let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
    let delegator = Delegator::new(
        kgc1.public_params().clone(),
        kgc1.extract(&Identity::new("alice")),
    );
    World {
        params,
        delegator,
        kgc2,
        rng,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `IbeCiphertext` round-trips; every strict prefix and extension is
    /// rejected (the encoding is fixed-length).
    #[test]
    fn ibe_ciphertext_round_trip(seed in any::<u64>(), id in "[a-z0-9@.]{1,32}", cut in 0usize..128) {
        let mut w = world(seed);
        let m = w.params.random_gt(&mut w.rng);
        let ct = bf::encrypt_gt(w.kgc2.public_params(), &Identity::new(&id), &m, &mut w.rng);
        let bytes = ct.to_bytes();
        prop_assert_eq!(bytes.len(), IbeCiphertext::serialized_len(&w.params));
        let parsed = IbeCiphertext::from_bytes(&w.params, &bytes).unwrap();
        prop_assert_eq!(&parsed, &ct);
        prop_assert_eq!(parsed.to_bytes(), bytes.clone());
        // Truncation at an arbitrary point is rejected.
        let cut = cut % bytes.len();
        prop_assert!(IbeCiphertext::from_bytes(&w.params, &bytes[..cut]).is_err());
        // Extension is rejected.
        let mut longer = bytes;
        longer.push(0);
        prop_assert!(IbeCiphertext::from_bytes(&w.params, &longer).is_err());
    }

    /// `TypedCiphertext` round-trips for arbitrary type tags; truncations and
    /// corrupted type-length fields are rejected.
    #[test]
    fn typed_ciphertext_round_trip(seed in any::<u64>(), label in ".{0,24}", cut in 0usize..4096) {
        let mut w = world(seed);
        let t = TypeTag::new(&label);
        let m = w.params.random_gt(&mut w.rng);
        let ct = w.delegator.encrypt_typed(&m, &t, &mut w.rng);
        let bytes = ct.to_bytes();
        prop_assert_eq!(
            bytes.len(),
            TypedCiphertext::serialized_len(&w.params, t.as_bytes().len())
        );
        let parsed = TypedCiphertext::from_bytes(&w.params, &bytes).unwrap();
        prop_assert_eq!(&parsed, &ct);
        prop_assert_eq!(parsed.to_bytes(), bytes.clone());
        // Any strict prefix must fail: the trailing type tag is
        // length-prefixed, so the total length is always checked.
        let cut = cut % bytes.len();
        prop_assert!(TypedCiphertext::from_bytes(&w.params, &bytes[..cut]).is_err());
        // Corrupting the type-length field (without changing the buffer
        // length) must fail, for both larger and smaller claimed lengths.
        // The type tag is the trailing field, so its length prefix sits
        // exactly 4 + type_len bytes before the end.
        let len_offset = bytes.len() - 4 - t.as_bytes().len();
        let claimed = t.as_bytes().len() as u32;
        for corrupted_len in [claimed.wrapping_add(1), claimed.wrapping_sub(1), u32::MAX] {
            let mut corrupted = bytes.clone();
            corrupted[len_offset..len_offset + 4].copy_from_slice(&corrupted_len.to_be_bytes());
            prop_assert!(TypedCiphertext::from_bytes(&w.params, &corrupted).is_err());
        }
    }

    /// `ReEncryptedCiphertext` round-trips; truncations and corrupted
    /// length fields (type tag and delegatee) are rejected.
    #[test]
    fn reencrypted_ciphertext_round_trip(
        seed in any::<u64>(),
        label in "[a-z-]{1,16}",
        delegatee in "[a-z0-9@.]{1,24}",
        cut in 0usize..8192,
    ) {
        let mut w = world(seed);
        let t = TypeTag::new(&label);
        let bob = Identity::new(&delegatee);
        let m = w.params.random_gt(&mut w.rng);
        let ct = w.delegator.encrypt_typed(&m, &t, &mut w.rng);
        let rekey = w
            .delegator
            .make_reencryption_key(&bob, w.kgc2.public_params(), &t, &mut w.rng)
            .unwrap();
        let transformed = proxy::re_encrypt(&ct, &rekey).unwrap();
        let bytes = transformed.to_bytes();
        let parsed = ReEncryptedCiphertext::from_bytes(&w.params, &bytes).unwrap();
        prop_assert_eq!(&parsed, &transformed);
        prop_assert_eq!(parsed.to_bytes(), bytes.clone());
        // Any strict prefix must fail.
        let cut = cut % bytes.len();
        prop_assert!(ReEncryptedCiphertext::from_bytes(&w.params, &bytes[..cut]).is_err());
        // Corrupt the first length field (the type tag's): parsing must not
        // succeed, because the trailing-bytes check catches any shift.  The
        // two string fields trail the encoding, so locate them from the end.
        let second_offset = bytes.len() - 4 - bob.as_bytes().len();
        let len_offset = second_offset - 4 - t.as_bytes().len();
        let claimed = t.as_bytes().len() as u32;
        for corrupted_len in [claimed + 1, u32::MAX] {
            let mut corrupted = bytes.clone();
            corrupted[len_offset..len_offset + 4].copy_from_slice(&corrupted_len.to_be_bytes());
            prop_assert!(ReEncryptedCiphertext::from_bytes(&w.params, &corrupted).is_err());
        }
        // Corrupt the second length field (the delegatee's) the same way.
        let claimed = bob.as_bytes().len() as u32;
        for corrupted_len in [claimed + 1, u32::MAX] {
            let mut corrupted = bytes.clone();
            corrupted[second_offset..second_offset + 4]
                .copy_from_slice(&corrupted_len.to_be_bytes());
            prop_assert!(ReEncryptedCiphertext::from_bytes(&w.params, &corrupted).is_err());
        }
    }
}
