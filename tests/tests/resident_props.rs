//! Property tests for the **wire-resident** store: shards hold encoded
//! record bytes (shared with the WAL frame, or mapped from an indexed
//! snapshot) and decode lazily through a per-shard LRU.  The residency is an
//! invisible representation change, and these properties pin exactly that:
//!
//! * an in-memory wire-resident store is observably identical to the
//!   decoded-struct ("pinned") oracle under random put/get/delete
//!   interleavings — gets included, so the LRU's hit/evict/invalidate
//!   behaviour is exercised inside the equivalence, not around it;
//! * a durable store recovered across restarts and snapshot boundaries —
//!   serving a mix of mapped snapshot blobs and WAL-tail frames — still
//!   equals the oracle, before and after post-recovery writes;
//! * randomly mutating the newest snapshot (truncation or a bit flip at an
//!   arbitrary offset) never makes the store serve wrong bytes: the open
//!   either refuses, falls back to an older generation and fully recovers,
//!   or opens O(index) and surfaces the damaged record as an error on read.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_core::{Delegator, HybridCiphertext, TypeTag};
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::category::Category;
use tibpre_phr::durable::Durability;
use tibpre_phr::record::RecordId;
use tibpre_phr::store::EncryptedPhrStore;
use tibpre_phr::{FsyncPolicy, PhrError};
use tibpre_storage::{snapshot, TempDir};

struct Harness {
    params: Arc<PairingParams>,
    ciphertext: HybridCiphertext,
    patients: Vec<Identity>,
    categories: Vec<Category>,
}

fn harness(seed: u64) -> Harness {
    let params = PairingParams::insecure_toy();
    let mut rng = StdRng::seed_from_u64(seed);
    let kgc = Kgc::setup(params.clone(), "kgc", &mut rng);
    let delegator = Delegator::new(
        kgc.public_params().clone(),
        kgc.extract(&Identity::new("alice")),
    );
    Harness {
        params,
        ciphertext: delegator.encrypt_bytes(b"payload", b"", &TypeTag::new("t"), &mut rng),
        patients: ["alice", "bob", "carol"]
            .iter()
            .map(Identity::new)
            .collect(),
        categories: vec![
            Category::Emergency,
            Category::LabResults,
            Category::Custom("genomics".into()),
        ],
    }
}

/// Mutable op-stream state shared by both stores (ids and timestamps are
/// assigned by deterministic counters, so identical streams stay aligned).
#[derive(Default)]
struct OpState {
    issued: Vec<(RecordId, usize)>,
    live: Vec<(RecordId, usize)>,
}

/// Applies the op encoded by `word` to *both* stores and asserts every
/// observable of the op itself matches: returned ids, success/error shape,
/// and — for gets — the full decoded record.
fn apply_both(
    resident: &EncryptedPhrStore,
    oracle: &EncryptedPhrStore,
    h: &Harness,
    state: &mut OpState,
    word: u32,
) {
    let [kind, a, b, c] = word.to_be_bytes();
    match kind % 6 {
        0 | 1 => {
            let patient = a as usize % h.patients.len();
            let category = &h.categories[b as usize % h.categories.len()];
            let id_r = resident.put(
                &h.patients[patient],
                category,
                &format!("t{c}"),
                h.ciphertext.clone(),
            );
            let id_o = oracle.put(
                &h.patients[patient],
                category,
                &format!("t{c}"),
                h.ciphertext.clone(),
            );
            assert_eq!(id_r, id_o, "id allocators diverged");
            state.issued.push((id_r, patient));
            state.live.push((id_r, patient));
        }
        2 => {
            if !state.live.is_empty() {
                let idx = a as usize % state.live.len();
                let (id, owner) = state.live.remove(idx);
                resident.delete(id, &h.patients[owner]).unwrap();
                oracle.delete(id, &h.patients[owner]).unwrap();
            }
        }
        3 => {
            // Read an id that was issued at some point (it may be deleted by
            // now): both stores must agree on found/not-found, and on every
            // field of a found record.
            if !state.issued.is_empty() {
                let (id, _) = state.issued[a as usize % state.issued.len()];
                match (resident.get(id), oracle.get(id)) {
                    (Ok(r), Ok(o)) => assert_eq!(*r, *o, "record {id} diverged"),
                    (Err(PhrError::RecordNotFound), Err(PhrError::RecordNotFound)) => {}
                    (r, o) => panic!("get({id}) diverged: {r:?} vs {o:?}"),
                }
            }
        }
        4 => {
            // A delete by a non-owner must be denied by both — the resident
            // store answers this from the record *header*, never decoding.
            if !state.live.is_empty() {
                let idx = a as usize % state.live.len();
                let (id, owner) = state.live[idx];
                let thief = (owner + 1 + b as usize % (h.patients.len() - 1)) % h.patients.len();
                assert!(matches!(
                    resident.delete(id, &h.patients[thief]),
                    Err(PhrError::AccessDenied { .. })
                ));
                assert!(matches!(
                    oracle.delete(id, &h.patients[thief]),
                    Err(PhrError::AccessDenied { .. })
                ));
            }
        }
        _ => {
            if !state.issued.is_empty() {
                let (id, _) = state.issued[a as usize % state.issued.len()];
                let requester = &h.patients[b as usize % h.patients.len()];
                resident.log_disclosure(id, requester, c & 1 == 0);
                oracle.log_disclosure(id, requester, c & 1 == 0);
            }
        }
    }
}

/// Full observable equality: counts, per-patient and per-category indexes,
/// byte-identical records, identical merged audit trail.
fn assert_equals_oracle(resident: &EncryptedPhrStore, oracle: &EncryptedPhrStore, h: &Harness) {
    assert_eq!(resident.record_count(), oracle.record_count());
    assert_eq!(resident.audit_snapshot(), oracle.audit_snapshot());
    for patient in &h.patients {
        let ids = resident.list_for_patient(patient);
        assert_eq!(ids, oracle.list_for_patient(patient));
        for category in &h.categories {
            assert_eq!(
                resident.list_for_patient_category(patient, category),
                oracle.list_for_patient_category(patient, category),
            );
        }
        for id in ids {
            let got = resident.get(id).unwrap();
            let want = oracle.get(id).unwrap();
            assert_eq!(*got, *want);
            assert_eq!(
                got.ciphertext.to_bytes(),
                want.ciphertext.to_bytes(),
                "record {id} ciphertext bytes diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// In-memory equivalence: the wire-resident store (encoded bytes + LRU)
    /// against the pinned decoded-struct oracle, interleaving reads with
    /// writes so cache hits, misses, evictions and delete-invalidation all
    /// happen mid-stream.
    #[test]
    fn resident_in_memory_store_equals_the_pinned_oracle(
        seed in any::<u64>(),
        shards in 1usize..4,
        words in proptest::collection::vec(any::<u32>(), 8..24),
    ) {
        let h = harness(seed);
        let resident =
            EncryptedPhrStore::with_shards_and_params("resident", shards, h.params.clone());
        let oracle = EncryptedPhrStore::with_shards("oracle", shards);
        let mut state = OpState::default();
        for &word in &words {
            apply_both(&resident, &oracle, &h, &mut state, word);
        }
        assert_equals_oracle(&resident, &oracle, &h);
    }

    /// Durable equivalence across restarts: after every reopen the store
    /// serves a mix of memory-mapped snapshot blobs and WAL-tail frames,
    /// and must stay observably identical to the oracle — including for
    /// writes issued *after* a recovery.
    #[test]
    fn recovered_resident_store_equals_the_oracle_across_snapshots(
        seed in any::<u64>(),
        cadence in 1u64..5,
        first in proptest::collection::vec(any::<u32>(), 6..14),
        second in proptest::collection::vec(any::<u32>(), 4..10),
    ) {
        let h = harness(seed);
        let tmp = TempDir::new("resident-props").unwrap();
        let dir = tmp.path().join("db");
        let durability = || {
            Durability::new(h.params.clone())
                .shards(2)
                .fsync(FsyncPolicy::Never)
                .snapshot_every(cadence)
        };
        let oracle = EncryptedPhrStore::with_shards("oracle", 2);
        let mut state = OpState::default();
        {
            let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
            for &word in &first {
                apply_both(&store, &oracle, &h, &mut state, word);
            }
        }
        let reopened = EncryptedPhrStore::open(&dir, durability()).unwrap();
        assert_equals_oracle(&reopened, &oracle, &h);
        for &word in &second {
            apply_both(&reopened, &oracle, &h, &mut state, word);
        }
        assert_equals_oracle(&reopened, &oracle, &h);
        drop(reopened);
        let reopened = EncryptedPhrStore::open(&dir, durability()).unwrap();
        assert_equals_oracle(&reopened, &oracle, &h);
    }

    /// Snapshot failure injection: truncate or bit-flip the newest snapshot
    /// at a random position.  Whatever the damage hits (magic, data region,
    /// trailer, length suffix), the open must refuse or fall back — and if
    /// it opens, every read returns either exactly the oracle's record or a
    /// corruption error.  Wrong bytes are never served.
    #[test]
    fn mutated_snapshot_never_serves_wrong_bytes(
        seed in any::<u64>(),
        words in proptest::collection::vec(any::<u32>(), 8..16),
        damage_at in any::<u64>(),
        flip in any::<u8>(),
        truncate in any::<bool>(),
    ) {
        let h = harness(seed);
        let tmp = TempDir::new("resident-inject").unwrap();
        let dir = tmp.path().join("db");
        let durability = || {
            Durability::new(h.params.clone())
                .shards(1)
                .fsync(FsyncPolicy::Never)
                .snapshot_every(3)
        };
        let oracle = EncryptedPhrStore::with_shards("oracle", 1);
        let mut state = OpState::default();
        {
            let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
            for &word in &words {
                apply_both(&store, &oracle, &h, &mut state, word);
            }
        }
        let gens = snapshot::list_generations(&dir, "shard-00").unwrap();
        prop_assume!(!gens.is_empty());
        let path = snapshot::snapshot_path(&dir, "shard-00", gens[0]);
        let pristine = std::fs::read(&path).unwrap();
        let at = (damage_at as usize) % pristine.len();
        if truncate {
            std::fs::write(&path, &pristine[..at]).unwrap();
        } else {
            let mut bytes = pristine.clone();
            bytes[at] ^= flip | 0x01; // never a no-op flip
            std::fs::write(&path, &bytes).unwrap();
        }

        match EncryptedPhrStore::open(&dir, durability()) {
            // Refusal is an accepted outcome (e.g. damage elsewhere is
            // indistinguishable from an operator error) — the contract is
            // only that nothing wrong is ever *served*.
            Err(PhrError::CorruptedRecord(_)) | Err(PhrError::Storage(_)) => {}
            Err(other) => panic!("unexpected open error: {other:?}"),
            Ok(store) => {
                assert_eq!(store.record_count(), oracle.record_count());
                assert_eq!(store.audit_snapshot(), oracle.audit_snapshot());
                for patient in &h.patients {
                    for id in oracle.list_for_patient(patient) {
                        match store.get(id) {
                            Ok(got) => {
                                let want = oracle.get(id).unwrap();
                                assert_eq!(*got, *want, "served wrong bytes for {id}");
                            }
                            Err(PhrError::CorruptedRecord(_)) => {}
                            Err(other) => panic!("unexpected get error: {other:?}"),
                        }
                    }
                }
            }
        }
    }
}
