//! Failure-injection tests: corrupted ciphertexts, truncated serializations,
//! wrong keys, cross-patient confusion, revoked grants, and corrupted or
//! torn snapshot files of the durable store.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_core::{
    proxy, Delegatee, Delegator, PreError, ReEncryptionKey, TypeTag, TypedCiphertext,
};
use tibpre_ibe::{bf::IbeCiphertext, Identity, Kgc};
use tibpre_pairing::{G1Affine, Gt, PairingParams};
use tibpre_phr::{
    category::Category, durable::Durability, patient::Patient, provider::HealthcareProvider,
    proxy_service::ProxyService, record::HealthRecord, store::EncryptedPhrStore, FsyncPolicy,
    PhrError,
};
use tibpre_storage::{snapshot, TempDir};

fn setup() -> (Arc<PairingParams>, Kgc, Kgc, StdRng) {
    let mut rng = StdRng::seed_from_u64(0xFA11);
    let params = PairingParams::insecure_toy();
    let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
    let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
    (params, kgc1, kgc2, rng)
}

#[test]
fn truncated_and_garbled_wire_formats_are_rejected() {
    let (params, kgc1, kgc2, mut rng) = setup();
    let alice = Identity::new("alice");
    let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
    let t = TypeTag::new("t");
    let m = params.random_gt(&mut rng);
    let ct = delegator.encrypt_typed(&m, &t, &mut rng);
    let rk = delegator
        .make_reencryption_key(&Identity::new("bob"), kgc2.public_params(), &t, &mut rng)
        .unwrap();
    let transformed = proxy::re_encrypt(&ct, &rk).unwrap();

    let ct_bytes = ct.to_bytes();
    let rk_bytes = rk.to_bytes();
    let re_bytes = transformed.to_bytes();
    let ibe_bytes = rk.encrypted_x().to_bytes();

    for cut in [0usize, 1, 5, 10] {
        if cut < ct_bytes.len() {
            assert!(TypedCiphertext::from_bytes(&params, &ct_bytes[..cut]).is_err());
        }
        if cut < rk_bytes.len() {
            assert!(ReEncryptionKey::from_bytes(&params, &rk_bytes[..cut]).is_err());
        }
        if cut < re_bytes.len() {
            assert!(
                tibpre_core::ReEncryptedCiphertext::from_bytes(&params, &re_bytes[..cut]).is_err()
            );
        }
        if cut < ibe_bytes.len() {
            assert!(IbeCiphertext::from_bytes(&params, &ibe_bytes[..cut]).is_err());
        }
    }

    // Flipping bytes inside the point encodings is caught by the curve check
    // (probability of landing on another valid point is negligible).
    let mut bad_point = ct_bytes.clone();
    bad_point[5] ^= 0xFF;
    bad_point[6] ^= 0xA5;
    assert!(TypedCiphertext::from_bytes(&params, &bad_point).is_err());
}

#[test]
fn ciphertexts_with_out_of_subgroup_points_are_rejected() {
    let (params, kgc1, _kgc2, mut rng) = setup();
    let alice = Identity::new("alice");
    let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
    let t = TypeTag::new("t");
    let m = params.random_gt(&mut rng);
    let ct = delegator.encrypt_typed(&m, &t, &mut rng);

    // Swap c1 for a curve point of the wrong order (a random point on the full
    // curve, which almost surely is not in the order-q subgroup).  c1 sits
    // right behind the one-byte envelope; compressed rogue and honest points
    // encode to the same length, so the splice is surgical.
    let rogue = loop {
        let candidate = tibpre_pairing::curve::random_curve_point(params.fp_ctx(), &mut rng);
        if !candidate.is_in_subgroup(params.q()) {
            break candidate;
        }
    };
    let rogue_enc = tibpre_wire::encode_bare(&rogue, tibpre_wire::WireVersion::V1);
    let mut bytes = ct.to_bytes();
    bytes[1..1 + rogue_enc.len()].copy_from_slice(&rogue_enc);
    assert!(matches!(
        TypedCiphertext::from_bytes(&params, &bytes),
        Err(PreError::Decode(_)) | Err(PreError::Pairing(_))
    ));
}

#[test]
fn wrong_private_keys_never_recover_the_message() {
    let (params, kgc1, kgc2, mut rng) = setup();
    let alice = Identity::new("alice");
    let bob = Identity::new("bob");
    let eve = Identity::new("eve");
    let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
    let t = TypeTag::new("t");
    let m = params.random_gt(&mut rng);
    let ct = delegator.encrypt_typed(&m, &t, &mut rng);
    let rk = delegator
        .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
        .unwrap();
    let transformed = proxy::re_encrypt(&ct, &rk).unwrap();

    // Eve with a key from the delegatee domain (wrong identity).
    let eve_delegatee = Delegatee::new(kgc2.extract(&eve));
    assert_ne!(eve_delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
    // Eve with a key for the right identity from the *wrong* domain.
    let eve_wrong_domain = Delegatee::new(kgc1.extract(&bob));
    assert_ne!(
        eve_wrong_domain.decrypt_reencrypted(&transformed).unwrap(),
        m
    );
    // Another delegator in the same domain cannot decrypt the typed ciphertext.
    let mallory = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&eve));
    assert_ne!(mallory.decrypt_typed(&ct).unwrap(), m);
}

#[test]
fn tampering_with_reencrypted_components_breaks_decryption() {
    let (params, kgc1, kgc2, mut rng) = setup();
    let alice = Identity::new("alice");
    let bob = Identity::new("bob");
    let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
    let delegatee = Delegatee::new(kgc2.extract(&bob));
    let t = TypeTag::new("t");
    let m = params.random_gt(&mut rng);
    let ct = delegator.encrypt_typed(&m, &t, &mut rng);
    let rk = delegator
        .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
        .unwrap();
    let good = proxy::re_encrypt(&ct, &rk).unwrap();
    assert_eq!(delegatee.decrypt_reencrypted(&good).unwrap(), m);

    // Tamper with c1 (replace with the generator).
    let mut bad = good.clone();
    bad.c1 = params.generator().clone();
    assert_ne!(delegatee.decrypt_reencrypted(&bad).unwrap(), m);

    // Tamper with c2.
    let mut bad = good.clone();
    bad.c2 = bad.c2.mul(params.gt_generator());
    assert_ne!(delegatee.decrypt_reencrypted(&bad).unwrap(), m);

    // Tamper with the encapsulated X (swap c1/c2 of the inner IBE ciphertext).
    let mut bad = good.clone();
    bad.encrypted_x = IbeCiphertext {
        c1: params.generator().clone(),
        c2: bad.encrypted_x.c2.clone(),
    };
    assert_ne!(delegatee.decrypt_reencrypted(&bad).unwrap(), m);
}

#[test]
fn gt_deserialization_validates_subgroup_membership() {
    let (params, _kgc1, _kgc2, mut rng) = setup();
    // A random Fp2 element is essentially never in the order-q subgroup.
    let random_fp2 = tibpre_pairing::Fp2::random(params.fp_ctx(), &mut rng);
    let fake_gt = Gt::from_fp2_unchecked(random_fp2);
    let bytes = fake_gt.to_bytes();
    assert!(Gt::from_bytes(params.fp_ctx(), params.q(), &bytes).is_err());
    // A genuine pairing output passes.
    let genuine = params.random_gt(&mut rng);
    assert!(Gt::from_bytes(params.fp_ctx(), params.q(), &genuine.to_bytes()).is_ok());
}

#[test]
fn g1_deserialization_validates_the_curve_equation() {
    let (params, _kgc1, _kgc2, mut rng) = setup();
    let p = params.random_g1(&mut rng);
    let mut bytes = p.to_bytes();
    // Corrupt the y-coordinate: almost surely off the curve.
    let len = bytes.len();
    bytes[len - 1] ^= 0x01;
    bytes[len - 2] ^= 0x80;
    assert!(G1Affine::from_bytes(params.fp_ctx(), &bytes).is_err());
}

/// A populated single-shard durable store with two snapshot generations on
/// disk, plus everything needed to reopen and check it.
struct SnapshotFixture {
    _tmp: TempDir,
    dir: std::path::PathBuf,
    params: Arc<PairingParams>,
    alice: Identity,
    titles: Vec<String>,
}

impl SnapshotFixture {
    fn new(tag: &str, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = PairingParams::insecure_toy();
        let kgc = Kgc::setup(params.clone(), "kgc", &mut rng);
        let delegator = Delegator::new(
            kgc.public_params().clone(),
            kgc.extract(&Identity::new("alice")),
        );
        let ciphertext = delegator.encrypt_bytes(b"payload", b"", &TypeTag::new("t"), &mut rng);
        let tmp = TempDir::new(tag).unwrap();
        let dir = tmp.path().join("db");
        let alice = Identity::new("alice");
        let titles: Vec<String> = (0..10).map(|i| format!("r{i}")).collect();
        {
            let store = EncryptedPhrStore::open(&dir, Self::durability(&params)).unwrap();
            for title in &titles {
                store.put(&alice, &Category::LabResults, title, ciphertext.clone());
            }
        }
        // Cadence 4 over 10 puts leaves generations 1 and 2 on disk.
        assert_eq!(
            snapshot::list_generations(&dir, "shard-00").unwrap(),
            vec![2, 1]
        );
        SnapshotFixture {
            _tmp: tmp,
            dir,
            params,
            alice,
            titles,
        }
    }

    fn durability(params: &Arc<PairingParams>) -> Durability {
        Durability::new(params.clone())
            .shards(1)
            .fsync(FsyncPolicy::Never)
            .snapshot_every(4)
    }

    /// Reopens the store and asserts nothing was lost: a damaged snapshot
    /// must only cost recovery time (longer log replay), never data.
    fn assert_fully_recovered(&self) -> EncryptedPhrStore {
        let store = EncryptedPhrStore::open(&self.dir, Self::durability(&self.params)).unwrap();
        assert_eq!(store.record_count(), self.titles.len());
        let ids = store.list_for_patient(&self.alice);
        assert_eq!(ids.len(), self.titles.len());
        let got: Vec<String> = ids
            .iter()
            .map(|&id| store.get(id).unwrap().title.clone())
            .collect();
        assert_eq!(got, self.titles);
        assert_eq!(store.audit_snapshot().len(), self.titles.len());
        store
    }
}

#[test]
fn bit_flipped_snapshot_falls_back_to_previous_generation() {
    let f = SnapshotFixture::new("snap-bitflip", 0xB17);
    // Flip one bit inside the newest snapshot's *trailer* — the index the
    // O(index) open validates.  (A flip in the data region is instead
    // detected lazily, on the first read of the damaged record; the store's
    // unit tests and `bit_flipped_snapshot_blob_fails_only_that_record`
    // below pin that half of the contract.)
    let newest = snapshot::snapshot_path(&f.dir, "shard-00", 2);
    let mut bytes = std::fs::read(&newest).unwrap();
    let target = bytes.len() - 12;
    bytes[target] ^= 0x08;
    std::fs::write(&newest, &bytes).unwrap();
    assert!(snapshot::load_indexed(&f.dir, "shard-00", 2).is_err());
    assert!(snapshot::load_indexed(&f.dir, "shard-00", 1).is_ok());

    // Recovery silently falls back to generation 1 + the longer WAL tail.
    let store = f.assert_fully_recovered();

    // The next snapshot supersedes the corrupt generation with valid data.
    store.force_snapshot().unwrap();
    drop(store);
    let snap = snapshot::load_indexed(&f.dir, "shard-00", 2).unwrap();
    assert_eq!(snap.gen(), 2);
    f.assert_fully_recovered();
}

#[test]
fn bit_flipped_snapshot_blob_fails_only_that_record() {
    let f = SnapshotFixture::new("snap-blobflip", 0xB18);
    // Flip one bit inside the newest snapshot's *data region* (the blobs
    // start right after the 4-byte magic).  The open still succeeds — it
    // reads only the trailer — and the damage surfaces as an error on the
    // first read of that record, never as corrupt ciphertext bytes.
    let newest = snapshot::snapshot_path(&f.dir, "shard-00", 2);
    let mut bytes = std::fs::read(&newest).unwrap();
    bytes[10] ^= 0x08; // inside blob 0
    std::fs::write(&newest, &bytes).unwrap();

    let store = EncryptedPhrStore::open(&f.dir, SnapshotFixture::durability(&f.params)).unwrap();
    assert_eq!(store.record_count(), f.titles.len());
    let ids = store.list_for_patient(&f.alice);
    let mut corrupt = 0;
    for &id in &ids {
        match store.get(id) {
            Ok(_) => {}
            Err(PhrError::CorruptedRecord(_)) => corrupt += 1,
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert_eq!(corrupt, 1, "exactly the damaged record fails");
}

#[test]
fn mid_frame_truncated_snapshot_falls_back_to_previous_generation() {
    let f = SnapshotFixture::new("snap-torn", 0x70A);
    // Tear the newest snapshot mid-frame (half the file is gone).
    let newest = snapshot::snapshot_path(&f.dir, "shard-00", 2);
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
    assert!(snapshot::load_indexed(&f.dir, "shard-00", 2).is_err());

    f.assert_fully_recovered();
}

#[test]
fn all_snapshots_corrupt_refuses_to_open_without_destroying_the_log() {
    let f = SnapshotFixture::new("snap-all-bad", 0xA11);
    // Since segment GC, the WAL prefix behind the oldest kept snapshot is
    // deleted, so the pre-compaction fallback ("all generations corrupt →
    // full log replay from offset 0") no longer exists.  The store must
    // surface that as a refused open — never replay a partial tail as if
    // it were the whole history, and never truncate segments a repair
    // might still need.
    let wal_segments = || {
        let mut segs: Vec<(std::path::PathBuf, u64)> = std::fs::read_dir(&f.dir)
            .unwrap()
            .map(|e| e.unwrap())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".wal"))
            .map(|e| (e.path(), e.metadata().unwrap().len()))
            .collect();
        segs.sort();
        segs
    };
    // GC ran during the fixture's lifetime: the log no longer starts at 0.
    assert!(!wal_segments().is_empty());

    // Damage BOTH generations differently: one bit-flip, one truncation.
    let gen2 = snapshot::snapshot_path(&f.dir, "shard-00", 2);
    let mut bytes = std::fs::read(&gen2).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&gen2, &bytes).unwrap();
    let gen1 = snapshot::snapshot_path(&f.dir, "shard-00", 1);
    let bytes = std::fs::read(&gen1).unwrap();
    std::fs::write(&gen1, &bytes[..7.min(bytes.len())]).unwrap();

    let before = wal_segments();
    assert!(matches!(
        EncryptedPhrStore::open(&f.dir, SnapshotFixture::durability(&f.params)),
        Err(PhrError::CorruptedRecord(_))
    ));
    // The refused open left every surviving WAL segment byte-identical.
    assert_eq!(wal_segments(), before);

    // Restoring one snapshot generation makes the store fully recoverable
    // again (gen1's offset is the GC boundary, so its log suffix is intact).
    std::fs::write(&gen2, {
        let mut fixed = std::fs::read(&gen2).unwrap();
        let last = fixed.len() - 1;
        fixed[last] ^= 0x01;
        fixed
    })
    .unwrap();
    f.assert_fully_recovered();
}

#[test]
fn phr_store_cross_patient_and_revocation_failures() {
    let mut rng = StdRng::seed_from_u64(0xFA12);
    let params = PairingParams::insecure_toy();
    let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
    let provider_kgc = Kgc::setup(params.clone(), "providers", &mut rng);
    let store = Arc::new(EncryptedPhrStore::new("db"));
    let mut proxy_service = ProxyService::new("proxy", store.clone());

    let mut alice = Patient::new("alice", &patient_kgc);
    let mallory = Patient::new("mallory", &patient_kgc);
    let doctor = Identity::new("doctor");
    let doctor_provider = HealthcareProvider::new(provider_kgc.extract(&doctor));

    let record = HealthRecord::new(
        alice.identity().clone(),
        Category::LabResults,
        "cholesterol",
        b"LDL 95 mg/dL".to_vec(),
    );
    let id = alice.store_record(&store, &record, &mut rng).unwrap();

    // Mallory cannot store records in Alice's name.
    let fake = HealthRecord::new(
        alice.identity().clone(),
        Category::LabResults,
        "forged",
        b"bogus".to_vec(),
    );
    assert!(matches!(
        mallory.store_record(&store, &fake, &mut rng),
        Err(PhrError::PolicyConflict(_))
    ));
    // Mallory cannot read Alice's record directly either.
    assert!(mallory.read_own_record(&store, id).is_err());

    // The doctor is denied before any grant exists.
    assert!(matches!(
        proxy_service.disclose(alice.identity(), id, &doctor),
        Err(PhrError::AccessDenied { .. })
    ));

    // Grant, disclose, revoke, and observe the denial again.
    alice
        .grant_access(
            Category::LabResults,
            &doctor,
            provider_kgc.public_params(),
            &mut proxy_service,
            &mut rng,
        )
        .unwrap();
    let bundle = proxy_service
        .disclose(alice.identity(), id, &doctor)
        .unwrap();
    assert_eq!(doctor_provider.open(&bundle).unwrap().body, b"LDL 95 mg/dL");
    // Granting the same thing twice is reported as a conflict.
    assert!(matches!(
        alice.grant_access(
            Category::LabResults,
            &doctor,
            provider_kgc.public_params(),
            &mut proxy_service,
            &mut rng,
        ),
        Err(PhrError::PolicyConflict(_))
    ));
    alice
        .revoke_access(&Category::LabResults, &doctor, &mut proxy_service)
        .unwrap();
    assert!(matches!(
        proxy_service.disclose(alice.identity(), id, &doctor),
        Err(PhrError::AccessDenied { .. })
    ));
    // Revoking a non-existent grant is an error.
    assert!(alice
        .revoke_access(&Category::Emergency, &doctor, &mut proxy_service)
        .is_err());
    // Requests for non-existent records are reported as such.
    assert!(matches!(
        proxy_service.disclose(alice.identity(), tibpre_phr::RecordId(999), &doctor),
        Err(PhrError::RecordNotFound)
    ));
}
