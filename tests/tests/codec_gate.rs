//! The wire-residency **codec gate** — CI-enforced counters for the claims
//! the e12 work makes:
//!
//! * `put` on a durable store performs exactly **one** record encode (shared
//!   by the WAL frame and the shard's resident bytes) and **zero** decodes;
//! * snapshotting copies resident bytes — zero codec round trips;
//! * reopening from an indexed snapshot decodes **zero** records (O(index));
//!   reads decode lazily, once, and then hit the per-shard LRU;
//! * resident bytes per record stay within 1.05× of the record's v1 encoded
//!   size (they are in fact identical — the shard shares the WAL frame's
//!   buffer or the snapshot blob).
//!
//! The counters ([`tibpre_phr::metrics`]) are process-global, so this test
//! must not share a process with other record traffic: it lives alone in
//! its own integration-test binary, as a single `#[test]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tibpre_core::{Delegator, TypeTag};
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::category::Category;
use tibpre_phr::durable::Durability;
use tibpre_phr::metrics;
use tibpre_phr::store::EncryptedPhrStore;
use tibpre_phr::FsyncPolicy;
use tibpre_storage::TempDir;
use tibpre_wire::WireVersion;

const RECORDS: u64 = 24;

#[test]
fn put_path_is_zero_round_trip_and_resident_bytes_stay_at_wire_size() {
    let params = PairingParams::insecure_toy();
    let mut rng = StdRng::seed_from_u64(0xE12);
    let kgc = Kgc::setup(params.clone(), "kgc", &mut rng);
    let delegator = Delegator::new(
        kgc.public_params().clone(),
        kgc.extract(&Identity::new("alice")),
    );
    let ciphertext = delegator.encrypt_bytes(b"payload", b"", &TypeTag::new("t"), &mut rng);
    let alice = Identity::new("alice");
    let tmp = TempDir::new("codec-gate").unwrap();
    let dir = tmp.path().join("db");
    let durability = || {
        Durability::new(params.clone())
            .shards(2)
            .fsync(FsyncPolicy::Never)
            .snapshot_every(0)
    };

    // --- Gate 1: the put path is one encode, zero decodes, per record. ---
    let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
    let (enc0, dec0) = (metrics::record_encodes(), metrics::record_decodes());
    let ids: Vec<_> = (0..RECORDS)
        .map(|i| {
            store.put(
                &alice,
                &Category::LabResults,
                &format!("r{i}"),
                ciphertext.clone(),
            )
        })
        .collect();
    assert_eq!(
        metrics::record_encodes() - enc0,
        RECORDS,
        "put must encode exactly once per record (WAL frame == resident bytes)"
    );
    assert_eq!(metrics::record_decodes() - dec0, 0, "put must never decode");

    // Read-after-write hits the cache primed by put: still zero decodes.
    for &id in &ids {
        assert_eq!(store.get(id).unwrap().patient, alice);
    }
    assert_eq!(
        metrics::record_decodes() - dec0,
        0,
        "primed reads must not decode"
    );

    // --- Gate 2: resident bytes per record ≤ 1.05× the v1 encoded size. ---
    let resident = store.encoded_payload_bytes();
    let reference: u64 = ids
        .iter()
        .map(|&id| {
            tibpre_wire::encode_bare(store.get(id).unwrap().as_ref(), WireVersion::V1).len() as u64
        })
        .sum();
    assert!(resident > 0 && reference > 0);
    assert!(
        resident * 100 <= reference * 105,
        "resident bytes {resident} exceed 1.05x the v1 wire size {reference}"
    );

    // --- Gate 3: snapshot + reopen decode nothing; reads decode lazily. ---
    store.force_snapshot().unwrap();
    let enc_snap = metrics::record_encodes();
    drop(store);
    let dec1 = metrics::record_decodes();
    let reopened = EncryptedPhrStore::open(&dir, durability()).unwrap();
    assert_eq!(reopened.record_count(), RECORDS as usize);
    assert_eq!(
        metrics::record_decodes() - dec1,
        0,
        "reopening from an indexed snapshot must decode zero records"
    );
    assert_eq!(
        metrics::record_encodes() - enc_snap,
        0,
        "snapshot and reopen must not re-encode resident records"
    );

    // First (cold) read of each record decodes exactly once...
    for &id in &ids {
        assert_eq!(reopened.get(id).unwrap().title, format!("r{}", id.0 - 1));
    }
    assert_eq!(
        metrics::record_decodes() - dec1,
        RECORDS,
        "cold reads decode lazily, once per record"
    );
    // ...and hot re-reads are pure cache hits.
    for &id in &ids {
        reopened.get(id).unwrap();
    }
    assert_eq!(
        metrics::record_decodes() - dec1,
        RECORDS,
        "hot reads must hit the per-shard LRU"
    );
    // The mapped resident footprint equals the owned one (same bare bytes).
    assert_eq!(reopened.encoded_payload_bytes(), resident);
}
