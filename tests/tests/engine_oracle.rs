//! Engine-vs-sequential oracle: the multi-threaded `ReEncryptEngine` must be
//! a pure speedup over the sequential batch APIs of `tibpre-core` — same
//! ordering, same first-error, byte-identical ciphertexts — for every worker
//! count and batch shape.
//!
//! Uses the cached toy parameter set; each case converts a whole batch twice
//! (sequentially and through the engine), so the case counts are modest.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_core::{hybrid, proxy, Delegatee, Delegator, ReEncryptionKey, TypeTag};
use tibpre_engine::ReEncryptEngine;
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;

struct World {
    params: Arc<PairingParams>,
    delegator: Delegator,
    delegatee: Delegatee,
    rekey: ReEncryptionKey,
    type_tag: TypeTag,
    rng: StdRng,
}

fn world(seed: u64) -> World {
    let params = PairingParams::insecure_toy();
    let mut rng = StdRng::seed_from_u64(seed);
    let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
    let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
    let alice = Identity::new("alice");
    let bob = Identity::new("bob");
    let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
    let type_tag = TypeTag::new("illness-history");
    let rekey = delegator
        .make_reencryption_key(&bob, kgc2.public_params(), &type_tag, &mut rng)
        .expect("shared parameters");
    World {
        params,
        delegator,
        delegatee: Delegatee::new(kgc2.extract(&bob)),
        rekey,
        type_tag,
        rng,
    }
}

/// The env-sized engine (what a deployment and the CI multi-worker smoke,
/// which sets `TIBPRE_WORKERS=2`, actually run) matches the sequential path
/// byte for byte — this is the one test in the suite whose pool size comes
/// from `ReEncryptEngine::from_env()` rather than an explicit count.
#[test]
fn engine_from_env_matches_sequential() {
    let mut w = world(0xEAF);
    let payloads: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 48]).collect();
    let batch: Vec<_> = payloads
        .iter()
        .map(|p| {
            w.delegator
                .encrypt_bytes(p, b"env", &w.type_tag, &mut w.rng)
        })
        .collect();
    let engine = ReEncryptEngine::from_env();
    let sequential = hybrid::re_encrypt_hybrid_batch(&batch, &w.rekey).unwrap();
    let parallel = engine.re_encrypt_hybrid_batch(&batch, &w.rekey).unwrap();
    assert_eq!(parallel, sequential, "workers={}", engine.workers());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Typed batches: for every worker count the engine output is
    /// byte-identical to the sequential `proxy::re_encrypt_batch`, and the
    /// results decrypt to the original messages.
    #[test]
    fn engine_batch_is_bit_identical(seed in any::<u64>(), len in 0usize..24, workers in 2usize..5) {
        let mut w = world(seed);
        let messages: Vec<_> = (0..len).map(|_| w.params.random_gt(&mut w.rng)).collect();
        let batch: Vec<_> = messages
            .iter()
            .map(|m| w.delegator.encrypt_typed(m, &w.type_tag, &mut w.rng))
            .collect();

        let sequential = proxy::re_encrypt_batch(&batch, &w.rekey).unwrap();
        let engine = ReEncryptEngine::new(workers);
        let parallel = engine.re_encrypt_batch(&batch, &w.rekey).unwrap();

        prop_assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            prop_assert_eq!(p.to_bytes(), s.to_bytes());
        }
        for (m, ct) in messages.iter().zip(&parallel) {
            prop_assert_eq!(&w.delegatee.decrypt_reencrypted(ct).unwrap(), m);
        }
    }

    /// Hybrid batches: same oracle over the KEM/DEM path the PHR proxy uses.
    #[test]
    fn engine_hybrid_batch_is_bit_identical(seed in any::<u64>(), len in 0usize..16, workers in 2usize..5) {
        let mut w = world(seed);
        let payloads: Vec<Vec<u8>> = (0..len).map(|i| vec![i as u8; 32 + i]).collect();
        let batch: Vec<_> = payloads
            .iter()
            .map(|p| w.delegator.encrypt_bytes(p, b"oracle", &w.type_tag, &mut w.rng))
            .collect();

        let sequential = hybrid::re_encrypt_hybrid_batch(&batch, &w.rekey).unwrap();
        let engine = ReEncryptEngine::new(workers);
        let parallel = engine.re_encrypt_hybrid_batch(&batch, &w.rekey).unwrap();
        prop_assert_eq!(&parallel, &sequential);
        for (payload, ct) in payloads.iter().zip(&parallel) {
            prop_assert_eq!(&w.delegatee.decrypt_bytes(ct, b"oracle").unwrap(), payload);
        }
    }

    /// A batch with one foreign-type ciphertext fails atomically with the
    /// same error (same offending type, no partial output) at every worker
    /// count — the engine preserves the sequential first-error semantics.
    #[test]
    fn engine_error_parity_on_mixed_batches(seed in any::<u64>(), len in 2usize..12, bad_at in 0usize..12, workers in 2usize..5) {
        let mut w = world(seed);
        let bad_at = bad_at % len;
        let m = w.params.random_gt(&mut w.rng);
        let batch: Vec<_> = (0..len)
            .map(|i| {
                let tag = if i == bad_at { TypeTag::new("diet") } else { w.type_tag.clone() };
                w.delegator.encrypt_typed(&m, &tag, &mut w.rng)
            })
            .collect();

        let sequential = proxy::re_encrypt_batch(&batch, &w.rekey).unwrap_err();
        let engine = ReEncryptEngine::new(workers);
        let parallel = engine.re_encrypt_batch(&batch, &w.rekey).unwrap_err();
        prop_assert_eq!(parallel, sequential);
    }
}
