//! Property-based round-trips for **every** wire type, driven through the
//! `WireEncode`/`WireDecode` traits — the single codec path the whole
//! workspace now serializes with.
//!
//! For each type and each envelope version the suite checks:
//!
//! * encode → decode round-trips to an equal value, and re-encoding is
//!   byte-identical (canonical encodings),
//! * truncation at a random offset is rejected, never a panic,
//! * a random single-bit flip is rejected or decodes to a *different*
//!   value, never a panic and never a silent collision with the original,
//! * a trailing byte is rejected (every decoder checks full consumption),
//! * an unknown envelope version byte is rejected with
//!   `DecodeErrorKind::UnknownVersion`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::sync::Arc;
use tibpre_core::{hybrid, proxy, Delegator, TypeTag};
use tibpre_ibe::{bf, Identity, Kgc};
use tibpre_pairing::{DecodeCtx, Fp2, PairingParams};
use tibpre_phr::audit::AuditEvent;
use tibpre_phr::category::Category;
use tibpre_phr::durable::{ProxyWalOp, WalOp};
use tibpre_phr::record::RecordId;
use tibpre_phr::store::StoredRecord;
use tibpre_wire::{DecodeError, DecodeErrorKind, WireDecode, WireEncode, WireVersion, Writer};

struct World {
    params: Arc<PairingParams>,
    ctx: DecodeCtx,
    delegator: Delegator,
    kgc2: Kgc,
    rng: StdRng,
}

fn world(seed: u64) -> World {
    let params = PairingParams::insecure_toy();
    let mut rng = StdRng::seed_from_u64(seed);
    let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
    let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
    let delegator = Delegator::new(
        kgc1.public_params().clone(),
        kgc1.extract(&Identity::new("alice")),
    );
    World {
        ctx: DecodeCtx::from(&params),
        params,
        delegator,
        kgc2,
        rng,
    }
}

/// The shared property battery, run under both envelope versions.
fn check_wire_type<T>(value: &T, ctx: &T::Ctx, cut_seed: usize, flip_seed: usize)
where
    T: WireEncode + WireDecode + PartialEq + Debug,
{
    for version in [WireVersion::V0, WireVersion::V1] {
        let bytes = value.to_wire_bytes_versioned(version);
        assert_eq!(bytes[0], version.tag());

        // Round-trip, and canonical re-encoding.
        let decoded = T::from_wire_bytes(&bytes, ctx)
            .unwrap_or_else(|e| panic!("{version:?} round-trip failed: {e}"));
        assert!(
            &decoded == value,
            "{version:?} round-trip changed the value"
        );
        assert_eq!(
            decoded.to_wire_bytes_versioned(version),
            bytes,
            "{version:?} re-encoding is not canonical"
        );

        // Truncation at any point is an error, never a panic.
        let cut = cut_seed % bytes.len();
        assert!(
            T::from_wire_bytes(&bytes[..cut], ctx).is_err(),
            "{version:?} accepted a truncation at {cut}"
        );

        // A single-bit flip in the body is rejected or yields a different
        // value.  (Byte 0 is excluded: flipping the envelope byte between
        // two *valid* version tags legitimately preserves the value for
        // types whose body is version-independent.)
        let mut flipped = bytes.clone();
        let at = 1 + flip_seed % (flipped.len() - 1);
        flipped[at] ^= 1 << (flip_seed % 8);
        match T::from_wire_bytes(&flipped, ctx) {
            Err(_) => {}
            Ok(other) => assert!(
                &other != value,
                "{version:?} bit flip at byte {at} was silently ignored"
            ),
        }

        // Trailing bytes are rejected.
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(
            T::from_wire_bytes(&longer, ctx).is_err(),
            "{version:?} accepted trailing bytes"
        );

        // An unknown envelope version is rejected as such.
        let mut wrong = bytes.clone();
        wrong[0] = 0xEE;
        match T::from_wire_bytes(&wrong, ctx) {
            Err(DecodeError {
                kind: DecodeErrorKind::UnknownVersion { tag: 0xEE },
                ..
            }) => {}
            other => panic!("{version:?} wrong-version decode gave {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pairing primitives: `G1Affine`, `Gt`, `Scalar`, `Fp2`.
    #[test]
    fn pairing_primitives(seed in any::<u64>(), cut in 0usize..4096, flip in 0usize..4096) {
        let mut w = world(seed);
        let point = w.params.random_g1(&mut w.rng);
        check_wire_type(&point, w.params.fp_ctx(), cut, flip);
        let gt = w.params.random_gt(&mut w.rng);
        check_wire_type(&gt, w.params.fp_ctx(), cut, flip);
        let scalar = w.params.random_scalar(&mut w.rng);
        check_wire_type(&scalar, w.params.scalar_ctx(), cut, flip);
        let fp2 = Fp2::random(w.params.fp_ctx(), &mut w.rng);
        check_wire_type(&fp2, w.params.fp_ctx(), cut, flip);
        // The G1 identity round-trips too (single-byte encoding).
        let id = w.params.g1_identity();
        check_wire_type(&id, w.params.fp_ctx(), cut, flip);
    }

    /// Scheme objects: typed / IBE / re-encrypted ciphertexts and keys.
    #[test]
    fn scheme_objects(
        seed in any::<u64>(),
        label in "[a-z-]{1,12}",
        cut in 0usize..8192,
        flip in 0usize..8192,
    ) {
        let mut w = world(seed);
        let t = TypeTag::new(&label);
        let bob = Identity::new("bob");
        let m = w.params.random_gt(&mut w.rng);

        let typed = w.delegator.encrypt_typed(&m, &t, &mut w.rng);
        check_wire_type(&typed, &w.ctx, cut, flip);

        let ibe = bf::encrypt_gt(w.kgc2.public_params(), &bob, &m, &mut w.rng);
        check_wire_type(&ibe, &w.ctx, cut, flip);

        let rekey = w
            .delegator
            .make_reencryption_key(&bob, w.kgc2.public_params(), &t, &mut w.rng)
            .unwrap();
        check_wire_type(&rekey, &w.ctx, cut, flip);

        let reencrypted = proxy::re_encrypt(&typed, &rekey).unwrap();
        check_wire_type(&reencrypted, &w.ctx, cut, flip);

        let sk = w.kgc2.extract(&bob);
        check_wire_type(&sk, &w.ctx, cut, flip);

        let xor_ct = tibpre_ibe::bf_xor::encrypt(
            w.kgc2.public_params(),
            &bob,
            label.as_bytes(),
            &mut w.rng,
        );
        check_wire_type(&xor_ct, &w.ctx, cut, flip);
    }

    /// Hybrid objects and the durable formats built on top of them.
    #[test]
    fn hybrid_and_durable_objects(
        seed in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        cut in 0usize..16384,
        flip in 0usize..16384,
    ) {
        let mut w = world(seed);
        let t = TypeTag::new("wire-props");
        let bob = Identity::new("bob");

        let hybrid_ct = w.delegator.encrypt_bytes(&payload, b"aad", &t, &mut w.rng);
        check_wire_type(&hybrid_ct, &w.ctx, cut, flip);

        let rekey = w
            .delegator
            .make_reencryption_key(&bob, w.kgc2.public_params(), &t, &mut w.rng)
            .unwrap();
        let transformed = hybrid::re_encrypt_hybrid(&hybrid_ct, &rekey).unwrap();
        check_wire_type(&transformed, &w.ctx, cut, flip);

        let record = StoredRecord {
            id: RecordId(42),
            patient: Identity::new("alice"),
            category: Category::Custom("genomics".into()),
            title: "exome".into(),
            ciphertext: hybrid_ct,
        };
        let ops = [
            WalOp::Put {
                record: Box::new(record),
                at: 7,
            },
            WalOp::Delete {
                id: RecordId(42),
                at: 8,
            },
            WalOp::Audit {
                event: AuditEvent::DisclosureDenied {
                    id: RecordId(42),
                    requester: Identity::new("eve"),
                    at: 9,
                },
            },
        ];
        for op in &ops {
            check_wire_type(op, &w.ctx, cut, flip);
        }
        let proxy_ops = [
            ProxyWalOp::InstallKey {
                key: Box::new(rekey),
            },
            ProxyWalOp::Audit {
                event: AuditEvent::AccessGranted {
                    patient: Identity::new("alice"),
                    category: Category::Emergency,
                    grantee: Identity::new("doc"),
                    at: 3,
                },
            },
            ProxyWalOp::RevokeKey {
                patient: Identity::new("alice"),
                category: Category::Emergency,
                grantee: Identity::new("doc"),
            },
        ];
        for op in &proxy_ops {
            check_wire_type(op, &w.ctx, cut, flip);
        }
    }

    /// Audit events (context-free wire type).
    #[test]
    fn audit_events(id in any::<u64>(), at in any::<u64>(), who in "[a-z]{1,12}", cut in 0usize..256, flip in 0usize..256) {
        let events = [
            AuditEvent::RecordStored {
                id: RecordId(id),
                patient: Identity::new(&who),
                category: Category::LabResults,
                at,
            },
            AuditEvent::RecordDeleted { id: RecordId(id), at },
            AuditEvent::AccessRevoked {
                patient: Identity::new(&who),
                category: Category::Custom(who.clone()),
                grantee: Identity::new("g"),
                at,
            },
            AuditEvent::DisclosurePerformed {
                id: RecordId(id),
                requester: Identity::new(&who),
                at,
            },
        ];
        for event in &events {
            check_wire_type(event, &(), cut, flip);
        }
    }
}

/// The engine-level invariant behind every battery above: bare bodies under
/// v0 are byte-identical to the pre-`tibpre-wire` legacy layouts (spot
/// check against the formats the PR-4 code wrote — also pinned end-to-end
/// by the golden fixture in `format_compat.rs`).
#[test]
fn v0_bodies_match_legacy_layouts() {
    let mut w = world(0x1e9);
    let m = w.params.random_gt(&mut w.rng);
    let t = TypeTag::new("legacy");
    let typed = w.delegator.encrypt_typed(&m, &t, &mut w.rng);

    // Legacy typed layout: c1 uncompressed ‖ c2 raw ‖ u32 len ‖ tag.
    let mut legacy = typed.c1.to_bytes();
    legacy.extend(typed.c2.to_bytes());
    legacy.extend((t.as_bytes().len() as u32).to_be_bytes());
    legacy.extend(t.as_bytes());
    assert_eq!(tibpre_wire::encode_bare(&typed, WireVersion::V0), legacy);

    // And the envelope is exactly one tag byte in front of the bare body.
    let mut enveloped = vec![WireVersion::V0.tag()];
    enveloped.extend(&legacy);
    assert_eq!(typed.to_wire_bytes_versioned(WireVersion::V0), enveloped);
}

/// A compressed (v1) hybrid ciphertext is measurably smaller, and the
/// writer's version threads through nested fields (header inside hybrid
/// inside WAL op).
#[test]
fn nested_fields_inherit_the_container_version() {
    let mut w = world(0xbeef);
    let ct = w
        .delegator
        .encrypt_bytes(b"payload", b"", &TypeTag::new("t"), &mut w.rng);
    let record = StoredRecord {
        id: RecordId(1),
        patient: Identity::new("alice"),
        category: Category::Emergency,
        title: "r".into(),
        ciphertext: ct,
    };
    let op = WalOp::Put {
        record: Box::new(record),
        at: 1,
    };
    let v0 = op.to_wire_bytes_versioned(WireVersion::V0);
    let v1 = op.to_wire_bytes_versioned(WireVersion::V1);
    // The nested G1/Gt elements dominate the size difference; if the
    // version failed to propagate into the record's ciphertext the two
    // encodings would be equal up to the envelope byte.  Compressing one
    // point and one target-group element saves 2·field_len − 1 bytes.
    assert!(
        v1.len() + 2 * w.params.fp_ctx().byte_len() - 1 <= v0.len(),
        "v1 {} vs v0 {}",
        v1.len(),
        v0.len()
    );
    // Both decode back to the same op.
    let a = WalOp::from_bytes(&w.params, &v0).unwrap();
    let b = WalOp::from_bytes(&w.params, &v1).unwrap();
    assert_eq!(a, b);

    // A writer at v0 produces the legacy bare layout for the hybrid too.
    let WalOp::Put { record, .. } = a else {
        unreachable!()
    };
    let mut bare = Writer::with_version(WireVersion::V0);
    record.ciphertext.encode(&mut bare);
    let legacy_equivalent = bare.into_bytes();
    let mut expected = Vec::new();
    let header = tibpre_wire::encode_bare(&record.ciphertext.header, WireVersion::V0);
    expected.extend((header.len() as u32).to_be_bytes());
    expected.extend(header);
    expected.extend(tibpre_wire::encode_bare(
        &record.ciphertext.body,
        WireVersion::V0,
    ));
    assert_eq!(legacy_equivalent, expected);
}
