//! Oracle-equivalence suite for the lazy-reduction fast paths.
//!
//! The hot field layers keep products *unreduced* across additions — one
//! Montgomery reduction per `Fp::sum_of_products` call instead of one per
//! multiplication — and the multi-pairing entry point shares one Miller
//! accumulator and one final exponentiation across a whole batch.  Every one
//! of those shortcuts must be **bit-identical** to the strict path it
//! replaces; this suite pins that on random operands *and* on the
//! adversarial corners where a missed carry or a skipped reduction would
//! actually show: values at `p − k` for tiny `k`, all-ones limb patterns
//! (maximum carry chains), zero, and one.
//!
//! Strict oracles stay alive in the API precisely for these tests:
//! `Fp2::mul_strict`, `Fp2::mul_by_line_strict`, and the naive
//! `PairingParams::pairing` (one Miller loop + one final exponentiation per
//! pair).
//!
//! The suite always runs at the toy level.  Setting `TIBPRE_BENCH_LEVELS`
//! to a list containing `80` (as the scheduled CI job does) additionally
//! runs every check at the paper-era 80-bit parameter level; `112` and
//! `128` are honoured too for manual deep soaks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_bigint::Uint;
use tibpre_pairing::{multi_pairing, Fp, Fp2, FpCtx, PairingParams, SecurityLevel};

/// The levels to exercise: always `Toy`; heavier levels opt-in through the
/// same `TIBPRE_BENCH_LEVELS` environment variable the benchmarks use.
fn levels() -> Vec<Arc<PairingParams>> {
    let mut levels = vec![SecurityLevel::Toy];
    if let Ok(spec) = std::env::var("TIBPRE_BENCH_LEVELS") {
        for tag in spec.split(',') {
            match tag.trim() {
                "80" => levels.push(SecurityLevel::Low80),
                "112" => levels.push(SecurityLevel::Medium112),
                "128" => levels.push(SecurityLevel::High128),
                _ => {}
            }
        }
    }
    levels.into_iter().map(PairingParams::cached).collect()
}

/// Adversarial `Fp` operands for a given context: the reduction-boundary
/// values a lazy accumulator is most likely to get wrong.
fn corner_elements(ctx: &Arc<FpCtx>) -> Vec<Fp> {
    let p = *ctx.modulus();
    let limbs = p.limb_len();
    let mut corners = vec![
        Fp::zero(ctx),
        Fp::one(ctx),
        Fp::one(ctx).neg(), // p − 1
        Fp::from_u64(ctx, 2).neg(),
        Fp::from_u64(ctx, u64::MAX),
    ];
    // p − k for small k, via Uint subtraction (reduces to itself).
    for k in [3u64, 17, 255] {
        corners.push(Fp::from_uint(ctx, &p.wrapping_sub(&Uint::from_u64(k))));
    }
    // All-ones limb patterns of every width up to the modulus width: the
    // longest possible carry chains through the wide accumulator.
    for width in 1..=limbs {
        let ones = Uint::from_limbs_le(&vec![u64::MAX; width]).unwrap();
        corners.push(Fp::from_uint(ctx, &ones));
    }
    corners
}

/// The strict oracle for `sum_of_products`: reduce after every single
/// multiplication, then fold with reduced additions.
fn strict_sum_of_products(pairs: &[(&Fp, &Fp)]) -> Fp {
    let ctx = pairs[0].0.ctx();
    pairs
        .iter()
        .fold(Fp::zero(ctx), |acc, (a, b)| acc.add(&a.mul(b)))
}

#[test]
fn sum_of_products_matches_the_strict_fold_on_corners() {
    for params in levels() {
        let ctx = params.fp_ctx();
        let corners = corner_elements(ctx);
        // Every pair of corners as a 1-term sum (pure lazy mul)...
        for a in &corners {
            for b in &corners {
                let lazy = Fp::sum_of_products(&[(a, b)]);
                assert_eq!(lazy.to_bytes(), a.mul(b).to_bytes());
            }
        }
        // ...and longer sums sliding over the corner list, including
        // subtraction spelled as negation (the documented calling idiom).
        for len in [2usize, 3, 5, corners.len()] {
            for start in 0..corners.len() {
                let terms: Vec<(&Fp, &Fp)> = (0..len)
                    .map(|i| {
                        let a = &corners[(start + i) % corners.len()];
                        let b = &corners[(start + 2 * i + 1) % corners.len()];
                        (a, b)
                    })
                    .collect();
                let lazy = Fp::sum_of_products(&terms);
                assert_eq!(
                    lazy.to_bytes(),
                    strict_sum_of_products(&terms).to_bytes(),
                    "len={len} start={start} level={:?}",
                    params.level()
                );
            }
        }
        // a·b − c·d via negation, on the nastiest corner (p − 1).
        let near = Fp::one(ctx).neg();
        let diff = Fp::sum_of_products(&[(&near, &near), (&near.neg(), &near)]);
        assert_eq!(
            diff.to_bytes(),
            near.mul(&near).sub(&near.mul(&near)).to_bytes()
        );
        assert!(diff.is_zero());
    }
}

#[test]
fn fp2_lazy_mul_matches_strict_on_corners_and_random() {
    for params in levels() {
        let ctx = params.fp_ctx();
        let corners = corner_elements(ctx);
        let mut rng = StdRng::seed_from_u64(0x1A2);
        // Corner × corner products in both components.
        let mut elements: Vec<Fp2> = Vec::new();
        for i in 0..corners.len() {
            let j = (i * 3 + 1) % corners.len();
            elements.push(Fp2::new(corners[i].clone(), corners[j].clone()));
        }
        for _ in 0..8 {
            elements.push(Fp2::random(ctx, &mut rng));
        }
        for a in &elements {
            for b in &elements {
                assert_eq!(a.mul(b).to_bytes(), a.mul_strict(b).to_bytes());
            }
            // Squaring stays strict internally but must agree with lazy mul.
            assert_eq!(a.square().to_bytes(), a.mul(a).to_bytes());
        }
        // Line folding: the fused path against its strict oracle, with the
        // line coefficients also drawn from the corner set.
        for a in &elements {
            for (real, y) in corners.iter().zip(corners.iter().rev()) {
                assert_eq!(
                    a.mul_by_line(real, y).to_bytes(),
                    a.mul_by_line_strict(real, y).to_bytes()
                );
            }
        }
    }
}

#[test]
fn multi_pairing_matches_independent_pairings_at_each_level() {
    for params in levels() {
        let mut rng = StdRng::seed_from_u64(0x1A3);
        for k in [1usize, 2, 5] {
            let pairs: Vec<_> = (0..k)
                .map(|_| (params.random_g1(&mut rng), params.random_g1(&mut rng)))
                .collect();
            // Oracle: k fully independent naive pairings, folded in Gt.
            let expected = pairs.iter().fold(params.gt_identity(), |acc, (a, b)| {
                acc.mul(&params.pairing(a, b))
            });
            // Fast path: shared Miller accumulator, one final exponentiation.
            let prepared: Vec<_> = pairs.iter().map(|(a, _)| params.prepare(a)).collect();
            let refs: Vec<_> = prepared
                .iter()
                .zip(pairs.iter())
                .map(|(prep, (_, b))| (prep, b))
                .collect();
            let fast = multi_pairing(&refs).unwrap();
            assert_eq!(
                fast.to_bytes(),
                expected.to_bytes(),
                "k={k} level={:?}",
                params.level()
            );
            // The element-wise batched final exponentiation, too.
            let flat: Vec<_> = pairs.iter().map(|(a, b)| (a, b)).collect();
            let batch = params.pairing_batch(&flat);
            for ((a, b), gt) in pairs.iter().zip(&batch) {
                assert_eq!(gt.to_bytes(), params.pairing(a, b).to_bytes());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random-operand property: lazy `sum_of_products` equals the strict
    /// reduce-after-every-step fold, with random signs (negation) mixed in.
    /// Proptest drives the toy level only — the corner tests above cover the
    /// heavier levels under `TIBPRE_BENCH_LEVELS` without 64× repetition.
    #[test]
    fn prop_sum_of_products_matches_strict(seed in any::<u64>(), len in 1usize..9) {
        let params = PairingParams::cached(SecurityLevel::Toy);
        let ctx = params.fp_ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let elems: Vec<(Fp, Fp)> = (0..len)
            .map(|i| {
                let a = Fp::random(ctx, &mut rng);
                let a = if i % 2 == 0 { a } else { a.neg() };
                (a, Fp::random(ctx, &mut rng))
            })
            .collect();
        let refs: Vec<(&Fp, &Fp)> = elems.iter().map(|(a, b)| (a, b)).collect();
        prop_assert_eq!(
            Fp::sum_of_products(&refs).to_bytes(),
            strict_sum_of_products(&refs).to_bytes()
        );
    }

    /// Random-operand property: lazy `Fp2` multiplication and line folding
    /// equal their strict oracles.
    #[test]
    fn prop_fp2_lazy_matches_strict(seed in any::<u64>()) {
        let params = PairingParams::cached(SecurityLevel::Toy);
        let ctx = params.fp_ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Fp2::random(ctx, &mut rng);
        let b = Fp2::random(ctx, &mut rng);
        prop_assert_eq!(a.mul(&b).to_bytes(), a.mul_strict(&b).to_bytes());
        let real = Fp::random(ctx, &mut rng);
        let y = Fp::random(ctx, &mut rng);
        prop_assert_eq!(
            a.mul_by_line(&real, &y).to_bytes(),
            a.mul_by_line_strict(&real, &y).to_bytes()
        );
    }
}
