//! Fault injection against a live node: torn frames, hostile length
//! prefixes, wrong-version envelopes, vanishing clients, and concurrent
//! policy churn.  The invariant throughout: the node never panics, the
//! listener keeps accepting, and durable state reopens cleanly afterward.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use tibpre_client::{
    params_for_level, ClientConfig, ClientError, Connection, KgcClient, NodeRole, ProxyClient,
    RemoteError, Request, Response, StoreClient,
};
use tibpre_core::Delegator;
use tibpre_ibe::Identity;
use tibpre_pairing::{DecodeCtx, PairingParams, SecurityLevel};
use tibpre_phr::{Category, Durability, EncryptedPhrStore, HealthRecord};
use tibpre_server::{node, NodeConfig, NodeHandle};
use tibpre_wire::{read_frame, WireDecode, WireEncode, DEFAULT_MAX_FRAME};

fn toy_params() -> Arc<PairingParams> {
    params_for_level(SecurityLevel::Toy)
}

fn boot(role: NodeRole) -> NodeHandle {
    node::start(NodeConfig::new(role)).expect("node boot")
}

/// The node still serves a fresh, well-behaved connection.
fn assert_alive(handle: &NodeHandle, role: NodeRole) {
    let mut conn =
        Connection::connect(handle.addr(), &toy_params(), &ClientConfig::default()).unwrap();
    assert_eq!(conn.ping().unwrap().0, role);
}

fn read_error_response(stream: &mut TcpStream) -> RemoteError {
    let payload = read_frame(stream, DEFAULT_MAX_FRAME)
        .expect("a response frame")
        .expect("a response, not EOF");
    let ctx = DecodeCtx::from(&toy_params());
    match Response::from_wire_bytes(&payload, &ctx).expect("decodable response") {
        Response::Error(err) => err,
        other => panic!("expected an error response, got {other:?}"),
    }
}

#[test]
fn torn_frame_mid_request_closes_only_that_connection() {
    let handle = boot(NodeRole::Kgc);

    // Promise 100 bytes, deliver 10, hang up.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(&[0xAA; 10]).unwrap();
    drop(stream);

    // Tear even earlier: one byte of the length prefix.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(&[0x00]).unwrap();
    drop(stream);

    assert_alive(&handle, NodeRole::Kgc);
    handle.shutdown();
    handle.wait();
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let handle = boot(NodeRole::Kgc);

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // 3 GiB length prefix — must be refused without the node buffering it.
    stream.write_all(&0xC000_0000u32.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let err = read_error_response(&mut stream);
    assert!(matches!(err, RemoteError::BadRequest(_)), "got {err:?}");
    // The node then closes this connection.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    assert_alive(&handle, NodeRole::Kgc);
    handle.shutdown();
    handle.wait();
}

#[test]
fn wrong_version_envelope_is_a_bad_request_not_a_hang() {
    let handle = boot(NodeRole::Kgc);

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // A well-formed frame whose payload claims wire version 0x7F.
    let bogus = [0x7Fu8, 0x01, 0x02, 0x03];
    stream
        .write_all(&(bogus.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(&bogus).unwrap();
    stream.flush().unwrap();
    let err = read_error_response(&mut stream);
    assert!(matches!(err, RemoteError::BadRequest(_)), "got {err:?}");

    // Garbage that *is* the right version but truncated mid-payload: a V1
    // envelope opening an `Extract` with no identity behind it.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let truncated = [0xE1u8, 0x04];
    stream
        .write_all(&(truncated.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(&truncated).unwrap();
    stream.flush().unwrap();
    let err = read_error_response(&mut stream);
    assert!(matches!(err, RemoteError::BadRequest(_)), "got {err:?}");

    assert_alive(&handle, NodeRole::Kgc);
    handle.shutdown();
    handle.wait();
}

#[test]
fn client_disconnect_mid_response_does_not_poison_the_listener() {
    let handle = boot(NodeRole::Store);
    let params = toy_params();

    let _ = &params;
    for _ in 0..8 {
        // Fire a request and vanish before reading the response; the
        // node's write lands in a closed socket.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let payload = Request::RecordCount.to_wire_bytes();
        stream
            .write_all(&(payload.len() as u32).to_be_bytes())
            .unwrap();
        stream.write_all(&payload).unwrap();
        stream.flush().unwrap();
        drop(stream);
    }

    assert_alive(&handle, NodeRole::Store);
    handle.shutdown();
    handle.wait();
}

#[test]
fn concurrent_grant_revoke_churn_on_one_patient_stays_consistent() {
    let kgc_node = boot(NodeRole::Kgc);
    let store_node = boot(NodeRole::Store);
    let mut proxy_config = NodeConfig::new(NodeRole::Proxy);
    proxy_config.store_addr = Some(store_node.addr().to_string());
    let proxy_node = node::start(proxy_config).expect("proxy boot");

    let params = toy_params();
    let config = ClientConfig::default();
    let mut rng = StdRng::seed_from_u64(0xC0117E57);

    let mut kgc = KgcClient::connect(kgc_node.addr(), &params, &config).unwrap();
    let domain = kgc.public_params().unwrap();
    let alice = Identity::new("alice");
    let doctor = Identity::new("doctor");
    let delegator = Delegator::new(domain.clone(), kgc.extract(&alice).unwrap());

    let mut store = StoreClient::connect(store_node.addr(), &params, &config).unwrap();
    let category = Category::LabResults;
    let aad = HealthRecord::associated_data(&alice, &category, "hba1c");
    let ct = delegator.encrypt_bytes(b"6.1%", &aad, &category.type_tag(), &mut rng);
    let record_id = store.put(&alice, &category, "hba1c", ct).unwrap();

    let grant = delegator
        .make_reencryption_key(&doctor, &domain, &category.type_tag(), &mut rng)
        .unwrap();

    // Four threads churn the same (patient, category, grantee) triple —
    // two flipping grant/revoke, two issuing disclosures that race the
    // policy flips.  Every outcome must be a clean protocol answer.
    std::thread::scope(|scope| {
        for worker in 0..2 {
            let grant = grant.clone();
            let (alice, doctor, category) = (alice.clone(), doctor.clone(), category.clone());
            let (params, config) = (Arc::clone(&params), config.clone());
            let addr = proxy_node.addr();
            scope.spawn(move || {
                let mut proxy = ProxyClient::connect(addr, &params, &config).unwrap();
                for _ in 0..25 {
                    proxy.install_key(grant.clone()).unwrap();
                    let _ = proxy.revoke_key(&alice, &category, &doctor).unwrap();
                    let _ = worker;
                }
            });
        }
        for _ in 0..2 {
            let (alice, doctor) = (alice.clone(), doctor.clone());
            let (params, config) = (Arc::clone(&params), config.clone());
            let addr = proxy_node.addr();
            scope.spawn(move || {
                let mut proxy = ProxyClient::connect(addr, &params, &config).unwrap();
                for _ in 0..25 {
                    match proxy.disclose(&alice, record_id, &doctor) {
                        Ok(_) => {}
                        Err(ClientError::Remote(RemoteError::AccessDenied { .. })) => {}
                        Err(other) => panic!("disclosure race broke the protocol: {other}"),
                    }
                }
            });
        }
    });

    // The proxy answers a definite final state (whatever the race left).
    let mut proxy = ProxyClient::connect(proxy_node.addr(), &params, &config).unwrap();
    let final_state = proxy.has_grant(&alice, &category, &doctor).unwrap();
    assert_eq!(proxy.key_count().unwrap(), u64::from(final_state));

    for handle in [proxy_node, store_node, kgc_node] {
        handle.shutdown();
        handle.wait();
    }
}

#[test]
fn store_reopens_cleanly_after_surviving_the_fault_suite() {
    let tmp = tibpre_storage::TempDir::new("fault-reopen").unwrap();
    let params = toy_params();
    let config = ClientConfig::default();
    let mut rng = StdRng::seed_from_u64(0xFA017);

    let mut store_config = NodeConfig::new(NodeRole::Store);
    store_config.data_dir = Some(tmp.path().to_path_buf());
    let store_node = node::start(store_config).expect("durable store boot");

    // Real traffic first.
    let kgc_node = boot(NodeRole::Kgc);
    let mut kgc = KgcClient::connect(kgc_node.addr(), &params, &config).unwrap();
    let domain = kgc.public_params().unwrap();
    let alice = Identity::new("alice");
    let delegator = Delegator::new(domain, kgc.extract(&alice).unwrap());
    let mut store = StoreClient::connect(store_node.addr(), &params, &config).unwrap();
    let aad = HealthRecord::associated_data(&alice, &Category::Vaccinations, "mmr");
    let ct = delegator.encrypt_bytes(
        b"1998-05-12",
        &aad,
        &Category::Vaccinations.type_tag(),
        &mut rng,
    );
    let record_id = store
        .put(&alice, &Category::Vaccinations, "mmr", ct)
        .unwrap();

    // Then the fault barrage: torn frame, hostile prefix, garbage payload.
    let mut torn = TcpStream::connect(store_node.addr()).unwrap();
    torn.write_all(&64u32.to_be_bytes()).unwrap();
    torn.write_all(&[0x55; 5]).unwrap();
    drop(torn);
    let mut hostile = TcpStream::connect(store_node.addr()).unwrap();
    hostile.write_all(&u32::MAX.to_be_bytes()).unwrap();
    drop(hostile);
    let mut garbage = TcpStream::connect(store_node.addr()).unwrap();
    garbage.write_all(&4u32.to_be_bytes()).unwrap();
    garbage.write_all(&[0xFF; 4]).unwrap();
    drop(garbage);

    // The node still serves, drains, and syncs.
    assert_alive(&store_node, NodeRole::Store);
    store_node.shutdown();
    store_node.wait();
    kgc_node.shutdown();
    kgc_node.wait();

    // The directory lock was released and the WAL replays the record.
    let reopened =
        EncryptedPhrStore::open(tmp.path(), Durability::new(Arc::clone(&params))).unwrap();
    assert_eq!(reopened.record_count(), 1);
    assert_eq!(reopened.get(record_id).unwrap().title, "mmr");
}
