//! The replication fault-injection harness: a primary store node, read
//! replicas tailing its WAL over TCP, and a [`FaultProxy`] tearing the
//! stream at exact byte offsets in between.
//!
//! Every test ends with the same oracle: the replica's observable state —
//! record count, every record body, every patient listing, the full audit
//! trail — equal to the primary's, because replication replays the
//! primary's committed WAL bytes through the same frame-scan path crash
//! recovery uses.  The fault injection proves the *resume* logic: torn
//! chunks are re-shipped from the last applied offset, never duplicated,
//! never skipped, and a revocation that precedes the replica's applied
//! offset can never be observed un-applied ("replication cannot resurrect
//! a revoked key").

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use tibpre_client::{
    params_for_level, ClientConfig, ClientError, Connection, NodeRole, RemoteError, Request,
    Response, StoreClient,
};
use tibpre_core::Delegator;
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::{DecodeCtx, PairingParams, SecurityLevel};
use tibpre_phr::{Category, HealthRecord, RecordId};
use tibpre_server::{node, NodeConfig, NodeHandle};
use tibpre_storage::TempDir;
use tibpre_tests::FaultProxy;
use tibpre_wire::{read_frame, write_frame, WireDecode, WireEncode};

fn toy_params() -> Arc<PairingParams> {
    params_for_level(SecurityLevel::Toy)
}

/// Patients with client-side encryption keys, set up once: the replication
/// tests never decrypt, so one shared KGC serves every test.
fn patients() -> &'static Vec<(Identity, Delegator)> {
    static PATIENTS: OnceLock<Vec<(Identity, Delegator)>> = OnceLock::new();
    PATIENTS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5eed_cafe);
        let kgc = Kgc::setup(toy_params(), "patients", &mut rng);
        (0..3)
            .map(|i| {
                let identity = Identity::new(format!("patient-{i:02}"));
                let delegator = Delegator::new(kgc.public_params().clone(), kgc.extract(&identity));
                (identity, delegator)
            })
            .collect()
    })
}

fn boot_primary(data_dir: &std::path::Path) -> NodeHandle {
    let mut config = NodeConfig::new(NodeRole::Store);
    config.data_dir = Some(data_dir.to_path_buf());
    node::start(config).expect("primary store node")
}

fn boot_replica(primary_addr: &str) -> NodeHandle {
    let mut config = NodeConfig::new(NodeRole::Store);
    config.replica_of = Some(primary_addr.to_string());
    node::start(config).expect("replica store node")
}

fn connect(handle: &NodeHandle) -> StoreClient {
    StoreClient::connect(handle.addr(), &toy_params(), &ClientConfig::default())
        .expect("store client")
}

fn shut_down(handle: NodeHandle) {
    let mut conn = Connection::connect(handle.addr(), &toy_params(), &ClientConfig::default())
        .expect("connect for shutdown");
    conn.shutdown().expect("shutdown frame");
    handle.wait();
}

fn put(
    store: &mut StoreClient,
    patient_index: usize,
    title: &str,
    body: &[u8],
    rng: &mut StdRng,
) -> RecordId {
    let (patient, delegator) = &patients()[patient_index];
    let category = Category::LabResults;
    let aad = HealthRecord::associated_data(patient, &category, title);
    let ciphertext = delegator.encrypt_bytes(body, &aad, &category.type_tag(), rng);
    store
        .put(patient, &category, title, ciphertext)
        .expect("put on primary")
}

fn log_policy(store: &mut StoreClient, patient_index: usize, granted: bool) {
    let (patient, _) = &patients()[patient_index];
    let response = store
        .connection()
        .call(&Request::LogPolicyChange {
            patient: patient.clone(),
            category: Category::LabResults,
            grantee: Identity::new("dr-bob"),
            granted,
        })
        .expect("policy log");
    assert!(matches!(response, Response::Ok));
}

fn replication_status(conn: &mut Connection) -> (Vec<u64>, bool) {
    match conn.call(&Request::ReplicationStatus).expect("status") {
        Response::ReplicaStatus {
            positions,
            writable,
        } => (positions, writable),
        other => panic!("expected ReplicaStatus, got {other:?}"),
    }
}

/// Blocks until the replica's applied offsets equal the primary's committed
/// offsets on every shard.
fn wait_caught_up(primary: &mut StoreClient, replica: &mut StoreClient) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (want, _) = replication_status(primary.connection());
        let (have, _) = replication_status(replica.connection());
        if want == have {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replica never caught up: applied {have:?}, committed {want:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The oracle: every observable of the replica equals the primary's.
fn assert_identical(primary: &mut StoreClient, replica: &mut StoreClient) {
    assert_eq!(
        replica.record_count().unwrap(),
        primary.record_count().unwrap()
    );
    assert_eq!(
        replica.audit_snapshot().unwrap(),
        primary.audit_snapshot().unwrap()
    );
    for (patient, _) in patients() {
        let ids = primary.list(patient, None).unwrap();
        assert_eq!(replica.list(patient, None).unwrap(), ids);
        for id in ids {
            assert_eq!(replica.get(id).unwrap(), primary.get(id).unwrap());
        }
    }
}

#[test]
fn a_lagging_replica_catches_up_and_serves_identical_reads() {
    let tmp = TempDir::new("repl-lag").unwrap();
    let primary_node = boot_primary(tmp.path());
    let mut primary = connect(&primary_node);
    let mut rng = StdRng::seed_from_u64(1);

    // History the replica has never seen: it must catch up from zero.
    for i in 0..12 {
        put(
            &mut primary,
            i % 3,
            &format!("pre-{i:02}"),
            b"before",
            &mut rng,
        );
    }
    log_policy(&mut primary, 0, true);

    let replica_node = boot_replica(&primary_node.addr().to_string());
    let mut replica = connect(&replica_node);

    // Live tail: writes arriving after the subscription.
    for i in 0..6 {
        put(
            &mut primary,
            i % 3,
            &format!("live-{i:02}"),
            b"after",
            &mut rng,
        );
    }
    wait_caught_up(&mut primary, &mut replica);
    assert_identical(&mut primary, &mut replica);

    // The replica serves reads but rejects every write with WrongRole.
    let (_, writable) = replication_status(replica.connection());
    assert!(!writable, "an unpromoted replica must not be writable");
    let (patient, delegator) = &patients()[0];
    let aad = HealthRecord::associated_data(patient, &Category::LabResults, "illegal");
    let ciphertext =
        delegator.encrypt_bytes(b"x", &aad, &Category::LabResults.type_tag(), &mut rng);
    assert!(matches!(
        replica.put(patient, &Category::LabResults, "illegal", ciphertext),
        Err(ClientError::Remote(RemoteError::WrongRole(_)))
    ));
    let some_id = primary.list(patient, None).unwrap()[0];
    assert!(matches!(
        replica.delete(some_id, patient),
        Err(ClientError::Remote(RemoteError::WrongRole(_)))
    ));

    shut_down(replica_node);
    shut_down(primary_node);
}

#[test]
fn a_torn_stream_resumes_with_no_duplicated_or_lost_ops() {
    let tmp = TempDir::new("repl-torn").unwrap();
    let primary_node = boot_primary(tmp.path());
    let mut primary = connect(&primary_node);
    let mut rng = StdRng::seed_from_u64(2);
    for i in 0..6 {
        put(
            &mut primary,
            i % 3,
            &format!("seed-{i:02}"),
            b"seed",
            &mut rng,
        );
    }

    // The replica only ever sees the primary through the fault proxy.
    let fault = FaultProxy::start(primary_node.addr().to_string()).unwrap();
    let replica_node = boot_replica(&fault.addr().to_string());
    let mut replica = connect(&replica_node);

    // Three rounds, each guaranteeing one real cut: arm a cut at an odd
    // byte offset (it lands mid-frame, leaving a torn tail the replica
    // must discard and re-request), then keep writing until the proxy
    // reports the cut fired.
    for round in 0u64..3 {
        let fired = fault.cuts() + 1;
        fault.cut_downstream_after(97 + round * 13);
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut op = 0usize;
        while fault.cuts() < fired {
            let title = format!("round-{round}-{op}");
            put(
                &mut primary,
                (round as usize + op) % 3,
                &title,
                b"torn",
                &mut rng,
            );
            op += 1;
            assert!(Instant::now() < deadline, "the armed cut never fired");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    assert_eq!(fault.cuts(), 3);
    wait_caught_up(&mut primary, &mut replica);
    assert_identical(&mut primary, &mut replica);

    shut_down(replica_node);
    shut_down(primary_node);
}

#[test]
fn a_fresh_replica_bootstraps_from_a_shipped_snapshot_after_gc() {
    let tmp = TempDir::new("repl-snap").unwrap();
    let mut rng = StdRng::seed_from_u64(3);

    // Build the primary's directory in-process with an aggressive snapshot
    // cadence: shards snapshot and garbage-collect their WAL prefix, so a
    // replica subscribing from offset zero must be served a snapshot
    // generation (`ChunkOutcome::Gone`), not a segment stream.
    {
        let durability = tibpre_phr::Durability::new(toy_params()).snapshot_every(4);
        let store = tibpre_phr::EncryptedPhrStore::open(tmp.path(), durability).unwrap();
        let (patient, delegator) = &patients()[0];
        for i in 0..400 {
            let title = format!("gc-{i:03}");
            let aad = HealthRecord::associated_data(patient, &Category::LabResults, &title);
            let ciphertext =
                delegator.encrypt_bytes(b"x", &aad, &Category::LabResults.type_tag(), &mut rng);
            store.put(patient, &Category::LabResults, &title, ciphertext);
        }
        store.sync().unwrap();
        let gone = (0..store.replication_positions().len())
            .filter(|&shard| {
                matches!(
                    store.replication_chunk(shard, 0, 4096),
                    Ok(tibpre_storage::ChunkOutcome::Gone)
                )
            })
            .count();
        assert!(gone > 0, "no shard garbage-collected its WAL prefix");
    }

    let primary_node = boot_primary(tmp.path());
    let mut primary = connect(&primary_node);
    let replica_node = boot_replica(&primary_node.addr().to_string());
    let mut replica = connect(&replica_node);
    wait_caught_up(&mut primary, &mut replica);
    assert_eq!(replica.record_count().unwrap(), 400);
    assert_identical(&mut primary, &mut replica);

    shut_down(replica_node);
    shut_down(primary_node);
}

#[test]
fn primary_crash_then_promote_opens_the_write_gate() {
    let tmp = TempDir::new("repl-promote").unwrap();
    let primary_node = boot_primary(tmp.path());
    let mut primary = connect(&primary_node);
    let mut rng = StdRng::seed_from_u64(4);
    for i in 0..10 {
        put(
            &mut primary,
            i % 3,
            &format!("pre-{i:02}"),
            b"pre",
            &mut rng,
        );
    }

    let replica_node = boot_replica(&primary_node.addr().to_string());
    let mut replica = connect(&replica_node);
    wait_caught_up(&mut primary, &mut replica);
    let expected_count = primary.record_count().unwrap();

    // Primary dies.  The replica keeps serving reads from applied state
    // while its tail thread spins on reconnect.
    drop(primary);
    shut_down(primary_node);
    assert_eq!(replica.record_count().unwrap(), expected_count);

    // Still not writable: losing the primary is not a promotion.
    let (_, writable) = replication_status(replica.connection());
    assert!(!writable);

    // Operator promotes; the write gate opens and the replica is now the
    // primary of record (in-memory — documented limitation).
    let response = replica.connection().call(&Request::Promote).unwrap();
    assert!(matches!(response, Response::Ok));
    let (_, writable) = replication_status(replica.connection());
    assert!(writable, "a promoted replica accepts writes");
    put(&mut replica, 0, "post-promote", b"new", &mut rng);
    assert_eq!(replica.record_count().unwrap(), expected_count + 1);

    shut_down(replica_node);
}

fn send_response(stream: &mut TcpStream, response: &Response) {
    let payload = response.to_wire_bytes();
    let mut out = Vec::new();
    write_frame(&mut out, &payload, usize::MAX).unwrap();
    stream.write_all(&out).unwrap();
}

fn read_request(stream: &mut TcpStream, ctx: &DecodeCtx) -> Request {
    let payload = read_frame(stream, usize::MAX)
        .expect("request frame")
        .expect("request, not EOF");
    Request::from_wire_bytes(&payload, ctx).expect("decodable request")
}

fn accept_within(listener: &TcpListener, timeout: Duration) -> TcpStream {
    let deadline = Instant::now() + timeout;
    loop {
        match listener.accept() {
            Ok((stream, _)) => return stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                assert!(
                    Instant::now() < deadline,
                    "no connection within {timeout:?}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("accept failed: {e}"),
        }
    }
}

/// A hand-rolled fake primary proves the replica's chain-gap refusal: a
/// chunk that does not start exactly at the next expected byte must tear
/// the subscription down un-applied, and the re-subscription must resume
/// from the replica's applied offset (zero), not from the gap.
#[test]
fn a_chain_gap_is_refused_and_resumed_from_the_applied_offset() {
    let params = toy_params();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let addr = listener.local_addr().unwrap();

    let (tx, rx) = std::sync::mpsc::channel::<Vec<u64>>();
    let server_params = Arc::clone(&params);
    let server = std::thread::spawn(move || {
        let ctx = DecodeCtx::from(&server_params);

        // Connection 1: the boot handshake.  Declare one shard, then push a
        // chunk claiming to start at offset 100 while the replica has
        // applied nothing.
        let mut c1 = accept_within(&listener, Duration::from_secs(10));
        let request = read_request(&mut c1, &ctx);
        match request {
            Request::SubscribeReplication { applied } => assert!(applied.is_empty()),
            other => panic!("expected a subscription, got {other:?}"),
        }
        send_response(
            &mut c1,
            &Response::ReplicaStatus {
                positions: vec![0],
                writable: true,
            },
        );
        send_response(
            &mut c1,
            &Response::SegmentChunk {
                shard: 0,
                start: 100,
                bytes: vec![1, 2, 3],
            },
        );
        // The replica must sever this connection rather than apply.
        c1.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut byte = [0u8; 1];
        let severed = matches!(c1.read(&mut byte), Ok(0) | Err(_));
        assert!(severed, "the replica kept a gapped stream alive");

        // Connection 2: the re-subscription carries the applied offsets.
        let mut c2 = accept_within(&listener, Duration::from_secs(10));
        let request = read_request(&mut c2, &ctx);
        match request {
            Request::SubscribeReplication { applied } => tx.send(applied).unwrap(),
            other => panic!("expected a re-subscription, got {other:?}"),
        }
        send_response(
            &mut c2,
            &Response::ReplicaStatus {
                positions: vec![0],
                writable: true,
            },
        );
        // Hold the stream open until the replica shuts down.
        c2.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let _ = c2.read(&mut byte);
    });

    let replica_node = boot_replica(&addr.to_string());
    let applied = rx
        .recv_timeout(Duration::from_secs(15))
        .expect("the replica never re-subscribed after the gap");
    assert_eq!(
        applied,
        vec![0],
        "resume must start from the applied offset, not the gapped one"
    );
    // Nothing from the gapped chunk was applied.
    let mut replica = connect(&replica_node);
    assert_eq!(replica.record_count().unwrap(), 0);

    shut_down(replica_node);
    server.join().expect("fake primary panicked");
}

#[test]
fn replication_never_resurrects_a_revoked_grant_or_deleted_record() {
    let tmp = TempDir::new("repl-revoke").unwrap();
    let primary_node = boot_primary(tmp.path());
    let mut primary = connect(&primary_node);
    let mut rng = StdRng::seed_from_u64(6);

    // One patient's policy history — grant, then records, then revoke,
    // then delete — all driven through the primary before the replica
    // exists, so the replica replays it from the log alone.
    let r1 = put(&mut primary, 0, "victim", b"to-delete", &mut rng);
    log_policy(&mut primary, 0, true);
    for i in 0..6 {
        put(&mut primary, 0, &format!("filler-{i}"), b"keep", &mut rng);
    }
    log_policy(&mut primary, 0, false);
    primary.delete(r1, &patients()[0].0).unwrap();
    let primary_audit = primary.audit_snapshot().unwrap();

    // Replicate through the fault proxy with repeated tiny cuts, and
    // sample the replica's state at every step of its catch-up.
    let fault = FaultProxy::start(primary_node.addr().to_string()).unwrap();
    let replica_node = boot_replica(&fault.addr().to_string());
    let mut replica = connect(&replica_node);

    // Records shard by record id and policy events by patient, so the
    // merged audit is only per-shard ordered mid-catch-up.  The invariant
    // that matters is per-shard: every grant/revoke for a patient lands on
    // the patient's shard in log order, and a record's store/delete pair
    // lands on the record's shard in log order.
    let policy_order = |events: &[tibpre_phr::AuditEvent]| {
        events
            .iter()
            .filter(|event| {
                matches!(
                    event,
                    tibpre_phr::AuditEvent::AccessGranted { .. }
                        | tibpre_phr::AuditEvent::AccessRevoked { .. }
                )
            })
            .cloned()
            .collect::<Vec<_>>()
    };
    let primary_policy = policy_order(&primary_audit);

    let deadline = Instant::now() + Duration::from_secs(60);
    let mut saw_deleted = false;
    loop {
        fault.cut_downstream_after(61);
        let sample = replica.audit_snapshot().unwrap();
        // The replica never invents events.
        for event in &sample {
            assert!(
                primary_audit.contains(event),
                "replica invented audit event {event:?}"
            );
        }
        // Policy events apply strictly in the primary's order: a
        // revocation can never be observed without every grant/revoke
        // that preceded it on the patient's shard.
        assert!(
            primary_policy.starts_with(&policy_order(&sample)),
            "replica policy order diverged:\n  primary: {primary_policy:?}\n  \
             sample: {:?}",
            policy_order(&sample),
        );
        // A record's delete can never be observed before its store.
        let sample_stored = sample
            .iter()
            .any(|e| matches!(e, tibpre_phr::AuditEvent::RecordStored { id, .. } if *id == r1));
        let sample_deleted = sample
            .iter()
            .any(|e| matches!(e, tibpre_phr::AuditEvent::RecordDeleted { id, .. } if *id == r1));
        assert!(
            sample_stored || !sample_deleted,
            "replica observed a delete before the store it tombstones"
        );
        // Once the delete has applied it stays applied — a later chunk or
        // reconnect can never resurrect the record.
        let gone = matches!(
            replica.get(r1),
            Err(ClientError::Remote(RemoteError::NotFound))
        );
        if saw_deleted {
            assert!(gone, "a reconnect resurrected a deleted record");
        }
        saw_deleted = saw_deleted || gone;

        let (want, _) = replication_status(primary.connection());
        let (have, _) = replication_status(replica.connection());
        if want == have {
            break;
        }
        assert!(Instant::now() < deadline, "replica never caught up");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_deleted, "the delete never reached the replica");
    assert_identical(&mut primary, &mut replica);

    shut_down(replica_node);
    shut_down(primary_node);
}

/// Randomized oracle: arbitrary op sequences against the primary with
/// arbitrary cut offsets in the stream; after catch-up the replica must be
/// indistinguishable from the primary.
#[test]
fn random_histories_and_random_cuts_converge_to_the_primary_oracle() {
    let mut rng = StdRng::seed_from_u64(7);
    for case in 0u64..4 {
        let tmp = TempDir::new("repl-oracle").unwrap();
        let primary_node = boot_primary(tmp.path());
        let mut primary = connect(&primary_node);

        let fault = FaultProxy::start(primary_node.addr().to_string()).unwrap();
        let replica_node = boot_replica(&fault.addr().to_string());
        let mut replica = connect(&replica_node);

        let mut ids: Vec<(usize, RecordId)> = Vec::new();
        let op_count = 8 + (rng.next_u64() % 12) as usize;
        for op in 0..op_count {
            if rng.next_u64() % 4 == 0 {
                // Tear the stream at a pseudo-random offset mid-history.
                fault.cut_downstream_after(53 + rng.next_u64() % 900);
            }
            match rng.next_u64() % 5 {
                0..=2 => {
                    let patient = (rng.next_u64() % 3) as usize;
                    let mut body = vec![0u8; 8 + (rng.next_u64() % 48) as usize];
                    rng.fill_bytes(&mut body);
                    let id = put(
                        &mut primary,
                        patient,
                        &format!("case-{case}-op-{op}"),
                        &body,
                        &mut rng,
                    );
                    ids.push((patient, id));
                }
                3 if !ids.is_empty() => {
                    let index = (rng.next_u64() as usize) % ids.len();
                    let (patient, id) = ids.swap_remove(index);
                    primary.delete(id, &patients()[patient].0).unwrap();
                }
                _ => {
                    let patient = (rng.next_u64() % 3) as usize;
                    log_policy(&mut primary, patient, rng.next_u64() % 2 == 0);
                }
            }
        }
        wait_caught_up(&mut primary, &mut replica);
        assert_identical(&mut primary, &mut replica);

        shut_down(replica_node);
        shut_down(primary_node);
    }
}
