//! End-to-end integration tests of the full TIB-PRE stack: pairing substrate,
//! IBE domains, typed encryption, delegation, proxy conversion and delegatee
//! decryption, for both group-element and byte-payload (hybrid) messages.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_core::{hybrid, proxy, Delegatee, Delegator, Proxy, TypeTag};
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;

struct World {
    params: Arc<PairingParams>,
    kgc1: Kgc,
    kgc2: Kgc,
    rng: StdRng,
}

fn world(seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = PairingParams::insecure_toy();
    let kgc1 = Kgc::setup(params.clone(), "delegator-domain", &mut rng);
    let kgc2 = Kgc::setup(params.clone(), "delegatee-domain", &mut rng);
    World {
        params,
        kgc1,
        kgc2,
        rng,
    }
}

#[test]
fn paper_walkthrough_single_delegation() {
    let mut w = world(1);
    let alice = Identity::new("alice");
    let bob = Identity::new("bob");
    let delegator = Delegator::new(w.kgc1.public_params().clone(), w.kgc1.extract(&alice));
    let delegatee = Delegatee::new(w.kgc2.extract(&bob));

    let t = TypeTag::new("illness-history");
    let m = w.params.random_gt(&mut w.rng);

    // Encrypt1 / Decrypt1.
    let ct = delegator.encrypt_typed(&m, &t, &mut w.rng);
    assert_eq!(delegator.decrypt_typed(&ct).unwrap(), m);

    // Pextract / Preenc / delegatee decryption.
    let rk = delegator
        .make_reencryption_key(&bob, w.kgc2.public_params(), &t, &mut w.rng)
        .unwrap();
    let transformed = proxy::re_encrypt(&ct, &rk).unwrap();
    assert_eq!(delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
}

#[test]
fn many_types_one_key_pair() {
    // The paper's headline property: one delegator key pair supports an
    // arbitrary number of independently delegatable types.
    let mut w = world(2);
    let alice = Identity::new("alice");
    let delegator = Delegator::new(w.kgc1.public_params().clone(), w.kgc1.extract(&alice));

    let types: Vec<TypeTag> = (0..8).map(|i| TypeTag::new(format!("type-{i}"))).collect();
    let delegatees: Vec<Identity> = (0..8)
        .map(|i| Identity::new(format!("delegatee-{i}")))
        .collect();

    for (t, dee) in types.iter().zip(delegatees.iter()) {
        let delegatee = Delegatee::new(w.kgc2.extract(dee));
        let m = w.params.random_gt(&mut w.rng);
        let ct = delegator.encrypt_typed(&m, t, &mut w.rng);
        let rk = delegator
            .make_reencryption_key(dee, w.kgc2.public_params(), t, &mut w.rng)
            .unwrap();
        let transformed = proxy::re_encrypt(&ct, &rk).unwrap();
        assert_eq!(delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
    }
}

#[test]
fn type_isolation_between_two_delegatees() {
    // Bob is entitled to "illness-history", Charlie to "food-statistics".
    // Each re-encryption key works for its own type only (Section 1.1).
    let mut w = world(3);
    let alice = Identity::new("alice");
    let bob = Identity::new("bob");
    let charlie = Identity::new("charlie");
    let delegator = Delegator::new(w.kgc1.public_params().clone(), w.kgc1.extract(&alice));
    let bob_delegatee = Delegatee::new(w.kgc2.extract(&bob));
    let charlie_delegatee = Delegatee::new(w.kgc2.extract(&charlie));

    let illness = TypeTag::new("illness-history");
    let diet = TypeTag::new("food-statistics");
    let m_illness = w.params.random_gt(&mut w.rng);
    let m_diet = w.params.random_gt(&mut w.rng);
    let ct_illness = delegator.encrypt_typed(&m_illness, &illness, &mut w.rng);
    let ct_diet = delegator.encrypt_typed(&m_diet, &diet, &mut w.rng);

    let rk_bob = delegator
        .make_reencryption_key(&bob, w.kgc2.public_params(), &illness, &mut w.rng)
        .unwrap();
    let rk_charlie = delegator
        .make_reencryption_key(&charlie, w.kgc2.public_params(), &diet, &mut w.rng)
        .unwrap();

    // The intended flows work.
    let for_bob = proxy::re_encrypt(&ct_illness, &rk_bob).unwrap();
    assert_eq!(
        bob_delegatee.decrypt_reencrypted(&for_bob).unwrap(),
        m_illness
    );
    let for_charlie = proxy::re_encrypt(&ct_diet, &rk_charlie).unwrap();
    assert_eq!(
        charlie_delegatee.decrypt_reencrypted(&for_charlie).unwrap(),
        m_diet
    );

    // The cross flows are refused by the type check...
    assert!(proxy::re_encrypt(&ct_diet, &rk_bob).is_err());
    assert!(proxy::re_encrypt(&ct_illness, &rk_charlie).is_err());

    // ... and even a proxy that forges the type label produces garbage.
    let mut relabelled = ct_diet.clone();
    relabelled.type_tag = illness.clone();
    let forced = proxy::re_encrypt(&relabelled, &rk_bob).unwrap();
    assert_ne!(bob_delegatee.decrypt_reencrypted(&forced).unwrap(), m_diet);

    // Delegatees cannot open each other's re-encrypted ciphertexts either.
    assert_ne!(
        charlie_delegatee.decrypt_reencrypted(&for_bob).unwrap(),
        m_illness
    );
}

#[test]
fn stateful_proxy_serves_multiple_delegations() {
    let mut w = world(4);
    let alice = Identity::new("alice");
    let delegator = Delegator::new(w.kgc1.public_params().clone(), w.kgc1.extract(&alice));
    let mut proxy_store = Proxy::new("gateway");

    let pairs: Vec<(TypeTag, Identity)> = (0..4)
        .map(|i| {
            (
                TypeTag::new(format!("t{i}")),
                Identity::new(format!("dee{i}")),
            )
        })
        .collect();
    for (t, dee) in &pairs {
        let rk = delegator
            .make_reencryption_key(dee, w.kgc2.public_params(), t, &mut w.rng)
            .unwrap();
        proxy_store.install_key(rk);
    }
    assert_eq!(proxy_store.key_count(), 4);

    for (t, dee) in &pairs {
        let delegatee = Delegatee::new(w.kgc2.extract(dee));
        let m = w.params.random_gt(&mut w.rng);
        let ct = delegator.encrypt_typed(&m, t, &mut w.rng);
        let out = proxy_store.re_encrypt_for(&ct, &alice, dee).unwrap();
        assert_eq!(delegatee.decrypt_reencrypted(&out).unwrap(), m);
    }
}

#[test]
fn hybrid_mode_end_to_end_with_serialization() {
    let mut w = world(5);
    let alice = Identity::new("alice");
    let bob = Identity::new("bob");
    let delegator = Delegator::new(w.kgc1.public_params().clone(), w.kgc1.extract(&alice));
    let delegatee = Delegatee::new(w.kgc2.extract(&bob));
    let t = TypeTag::new("lab-results");

    let payload = vec![0x42u8; 10_000];
    let ct = delegator.encrypt_bytes(&payload, b"record-7", &t, &mut w.rng);
    assert_eq!(delegator.decrypt_bytes(&ct, b"record-7").unwrap(), payload);

    let rk = delegator
        .make_reencryption_key(&bob, w.kgc2.public_params(), &t, &mut w.rng)
        .unwrap();

    // Exercise the wire formats of the header on the way.
    let header_bytes = ct.header.to_bytes();
    let parsed_header = tibpre_core::TypedCiphertext::from_bytes(&w.params, &header_bytes).unwrap();
    assert_eq!(parsed_header, ct.header);
    let rk_bytes = rk.to_bytes();
    let parsed_rk = tibpre_core::ReEncryptionKey::from_bytes(&w.params, &rk_bytes).unwrap();

    let transformed = hybrid::re_encrypt_hybrid(&ct, &parsed_rk).unwrap();
    assert_eq!(
        delegatee.decrypt_bytes(&transformed, b"record-7").unwrap(),
        payload
    );
    // Wrong associated data is rejected by the DEM.
    assert!(delegatee.decrypt_bytes(&transformed, b"record-8").is_err());
}

#[test]
fn delegation_chains_do_not_exist() {
    // The scheme is single-hop by design: a re-encrypted ciphertext is no
    // longer a typed ciphertext, so it cannot be fed into Preenc again.  This
    // is a compile-time property (different types); what we check here is the
    // runtime counterpart — the delegatee of hop 1 cannot act as a delegator
    // for the received ciphertext without re-encrypting the plaintext himself.
    let mut w = world(6);
    let alice = Identity::new("alice");
    let bob = Identity::new("bob");
    let delegator = Delegator::new(w.kgc1.public_params().clone(), w.kgc1.extract(&alice));
    let bob_delegatee = Delegatee::new(w.kgc2.extract(&bob));
    let t = TypeTag::new("t");
    let m = w.params.random_gt(&mut w.rng);
    let ct = delegator.encrypt_typed(&m, &t, &mut w.rng);
    let rk = delegator
        .make_reencryption_key(&bob, w.kgc2.public_params(), &t, &mut w.rng)
        .unwrap();
    let transformed = proxy::re_encrypt(&ct, &rk).unwrap();
    let recovered = bob_delegatee.decrypt_reencrypted(&transformed).unwrap();
    assert_eq!(recovered, m);
    // Bob can of course re-encrypt the *plaintext* under his own identity in
    // his own domain — but that is a fresh encryption, not a further hop.
    let bob_as_delegator = Delegator::new(w.kgc2.public_params().clone(), w.kgc2.extract(&bob));
    let fresh = bob_as_delegator.encrypt_typed(&recovered, &t, &mut w.rng);
    assert_eq!(bob_as_delegator.decrypt_typed(&fresh).unwrap(), m);
}

#[test]
fn works_with_freshly_generated_parameters_too() {
    // Everything above uses the cached toy parameters; make sure nothing
    // secretly depends on the cache by generating a fresh set.
    let mut rng = StdRng::seed_from_u64(7);
    let params = PairingParams::generate(tibpre_pairing::SecurityLevel::Toy, &mut rng).unwrap();
    let kgc1 = Kgc::setup(params.clone(), "fresh-1", &mut rng);
    let kgc2 = Kgc::setup(params.clone(), "fresh-2", &mut rng);
    let delegator = Delegator::new(
        kgc1.public_params().clone(),
        kgc1.extract(&Identity::new("alice")),
    );
    let delegatee = Delegatee::new(kgc2.extract(&Identity::new("bob")));
    let t = TypeTag::new("t");
    let m = params.random_gt(&mut rng);
    let ct = delegator.encrypt_typed(&m, &t, &mut rng);
    let rk = delegator
        .make_reencryption_key(&Identity::new("bob"), kgc2.public_params(), &t, &mut rng)
        .unwrap();
    let transformed = proxy::re_encrypt(&ct, &rk).unwrap();
    assert_eq!(delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
}
