//! Interleaving tests for the sharded `EncryptedPhrStore`: proptest drives a
//! randomised schedule of concurrent `put` / `get` / `delete` across several
//! threads and shard counts, then checks that every per-record history is
//! linearizable and that the merged audit trail is consistent.
//!
//! Per-record linearizability here means: a record is owned by the thread
//! that stored it, and from that thread's point of view `put → get → delete →
//! get` behaves exactly as it would on a single-threaded store, no matter
//! what the other threads do to *their* records on the same shards.  Records
//! are never shared between writer threads (the store's API already makes
//! cross-patient writes impossible), so this owner's-eye view plus the global
//! invariants below is the full linearizability statement for the store.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_core::{Delegator, HybridCiphertext, TypeTag};
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::audit::AuditEvent;
use tibpre_phr::category::Category;
use tibpre_phr::durable::Durability;
use tibpre_phr::store::EncryptedPhrStore;
use tibpre_phr::{FsyncPolicy, PhrError};
use tibpre_storage::TempDir;

/// The store under test: in-memory by default; a durable store in a fresh
/// tempdir when `TIBPRE_DURABLE=1` (the CI recovery job sets it), so the
/// same interleaving schedules also exercise the per-shard WAL handles and
/// the snapshot path under write contention.
fn store_under_test(shards: usize) -> (Arc<EncryptedPhrStore>, Option<TempDir>) {
    if std::env::var("TIBPRE_DURABLE").as_deref() == Ok("1") {
        let tmp = TempDir::new("store-concurrency").unwrap();
        let store = EncryptedPhrStore::open(tmp.path().join("db"), durable_config(shards))
            .expect("open durable store");
        (Arc::new(store), Some(tmp))
    } else {
        (Arc::new(EncryptedPhrStore::with_shards("db", shards)), None)
    }
}

/// Durable configuration for the concurrency schedules: no fsync (speed) and
/// an aggressive snapshot cadence so snapshots happen *during* the race.
fn durable_config(shards: usize) -> Durability {
    Durability::new(PairingParams::insecure_toy())
        .shards(shards)
        .fsync(FsyncPolicy::Never)
        .snapshot_every(16)
}

fn sample_ciphertext(seed: u64) -> HybridCiphertext {
    let params = PairingParams::insecure_toy();
    let mut rng = StdRng::seed_from_u64(seed);
    let kgc = Kgc::setup(params, "kgc", &mut rng);
    let delegator = Delegator::new(
        kgc.public_params().clone(),
        kgc.extract(&Identity::new("alice")),
    );
    delegator.encrypt_bytes(b"payload", b"", &TypeTag::new("t"), &mut rng)
}

/// One thread's deterministic workload: `puts` records, reads each back
/// immediately and again at the end, deletes those whose index satisfies the
/// mask, and asserts the single-threaded outcome of every step.
fn run_owner_thread(
    store: &EncryptedPhrStore,
    thread_id: u64,
    puts: usize,
    delete_mask: u64,
    ciphertext: &HybridCiphertext,
) -> (usize, usize) {
    let patient = Identity::new(format!("patient-{thread_id}"));
    let categories = [Category::Emergency, Category::LabResults];
    let mut kept = Vec::new();
    let mut deleted = 0usize;
    for i in 0..puts {
        let title = format!("t{thread_id}-r{i}");
        let id = store.put(
            &patient,
            &categories[i % categories.len()],
            &title,
            ciphertext.clone(),
        );
        // Linearizability, owner's view: the record is immediately visible.
        let fetched = store.get(id).expect("own record visible after put");
        assert_eq!(fetched.title, title);
        assert_eq!(&fetched.patient, &patient);
        if delete_mask >> (i % 64) & 1 == 1 {
            // A foreign requester must be rejected without deleting.
            assert!(matches!(
                store.delete(id, &Identity::new("intruder")),
                Err(PhrError::AccessDenied { .. })
            ));
            store.delete(id, &patient).expect("owner delete succeeds");
            assert!(matches!(store.get(id), Err(PhrError::RecordNotFound)));
            // Double delete is cleanly reported.
            assert!(matches!(
                store.delete(id, &patient),
                Err(PhrError::RecordNotFound)
            ));
            deleted += 1;
        } else {
            kept.push(id);
        }
    }
    // Every kept record is still there, exactly once, in id order.
    assert_eq!(store.list_for_patient(&patient), kept);
    for &id in &kept {
        assert!(store.get(id).is_ok());
    }
    (kept.len(), deleted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concurrent owner threads on a shared store: every thread observes
    /// single-threaded semantics for its own records, and the store's global
    /// counters and merged audit trail add up afterwards.
    #[test]
    fn concurrent_put_get_delete_is_per_record_linearizable(
        threads in 2usize..5,
        puts in 1usize..20,
        delete_mask in any::<u64>(),
        shards in 1usize..9,
    ) {
        let (store, tmp) = store_under_test(shards);
        let ciphertext = sample_ciphertext(0xC0);
        let outcomes: Vec<(usize, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|thread_id| {
                    let store = Arc::clone(&store);
                    let ciphertext = ciphertext.clone();
                    scope.spawn(move || {
                        run_owner_thread(&store, thread_id, puts, delete_mask, &ciphertext)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });

        let total_kept: usize = outcomes.iter().map(|(kept, _)| kept).sum();
        let total_deleted: usize = outcomes.iter().map(|(_, deleted)| deleted).sum();
        prop_assert_eq!(total_kept + total_deleted, threads * puts);
        prop_assert_eq!(store.record_count(), total_kept);

        // The merged audit trail: one RecordStored per put, one RecordDeleted
        // per delete, strictly increasing timestamps across all shards.
        let audit = store.audit_snapshot();
        let stored = audit.iter().filter(|e| matches!(e.as_ref(), AuditEvent::RecordStored { .. })).count();
        let removed = audit.iter().filter(|e| matches!(e.as_ref(), AuditEvent::RecordDeleted { .. })).count();
        prop_assert_eq!(stored, threads * puts);
        prop_assert_eq!(removed, total_deleted);
        for pair in audit.windows(2) {
            prop_assert!(pair[0].at() < pair[1].at());
        }

        // Durable mode: a clean reopen recovers exactly what the racing
        // writers committed.
        if let Some(tmp) = tmp {
            let count = store.record_count();
            drop(store);
            let reopened = EncryptedPhrStore::open(tmp.path().join("db"), durable_config(shards))
                .expect("reopen durable store");
            prop_assert_eq!(reopened.record_count(), count);
            prop_assert_eq!(reopened.audit_snapshot(), audit);
        }
    }

    /// Readers racing writers: `get` / `list_for_patient` / `record_count`
    /// never observe torn state (a record is either fully present with its
    /// title and owner intact, or absent).
    #[test]
    fn readers_never_observe_torn_records(
        puts in 4usize..24,
        shards in 1usize..9,
    ) {
        let (store, _tmp) = store_under_test(shards);
        let ciphertext = sample_ciphertext(0xC1);
        let writer_patient = Identity::new("patient-w");
        std::thread::scope(|scope| {
            let writer = {
                let store = Arc::clone(&store);
                let ciphertext = ciphertext.clone();
                let patient = writer_patient.clone();
                scope.spawn(move || {
                    let mut ids = Vec::new();
                    for i in 0..puts {
                        ids.push(store.put(&patient, &Category::Medication, &format!("r{i}"), ciphertext.clone()));
                    }
                    for &id in ids.iter().step_by(2) {
                        store.delete(id, &patient).expect("owner delete");
                    }
                    ids
                })
            };
            let reader = {
                let store = Arc::clone(&store);
                let patient = writer_patient.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        let listed = store.list_for_patient(&patient);
                        for id in listed {
                            match store.get(id) {
                                Ok(record) => {
                                    // Never torn: full metadata or nothing.
                                    assert_eq!(&record.patient, &patient);
                                    assert!(record.title.starts_with('r'));
                                }
                                // Deleted between list and get: fine.
                                Err(PhrError::RecordNotFound) => {}
                                Err(other) => panic!("unexpected read error: {other:?}"),
                            }
                        }
                    }
                })
            };
            writer.join().expect("writer");
            reader.join().expect("reader");
        });
        prop_assert_eq!(store.record_count(), puts - puts.div_ceil(2));
    }
}
