//! Properties of the pipelined node layer: per-connection response order,
//! byte-identity against a sequential oracle, fault tolerance with the
//! batch scheduler enabled, the buffered-frame fast path, and graceful
//! drain of a non-empty scheduler queue.
//!
//! All traffic runs through real TCP against in-process nodes at the toy
//! level.  Disclosure is deterministic (no proxy-side randomness), so the
//! same request against the same installed re-encryption key must produce
//! byte-identical response frames no matter how requests are pipelined,
//! interleaved across connections, or batched by the scheduler.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tibpre_client::{
    params_for_level, ClientConfig, Connection, KgcClient, NodeRole, ProxyClient, Request,
    Response, StoreClient,
};
use tibpre_core::Delegator;
use tibpre_ibe::Identity;
use tibpre_pairing::{PairingParams, SecurityLevel};
use tibpre_phr::{Category, HealthRecord, RecordId};
use tibpre_server::{node, NodeConfig, NodeHandle};
use tibpre_tests::FaultProxy;
use tibpre_wire::WireEncode;

/// A booted kgc/store/proxy set with seeded records and one provider grant.
struct Fixture {
    kgc: NodeHandle,
    store: NodeHandle,
    proxy: NodeHandle,
    params: Arc<PairingParams>,
    patients: Vec<Identity>,
    records: Vec<Vec<RecordId>>,
    provider: Identity,
}

impl Fixture {
    /// Boots the node set (scheduler sized by `batch_max`) and uploads
    /// `records_per_patient` lab records for each of `patients` patients,
    /// all granted to one provider.  `store_via` reroutes the proxy's
    /// record reads (for fault injection between proxy and store).
    fn boot(
        patients: usize,
        records_per_patient: usize,
        batch_max: usize,
        store_via: Option<String>,
    ) -> Self {
        let kgc = node::start(NodeConfig::new(NodeRole::Kgc)).expect("kgc node");
        let store = node::start(NodeConfig::new(NodeRole::Store)).expect("store node");
        let mut proxy_config = NodeConfig::new(NodeRole::Proxy);
        proxy_config.store_addr = Some(store_via.unwrap_or_else(|| store.addr().to_string()));
        proxy_config.batch_max = batch_max;
        let proxy = node::start(proxy_config).expect("proxy node");

        let params = params_for_level(SecurityLevel::Toy);
        let config = ClientConfig::default();
        let mut kgc_client = KgcClient::connect(kgc.addr(), &params, &config).unwrap();
        let mut store_client = StoreClient::connect(store.addr(), &params, &config).unwrap();
        let mut proxy_client = ProxyClient::connect(proxy.addr(), &params, &config).unwrap();

        let domain = kgc_client.public_params().unwrap();
        let provider = Identity::new("dr-pipeline");
        let category = Category::LabResults;
        let mut rng = StdRng::seed_from_u64(0x9199_e11e);
        let mut all_patients = Vec::new();
        let mut all_records = Vec::new();
        for p in 0..patients {
            let identity = Identity::new(format!("patient-{p:02}"));
            let delegator = Delegator::new(domain.clone(), kgc_client.extract(&identity).unwrap());
            let mut ids = Vec::new();
            for r in 0..records_per_patient {
                let title = format!("lab-{r:02}");
                let mut body = vec![0u8; 48];
                rng.fill_bytes(&mut body);
                let aad = HealthRecord::associated_data(&identity, &category, &title);
                let ct = delegator.encrypt_bytes(&body, &aad, &category.type_tag(), &mut rng);
                ids.push(store_client.put(&identity, &category, &title, ct).unwrap());
            }
            let grant = delegator
                .make_reencryption_key(&provider, &domain, &category.type_tag(), &mut rng)
                .unwrap();
            proxy_client.install_key(grant).unwrap();
            all_patients.push(identity);
            all_records.push(ids);
        }
        Fixture {
            kgc,
            store,
            proxy,
            params,
            patients: all_patients,
            records: all_records,
            provider,
        }
    }

    fn proxy_conn(&self) -> Connection {
        Connection::connect(self.proxy.addr(), &self.params, &ClientConfig::default())
            .expect("proxy connection")
    }

    fn shut_down(self) {
        for handle in [self.proxy, self.store, self.kgc] {
            let mut conn =
                Connection::connect(handle.addr(), &self.params, &ClientConfig::default())
                    .expect("connect for shutdown");
            conn.shutdown().expect("shutdown frame");
            handle.wait();
        }
    }

    /// Maps one opcode byte onto a request: mostly granted disclosures
    /// (scheduler path), some denied ones (per-item error path inside a
    /// batch), some cheap bypass requests (inline path) — all three must
    /// interleave without disturbing per-connection order.
    fn request_for(&self, op: u8, pick: u8) -> Request {
        let p = pick as usize % self.patients.len();
        let ids = &self.records[p];
        let id = ids[(pick >> 4) as usize % ids.len()];
        match op % 4 {
            0 | 1 => Request::Disclose {
                patient: self.patients[p].clone(),
                id,
                requester: self.provider.clone(),
            },
            2 => Request::Disclose {
                patient: self.patients[p].clone(),
                id,
                requester: Identity::new("eve-no-grant"),
            },
            _ => Request::KeyCount,
        }
    }
}

/// Encoded response frames for one request sequence, issued strictly one
/// request at a time on a fresh connection — the oracle every pipelined
/// schedule must match byte for byte.
fn sequential_oracle(fixture: &Fixture, requests: &[Request]) -> Vec<Vec<u8>> {
    let mut conn = fixture.proxy_conn();
    requests
        .iter()
        .map(|request| {
            let responses = conn
                .call_pipelined(std::slice::from_ref(request))
                .expect("oracle call");
            responses[0].to_wire_bytes()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// N connections pipeline randomized request mixes concurrently through
    /// one scheduler-enabled proxy, each flushing random-sized chunks.
    /// Every connection's responses come back in its own request order and
    /// byte-identical to the sequential oracle.
    #[test]
    fn pipelined_interleavings_preserve_order_and_match_the_oracle(
        seed in any::<u64>(),
        scripts in proptest::collection::vec(
            proptest::collection::vec(any::<u16>(), 1..10),
            2..4,
        ),
    ) {
        let fixture = Fixture::boot(3, 2, 4, None);
        let sequences: Vec<Vec<Request>> = scripts
            .iter()
            .map(|script| {
                script
                    .iter()
                    // Low byte picks the operation, high byte the record.
                    .map(|&word| fixture.request_for(word as u8, (word >> 8) as u8))
                    .collect()
            })
            .collect();
        let oracles: Vec<Vec<Vec<u8>>> = sequences
            .iter()
            .map(|requests| sequential_oracle(&fixture, requests))
            .collect();

        let observed: Vec<Vec<Vec<u8>>> = std::thread::scope(|scope| {
            let workers: Vec<_> = sequences
                .iter()
                .enumerate()
                .map(|(index, requests)| {
                    let fixture = &fixture;
                    scope.spawn(move || {
                        let mut conn = fixture.proxy_conn();
                        let mut rng = StdRng::seed_from_u64(seed ^ index as u64);
                        let mut bytes = Vec::new();
                        let mut rest: &[Request] = requests;
                        while !rest.is_empty() {
                            // Random pipeline depth per flush, 1..=4.
                            let depth = (rng.next_u64() as usize % 4 + 1).min(rest.len());
                            let (chunk, tail) = rest.split_at(depth);
                            for response in conn.call_pipelined(chunk).expect("pipelined call") {
                                bytes.push(response.to_wire_bytes());
                            }
                            rest = tail;
                        }
                        bytes
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|worker| worker.join().expect("worker panicked"))
                .collect()
        });

        for (conn_index, (got, want)) in observed.iter().zip(&oracles).enumerate() {
            prop_assert!(
                got.len() == want.len(),
                "connection {} answered {} of {} requests",
                conn_index,
                got.len(),
                want.len()
            );
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                prop_assert!(
                    g == w,
                    "connection {} response {} diverged from the sequential oracle",
                    conn_index,
                    i
                );
            }
        }
        fixture.shut_down();
    }
}

/// Regression for the buffered-frame fast path: a pipelined peer that
/// lands many back-to-back frames in one TCP segment must have them all
/// answered promptly.  Before the fix, frames already sitting in the
/// connection's read buffer re-entered the first-byte idle poll, which
/// reads the raw socket — an indefinite stall on bytes that will never
/// arrive there.
#[test]
fn buffered_back_to_back_frames_skip_the_idle_poll() {
    let fixture = Fixture::boot(1, 1, 4, None);

    // Hand-frame 16 pings into a single write so they arrive (and get
    // buffered) together.
    let payload = Request::Ping.to_wire_bytes();
    let mut burst = Vec::new();
    for _ in 0..16 {
        tibpre_wire::write_frame(&mut burst, &payload, usize::MAX).unwrap();
    }
    let mut stream = TcpStream::connect(fixture.proxy.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let begin = Instant::now();
    stream.write_all(&burst).unwrap();
    let mut answered = 0;
    while answered < 16 {
        let frame = tibpre_wire::read_frame(&mut stream, usize::MAX)
            .expect("response frame")
            .expect("connection stayed open");
        assert!(!frame.is_empty());
        answered += 1;
    }
    // One idle-poll re-entry per buffered frame would cost ≥100ms each;
    // the fast path answers the whole burst in a fraction of that.
    assert!(
        begin.elapsed() < Duration::from_millis(1200),
        "16 buffered frames took {:?} — the idle poll is re-entered",
        begin.elapsed()
    );
    drop(stream);
    fixture.shut_down();
}

/// The fault suite with the scheduler enabled: a torn frame and a client
/// that vanishes mid-pipeline must leave the node able to serve the next
/// connection correctly.
#[test]
fn torn_frames_and_vanishing_clients_leave_the_scheduler_node_healthy() {
    let fixture = Fixture::boot(2, 2, 4, None);

    // Torn frame: a length prefix promising 200 bytes, then only 10, then
    // a hard disconnect mid-payload.
    {
        let mut stream = TcpStream::connect(fixture.proxy.addr()).unwrap();
        stream.write_all(&200u32.to_be_bytes()).unwrap();
        stream.write_all(&[0xAB; 10]).unwrap();
    }

    // Vanishing client: several disclosures pipelined into the scheduler,
    // connection dropped before reading any response.
    {
        let mut conn = fixture.proxy_conn();
        for _ in 0..4 {
            conn.send(&Request::Disclose {
                patient: fixture.patients[0].clone(),
                id: fixture.records[0][0],
                requester: fixture.provider.clone(),
            })
            .unwrap();
        }
        conn.flush().unwrap();
    }

    // The node keeps answering, and what it answers is still the oracle.
    let requests = vec![
        fixture.request_for(0, 0),
        fixture.request_for(3, 0),
        fixture.request_for(2, 1),
    ];
    let oracle = sequential_oracle(&fixture, &requests);
    let mut conn = fixture.proxy_conn();
    let responses = conn.call_pipelined(&requests).expect("post-fault pipeline");
    assert_eq!(responses.len(), oracle.len());
    for (response, want) in responses.iter().zip(&oracle) {
        assert_eq!(&response.to_wire_bytes(), want);
    }
    fixture.shut_down();
}

/// Graceful drain with a non-empty scheduler queue: requests stuck behind
/// a stalled store are still answered — in order, with real bundles — when
/// the node is told to shut down mid-backlog.
#[test]
fn shutdown_answers_queued_scheduler_entries_before_closing() {
    // The proxy reads records through a fault proxy so the store path can
    // be frozen; batch_max 2 keeps most of an 8-deep pipeline queued while
    // the first batch is stuck inside the store call.
    let kgc = node::start(NodeConfig::new(NodeRole::Kgc)).expect("kgc node");
    let store = node::start(NodeConfig::new(NodeRole::Store)).expect("store node");
    let fault = FaultProxy::start(store.addr().to_string()).expect("fault proxy");
    let mut proxy_config = NodeConfig::new(NodeRole::Proxy);
    proxy_config.store_addr = Some(fault.addr().to_string());
    proxy_config.batch_max = 2;
    let proxy = node::start(proxy_config).expect("proxy node");

    let params = params_for_level(SecurityLevel::Toy);
    let config = ClientConfig::default();
    let mut kgc_client = KgcClient::connect(kgc.addr(), &params, &config).unwrap();
    let mut store_client = StoreClient::connect(store.addr(), &params, &config).unwrap();
    let mut proxy_client = ProxyClient::connect(proxy.addr(), &params, &config).unwrap();

    let domain = kgc_client.public_params().unwrap();
    let patient = Identity::new("alice");
    let provider = Identity::new("dr-drain");
    let category = Category::LabResults;
    let delegator = Delegator::new(domain.clone(), kgc_client.extract(&patient).unwrap());
    let mut rng = StdRng::seed_from_u64(0xD5A1);
    let mut ids = Vec::new();
    for r in 0..8 {
        let title = format!("lab-{r}");
        let aad = HealthRecord::associated_data(&patient, &category, &title);
        let ct = delegator.encrypt_bytes(
            format!("result {r}").as_bytes(),
            &aad,
            &category.type_tag(),
            &mut rng,
        );
        ids.push(store_client.put(&patient, &category, &title, ct).unwrap());
    }
    let grant = delegator
        .make_reencryption_key(&provider, &domain, &category.type_tag(), &mut rng)
        .unwrap();
    proxy_client.install_key(grant).unwrap();
    // Warm the proxy→store path once so the backlog below is pure queue.
    let warm = proxy_client.disclose(&patient, ids[0], &provider).unwrap();
    assert_eq!(warm.id, ids[0]);

    // Freeze store→proxy traffic, then pipeline 8 disclosures: the first
    // scheduler batch blocks inside its record fetch and the rest queue.
    fault.pause();
    let mut pipelined = Connection::connect(proxy.addr(), &params, &config).unwrap();
    for &id in &ids {
        pipelined
            .send(&Request::Disclose {
                patient: patient.clone(),
                id,
                requester: provider.clone(),
            })
            .unwrap();
    }
    pipelined.flush().unwrap();

    // Give the reader time to submit the backlog, confirm the scheduler
    // actually has queued entries (counters are process-global, so this is
    // a best-effort observation, not the correctness assertion), then ask
    // the node to shut down while they are still undispatched.
    let observe_until = Instant::now() + Duration::from_secs(2);
    let mut saw_backlog = false;
    while Instant::now() < observe_until {
        if let Ok(stats) = proxy_client.sched_stats() {
            if stats.queue_depth >= 1 {
                saw_backlog = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut admin = Connection::connect(proxy.addr(), &params, &config).unwrap();
    admin.shutdown().expect("shutdown frame");
    fault.resume();

    // Every queued disclosure is answered — in request order, with the
    // real bundle, not an error — before the connection closes.
    for &want in &ids {
        match pipelined.receive().expect("drained response") {
            Response::Bundle(bundle) => assert_eq!(bundle.id, want),
            other => panic!("queued entry answered with {other:?}"),
        }
    }
    proxy.wait();
    let _ = saw_backlog; // not load-bearing; see comment above

    // The store and kgc are still healthy; stop them cleanly.
    for handle in [store, kgc] {
        let mut conn = Connection::connect(handle.addr(), &params, &config).unwrap();
        conn.shutdown().expect("shutdown frame");
        handle.wait();
    }
}
