//! Security-property integration tests: the paper's claimed properties
//! (uni-directionality, non-interactivity, collusion-safety) and the
//! executable IND-ID-DR-CPA game.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_core::game::{
    win_rate, Adversary, BlindAdversary, Challenger, KeyHoldingAdversary, OracleUsingAdversary,
};
use tibpre_core::{proxy, Delegatee, Delegator, PreError, TypeTag};
use tibpre_ibe::{bf, Identity, Kgc, H1_DOMAIN};
use tibpre_pairing::PairingParams;

fn setup() -> (Arc<PairingParams>, Kgc, Kgc, StdRng) {
    let mut rng = StdRng::seed_from_u64(0x5EC);
    let params = PairingParams::insecure_toy();
    let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
    let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
    (params, kgc1, kgc2, rng)
}

#[test]
fn non_interactive_delegation() {
    // The delegator creates the re-encryption key entirely on his own: no
    // message from (or key material of) the delegatee is involved.  We check
    // that the key is created before the delegatee's key is ever extracted and
    // still works afterwards.
    let (params, kgc1, kgc2, mut rng) = setup();
    let alice = Identity::new("alice");
    let bob = Identity::new("bob");
    let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
    let t = TypeTag::new("t");
    let rk = delegator
        .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
        .unwrap();
    // Only now does Bob obtain his key.
    let delegatee = Delegatee::new(kgc2.extract(&bob));
    let m = params.random_gt(&mut rng);
    let ct = delegator.encrypt_typed(&m, &t, &mut rng);
    let transformed = proxy::re_encrypt(&ct, &rk).unwrap();
    assert_eq!(delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
}

#[test]
fn uni_directional_delegation() {
    // A re-encryption key from Alice to Bob does not convert Bob's ciphertexts
    // towards Alice.  (Bob's typed ciphertexts live under his own identity and
    // exponent, so applying Alice's key produces garbage for everyone.)
    let (params, kgc1, kgc2, mut rng) = setup();
    let alice = Identity::new("alice");
    let bob = Identity::new("bob");
    let alice_delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
    let bob_delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&bob));
    let alice_delegatee = Delegatee::new(kgc2.extract(&alice));
    let t = TypeTag::new("t");

    let rk_alice_to_bob = alice_delegator
        .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
        .unwrap();

    let bob_secret = params.random_gt(&mut rng);
    let bob_ct = bob_delegator.encrypt_typed(&bob_secret, &t, &mut rng);
    // The proxy can mechanically apply the key (same type tag), but nobody —
    // in particular not Alice — recovers Bob's message from the result.
    let converted = proxy::re_encrypt(&bob_ct, &rk_alice_to_bob).unwrap();
    assert_ne!(
        alice_delegatee.decrypt_reencrypted(&converted).unwrap(),
        bob_secret
    );
    // And Bob himself still can decrypt his own ciphertext directly.
    assert_eq!(bob_delegator.decrypt_typed(&bob_ct).unwrap(), bob_secret);
}

#[test]
fn collusion_exposes_only_the_delegated_type() {
    // The paper's "collusion safe" discussion: the proxy and the delegatee
    // together can reconstruct the *per-type virtual key*
    // sk^{-H2(sk‖t)}·H1(X) − H1(X) = sk^{-H2(sk‖t)}, which lets them decrypt
    // every type-t ciphertext (they are allowed to see those anyway), but it
    // does not help with any other type, nor does it reveal sk itself.
    let (params, kgc1, kgc2, mut rng) = setup();
    let alice = Identity::new("alice");
    let bob = Identity::new("bob");
    let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
    let bob_key = kgc2.extract(&bob);
    let t = TypeTag::new("delegated-type");
    let t_other = TypeTag::new("other-type");

    let rk = delegator
        .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
        .unwrap();

    // --- What the colluding pair computes ---
    // Bob decrypts X from the re-encryption key, hashes it to the curve, and
    // subtracts it from the proxy's rk point:
    let x = bf::decrypt_gt(&bob_key, rk.encrypted_x()).unwrap();
    let h1_of_x = params.hash_to_g1(H1_DOMAIN, &[&x.to_bytes()]).unwrap();
    let virtual_key_neg = rk.rk_point().sub(&h1_of_x); // = sk^{-H2(sk‖t)}

    // The pair can now decrypt ANY type-t ciphertext of Alice without the proxy:
    let m = params.random_gt(&mut rng);
    let ct = delegator.encrypt_typed(&m, &t, &mut rng);
    let mask = params.pairing(&ct.c1, &virtual_key_neg); // ê(g^r, sk^{-H2})
    let recovered = ct.c2.mul(&mask);
    assert_eq!(recovered, m, "collusion does recover the delegated type");

    // But the same virtual key is useless for a different type:
    let m_other = params.random_gt(&mut rng);
    let ct_other = delegator.encrypt_typed(&m_other, &t_other, &mut rng);
    let mask_other = params.pairing(&ct_other.c1, &virtual_key_neg);
    assert_ne!(ct_other.c2.mul(&mask_other), m_other);

    // ... and it is not the delegator's actual private key.
    assert_ne!(&virtual_key_neg, delegator.private_key().key());
    assert_ne!(virtual_key_neg, delegator.private_key().key().neg());
}

#[test]
fn reencryption_keys_leak_nothing_to_the_proxy_alone() {
    // Without the delegatee's private key, the proxy cannot even recover X,
    // let alone use the rk point: re-encrypting and then trying to decrypt
    // with a random key fails.
    let (params, kgc1, kgc2, mut rng) = setup();
    let alice = Identity::new("alice");
    let bob = Identity::new("bob");
    let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
    let t = TypeTag::new("t");
    let rk = delegator
        .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
        .unwrap();
    let m = params.random_gt(&mut rng);
    let ct = delegator.encrypt_typed(&m, &t, &mut rng);
    let transformed = proxy::re_encrypt(&ct, &rk).unwrap();

    // A "proxy" that guesses X at random gets nowhere.
    let guessed_x = params.random_gt(&mut rng);
    let h1_guess = params
        .hash_to_g1(H1_DOMAIN, &[&guessed_x.to_bytes()])
        .unwrap();
    let mask_guess = params.pairing(&transformed.c1, &h1_guess);
    assert_ne!(transformed.c2.div(&mask_guess).unwrap(), m);
}

#[test]
fn ind_id_dr_cpa_game_sanity() {
    let params = PairingParams::insecure_toy();
    let mut rng = StdRng::seed_from_u64(0x6A3E);
    // A blind adversary hovers around 1/2 ...
    let blind = win_rate(|| BlindAdversary, &params, 40, &mut rng);
    assert!(blind > 0.2 && blind < 0.8, "blind win rate {blind}");
    // ... an adversary using its allowed oracles gains nothing ...
    let oracle = win_rate(|| OracleUsingAdversary, &params, 30, &mut rng);
    assert!(oracle > 0.2 && oracle < 0.8, "oracle win rate {oracle}");
    // ... and an adversary holding the target key wins always (the harness
    // actually measures distinguishing power).
    let keyed = win_rate(|| KeyHoldingAdversary, &params, 8, &mut rng);
    assert_eq!(keyed, 1.0);
}

#[test]
fn game_rejects_trivially_winning_query_patterns() {
    // An adversary that tries to extract the challenge identity's key, or to
    // obtain both the re-encryption key and the delegatee's key for the
    // challenge pair, is stopped by the challenger.
    struct CheatingAdversary;
    impl Adversary for CheatingAdversary {
        fn play<R: rand::RngCore + rand::CryptoRng>(
            &mut self,
            challenger: &mut Challenger,
            rng: &mut R,
        ) -> tibpre_core::Result<bool> {
            let params = Arc::clone(challenger.params());
            let target = Identity::new("target");
            let helper = Identity::new("helper");
            let t = TypeTag::new("t*");
            let m0 = params.random_gt(rng);
            let m1 = params.random_gt(rng);
            let ct = challenger.challenge(&m0, &m1, &t, &target, rng)?;

            // Attempt 1: extract the challenge identity directly.
            assert!(matches!(
                challenger.extract1(&target),
                Err(PreError::GameConstraintViolated(_))
            ));
            // Attempt 2: pextract towards a helper, then extract the helper.
            let _rk = challenger.pextract(&target, &helper, &t)?;
            assert!(matches!(
                challenger.extract2(&helper),
                Err(PreError::GameConstraintViolated(_))
            ));
            let _ = ct;
            Ok(rng.next_u32() & 1 == 1)
        }
    }

    let params = PairingParams::insecure_toy();
    let mut rng = StdRng::seed_from_u64(0x6A3F);
    let rate = win_rate(|| CheatingAdversary, &params, 20, &mut rng);
    assert!(
        rate > 0.1 && rate < 0.9,
        "cheater reduced to guessing: {rate}"
    );
}
