//! The full PHR workflow of Ibraimi et al. over real TCP: extract, store,
//! grant, re-encrypt, decrypt, revoke, and emergency access — every
//! cryptographic step on the client side, every policy step on a node.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_client::{
    params_for_level, ClientConfig, ClientError, KgcClient, NodeRole, ProxyClient, RemoteError,
    StoreClient,
};
use tibpre_core::Delegator;
use tibpre_ibe::Identity;
use tibpre_pairing::PairingParams;
use tibpre_phr::{Category, HealthRecord, HealthcareProvider};
use tibpre_server::{node, NodeConfig, NodeHandle};

/// Boots a loopback kgc/store/proxy node set on ephemeral ports.
fn boot_node_set(data_dir: Option<&std::path::Path>) -> (NodeHandle, NodeHandle, NodeHandle) {
    let kgc = node::start(NodeConfig::new(NodeRole::Kgc)).expect("kgc node");
    let mut store_config = NodeConfig::new(NodeRole::Store);
    store_config.data_dir = data_dir.map(|d| d.to_path_buf());
    let store = node::start(store_config).expect("store node");
    let mut proxy_config = NodeConfig::new(NodeRole::Proxy);
    proxy_config.store_addr = Some(store.addr().to_string());
    let proxy = node::start(proxy_config).expect("proxy node");
    (kgc, store, proxy)
}

fn shut_down(handle: NodeHandle, params: &Arc<PairingParams>) {
    let mut conn =
        tibpre_client::Connection::connect(handle.addr(), params, &ClientConfig::default())
            .expect("connect for shutdown");
    conn.shutdown().expect("shutdown frame");
    handle.wait();
}

#[test]
fn full_phr_workflow_over_tcp() {
    let (kgc_node, store_node, proxy_node) = boot_node_set(None);
    let params = params_for_level(tibpre_pairing::SecurityLevel::Toy);
    let config = ClientConfig::default();
    let mut rng = StdRng::seed_from_u64(0xE2E);

    // Health checks answer with role + level so misconfiguration is caught
    // before any traffic.
    let mut kgc = KgcClient::connect(kgc_node.addr(), &params, &config).unwrap();
    let mut store = StoreClient::connect(store_node.addr(), &params, &config).unwrap();
    let mut proxy = ProxyClient::connect(proxy_node.addr(), &params, &config).unwrap();
    assert_eq!(
        kgc.connection().ping().unwrap(),
        (NodeRole::Kgc, "toy".to_string())
    );
    assert_eq!(store.connection().ping().unwrap().0, NodeRole::Store);
    assert_eq!(proxy.connection().ping().unwrap().0, NodeRole::Proxy);

    // Extract: the KGC hands out identity keys; the domain parameters come
    // over the wire too.
    let domain = kgc.public_params().unwrap();
    let alice = Identity::new("alice");
    let doctor_id = Identity::new("dr-bob");
    let medic_id = Identity::new("er-medic");
    let alice_delegator = Delegator::new(domain.clone(), kgc.extract(&alice).unwrap());
    let doctor = HealthcareProvider::new(kgc.extract(&doctor_id).unwrap());
    let medic = HealthcareProvider::new(kgc.extract(&medic_id).unwrap());

    // Store: client-side encryption, server-side blobs.
    let put = |store: &mut StoreClient,
               delegator: &Delegator,
               rng: &mut StdRng,
               category: Category,
               title: &str,
               body: &[u8]| {
        let aad = HealthRecord::associated_data(&alice, &category, title);
        let ct = delegator.encrypt_bytes(body, &aad, &category.type_tag(), rng);
        store.put(&alice, &category, title, ct).unwrap()
    };
    let lab_id = put(
        &mut store,
        &alice_delegator,
        &mut rng,
        Category::LabResults,
        "glucose",
        b"5.1 mmol/L",
    );
    let emergency_id = put(
        &mut store,
        &alice_delegator,
        &mut rng,
        Category::Emergency,
        "allergies",
        b"penicillin",
    );
    assert_eq!(store.record_count().unwrap(), 2);
    assert_eq!(
        store.list(&alice, Some(&Category::LabResults)).unwrap(),
        vec![lab_id]
    );
    assert_eq!(store.get(lab_id).unwrap().title, "glucose");

    // Grant: a type-scoped re-encryption key made by the patient, installed
    // on the proxy.  Emergency access is the same mechanism — a standing
    // grant on the emergency category to the first-responder identity.
    for (grantee, category) in [
        (&doctor_id, Category::LabResults),
        (&medic_id, Category::Emergency),
    ] {
        let key = alice_delegator
            .make_reencryption_key(grantee, &domain, &category.type_tag(), &mut rng)
            .unwrap();
        proxy.install_key(key).unwrap();
    }
    assert_eq!(proxy.key_count().unwrap(), 2);
    assert!(proxy
        .has_grant(&alice, &Category::LabResults, &doctor_id)
        .unwrap());

    // Re-encrypt + decrypt: the proxy converts, the provider opens.
    let bundle = proxy.disclose(&alice, lab_id, &doctor_id).unwrap();
    let disclosed = doctor.open(&bundle).unwrap();
    assert_eq!(disclosed.body, b"5.1 mmol/L");
    assert_eq!(disclosed.category, Category::LabResults);

    // The doctor's lab grant does not extend to the emergency record, and
    // an unknown identity gets nothing.
    assert!(matches!(
        proxy.disclose(&alice, emergency_id, &doctor_id),
        Err(ClientError::Remote(RemoteError::AccessDenied { .. }))
    ));
    assert!(matches!(
        proxy.disclose(&alice, lab_id, &Identity::new("eve")),
        Err(ClientError::Remote(RemoteError::AccessDenied { .. }))
    ));

    // Revoke: the proxy drops the key; the doctor is locked out with no
    // re-keying of the stored ciphertexts.
    assert!(proxy
        .revoke_key(&alice, &Category::LabResults, &doctor_id)
        .unwrap());
    assert!(!proxy
        .has_grant(&alice, &Category::LabResults, &doctor_id)
        .unwrap());
    assert!(matches!(
        proxy.disclose(&alice, lab_id, &doctor_id),
        Err(ClientError::Remote(RemoteError::AccessDenied { .. }))
    ));

    // Emergency access still works after the routine grant is gone.
    let bundles = proxy
        .disclose_category(&alice, &Category::Emergency, &medic_id)
        .unwrap();
    assert_eq!(bundles.len(), 1);
    assert_eq!(medic.open(&bundles[0]).unwrap().body, b"penicillin");

    // Both sides kept an audit trail.
    assert!(!proxy.audit_snapshot().unwrap().is_empty());
    assert!(!store.audit_snapshot().unwrap().is_empty());

    // Delete, then verify the tombstone over the wire.
    store.delete(emergency_id, &alice).unwrap();
    assert!(matches!(
        store.get(emergency_id),
        Err(ClientError::Remote(RemoteError::NotFound))
    ));

    // Requests for the wrong role are rejected, not misrouted.
    assert!(matches!(
        store.connection().call(&tibpre_client::Request::KeyCount),
        Err(ClientError::Remote(RemoteError::WrongRole(_)))
    ));

    shut_down(proxy_node, &params);
    shut_down(store_node, &params);
    shut_down(kgc_node, &params);
}

#[test]
fn durable_store_node_survives_restart() {
    let tmp = tibpre_storage::TempDir::new("node-restart").unwrap();
    let params = params_for_level(tibpre_pairing::SecurityLevel::Toy);
    let config = ClientConfig::default();
    let mut rng = StdRng::seed_from_u64(0xD0_0D);

    let alice = Identity::new("alice");
    let record_id;
    {
        let mut store_config = NodeConfig::new(NodeRole::Store);
        store_config.data_dir = Some(tmp.path().to_path_buf());
        let store_node = node::start(store_config).expect("first store boot");
        let kgc_node = node::start(NodeConfig::new(NodeRole::Kgc)).expect("kgc");

        let mut kgc = KgcClient::connect(kgc_node.addr(), &params, &config).unwrap();
        let domain = kgc.public_params().unwrap();
        let delegator = Delegator::new(domain, kgc.extract(&alice).unwrap());
        let mut store = StoreClient::connect(store_node.addr(), &params, &config).unwrap();
        let aad = HealthRecord::associated_data(&alice, &Category::Medication, "statin");
        let ct = delegator.encrypt_bytes(b"20mg", &aad, &Category::Medication.type_tag(), &mut rng);
        record_id = store
            .put(&alice, &Category::Medication, "statin", ct)
            .unwrap();

        // Graceful shutdown syncs the WAL and releases the directory lock.
        shut_down(store_node, &params);
        shut_down(kgc_node, &params);
    }

    let mut store_config = NodeConfig::new(NodeRole::Store);
    store_config.data_dir = Some(tmp.path().to_path_buf());
    let store_node = node::start(store_config).expect("store reboot on the same directory");
    let mut store = StoreClient::connect(store_node.addr(), &params, &config).unwrap();
    assert_eq!(store.record_count().unwrap(), 1);
    assert_eq!(store.get(record_id).unwrap().title, "statin");
    shut_down(store_node, &params);
}
