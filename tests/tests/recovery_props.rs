//! Crash-recovery property tests for the durable PHR store — the executable
//! contract of the WAL + snapshot subsystem:
//!
//! * killing a store at **any byte offset** of its WAL and recovering yields
//!   exactly the store an in-memory oracle produces from the longest
//!   committed prefix of operations (byte-identical records, strictly
//!   ordered audit trail), with zero panics across the corpus;
//! * a corrupt-CRC frame truncates the log at the last intact boundary and
//!   never resurrects later frames;
//! * a recovered durable store and durable proxy still serve the paper's
//!   emergency-disclosure scenario, including revocations performed before
//!   the crash;
//! * recovery of a large generated WAL stays within a wall-clock bound
//!   (nightly, `TIBPRE_LARGE_WAL`).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::Arc;
use tibpre_core::{Delegator, HybridCiphertext, TypeTag};
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::category::Category;
use tibpre_phr::durable::{self, Durability};
use tibpre_phr::emergency::{emergency_disclosure, provision_travel_access};
use tibpre_phr::patient::Patient;
use tibpre_phr::provider::HealthcareProvider;
use tibpre_phr::proxy_service::ProxyService;
use tibpre_phr::record::{HealthRecord, RecordId};
use tibpre_phr::store::EncryptedPhrStore;
use tibpre_phr::{FsyncPolicy, PhrError};
use tibpre_storage::TempDir;

/// Shared fixture: toy parameters, one reusable ciphertext, small identity
/// and category pools.
struct Harness {
    params: Arc<PairingParams>,
    ciphertext: HybridCiphertext,
    patients: Vec<Identity>,
    categories: Vec<Category>,
}

fn harness(seed: u64) -> Harness {
    let params = PairingParams::insecure_toy();
    let mut rng = StdRng::seed_from_u64(seed);
    let kgc = Kgc::setup(params.clone(), "kgc", &mut rng);
    let delegator = Delegator::new(
        kgc.public_params().clone(),
        kgc.extract(&Identity::new("alice")),
    );
    Harness {
        params,
        ciphertext: delegator.encrypt_bytes(b"payload", b"", &TypeTag::new("t"), &mut rng),
        patients: ["alice", "bob", "carol"]
            .iter()
            .map(Identity::new)
            .collect(),
        categories: vec![
            Category::Emergency,
            Category::LabResults,
            Category::Custom("genomics".into()),
        ],
    }
}

/// Mutable op-stream state: all ids ever issued (disclosure targets) and the
/// currently live ids with their owners (delete targets).
#[derive(Default)]
struct OpState {
    issued: Vec<(RecordId, usize)>,
    live: Vec<(RecordId, usize)>,
}

/// Applies the op encoded by `word` to `store`.  The mapping depends only on
/// `word` and the evolving `state`, and both evolve identically on the
/// durable store and on every oracle replay — which is what makes
/// prefix-for-prefix comparison meaningful.
fn apply_op(store: &EncryptedPhrStore, h: &Harness, state: &mut OpState, word: u32) {
    let [kind, a, b, c] = word.to_be_bytes();
    match kind % 5 {
        // Two of five kinds are puts, so streams keep a healthy record mix.
        0 | 1 => {
            let patient = a as usize % h.patients.len();
            let category = &h.categories[b as usize % h.categories.len()];
            let id = store.put(
                &h.patients[patient],
                category,
                &format!("t{c}"),
                h.ciphertext.clone(),
            );
            state.issued.push((id, patient));
            state.live.push((id, patient));
        }
        2 => {
            if !state.live.is_empty() {
                let idx = a as usize % state.live.len();
                let (id, owner) = state.live.remove(idx);
                store.delete(id, &h.patients[owner]).unwrap();
            }
        }
        3 => {
            if !state.issued.is_empty() {
                let (id, _) = state.issued[a as usize % state.issued.len()];
                let requester = &h.patients[b as usize % h.patients.len()];
                store.log_disclosure(id, requester, c & 1 == 0);
            }
        }
        _ => {
            let patient = &h.patients[a as usize % h.patients.len()];
            let category = &h.categories[b as usize % h.categories.len()];
            let grantee = &h.patients[c as usize % h.patients.len()];
            store.log_policy_change(patient, category, grantee, word & 1 == 0);
        }
    }
}

/// The in-memory oracle after the first `k` ops: a fresh single-shard store
/// fed the identical op stream.  Ids and logical timestamps are assigned by
/// deterministic counters, so the oracle is comparable field by field.
fn oracle_after(h: &Harness, words: &[u32], k: usize) -> EncryptedPhrStore {
    let store = EncryptedPhrStore::with_shards("oracle", 1);
    let mut state = OpState::default();
    for &word in &words[..k] {
        apply_op(&store, h, &mut state, word);
    }
    store
}

/// Full observable equality: record count, byte-identical records, identical
/// per-patient indexes, identical (and strictly ordered) merged audit.
fn assert_equals_oracle(recovered: &EncryptedPhrStore, oracle: &EncryptedPhrStore, h: &Harness) {
    assert_eq!(recovered.record_count(), oracle.record_count());
    let audit = recovered.audit_snapshot();
    assert_eq!(audit, oracle.audit_snapshot());
    for pair in audit.windows(2) {
        assert!(
            pair[0].at() < pair[1].at(),
            "audit clock not strictly ordered"
        );
    }
    for patient in &h.patients {
        let ids = recovered.list_for_patient(patient);
        assert_eq!(ids, oracle.list_for_patient(patient));
        for id in ids {
            let got = recovered.get(id).unwrap();
            let want = oracle.get(id).unwrap();
            assert_eq!(got, want);
            // Byte-identical, not merely structurally equal.
            assert_eq!(
                got.ciphertext.to_bytes(),
                want.ciphertext.to_bytes(),
                "record {id} ciphertext bytes diverged"
            );
        }
    }
}

/// A single-shard durable configuration with snapshots disabled, so the WAL
/// alone carries the history and byte-level truncation is exhaustive.
fn wal_only(h: &Harness) -> Durability {
    Durability::new(h.params.clone())
        .shards(1)
        .fsync(FsyncPolicy::Never)
        .snapshot_every(0)
}

/// Runs the op stream against a durable store in `dir`, returning the WAL
/// byte boundary after each op (duplicates mean the op wrote no frame).
fn run_durable(h: &Harness, dir: &Path, words: &[u32]) -> Vec<u64> {
    let store = EncryptedPhrStore::open(dir, wal_only(h)).unwrap();
    let wal = durable::shard_wal_path(dir, 0);
    let mut state = OpState::default();
    let mut boundaries = Vec::with_capacity(words.len());
    for &word in words {
        apply_op(&store, h, &mut state, word);
        boundaries.push(std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0));
    }
    boundaries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole acceptance property: for a random op sequence, kill the
    /// store at EVERY byte offset of its WAL; recovery must equal the
    /// prefix-replayed oracle, without a single panic.
    #[test]
    fn recovery_equals_prefix_oracle_at_every_byte_boundary(
        seed in any::<u64>(),
        words in proptest::collection::vec(any::<u32>(), 6..12),
    ) {
        let h = harness(seed);
        let tmp = TempDir::new("recovery-props").unwrap();
        let dir = tmp.path().join("db");
        let boundaries = run_durable(&h, &dir, &words);
        let wal = durable::shard_wal_path(&dir, 0);
        let bytes = std::fs::read(&wal).unwrap();
        prop_assert_eq!(bytes.len() as u64, *boundaries.last().unwrap());

        for cut in 0..=bytes.len() {
            // Simulate the kill: the log is exactly `cut` bytes long.
            std::fs::write(&wal, &bytes[..cut]).unwrap();
            let recovered = EncryptedPhrStore::open(&dir, wal_only(&h)).unwrap();
            // The longest committed prefix: every op whose final WAL
            // boundary fits inside the cut.
            let k = boundaries.iter().take_while(|&&b| b <= cut as u64).count();
            let oracle = oracle_after(&h, &words, k);
            assert_equals_oracle(&recovered, &oracle, &h);
            // Recovery must also have truncated the torn tail physically.
            let on_disk = std::fs::metadata(&wal).unwrap().len();
            let boundary = boundaries[..k].last().copied().unwrap_or(0);
            assert_eq!(on_disk, boundary, "cut {cut}");
        }
    }

    /// A corrupt frame (bit flip anywhere inside it) truncates the log at
    /// the previous boundary and never resurrects the frames behind it —
    /// even though those frames are individually intact.
    #[test]
    fn corrupt_crc_frame_truncates_cleanly_and_never_resurrects(
        seed in any::<u64>(),
        words in proptest::collection::vec(any::<u32>(), 6..10),
        flip_bit in 0u8..8,
    ) {
        let h = harness(seed);
        let tmp = TempDir::new("recovery-crc").unwrap();
        let dir = tmp.path().join("db");
        let boundaries = run_durable(&h, &dir, &words);
        let wal = durable::shard_wal_path(&dir, 0);
        let bytes = std::fs::read(&wal).unwrap();

        // The distinct frame boundaries, i.e. the ops that actually wrote.
        let mut frame_ends: Vec<(usize, u64)> = Vec::new(); // (op index, end)
        let mut prev = 0u64;
        for (i, &b) in boundaries.iter().enumerate() {
            if b > prev {
                frame_ends.push((i, b));
                prev = b;
            }
        }

        for (j, &(op_idx, end)) in frame_ends.iter().enumerate() {
            let start = if j == 0 { 0 } else { frame_ends[j - 1].1 };
            // Flip one bit mid-frame.
            let target = (start + (end - start) / 2) as usize;
            let mut corrupted = bytes.clone();
            corrupted[target] ^= 1 << flip_bit;
            std::fs::write(&wal, &corrupted).unwrap();

            let recovered = EncryptedPhrStore::open(&dir, wal_only(&h)).unwrap();
            let oracle = oracle_after(&h, &words, op_idx);
            assert_equals_oracle(&recovered, &oracle, &h);
            // The log was cut at the last intact boundary: frames after the
            // corruption are gone even though their checksums still match.
            prop_assert_eq!(std::fs::metadata(&wal).unwrap().len(), start);
        }
    }
}

/// After a crash, a recovered durable store and durable proxy still serve
/// the paper's emergency scenario — and a revocation performed before the
/// crash is still in force afterwards (the revoked-rekey edge case).
#[test]
fn recovered_store_and_proxy_support_emergency_access() {
    let mut rng = StdRng::seed_from_u64(0xEC0);
    let params = PairingParams::insecure_toy();
    let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
    let us_kgc = Kgc::setup(params.clone(), "us-providers", &mut rng);
    let tmp = TempDir::new("recovery-emergency").unwrap();
    let store_dir = tmp.path().join("us-mirror");
    let proxy_dir = tmp.path().join("proxies");
    let durability = || {
        Durability::new(params.clone())
            .shards(2)
            .fsync(FsyncPolicy::Never)
    };

    let mut alice = Patient::new("alice@phr.example", &patient_kgc);
    let er_team = Identity::new("er@us-hospital.example");
    let er_provider = HealthcareProvider::new(us_kgc.extract(&er_team));
    let onlooker = Identity::new("onlooker@us-hospital.example");
    let onlooker_provider = HealthcareProvider::new(us_kgc.extract(&onlooker));

    // Before the trip: provision the mirror durably, then "crash".
    {
        let store = Arc::new(EncryptedPhrStore::open(&store_dir, durability()).unwrap());
        let mut proxy =
            ProxyService::open("us-proxy", store.clone(), &proxy_dir, &durability()).unwrap();
        assert!(proxy.is_durable());
        // A second concurrent open of the same proxy log is refused (two
        // writers would interleave frames); a different proxy name in the
        // same directory is fine.
        assert!(ProxyService::open("us-proxy", store.clone(), &proxy_dir, &durability()).is_err());
        ProxyService::open("other-proxy", store.clone(), &proxy_dir, &durability()).unwrap();
        let record = HealthRecord::new(
            alice.identity().clone(),
            Category::Emergency,
            "blood group",
            b"O negative".to_vec(),
        );
        alice.store_record(&store, &record, &mut rng).unwrap();
        provision_travel_access(
            &mut alice,
            &er_team,
            us_kgc.public_params(),
            &mut proxy,
            &mut rng,
        )
        .unwrap();
        // A second grant that is revoked again before the crash.
        provision_travel_access(
            &mut alice,
            &onlooker,
            us_kgc.public_params(),
            &mut proxy,
            &mut rng,
        )
        .unwrap();
        alice
            .revoke_access(&Category::Emergency, &onlooker, &mut proxy)
            .unwrap();
        assert_eq!(proxy.key_count(), 1);
    }

    // The emergency: everything is recovered from disk.
    let store = Arc::new(EncryptedPhrStore::open(&store_dir, durability()).unwrap());
    let proxy = ProxyService::open("us-proxy", store.clone(), &proxy_dir, &durability()).unwrap();
    assert_eq!(proxy.key_count(), 1);
    assert!(proxy.has_grant(alice.identity(), &Category::Emergency, &er_team));
    let disclosed = emergency_disclosure(&proxy, alice.identity(), &er_provider).unwrap();
    assert_eq!(disclosed.len(), 1);
    assert_eq!(disclosed[0].body, b"O negative");
    // The pre-crash revocation is still in force.
    assert!(matches!(
        emergency_disclosure(&proxy, alice.identity(), &onlooker_provider),
        Err(PhrError::AccessDenied { .. })
    ));
    // The proxy's own audit trail survived too: grant, grant, revoke, plus
    // the post-recovery disclosure events.
    let audit = proxy.audit_snapshot();
    assert!(audit.len() >= 4);
    for pair in audit.windows(2) {
        assert!(pair[0].at() < pair[1].at());
    }
}

/// Corruption in one shard's WAL must not disturb the other shards: the
/// damaged shard recovers its longest committed prefix, everything else is
/// complete, and the merged audit stays strictly ordered.
#[test]
fn multi_shard_recovery_confines_damage_to_one_shard() {
    let h = harness(0x5AD);
    let tmp = TempDir::new("recovery-multishard").unwrap();
    let dir = tmp.path().join("db");
    let durability = || {
        Durability::new(h.params.clone())
            .shards(4)
            .fsync(FsyncPolicy::Never)
            .snapshot_every(0)
    };
    let mut originals = Vec::new();
    {
        let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
        for i in 0..24 {
            let id = store.put(
                &h.patients[0],
                &h.categories[i % h.categories.len()],
                &format!("r{i}"),
                h.ciphertext.clone(),
            );
            originals.push((id, store.get(id).unwrap()));
        }
    }
    // Corrupt the middle of the first non-empty shard log.
    let damaged = (0..4)
        .map(|i| durable::shard_wal_path(&dir, i))
        .find(|p| std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
        .expect("some shard has records");
    let bytes = std::fs::read(&damaged).unwrap();
    let mut corrupted = bytes.clone();
    let mid = corrupted.len() / 2;
    corrupted[mid] ^= 0x40;
    std::fs::write(&damaged, &corrupted).unwrap();

    let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
    // Some records on the damaged shard are gone, no others.
    assert!(store.record_count() < 24);
    let surviving = store.list_for_patient(&h.patients[0]);
    assert_eq!(surviving.len(), store.record_count());
    for id in surviving {
        let got = store.get(id).unwrap();
        let (_, want) = originals.iter().find(|(oid, _)| *oid == id).unwrap();
        assert_eq!(&got, want);
    }
    // Every record NOT hosted on the damaged shard survived.
    let lost: Vec<RecordId> = originals
        .iter()
        .map(|(id, _)| *id)
        .filter(|id| store.get(*id).is_err())
        .collect();
    assert!(!lost.is_empty());
    // The merged audit is still strictly ordered despite the gap.
    let audit = store.audit_snapshot();
    for pair in audit.windows(2) {
        assert!(pair[0].at() < pair[1].at());
    }
    // The damaged shard was truncated at an intact boundary and keeps
    // accepting writes.
    assert!(std::fs::metadata(&damaged).unwrap().len() < bytes.len() as u64);
    let id = store.put(
        &h.patients[1],
        &h.categories[0],
        "after",
        h.ciphertext.clone(),
    );
    drop(store);
    let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
    assert_eq!(store.get(id).unwrap().title, "after");
}

/// Nightly guard (set `TIBPRE_LARGE_WAL=<ops>`): recovery time of a large
/// generated WAL must stay within a generous wall-clock bound, i.e. linear
/// replay, no accidental quadratic behaviour.
#[test]
fn large_wal_recovery_time_is_bounded() {
    let Ok(spec) = std::env::var("TIBPRE_LARGE_WAL") else {
        return; // not requested; the nightly CI job sets it
    };
    let ops: usize = spec.parse().unwrap_or(20_000);
    let h = harness(0x1A26E);
    let tmp = TempDir::new("recovery-large").unwrap();
    let dir = tmp.path().join("db");
    let durability = || {
        Durability::new(h.params.clone())
            .shards(4)
            .fsync(FsyncPolicy::Never)
            .snapshot_every(0)
    };
    {
        let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
        let mut state = OpState::default();
        for i in 0..ops {
            // A deterministic generator standing in for proptest at scale.
            let word = (i as u32).wrapping_mul(0x9E37_79B9) ^ 0x5EED;
            apply_op(&store, &h, &mut state, word);
        }
    }
    let start = std::time::Instant::now();
    let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
    let elapsed = start.elapsed();
    assert!(store.record_count() > 0);
    assert_eq!(store.audit_snapshot().len(), {
        // Every op that wrote a frame produced exactly one audit event.
        let oracle = EncryptedPhrStore::with_shards("oracle", 4);
        let mut state = OpState::default();
        for i in 0..ops {
            let word = (i as u32).wrapping_mul(0x9E37_79B9) ^ 0x5EED;
            apply_op(&oracle, &h, &mut state, word);
        }
        oracle.audit_snapshot().len()
    });
    let bound = std::time::Duration::from_secs(120);
    assert!(
        elapsed < bound,
        "recovering a {ops}-op WAL took {elapsed:?} (bound {bound:?})"
    );
    println!("recovered {ops}-op WAL in {elapsed:?}");
}
