//! Integration-test package for the TIB-PRE workspace.
//!
//! The actual tests live in the sibling `tests/` directory of this package and
//! exercise scenarios that span several crates (multi-domain delegation,
//! healthcare workflows, serialization, failure injection, security games).
//! This library target is intentionally empty.
