//! Integration-test package for the TIB-PRE workspace.
//!
//! The actual tests live in the sibling `tests/` directory of this package and
//! exercise scenarios that span several crates (multi-domain delegation,
//! healthcare workflows, serialization, failure injection, security games).
//! This library target carries one shared harness: [`FaultProxy`], the
//! deterministic TCP fault injector the replication suite interposes
//! between a primary store node and its read replicas.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the proxy's pumps and accept loop re-check their flags.
const POLL: Duration = Duration::from_millis(10);

/// Sentinel for "no cut armed".
const UNLIMITED: u64 = u64::MAX;

struct ProxyState {
    target: String,
    stop: AtomicBool,
    paused: AtomicBool,
    /// Server→client bytes still allowed before the next cut
    /// ([`UNLIMITED`] = pass-through).  Shared across connections, so one
    /// armed cut fires exactly once on whichever connection is live.
    downstream_budget: AtomicU64,
    /// Cuts fired so far — lets a test assert the fault actually happened.
    cuts: AtomicU64,
    /// Live stream clones, so `drop_connections` can sever them all.
    conns: Mutex<Vec<TcpStream>>,
}

/// A deterministic TCP fault injector: forwards one listening socket to a
/// target address and tears the stream down at an exact downstream byte
/// offset on command.
///
/// A "cut" severs the connection mid-byte-stream — from the peers' view an
/// abrupt RST/EOF at an arbitrary point inside a frame, exactly the tear a
/// crashing primary or flaky network produces.  New connections through
/// the proxy keep working after a cut, so a reconnecting subscriber drives
/// its own recovery path.
pub struct FaultProxy {
    addr: SocketAddr,
    state: Arc<ProxyState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral loopback port forwarding to `target`.
    pub fn start(target: impl Into<String>) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ProxyState {
            target: target.into(),
            stop: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            downstream_budget: AtomicU64::new(UNLIMITED),
            cuts: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("fault-proxy-accept".to_string())
            .spawn(move || accept_loop(listener, accept_state))?;
        Ok(FaultProxy {
            addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address subscribers should connect to instead of the target.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Arms one cut: after `n` more server→client bytes the live
    /// connection is severed (mid-frame if that is where byte `n` lands).
    /// After firing, the proxy passes traffic again until re-armed.
    pub fn cut_downstream_after(&self, n: u64) {
        self.state.downstream_budget.store(n, Ordering::SeqCst);
    }

    /// How many cuts have fired so far.
    pub fn cuts(&self) -> u64 {
        self.state.cuts.load(Ordering::SeqCst)
    }

    /// Severs every live connection right now (pass-through resumes for
    /// new connections).
    pub fn drop_connections(&self) {
        let mut conns = self.state.conns.lock().unwrap();
        for conn in conns.drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// Stalls server→client forwarding without closing anything (a slow or
    /// frozen network path).
    pub fn pause(&self) {
        self.state.paused.store(true, Ordering::SeqCst);
    }

    /// Resumes forwarding after [`Self::pause`].
    pub fn resume(&self) {
        self.state.paused.store(false, Ordering::SeqCst);
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        self.drop_connections();
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ProxyState>) {
    while !state.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _peer)) => {
                let server = match TcpStream::connect(&state.target) {
                    Ok(server) => server,
                    Err(_) => continue, // target down: refuse by dropping
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                {
                    let mut conns = state.conns.lock().unwrap();
                    conns.retain(|c| c.peer_addr().is_ok());
                    if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
                        conns.push(c);
                        conns.push(s);
                    }
                }
                spawn_pump(&client, &server, &state, Direction::Upstream);
                spawn_pump(&server, &client, &state, Direction::Downstream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Upstream,
    Downstream,
}

fn spawn_pump(from: &TcpStream, to: &TcpStream, state: &Arc<ProxyState>, direction: Direction) {
    let (Ok(from), Ok(to)) = (from.try_clone(), to.try_clone()) else {
        return;
    };
    let state = Arc::clone(state);
    let _ = std::thread::Builder::new()
        .name("fault-proxy-pump".to_string())
        .spawn(move || pump(from, to, state, direction));
}

fn pump(mut from: TcpStream, mut to: TcpStream, state: Arc<ProxyState>, direction: Direction) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut buf = [0u8; 4096];
    loop {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        if direction == Direction::Downstream && state.paused.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
            continue;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let mut allowed = n;
                let mut cut = false;
                if direction == Direction::Downstream {
                    let budget = state.downstream_budget.load(Ordering::SeqCst);
                    if budget != UNLIMITED {
                        if (n as u64) >= budget {
                            // The armed offset lands inside this read:
                            // forward exactly the allowed prefix, then cut.
                            allowed = budget as usize;
                            cut = true;
                            state.downstream_budget.store(UNLIMITED, Ordering::SeqCst);
                            state.cuts.fetch_add(1, Ordering::SeqCst);
                        } else {
                            state
                                .downstream_budget
                                .store(budget - n as u64, Ordering::SeqCst);
                        }
                    }
                }
                if allowed > 0 && to.write_all(&buf[..allowed]).is_err() {
                    break;
                }
                if cut {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwards_and_cuts_at_the_exact_byte() {
        // An echo target that writes back whatever arrives.
        let echo = TcpListener::bind("127.0.0.1:0").unwrap();
        let echo_addr = echo.local_addr().unwrap();
        let echo_thread = std::thread::spawn(move || {
            let (mut conn, _) = echo.accept().unwrap();
            let mut buf = [0u8; 1024];
            loop {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if conn.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        });

        let proxy = FaultProxy::start(echo_addr.to_string()).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();

        // Pass-through round trip.
        client.write_all(b"hello").unwrap();
        let mut back = [0u8; 5];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");

        // Arm a cut 3 bytes into the next downstream burst: the client
        // receives exactly that prefix, then EOF.
        proxy.cut_downstream_after(3);
        client.write_all(b"0123456789").unwrap();
        let mut rest = Vec::new();
        client.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"012");
        assert_eq!(proxy.cuts(), 1);

        // A new connection through the same proxy flows again.
        drop(client);
        let _ = echo_thread.join();
    }
}
