//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so the
//! small slice of `rand` 0.8 that the workspace actually uses is reimplemented
//! here with compatible names and semantics:
//!
//! * the [`RngCore`], [`CryptoRng`] and [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — a seedable, deterministic generator (xoshiro256++
//!   seeded through SplitMix64; **not** the upstream ChaCha12 stream, so seeds
//!   produce different sequences than real `rand`, which only matters for
//!   fixtures, never for correctness),
//! * [`rngs::OsRng`] — reads the operating system entropy pool,
//! * [`rngs::mock::StepRng`] — the arithmetic-sequence mock used in tests.
//!
//! Everything is implemented on top of `std` only.

/// The core of a random number generator, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Marker trait for generators suitable for cryptographic use.
pub trait CryptoRng {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, a byte array for every implementation here.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 exactly
    /// like upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public-domain constants), as used by rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from the operating system entropy pool.
    fn from_entropy() -> Self {
        let mut seed = Self::Seed::default();
        rngs::fill_from_os(seed.as_mut());
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! The concrete generators.

    use super::{CryptoRng, RngCore, SeedableRng};
    use std::fs::File;
    use std::io::Read;

    /// Fills `dest` from the OS entropy pool (`/dev/urandom`).
    pub(crate) fn fill_from_os(dest: &mut [u8]) {
        let mut f = File::open("/dev/urandom").expect("open /dev/urandom");
        f.read_exact(dest).expect("read OS entropy");
    }

    /// A deterministic seedable generator (xoshiro256++).
    ///
    /// Statistically strong and fine for fixtures and parameter caching; the
    /// `CryptoRng` bound matches upstream `StdRng`'s contract so generic code
    /// accepts it, with the same caveat that deterministic seeding is for
    /// tests only.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl CryptoRng for StdRng {}

    /// A generator that pulls every output directly from the OS entropy pool.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OsRng;

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            let mut b = [0u8; 4];
            fill_from_os(&mut b);
            u32::from_le_bytes(b)
        }

        fn next_u64(&mut self) -> u64 {
            let mut b = [0u8; 8];
            fill_from_os(&mut b);
            u64::from_le_bytes(b)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            fill_from_os(dest)
        }
    }

    impl CryptoRng for OsRng {}

    pub mod mock {
        //! Mock generators for tests.

        use super::RngCore;

        /// Returns an arithmetic sequence: `start`, `start + step`, ...
        /// Deliberately **not** `CryptoRng`.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            value: u64,
            step: u64,
        }

        impl StepRng {
            /// Creates the mock with the given starting value and increment.
            pub fn new(start: u64, step: u64) -> Self {
                StepRng { value: start, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.step);
                out
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&bytes[..n]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::{OsRng, StdRng};
    use super::{RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(10, 3);
        assert_eq!(r.next_u64(), 10);
        assert_eq!(r.next_u64(), 13);
    }

    #[test]
    fn os_rng_produces_output() {
        let mut r = OsRng;
        let mut buf = [0u8; 16];
        r.fill_bytes(&mut buf);
        // Not all-zero with overwhelming probability.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
