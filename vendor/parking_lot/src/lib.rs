//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, providing `Mutex` and `RwLock` with parking_lot's ergonomics
//! (no `Result` from `lock()`/`read()`/`write()`) on top of `std::sync`.
//!
//! Poisoning is deliberately ignored — parking_lot locks do not poison, so a
//! panicked writer must not wedge every later reader the way raw `std` locks
//! would.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn locks_recover_from_poison() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the std lock underneath");
        })
        .join();
        // parking_lot semantics: later readers are unaffected.
        assert_eq!(*l.read(), 0);
    }
}
