//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! API subset the workspace's `e1`–`e7` bench targets use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!` / `criterion_main!` macros — on top of a simple
//! wall-clock sampler:
//!
//! * each benchmark is calibrated (iterations doubled until a sample takes a
//!   measurable slice of time), then `sample_size` samples are timed and the
//!   median / mean / min / max per-iteration latency is printed;
//! * a positional command-line argument filters benchmarks by substring, so
//!   `cargo bench -p tibpre-bench --bench e1_primitives -- pairing` works the
//!   way it does with real criterion (statistical analysis, plots and saved
//!   baselines are not implemented).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    sample_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Calibrates, then times `sample_size` samples of the routine, recording
    /// nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: grow the iteration count until one batch takes a
        // measurable slice of wall-clock time.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };

        let target = self.sample_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The harness entry point; collects CLI filters and default settings.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the target with `--bench` (and test-harness
        // style flags); the first non-flag argument is a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        self.run_one(id.into().id, sample_size, measurement_time, None, f);
        self
    }

    fn run_one<F>(
        &mut self,
        full_name: String,
        sample_size: usize,
        sample_time: Duration,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: sample_size.max(2),
            sample_time,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut sorted = bencher.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        if sorted.is_empty() {
            println!("{full_name:<60} (no samples recorded)");
            return;
        }
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(n)) => format!(
                "  thrpt: {:.2} MiB/s",
                n as f64 / (mean / 1e9) / (1024.0 * 1024.0)
            ),
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:.1} elem/s", n as f64 / (mean / 1e9))
            }
            None => String::new(),
        };
        println!(
            "{full_name:<60} time: [{} {} {}] ({} samples){rate}",
            format_ns(sorted[0]),
            format_ns(median),
            format_ns(sorted[sorted.len() - 1]),
            sorted.len(),
        );
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(
            full,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks a routine that takes an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; groups need no teardown).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, compatible with criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, compatible with criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
            measurement_time: Duration::from_millis(30),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("only-this".into()),
            sample_size: 2,
            measurement_time: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function(BenchmarkId::new("other", 1), |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "x").id, "f/x");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with(" s"));
    }
}
