//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the slice of proptest's API that the workspace's property tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]` headers),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! * [`strategy::Strategy`] with `prop_map`, [`arbitrary::any`] for the
//!   primitive integers and `bool`, integer-range strategies,
//! * [`collection::vec`] with the usual size-range arguments,
//! * string strategies from the regex subset `[class]{m,n}` / `.{m,n}`.
//!
//! Shrinking is intentionally not implemented — a failing case panics with the
//! generating inputs printed, which is enough to reproduce and debug.

pub mod test_runner {
    //! Case execution plumbing used by the [`crate::proptest!`] expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*` failed: the property is violated.
        Fail(String),
        /// A `prop_assume!` filtered the inputs out; the case is not counted.
        Reject,
    }

    /// The result type each generated case body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is consulted.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of (non-rejected) cases to execute per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic per-case RNG: the sequence depends only on the fully
    /// qualified test name and the attempt index, so failures reproduce.
    pub fn case_rng(test_name: &str, attempt: u32) -> StdRng {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        attempt.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (crate::arbitrary::uniform_u128(rng) % span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    lo + (crate::arbitrary::uniform_u128(rng) % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// Strings drawn from the regex subset `[class]{m,n}`, `.{m,n}`,
    /// `[class]*`, `[class]+` or a bare class / dot (one char).
    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut StdRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace tests use.

    use crate::strategy::Strategy;
    use core::marker::PhantomData;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub(crate) fn uniform_u128(rng: &mut StdRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    // Bias one draw in eight toward the edge values, like
                    // upstream proptest biases toward "special" integers.
                    if rng.next_u32() % 8 == 0 {
                        *[0 as $t, 1 as $t, <$t>::MAX]
                            .get(rng.next_u32() as usize % 3)
                            .expect("index < 3")
                    } else {
                        uniform_u128(rng) as $t
                    }
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;

    /// A [min, max] element-count range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + (crate::arbitrary::uniform_u128(rng) % span as u128) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub(crate) mod string {
    //! A generator for the tiny regex subset the workspace's patterns use.

    use rand::rngs::StdRng;

    enum Atom {
        /// Any printable ASCII character.
        Dot,
        /// An explicit character class.
        Class(Vec<char>),
    }

    fn parse_class(pattern: &mut core::str::Chars<'_>) -> Vec<char> {
        let mut out = Vec::new();
        let mut chars = Vec::new();
        for c in pattern.by_ref() {
            if c == ']' {
                break;
            }
            chars.push(c);
        }
        let mut i = 0;
        while i < chars.len() {
            // `a-z` style range (a lone leading/trailing `-` is a literal).
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "invalid class range");
                out.extend((lo..=hi).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class");
        out
    }

    fn parse_quantifier(rest: &str) -> (usize, usize) {
        match rest {
            "" => (1, 1),
            "*" => (0, 8),
            "+" => (1, 8),
            _ => {
                let inner = rest
                    .strip_prefix('{')
                    .and_then(|r| r.strip_suffix('}'))
                    .unwrap_or_else(|| panic!("unsupported regex quantifier: {rest:?}"));
                match inner.split_once(',') {
                    Some((m, n)) => (
                        m.parse().expect("min repeat"),
                        n.parse().expect("max repeat"),
                    ),
                    None => {
                        let n = inner.parse().expect("exact repeat");
                        (n, n)
                    }
                }
            }
        }
    }

    /// Generates a string matching `pattern`, which must be one atom
    /// (`[class]` or `.`) followed by an optional quantifier.
    pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
        use rand::RngCore;

        let mut chars = pattern.chars();
        let atom = match chars.next() {
            Some('.') => Atom::Dot,
            Some('[') => Atom::Class(parse_class(&mut chars)),
            _ => panic!("unsupported regex pattern for the proptest stub: {pattern:?}"),
        };
        let (min, max) = parse_quantifier(chars.as_str());
        let len = min + (rng.next_u64() % (max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| match &atom {
                // Printable ASCII, space through tilde.
                Atom::Dot => char::from(32 + (rng.next_u32() % 95) as u8),
                Atom::Class(set) => set[rng.next_u64() as usize % set.len()],
            })
            .collect()
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.  Mirrors upstream `proptest!`'s item form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config = $cfg;
            let mut successes = 0u32;
            let mut attempts = 0u32;
            // Leave head-room for prop_assume! rejections.
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while successes < config.cases && attempts < max_attempts {
                let mut rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempts,
                );
                attempts += 1;
                $(let $arg = ($strat).new_value(&mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let case = move || -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                };
                match case() {
                    Ok(()) => successes += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!(
                            "property '{}' failed on attempt {}: {}\n  inputs: {}",
                            stringify!($name),
                            attempts - 1,
                            message,
                            inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// `assert!` that reports failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&($lhs), &($rhs));
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs,
            )));
        }
    }};
}

/// `assert_ne!` that reports failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&($lhs), &($rhs));
        if !(lhs != rhs) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n    both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
            )));
        }
    }};
}

/// Rejects the current case (uncounted) when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 5usize..=7) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=7).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(x in any::<u8>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(any::<u8>(), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-c]{2,4}", t in ".{0,3}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.len() <= 3);
            prop_assert_ne!(s.len(), 0);
        }
    }

    #[test]
    fn class_parser_handles_mixed_literals_and_ranges() {
        let mut rng = crate::test_runner::case_rng("class", 0);
        for _ in 0..50 {
            let s = crate::string::generate("[a-z0-9@.-]{1,40}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "@.-".contains(c)));
        }
    }
}
