#!/usr/bin/env bash
# Runs the JSON-emitting benches and leaves their artifacts at the workspace
# root (BENCH_<experiment>.json), so the perf trajectory is a committed,
# diffable series rather than a pile of terminal scrollback.
#
# Usage:
#   scripts/bench_json.sh            # all JSON benches, toy-scale (minutes)
#   scripts/bench_json.sh e13        # only benches matching the filter
#   TIBPRE_E12_RECORDS=1000000 scripts/bench_json.sh e12   # nightly scale
#
# Each bench honours TIBPRE_BENCH_JSON to redirect its output file; this
# script leaves the default (workspace root) in place on purpose.
set -euo pipefail
cd "$(dirname "$0")/.."

# The JSON-emitting benches, one per line.
benches=(
  e12_resident
  e13_server
  e15_multipairing
  e16_coalesce
)

filter="${1:-}"
ran=0
for bench in "${benches[@]}"; do
  if [[ -n "$filter" && "$bench" != *"$filter"* ]]; then
    continue
  fi
  echo "== $bench =="
  cargo bench -p tibpre-bench --bench "$bench"
  ran=$((ran + 1))
done

if [[ $ran -eq 0 ]]; then
  echo "bench_json.sh: no bench matches filter '$filter'" >&2
  exit 1
fi

echo "== artifacts =="
# nullglob keeps the listing from failing when a filtered run produced only
# a subset (or an earlier clean checkout has no artifacts yet).
shopt -s nullglob
artifacts=(BENCH_*.json)
if [[ ${#artifacts[@]} -gt 0 ]]; then
  ls -l "${artifacts[@]}"
else
  echo "(none yet)"
fi
