#!/usr/bin/env bash
# Runs the JSON-emitting benches and leaves their artifacts at the workspace
# root (BENCH_<experiment>.json), so the perf trajectory is a committed,
# diffable series rather than a pile of terminal scrollback.
#
# Usage:
#   scripts/bench_json.sh            # toy-scale smoke numbers (minutes)
#   TIBPRE_E12_RECORDS=1000000 scripts/bench_json.sh   # nightly scale
#
# Each bench honours TIBPRE_BENCH_JSON to redirect its output file; this
# script leaves the default (workspace root) in place on purpose.
set -euo pipefail
cd "$(dirname "$0")/.."

# The JSON-emitting benches, one per line: name, then any filter args.
benches=(
  e12_resident
)

for bench in "${benches[@]}"; do
  echo "== $bench =="
  cargo bench -p tibpre-bench --bench "$bench"
done

echo "== artifacts =="
ls -l BENCH_*.json
