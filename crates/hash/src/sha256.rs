//! SHA-256 (FIPS 180-4).
//!
//! The round constants are the first 32 bits of the fractional parts of the
//! cube roots of the first 64 primes and the initial state words are derived
//! from the square roots of the first 8 primes.  Instead of hard-coding the
//! tables (and risking a transcription error) they are derived once at runtime
//! with exact integer square/cube roots and cached; the published "abc" and
//! empty-string test vectors then pin the whole construction down.

use std::sync::OnceLock;

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes.
pub const BLOCK_LEN: usize = 64;

/// Streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    total_len: u64,
}

/// First `n` primes, by trial division (tiny `n`, clarity over speed).
fn first_primes(n: usize) -> Vec<u64> {
    let mut primes = Vec::with_capacity(n);
    let mut candidate = 2u64;
    while primes.len() < n {
        if primes.iter().all(|&p| !candidate.is_multiple_of(p)) {
            primes.push(candidate);
        }
        candidate += 1;
    }
    primes
}

/// Integer square root by binary search (exact floor).
fn isqrt(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    let mut lo = 0u128;
    let mut hi = 1u128 << ((128 - n.leading_zeros()).div_ceil(2) + 1);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if mid.checked_mul(mid).map(|sq| sq <= n).unwrap_or(false) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Integer cube root by binary search (exact floor).
fn icbrt(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    let mut lo = 0u128;
    let mut hi = 1u128 << ((128 - n.leading_zeros()).div_ceil(3) + 1);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        let cube = mid.checked_mul(mid).and_then(|sq| sq.checked_mul(mid));
        if cube.map(|c| c <= n).unwrap_or(false) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Initial hash state: first 32 bits of the fractional parts of sqrt(first 8 primes).
fn initial_state() -> &'static [u32; 8] {
    static H: OnceLock<[u32; 8]> = OnceLock::new();
    H.get_or_init(|| {
        let primes = first_primes(8);
        let mut h = [0u32; 8];
        for (i, &p) in primes.iter().enumerate() {
            // floor(sqrt(p) * 2^32) mod 2^32 == floor(frac(sqrt(p)) * 2^32)
            h[i] = (isqrt((p as u128) << 64) & 0xFFFF_FFFF) as u32;
        }
        h
    })
}

/// Round constants: first 32 bits of the fractional parts of cbrt(first 64 primes).
fn round_constants() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let primes = first_primes(64);
        let mut k = [0u32; 64];
        for (i, &p) in primes.iter().enumerate() {
            // floor(cbrt(p) * 2^32) mod 2^32 == floor(frac(cbrt(p)) * 2^32)
            k[i] = (icbrt((p as u128) << 96) & 0xFFFF_FFFF) as u32;
        }
        k
    })
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: *initial_state(),
            buffer: [0u8; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: hashes `data` and returns the 32-byte digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        // Fill the partial block first.
        if self.buffer_len > 0 {
            let take = (BLOCK_LEN - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        // Full blocks straight from the input.
        while data.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&data[..BLOCK_LEN]);
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the computation and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        let mut padding = Vec::with_capacity(BLOCK_LEN * 2);
        padding.push(0x80u8);
        let after = (self.buffer_len + 1) % BLOCK_LEN;
        let zeros = if after <= 56 {
            56 - after
        } else {
            56 + BLOCK_LEN - after
        };
        padding.extend(std::iter::repeat_n(0u8, zeros));
        padding.extend_from_slice(&bit_len.to_be_bytes());
        // Do not let the padding bytes count towards the message length.
        let saved_len = self.total_len;
        self.update(&padding);
        self.total_len = saved_len;
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let k = round_constants();
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn derived_constants_match_the_standard() {
        // Spot checks against FIPS 180-4 values.
        let h = initial_state();
        assert_eq!(h[0], 0x6a09e667);
        assert_eq!(h[7], 0x5be0cd19);
        let k = round_constants();
        assert_eq!(k[0], 0x428a2f98);
        assert_eq!(k[1], 0x71374491);
        assert_eq!(k[63], 0xc67178f2);
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        // NIST test vector for the 448-bit message.
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let one_shot = Sha256::digest(&data);
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 128, 999] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), one_shot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn million_a_vector() {
        // The classic "one million 'a'" NIST vector.
        let mut h = Sha256::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&block);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(Sha256::digest(b"hello"), Sha256::digest(b"hellp"));
        assert_ne!(Sha256::digest(b""), Sha256::digest(b"\0"));
    }

    #[test]
    fn boundary_lengths_are_consistent() {
        // Lengths around the 55/56/64 byte padding boundaries.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xA5u8; len];
            let mut h = Sha256::new();
            h.update(&data);
            assert_eq!(h.finalize(), Sha256::digest(&data), "len {len}");
        }
    }
}
