//! From-scratch cryptographic hash primitives for the TIB-PRE workspace.
//!
//! The proxy re-encryption scheme of Ibraimi et al. models two hash functions
//! as random oracles — `H1 : {0,1}* → G` (hash onto the pairing group) and
//! `H2 : {0,1}* → Z_q*` — and the healthcare application additionally needs a
//! key-derivation function and a MAC for its data-encapsulation layer.  Because
//! no external crypto crates are permitted for the reproduction, this crate
//! implements the required primitives directly:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (constants derived from integer square /
//!   cube roots at start-up, verified against published test vectors),
//! * [`sha3`] — the Keccak-f\[1600\] permutation, SHA3-256 and the SHAKE-128 /
//!   SHAKE-256 extendable-output functions,
//! * [`hmac`] — HMAC-SHA-256,
//! * [`kdf`] — an HKDF-style extract-and-expand construction over HMAC-SHA-256,
//! * [`oracle`] — domain-separated helpers that the pairing / scheme layers use
//!   to instantiate `H1`, `H2` and related random oracles.
//!
//! The implementations favour clarity over speed; hashing is never the
//! bottleneck next to pairing computation.
//!
//! # Example
//!
//! ```
//! use tibpre_hash::Sha256;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     hex(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//!
//! fn hex(bytes: &[u8]) -> String {
//!     bytes.iter().map(|b| format!("{b:02x}")).collect()
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hmac;
pub mod kdf;
pub mod oracle;
pub mod sha256;
pub mod sha3;

pub use hmac::HmacSha256;
pub use kdf::Hkdf;
pub use oracle::DomainSeparatedHasher;
pub use sha256::Sha256;
pub use sha3::{Sha3_256, Shake128, Shake256};
