//! Domain-separated random-oracle helpers.
//!
//! The scheme layers instantiate several independent random oracles (the
//! paper's `H1`, `H2`, the hash-to-curve counter loop, the KEM key derivation,
//! …) from a single XOF.  To keep them independent, every oracle call is
//! prefixed with a length-delimited domain tag and every input field is
//! length-delimited too, so that concatenation ambiguities (`"ab" || "c"` vs
//! `"a" || "bc"`) cannot occur.

use crate::sha3::Shake256;

/// A domain-separated, length-delimited hasher over SHAKE-256.
///
/// ```
/// use tibpre_hash::DomainSeparatedHasher;
///
/// let mut h = DomainSeparatedHasher::new("TIBPRE-H2");
/// h.absorb(b"identity");
/// h.absorb(b"type-tag");
/// let out = h.finalize(48);
/// assert_eq!(out.len(), 48);
/// ```
pub struct DomainSeparatedHasher {
    xof: Shake256,
}

impl DomainSeparatedHasher {
    /// Creates a hasher for the given domain string.
    pub fn new(domain: &str) -> Self {
        let mut xof = Shake256::new();
        absorb_delimited(&mut xof, domain.as_bytes());
        DomainSeparatedHasher { xof }
    }

    /// Absorbs one length-delimited input field.
    pub fn absorb(&mut self, data: &[u8]) {
        absorb_delimited(&mut self.xof, data);
    }

    /// Absorbs a `u64` (used for counters in try-and-increment loops).
    pub fn absorb_u64(&mut self, value: u64) {
        absorb_delimited(&mut self.xof, &value.to_be_bytes());
    }

    /// Finishes and squeezes `len` output bytes.
    pub fn finalize(mut self, len: usize) -> Vec<u8> {
        self.xof.squeeze_vec(len)
    }

    /// One-shot helper: hash the given fields under `domain` into `len` bytes.
    pub fn hash(domain: &str, fields: &[&[u8]], len: usize) -> Vec<u8> {
        let mut h = Self::new(domain);
        for f in fields {
            h.absorb(f);
        }
        h.finalize(len)
    }
}

fn absorb_delimited(xof: &mut Shake256, data: &[u8]) {
    xof.update(&(data.len() as u64).to_be_bytes());
    xof.update(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_are_independent() {
        let a = DomainSeparatedHasher::hash("H1", &[b"input"], 32);
        let b = DomainSeparatedHasher::hash("H2", &[b"input"], 32);
        assert_ne!(a, b);
    }

    #[test]
    fn field_boundaries_matter() {
        let ab_c = DomainSeparatedHasher::hash("D", &[b"ab", b"c"], 32);
        let a_bc = DomainSeparatedHasher::hash("D", &[b"a", b"bc"], 32);
        let abc = DomainSeparatedHasher::hash("D", &[b"abc"], 32);
        assert_ne!(ab_c, a_bc);
        assert_ne!(ab_c, abc);
        assert_ne!(a_bc, abc);
    }

    #[test]
    fn deterministic_and_length_flexible() {
        let x = DomainSeparatedHasher::hash("D", &[b"payload"], 64);
        let y = DomainSeparatedHasher::hash("D", &[b"payload"], 64);
        assert_eq!(x, y);
        let short = DomainSeparatedHasher::hash("D", &[b"payload"], 16);
        assert_eq!(&x[..16], &short[..]);
    }

    #[test]
    fn counter_absorption_changes_output() {
        let mut h0 = DomainSeparatedHasher::new("ctr");
        h0.absorb(b"base");
        h0.absorb_u64(0);
        let mut h1 = DomainSeparatedHasher::new("ctr");
        h1.absorb(b"base");
        h1.absorb_u64(1);
        assert_ne!(h0.finalize(32), h1.finalize(32));
    }

    #[test]
    fn empty_fields_are_still_distinct() {
        let none = DomainSeparatedHasher::hash("D", &[], 32);
        let one_empty = DomainSeparatedHasher::hash("D", &[b""], 32);
        assert_ne!(none, one_empty);
    }
}
