//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the DEM layer (`tibpre-symmetric`) for encrypt-then-MAC integrity
//! and by the HKDF construction in [`crate::kdf`].

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Streaming HMAC-SHA-256 instance.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key_pad: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        // Keys longer than the block size are hashed first, shorter keys are
        // zero-padded, exactly as the RFC specifies.
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha256::digest(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner_key_pad = [0u8; BLOCK_LEN];
        let mut outer_key_pad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            inner_key_pad[i] = key_block[i] ^ 0x36;
            outer_key_pad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&inner_key_pad);
        HmacSha256 {
            inner,
            outer_key_pad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key_pad);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC computation.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Constant-time-ish tag comparison (single pass, no early exit).
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        let expected = Self::mac(key, data);
        if tag.len() != expected.len() {
            return false;
        }
        let mut acc = 0u8;
        for (a, b) in expected.iter().zip(tag.iter()) {
            acc |= a ^ b;
        }
        acc == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_test_case_1() {
        // Key = 20 bytes of 0x0b, data = "Hi There".
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        // Key = "Jefe", data = "what do ya want for nothing?".
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        // Keys longer than 64 bytes take the hashing path; the MAC must still
        // be deterministic and distinct from the truncated-key MAC.
        let long_key = vec![0xAAu8; 131];
        let t1 = HmacSha256::mac(&long_key, b"msg");
        let t2 = HmacSha256::mac(&long_key, b"msg");
        let t3 = HmacSha256::mac(&long_key[..64], b"msg");
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let key = b"streaming key";
        let data: Vec<u8> = (0..500u16).map(|i| (i % 256) as u8).collect();
        let one_shot = HmacSha256::mac(key, &data);
        let mut h = HmacSha256::new(key);
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), one_shot);
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let key = b"verify key";
        let tag = HmacSha256::mac(key, b"payload");
        assert!(HmacSha256::verify(key, b"payload", &tag));
        assert!(!HmacSha256::verify(key, b"payloae", &tag));
        assert!(!HmacSha256::verify(b"other key", b"payload", &tag));
        let mut bad_tag = tag;
        bad_tag[31] ^= 1;
        assert!(!HmacSha256::verify(key, b"payload", &bad_tag));
        assert!(!HmacSha256::verify(key, b"payload", &tag[..16]));
    }

    #[test]
    fn different_keys_give_different_tags() {
        assert_ne!(
            HmacSha256::mac(b"key-a", b"same message"),
            HmacSha256::mac(b"key-b", b"same message")
        );
    }
}
