//! Keccak-f\[1600\], SHA3-256 and the SHAKE extendable-output functions.
//!
//! The TIB-PRE random oracles (`H1`, `H2`) need variable-length uniform output
//! — hashing onto a 512–1536-bit prime field and onto curve points — which is
//! exactly what an XOF provides, so SHAKE-256 is the workhorse of the
//! [`crate::oracle`] module.  The permutation constants are *derived* (rotation
//! offsets from the triangular-number recurrence, round constants from the
//! degree-8 LFSR of FIPS 202 Algorithm 5) rather than transcribed, and the
//! derivation is pinned by unit tests on the well-known first constants.

use std::sync::OnceLock;

const KECCAK_ROUNDS: usize = 24;
const STATE_LANES: usize = 25;

/// Rate in bytes of SHA3-256 and SHAKE-256 (capacity 512 bits).
pub const RATE_256: usize = 136;
/// Rate in bytes of SHAKE-128 (capacity 256 bits).
pub const RATE_128: usize = 168;

/// Domain-separation byte for the SHA-3 fixed-output functions.
const DOMAIN_SHA3: u8 = 0x06;
/// Domain-separation byte for the SHAKE extendable-output functions.
const DOMAIN_SHAKE: u8 = 0x1F;

/// Round constants of the ι step, derived from the FIPS 202 LFSR.
fn round_constants() -> &'static [u64; KECCAK_ROUNDS] {
    static RC: OnceLock<[u64; KECCAK_ROUNDS]> = OnceLock::new();
    RC.get_or_init(|| {
        // rc(t): the degree-8 LFSR of FIPS 202 Algorithm 5, with R[0] as the LSB.
        fn rc_bit(t: usize) -> u64 {
            if t.is_multiple_of(255) {
                return 1;
            }
            let mut r: u32 = 1;
            for _ in 0..(t % 255) {
                r <<= 1;
                let b8 = (r >> 8) & 1;
                r ^= b8;
                r ^= b8 << 4;
                r ^= b8 << 5;
                r ^= b8 << 6;
                r &= 0xFF;
            }
            (r & 1) as u64
        }
        let mut rc = [0u64; KECCAK_ROUNDS];
        for (ir, slot) in rc.iter_mut().enumerate() {
            let mut lane = 0u64;
            for j in 0..=6usize {
                lane |= rc_bit(j + 7 * ir) << ((1usize << j) - 1);
            }
            *slot = lane;
        }
        rc
    })
}

/// Rotation offsets of the ρ step, derived from the triangular-number recurrence.
fn rho_offsets() -> &'static [u32; STATE_LANES] {
    static RHO: OnceLock<[u32; STATE_LANES]> = OnceLock::new();
    RHO.get_or_init(|| {
        let mut offsets = [0u32; STATE_LANES];
        let (mut x, mut y) = (1usize, 0usize);
        for t in 0..24usize {
            offsets[x + 5 * y] = (((t + 1) * (t + 2) / 2) % 64) as u32;
            let next_x = y;
            let next_y = (2 * x + 3 * y) % 5;
            x = next_x;
            y = next_y;
        }
        offsets
    })
}

/// Applies the Keccak-f\[1600\] permutation in place.
pub fn keccak_f1600(state: &mut [u64; STATE_LANES]) {
    let rc = round_constants();
    let rho = rho_offsets();
    for &round_constant in rc.iter() {
        // θ
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // ρ and π
        let mut b = [0u64; STATE_LANES];
        for x in 0..5 {
            for y in 0..5 {
                let new_x = y;
                let new_y = (2 * x + 3 * y) % 5;
                b[new_x + 5 * new_y] = state[x + 5 * y].rotate_left(rho[x + 5 * y]);
            }
        }
        // χ
        for x in 0..5 {
            for y in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ ((!b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
            }
        }
        // ι
        state[0] ^= round_constant;
    }
}

/// Generic Keccak sponge parameterised by rate and domain-separation byte.
#[derive(Clone)]
struct Sponge {
    state: [u64; STATE_LANES],
    rate: usize,
    domain: u8,
    /// Bytes absorbed into the current block.
    absorb_offset: usize,
    /// `Some(offset)` once squeezing has started.
    squeeze_offset: Option<usize>,
}

impl Sponge {
    fn new(rate: usize, domain: u8) -> Self {
        Sponge {
            state: [0u64; STATE_LANES],
            rate,
            domain,
            absorb_offset: 0,
            squeeze_offset: None,
        }
    }

    fn xor_byte(&mut self, index: usize, byte: u8) {
        let lane = index / 8;
        let shift = (index % 8) * 8;
        self.state[lane] ^= (byte as u64) << shift;
    }

    fn read_byte(&self, index: usize) -> u8 {
        let lane = index / 8;
        let shift = (index % 8) * 8;
        (self.state[lane] >> shift) as u8
    }

    fn absorb(&mut self, data: &[u8]) {
        assert!(
            self.squeeze_offset.is_none(),
            "cannot absorb after squeezing has started"
        );
        for &byte in data {
            self.xor_byte(self.absorb_offset, byte);
            self.absorb_offset += 1;
            if self.absorb_offset == self.rate {
                keccak_f1600(&mut self.state);
                self.absorb_offset = 0;
            }
        }
    }

    fn pad(&mut self) {
        // Multi-rate padding: domain byte at the current offset, 0x80 at the
        // last byte of the rate (they coincide when only one byte is free).
        self.xor_byte(self.absorb_offset, self.domain);
        self.xor_byte(self.rate - 1, 0x80);
        keccak_f1600(&mut self.state);
        self.squeeze_offset = Some(0);
    }

    fn squeeze(&mut self, out: &mut [u8]) {
        if self.squeeze_offset.is_none() {
            self.pad();
        }
        let mut offset = self.squeeze_offset.expect("pad() sets the offset");
        for slot in out.iter_mut() {
            if offset == self.rate {
                keccak_f1600(&mut self.state);
                offset = 0;
            }
            *slot = self.read_byte(offset);
            offset += 1;
        }
        self.squeeze_offset = Some(offset);
    }
}

/// SHA3-256 fixed-output hash.
#[derive(Clone)]
pub struct Sha3_256 {
    sponge: Sponge,
}

impl Sha3_256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha3_256 {
            sponge: Sponge::new(RATE_256, DOMAIN_SHA3),
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs more input.
    pub fn update(&mut self, data: &[u8]) {
        self.sponge.absorb(data);
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.sponge.squeeze(&mut out);
        out
    }
}

impl Default for Sha3_256 {
    fn default() -> Self {
        Self::new()
    }
}

/// SHAKE-128 extendable-output function.
#[derive(Clone)]
pub struct Shake128 {
    sponge: Sponge,
}

/// SHAKE-256 extendable-output function.
#[derive(Clone)]
pub struct Shake256 {
    sponge: Sponge,
}

macro_rules! impl_shake {
    ($name:ident, $rate:expr) => {
        impl $name {
            /// Creates a fresh XOF.
            pub fn new() -> Self {
                $name {
                    sponge: Sponge::new($rate, DOMAIN_SHAKE),
                }
            }

            /// Absorbs more input.  Panics if called after squeezing started.
            pub fn update(&mut self, data: &[u8]) {
                self.sponge.absorb(data);
            }

            /// Squeezes `out.len()` bytes of output.  May be called repeatedly;
            /// successive calls continue the output stream.
            pub fn squeeze(&mut self, out: &mut [u8]) {
                self.sponge.squeeze(out);
            }

            /// Squeezes `len` bytes into a fresh vector.
            pub fn squeeze_vec(&mut self, len: usize) -> Vec<u8> {
                let mut out = vec![0u8; len];
                self.squeeze(&mut out);
                out
            }

            /// One-shot convenience: absorbs `data` and squeezes `len` bytes.
            pub fn hash(data: &[u8], len: usize) -> Vec<u8> {
                let mut xof = Self::new();
                xof.update(data);
                xof.squeeze_vec(len)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }
    };
}

impl_shake!(Shake128, RATE_128);
impl_shake!(Shake256, RATE_256);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_round_constants_match_known_values() {
        let rc = round_constants();
        assert_eq!(rc[0], 0x0000_0000_0000_0001);
        assert_eq!(rc[1], 0x0000_0000_0000_8082);
        assert_eq!(rc[2], 0x8000_0000_0000_808a);
        assert_eq!(rc[3], 0x8000_0000_8000_8000);
        assert_eq!(rc[23], 0x8000_0000_8000_8008);
    }

    #[test]
    fn derived_rho_offsets_match_known_values() {
        let rho = rho_offsets();
        // Published offset table (x + 5y indexing).
        assert_eq!(rho[0], 0); // (0,0)
        assert_eq!(rho[1], 1); // (1,0)
        assert_eq!(rho[2], 62); // (2,0)
        assert_eq!(rho[1 + 5], 44); // (1,1)
        assert_eq!(rho[2 + 5 * 2], 43); // (2,2)
        assert_eq!(rho[4 + 5 * 4], 14); // (4,4)
                                        // Every offset is in range and the 24 non-origin lanes are all assigned.
        let nonzero = rho.iter().filter(|&&r| r != 0).count();
        assert!(nonzero >= 23);
    }

    #[test]
    fn permutation_changes_state_and_is_deterministic() {
        let mut a = [0u64; 25];
        let mut b = [0u64; 25];
        keccak_f1600(&mut a);
        keccak_f1600(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, [0u64; 25]);
    }

    #[test]
    fn sha3_256_differs_from_inputs_and_is_stable() {
        let d1 = Sha3_256::digest(b"");
        let d2 = Sha3_256::digest(b"abc");
        let d3 = Sha3_256::digest(b"abd");
        assert_ne!(d1, d2);
        assert_ne!(d2, d3);
        assert_eq!(Sha3_256::digest(b"abc"), d2);
    }

    #[test]
    fn sha3_streaming_matches_one_shot() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 241) as u8).collect();
        let one_shot = Sha3_256::digest(&data);
        for chunk in [1usize, 5, 135, 136, 137, 271, 500] {
            let mut h = Sha3_256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), one_shot, "chunk {chunk}");
        }
    }

    #[test]
    fn shake_output_is_a_consistent_stream() {
        // Squeezing 100 bytes at once equals squeezing 10 x 10 bytes.
        let mut big = Shake256::new();
        big.update(b"stream test");
        let all = big.squeeze_vec(100);

        let mut small = Shake256::new();
        small.update(b"stream test");
        let mut pieces = Vec::new();
        for _ in 0..10 {
            pieces.extend(small.squeeze_vec(10));
        }
        assert_eq!(all, pieces);
    }

    #[test]
    fn shake_is_prefix_consistent_across_lengths() {
        let short = Shake256::hash(b"prefix", 32);
        let long = Shake256::hash(b"prefix", 200);
        assert_eq!(&long[..32], &short[..]);
    }

    #[test]
    fn shake128_and_shake256_differ() {
        assert_ne!(Shake128::hash(b"x", 32), Shake256::hash(b"x", 32));
    }

    #[test]
    fn shake_differs_from_sha3_on_same_input() {
        // Different domain-separation bytes must give unrelated outputs.
        let sha3 = Sha3_256::digest(b"domain");
        let shake = Shake256::hash(b"domain", 32);
        assert_ne!(sha3.to_vec(), shake);
    }

    #[test]
    fn rate_boundary_inputs() {
        // Inputs of exactly rate-1, rate and rate+1 bytes exercise the padding paths.
        for len in [RATE_256 - 1, RATE_256, RATE_256 + 1, 2 * RATE_256] {
            let data = vec![0x3Cu8; len];
            let a = Sha3_256::digest(&data);
            let mut h = Sha3_256::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), a, "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot absorb after squeezing")]
    fn absorb_after_squeeze_panics() {
        let mut xof = Shake256::new();
        xof.update(b"a");
        let _ = xof.squeeze_vec(16);
        xof.update(b"b");
    }

    #[test]
    fn avalanche_effect() {
        // Flipping one input bit flips roughly half the output bits.
        let a = Sha3_256::digest(b"avalanche test vector 0");
        let b = Sha3_256::digest(b"avalanche test vector 1");
        let differing: u32 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!(
            differing > 80 && differing < 176,
            "differing bits: {differing}"
        );
    }
}
