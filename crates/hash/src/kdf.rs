//! HKDF-style extract-and-expand key derivation over HMAC-SHA-256 (RFC 5869).
//!
//! The hybrid (KEM/DEM) mode of `tibpre-core` encapsulates a random element of
//! the pairing target group and derives the symmetric encryption and MAC keys
//! from its canonical byte encoding through this KDF.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// HKDF over HMAC-SHA-256.
pub struct Hkdf {
    pseudo_random_key: [u8; DIGEST_LEN],
}

impl Hkdf {
    /// HKDF-Extract: derives a pseudo-random key from input keying material
    /// and an optional salt (an empty salt is replaced by a zero block, as in
    /// the RFC).
    pub fn extract(salt: &[u8], input_keying_material: &[u8]) -> Self {
        let salt_block: &[u8] = if salt.is_empty() {
            &[0u8; DIGEST_LEN]
        } else {
            salt
        };
        Hkdf {
            pseudo_random_key: HmacSha256::mac(salt_block, input_keying_material),
        }
    }

    /// HKDF-Expand: derives `len` bytes of output keying material bound to `info`.
    ///
    /// # Panics
    /// Panics if `len > 255 * 32` (the RFC limit).
    pub fn expand(&self, info: &[u8], len: usize) -> Vec<u8> {
        assert!(len <= 255 * DIGEST_LEN, "HKDF output length limit exceeded");
        let mut output = Vec::with_capacity(len);
        let mut previous: Vec<u8> = Vec::new();
        let mut counter = 1u8;
        while output.len() < len {
            let mut mac = HmacSha256::new(&self.pseudo_random_key);
            mac.update(&previous);
            mac.update(info);
            mac.update(&[counter]);
            let block = mac.finalize();
            let take = (len - output.len()).min(DIGEST_LEN);
            output.extend_from_slice(&block[..take]);
            previous = block.to_vec();
            counter = counter.wrapping_add(1);
        }
        output
    }

    /// Convenience: extract-then-expand in one call.
    pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
        Self::extract(salt, ikm).expand(info, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc5869_test_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00u8..=0x0c).collect();
        let info: Vec<u8> = (0xf0u8..=0xf9).collect();
        let okm = Hkdf::derive(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_test_case_3_empty_salt_and_info() {
        let ikm = [0x0bu8; 22];
        let okm = Hkdf::derive(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn output_is_deterministic_and_info_bound() {
        let a = Hkdf::derive(b"salt", b"secret", b"context-a", 64);
        let b = Hkdf::derive(b"salt", b"secret", b"context-a", 64);
        let c = Hkdf::derive(b"salt", b"secret", b"context-b", 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shorter_outputs_are_prefixes() {
        let long = Hkdf::derive(b"s", b"ikm", b"info", 96);
        let short = Hkdf::derive(b"s", b"ikm", b"info", 16);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn length_edge_cases() {
        assert_eq!(Hkdf::derive(b"s", b"k", b"i", 0).len(), 0);
        assert_eq!(Hkdf::derive(b"s", b"k", b"i", 1).len(), 1);
        assert_eq!(Hkdf::derive(b"s", b"k", b"i", 32).len(), 32);
        assert_eq!(Hkdf::derive(b"s", b"k", b"i", 33).len(), 33);
        assert_eq!(Hkdf::derive(b"s", b"k", b"i", 255 * 32).len(), 255 * 32);
    }

    #[test]
    #[should_panic(expected = "HKDF output length limit")]
    fn over_limit_panics() {
        let _ = Hkdf::derive(b"s", b"k", b"i", 255 * 32 + 1);
    }
}
