//! Error type for the PHR application layer.

use core::fmt;
use tibpre_core::PreError;
use tibpre_wire::DecodeError;

/// Errors produced by the PHR disclosure application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhrError {
    /// An error bubbled up from the proxy re-encryption layer.
    Pre(PreError),
    /// A wire decode failed (truncation, bad tag, invalid group element).
    Decode(DecodeError),
    /// The requested record does not exist.
    RecordNotFound,
    /// The requester has not been granted access to the record's category.
    AccessDenied {
        /// The category that was requested.
        category: String,
        /// The requesting identity.
        requester: String,
    },
    /// The patient tried to grant access for a category that has no proxy.
    NoProxyForCategory(String),
    /// A policy entry already exists / does not exist as required.
    PolicyConflict(&'static str),
    /// A stored blob failed to decode.
    CorruptedRecord(&'static str),
    /// The durable storage backend failed (I/O error while opening or
    /// recovering a store).
    Storage(String),
}

impl fmt::Display for PhrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhrError::Pre(e) => write!(f, "re-encryption error: {e}"),
            PhrError::Decode(e) => write!(f, "decode error: {e}"),
            PhrError::RecordNotFound => write!(f, "record not found"),
            PhrError::AccessDenied {
                category,
                requester,
            } => write!(
                f,
                "access to category '{category}' denied for '{requester}'"
            ),
            PhrError::NoProxyForCategory(c) => {
                write!(f, "no proxy is responsible for category '{c}'")
            }
            PhrError::PolicyConflict(why) => write!(f, "policy conflict: {why}"),
            PhrError::CorruptedRecord(why) => write!(f, "corrupted record: {why}"),
            PhrError::Storage(why) => write!(f, "storage backend error: {why}"),
        }
    }
}

impl std::error::Error for PhrError {}

impl From<PreError> for PhrError {
    fn from(e: PreError) -> Self {
        PhrError::Pre(e)
    }
}

impl From<tibpre_storage::StorageError> for PhrError {
    fn from(e: tibpre_storage::StorageError) -> Self {
        match e {
            tibpre_storage::StorageError::Corrupt(why) => PhrError::CorruptedRecord(why),
            tibpre_storage::StorageError::Decode(e) => PhrError::Decode(e),
            other => PhrError::Storage(other.to_string()),
        }
    }
}

impl From<DecodeError> for PhrError {
    fn from(e: DecodeError) -> Self {
        PhrError::Decode(e)
    }
}

impl From<std::io::Error> for PhrError {
    fn from(e: std::io::Error) -> Self {
        PhrError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: PhrError = PreError::NoMatchingKey.into();
        assert!(e.to_string().contains("re-encryption"));
        let denied = PhrError::AccessDenied {
            category: "illness-history".into(),
            requester: "employer@example.com".into(),
        };
        assert!(denied.to_string().contains("illness-history"));
        assert!(denied.to_string().contains("employer"));
        assert_eq!(PhrError::RecordNotFound, PhrError::RecordNotFound);
    }
}
