//! The patient's disclosure policy: which categories are shared with whom,
//! through which proxy.
//!
//! The policy is plain bookkeeping — the *enforcement* is cryptographic (a
//! grantee only ever receives re-encrypted ciphertexts of categories for which
//! a re-encryption key was issued) — but the patient needs a record of her own
//! decisions to manage and revoke them.

use crate::category::Category;
use std::collections::{BTreeMap, BTreeSet};
use tibpre_ibe::Identity;

/// One granted delegation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// The category being shared.
    pub category: Category,
    /// The grantee (delegatee) identity.
    pub grantee: Identity,
    /// The name of the proxy holding the re-encryption key.
    pub proxy: String,
}

/// The patient's view of her active delegations.
#[derive(Debug, Default, Clone)]
pub struct DisclosurePolicy {
    grants: BTreeMap<Category, BTreeSet<(Identity, String)>>,
}

impl DisclosurePolicy {
    /// Creates an empty policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a grant.  Returns `false` if the identical grant already existed.
    pub fn add_grant(&mut self, category: Category, grantee: Identity, proxy: &str) -> bool {
        self.grants
            .entry(category)
            .or_default()
            .insert((grantee, proxy.to_string()))
    }

    /// Removes a grant.  Returns `true` if it existed.
    pub fn remove_grant(&mut self, category: &Category, grantee: &Identity, proxy: &str) -> bool {
        if let Some(set) = self.grants.get_mut(category) {
            let removed = set.remove(&(grantee.clone(), proxy.to_string()));
            if set.is_empty() {
                self.grants.remove(category);
            }
            removed
        } else {
            false
        }
    }

    /// Returns `true` if the grantee currently has access to the category
    /// (through any proxy).
    pub fn is_granted(&self, category: &Category, grantee: &Identity) -> bool {
        self.grants
            .get(category)
            .map(|set| set.iter().any(|(g, _)| g == grantee))
            .unwrap_or(false)
    }

    /// All active grants, flattened.
    pub fn grants(&self) -> Vec<Grant> {
        self.grants
            .iter()
            .flat_map(|(category, set)| {
                set.iter().map(move |(grantee, proxy)| Grant {
                    category: category.clone(),
                    grantee: grantee.clone(),
                    proxy: proxy.clone(),
                })
            })
            .collect()
    }

    /// The categories that have at least one active grant.
    pub fn shared_categories(&self) -> Vec<Category> {
        self.grants.keys().cloned().collect()
    }

    /// The grantees of one category.
    pub fn grantees_of(&self, category: &Category) -> Vec<Identity> {
        self.grants
            .get(category)
            .map(|set| set.iter().map(|(g, _)| g.clone()).collect())
            .unwrap_or_default()
    }

    /// Total number of active grants.
    pub fn grant_count(&self) -> usize {
        self.grants.values().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_revoke_lifecycle() {
        let mut policy = DisclosurePolicy::new();
        let doctor = Identity::new("doctor");
        let dietician = Identity::new("dietician");

        assert!(policy.add_grant(Category::IllnessHistory, doctor.clone(), "hospital-proxy"));
        assert!(!policy.add_grant(Category::IllnessHistory, doctor.clone(), "hospital-proxy"));
        assert!(policy.add_grant(
            Category::FoodStatistics,
            dietician.clone(),
            "wellness-proxy"
        ));

        assert!(policy.is_granted(&Category::IllnessHistory, &doctor));
        assert!(!policy.is_granted(&Category::IllnessHistory, &dietician));
        assert!(!policy.is_granted(&Category::Emergency, &doctor));
        assert_eq!(policy.grant_count(), 2);
        assert_eq!(policy.shared_categories().len(), 2);
        assert_eq!(
            policy.grantees_of(&Category::FoodStatistics),
            vec![dietician.clone()]
        );

        assert!(policy.remove_grant(&Category::IllnessHistory, &doctor, "hospital-proxy"));
        assert!(!policy.remove_grant(&Category::IllnessHistory, &doctor, "hospital-proxy"));
        assert!(!policy.is_granted(&Category::IllnessHistory, &doctor));
        assert_eq!(policy.grant_count(), 1);
        assert_eq!(policy.shared_categories(), vec![Category::FoodStatistics]);
    }

    #[test]
    fn duplicate_grants_do_not_double_count() {
        let mut policy = DisclosurePolicy::new();
        let doctor = Identity::new("doctor");
        assert!(policy.add_grant(Category::IllnessHistory, doctor.clone(), "proxy"));
        // The identical grant is reported as a no-op and counts stay stable.
        assert!(!policy.add_grant(Category::IllnessHistory, doctor.clone(), "proxy"));
        assert!(!policy.add_grant(Category::IllnessHistory, doctor.clone(), "proxy"));
        assert_eq!(policy.grant_count(), 1);
        assert_eq!(
            policy.grantees_of(&Category::IllnessHistory),
            vec![doctor.clone()]
        );
        // One revoke removes it entirely — the duplicates were never stored.
        assert!(policy.remove_grant(&Category::IllnessHistory, &doctor, "proxy"));
        assert_eq!(policy.grant_count(), 0);
        assert!(!policy.is_granted(&Category::IllnessHistory, &doctor));
    }

    #[test]
    fn revoking_nonexistent_grants_is_a_safe_no_op() {
        let mut policy = DisclosurePolicy::new();
        let doctor = Identity::new("doctor");
        // Empty policy: nothing to remove, for any category.
        assert!(!policy.remove_grant(&Category::Emergency, &doctor, "proxy"));
        // Populated category, wrong grantee / wrong proxy / wrong category.
        policy.add_grant(Category::Emergency, doctor.clone(), "proxy");
        assert!(!policy.remove_grant(&Category::Emergency, &Identity::new("stranger"), "proxy"));
        assert!(!policy.remove_grant(&Category::Emergency, &doctor, "other-proxy"));
        assert!(!policy.remove_grant(&Category::FoodStatistics, &doctor, "proxy"));
        // The real grant survived every failed revocation.
        assert!(policy.is_granted(&Category::Emergency, &doctor));
        assert_eq!(policy.grant_count(), 1);
    }

    #[test]
    fn grantees_of_reflects_revocations() {
        let mut policy = DisclosurePolicy::new();
        let doctor = Identity::new("doctor");
        let nurse = Identity::new("nurse");
        policy.add_grant(Category::IllnessHistory, doctor.clone(), "proxy");
        policy.add_grant(Category::IllnessHistory, nurse.clone(), "proxy");
        assert_eq!(policy.grantees_of(&Category::IllnessHistory).len(), 2);

        assert!(policy.remove_grant(&Category::IllnessHistory, &doctor, "proxy"));
        assert_eq!(
            policy.grantees_of(&Category::IllnessHistory),
            vec![nurse.clone()]
        );

        // Removing the last grantee empties the category completely…
        assert!(policy.remove_grant(&Category::IllnessHistory, &nurse, "proxy"));
        assert!(policy.grantees_of(&Category::IllnessHistory).is_empty());
        assert!(policy.shared_categories().is_empty());
        // …and a category that never had grants reads the same way.
        assert!(policy.grantees_of(&Category::Emergency).is_empty());
    }

    #[test]
    fn grants_are_scoped_to_proxies() {
        let mut policy = DisclosurePolicy::new();
        let doctor = Identity::new("doctor");
        policy.add_grant(Category::Emergency, doctor.clone(), "proxy-us");
        policy.add_grant(Category::Emergency, doctor.clone(), "proxy-eu");
        assert_eq!(policy.grant_count(), 2);
        // Removing through one proxy keeps the other grant.
        assert!(policy.remove_grant(&Category::Emergency, &doctor, "proxy-us"));
        assert!(policy.is_granted(&Category::Emergency, &doctor));
        let grants = policy.grants();
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].proxy, "proxy-eu");
    }
}
