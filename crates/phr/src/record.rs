//! Plaintext health records and their metadata.

use crate::category::Category;
use core::fmt;
use tibpre_ibe::Identity;

/// An opaque record identifier assigned by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u64);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record-{}", self.0)
    }
}

/// A plaintext personal health record as the patient (or her care providers)
/// author it, before encryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthRecord {
    /// The patient this record belongs to.
    pub patient: Identity,
    /// The privacy category (maps to the scheme's type tag).
    pub category: Category,
    /// A short human-readable title.  The title is treated as non-secret
    /// metadata and bound to the ciphertext as associated data.
    pub title: String,
    /// The confidential payload (free-form bytes: text, DICOM, PDF, …).
    pub body: Vec<u8>,
}

impl HealthRecord {
    /// Creates a record.
    pub fn new(
        patient: Identity,
        category: Category,
        title: impl AsRef<str>,
        body: Vec<u8>,
    ) -> Self {
        HealthRecord {
            patient,
            category,
            title: title.as_ref().to_string(),
            body,
        }
    }

    /// The associated data bound to the ciphertext: patient, category and title.
    ///
    /// Binding this metadata means a storage server cannot silently move a
    /// ciphertext to a different patient, category or title without the
    /// decryption failing.
    pub fn associated_data(patient: &Identity, category: &Category, title: &str) -> Vec<u8> {
        let mut aad = Vec::new();
        for field in [
            patient.as_bytes(),
            category.label().as_bytes(),
            title.as_bytes(),
        ] {
            aad.extend((field.len() as u32).to_be_bytes());
            aad.extend(field);
        }
        aad
    }

    /// The associated data for this record.
    pub fn aad(&self) -> Vec<u8> {
        Self::associated_data(&self.patient, &self.category, &self.title)
    }
}

/// A record disclosed to a healthcare provider after decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisclosedRecord {
    /// The record identifier in the store.
    pub id: RecordId,
    /// The patient the record belongs to.
    pub patient: Identity,
    /// The category it was filed under.
    pub category: Category,
    /// The non-secret title.
    pub title: String,
    /// The decrypted payload.
    pub body: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aad_binds_all_metadata() {
        let alice = Identity::new("alice");
        let r = HealthRecord::new(
            alice.clone(),
            Category::LabResults,
            "HbA1c 2008-03",
            b"5.4%".to_vec(),
        );
        let aad = r.aad();
        // Changing any metadata field changes the associated data.
        assert_ne!(
            aad,
            HealthRecord::associated_data(&Identity::new("bob"), &r.category, &r.title)
        );
        assert_ne!(
            aad,
            HealthRecord::associated_data(&alice, &Category::Emergency, &r.title)
        );
        assert_ne!(
            aad,
            HealthRecord::associated_data(&alice, &r.category, "HbA1c 2008-04")
        );
        // Field boundaries are unambiguous.
        assert_ne!(
            HealthRecord::associated_data(&Identity::new("ab"), &r.category, "c"),
            HealthRecord::associated_data(&Identity::new("a"), &r.category, "bc")
        );
    }

    #[test]
    fn record_id_display() {
        assert_eq!(RecordId(42).to_string(), "record-42");
        assert!(RecordId(1) < RecordId(2));
    }
}
