//! Fine-grained Personal Health Record (PHR) disclosure — Section 5 of the paper.
//!
//! The paper's healthcare scenario: a patient (Alice) owns her PHR, stores it
//! *encrypted* at third parties she only partially trusts, and wants to
//! disclose each category of data (illness history, food statistics, emergency
//! data, …) to different parties through different proxies — such that a
//! corrupted proxy or storage server can expose at most the one category it
//! was entrusted with.
//!
//! This crate builds that application on top of `tibpre-core`:
//!
//! * [`category`] — the record categories, mapped to the scheme's type tags,
//! * [`record`] — plaintext health records and their metadata,
//! * [`store`] — an encrypted record store (the "database" the patient
//!   outsources storage to): sharded for concurrency, indexed by patient and
//!   category, with an append-only audit log,
//! * [`patient`] — the patient agent: encrypts records, manages her disclosure
//!   policy, issues and revokes re-encryption keys,
//! * [`policy`] — the disclosure policy (category → grantees → proxy),
//! * [`proxy_service`] — per-category proxy services that transform
//!   ciphertexts on request and log every disclosure,
//! * [`provider`] — healthcare providers (delegatees) who receive and decrypt
//!   re-encrypted records,
//! * [`audit`] — the audit-trail types shared by the store and the proxies,
//! * [`emergency`] — the paper's travelling / emergency-access scenario,
//! * [`durable`] — the optional write-ahead-log + snapshot backend that
//!   makes stores and proxies survive restarts and crashes
//!   ([`EncryptedPhrStore::open`], [`ProxyService::open`]),
//! * [`metrics`] — process-wide codec counters pinning the store's
//!   zero-re-encode put path and lazy-decode read path.
//!
//! The store keeps records *wire-resident*: shards hold validated encoded
//! bytes (shared with the WAL frame that persisted them, or served from a
//! memory-mapped snapshot) and decode lazily through a small per-shard LRU
//! — see the private `resident` module and `ARCHITECTURE.md`.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//! use tibpre_ibe::{Identity, Kgc};
//! use tibpre_pairing::PairingParams;
//! use tibpre_phr::category::Category;
//! use tibpre_phr::patient::Patient;
//! use tibpre_phr::provider::HealthcareProvider;
//! use tibpre_phr::proxy_service::ProxyService;
//! use tibpre_phr::record::HealthRecord;
//! use tibpre_phr::store::EncryptedPhrStore;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let params = PairingParams::insecure_toy();
//! let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
//! let provider_kgc = Kgc::setup(params.clone(), "providers", &mut rng);
//!
//! // Alice, her encrypted store, and one proxy for her illness history.
//! let store = Arc::new(EncryptedPhrStore::new("phr-db"));
//! let mut alice = Patient::new("alice@phr.example", &patient_kgc);
//! let mut proxy = ProxyService::new("hospital-proxy", store.clone());
//!
//! // Her cardiologist is a delegatee in the provider domain.
//! let cardiologist = Identity::new("dr.smith@heart.example");
//! let provider = HealthcareProvider::new(provider_kgc.extract(&cardiologist));
//!
//! // Store an encrypted record and grant access to the illness-history category.
//! let record = HealthRecord::new(
//!     alice.identity().clone(),
//!     Category::IllnessHistory,
//!     "2007 angioplasty",
//!     b"stent placed in LAD, no complications".to_vec(),
//! );
//! let record_id = alice.store_record(&store, &record, &mut rng).unwrap();
//! alice
//!     .grant_access(
//!         Category::IllnessHistory,
//!         &cardiologist,
//!         provider_kgc.public_params(),
//!         &mut proxy,
//!         &mut rng,
//!     )
//!     .unwrap();
//!
//! // The cardiologist requests the record through the proxy and decrypts it.
//! let disclosed = proxy
//!     .disclose(alice.identity(), record_id, &cardiologist)
//!     .unwrap();
//! let plaintext = provider.open(&disclosed).unwrap();
//! assert_eq!(plaintext.body, record.body);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod category;
pub mod durable;
pub mod emergency;
pub mod error;
pub mod metrics;
pub mod patient;
pub mod policy;
pub mod provider;
pub mod proxy_service;
pub mod record;
pub(crate) mod resident;
pub mod source;
pub mod store;

pub use audit::{AuditEvent, AuditLog};
pub use category::Category;
pub use durable::Durability;
pub use error::PhrError;
pub use patient::Patient;
pub use policy::DisclosurePolicy;
pub use provider::HealthcareProvider;
pub use proxy_service::ProxyService;
pub use record::{HealthRecord, RecordId};
pub use source::RecordSource;
pub use store::EncryptedPhrStore;
pub use tibpre_storage::FsyncPolicy;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, PhrError>;
