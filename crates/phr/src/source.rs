//! The record-access boundary a proxy works through.
//!
//! In-process, a [`ProxyService`](crate::ProxyService) reads records straight
//! out of an [`EncryptedPhrStore`].  In the deployed topology the proxy and
//! the store are *different nodes* — the proxy holds re-encryption keys, the
//! store holds ciphertexts — so the proxy's record access goes through this
//! trait instead of the concrete store.  `tibpre-client` implements it over a
//! TCP connection to a store node; the store itself implements it trivially.
//!
//! Reads are fallible (a remote store can be unreachable); the audit hooks
//! are best-effort fire-and-forget, mirroring the store's own infallible
//! logging — a proxy must not refuse a disclosure because the audit channel
//! hiccuped, and the proxy keeps its *own* durable audit trail regardless.

use crate::category::Category;
use crate::record::RecordId;
use crate::store::{EncryptedPhrStore, StoredRecord};
use crate::Result;
use std::sync::Arc;
use tibpre_ibe::Identity;

/// Read (and audit-log) access to an encrypted record collection, local or
/// remote.
pub trait RecordSource: Send + Sync {
    /// Fetches one record by id.
    fn get(&self, id: RecordId) -> Result<Arc<StoredRecord>>;

    /// All record ids owned by `patient`, in insertion order.
    fn list_for_patient(&self, patient: &Identity) -> Result<Vec<RecordId>>;

    /// The patient's record ids in one category, in insertion order.
    fn list_for_patient_category(
        &self,
        patient: &Identity,
        category: &Category,
    ) -> Result<Vec<RecordId>>;

    /// Fetches a run of records by id, one result per input id in input
    /// order.  The default loops over [`RecordSource::get`]; a remote
    /// source overrides this to pipeline the whole run over one
    /// connection instead of paying a round trip per id.
    fn get_many(&self, ids: &[RecordId]) -> Vec<Result<Arc<StoredRecord>>> {
        ids.iter().map(|id| self.get(*id)).collect()
    }

    /// Records a disclosure attempt in the source's audit trail
    /// (best-effort).
    fn log_disclosure(&self, id: RecordId, requester: &Identity, granted: bool);

    /// Records a run of disclosure attempts (best-effort), the batched
    /// form of [`RecordSource::log_disclosure`].  The default loops; a
    /// remote source overrides this to pipeline the run.
    fn log_disclosures(&self, entries: &[(RecordId, Identity, bool)]) {
        for (id, requester, granted) in entries {
            self.log_disclosure(*id, requester, *granted);
        }
    }

    /// Records a policy change in the source's audit trail (best-effort).
    fn log_policy_change(
        &self,
        patient: &Identity,
        category: &Category,
        grantee: &Identity,
        granted: bool,
    );
}

impl RecordSource for EncryptedPhrStore {
    fn get(&self, id: RecordId) -> Result<Arc<StoredRecord>> {
        EncryptedPhrStore::get(self, id)
    }

    fn list_for_patient(&self, patient: &Identity) -> Result<Vec<RecordId>> {
        Ok(EncryptedPhrStore::list_for_patient(self, patient))
    }

    fn list_for_patient_category(
        &self,
        patient: &Identity,
        category: &Category,
    ) -> Result<Vec<RecordId>> {
        Ok(EncryptedPhrStore::list_for_patient_category(
            self, patient, category,
        ))
    }

    fn log_disclosure(&self, id: RecordId, requester: &Identity, granted: bool) {
        EncryptedPhrStore::log_disclosure(self, id, requester, granted)
    }

    fn log_policy_change(
        &self,
        patient: &Identity,
        category: &Category,
        grantee: &Identity,
        granted: bool,
    ) {
        EncryptedPhrStore::log_policy_change(self, patient, category, grantee, granted)
    }
}
