//! The patient agent: owns the delegator key pair, encrypts records, and
//! manages her disclosure policy.

use crate::category::Category;
use crate::policy::DisclosurePolicy;
use crate::proxy_service::ProxyService;
use crate::record::{DisclosedRecord, HealthRecord, RecordId};
use crate::store::EncryptedPhrStore;
use crate::{PhrError, Result};
use rand::{CryptoRng, RngCore};
use tibpre_core::Delegator;
use tibpre_ibe::{IbePublicParams, Identity, Kgc};

/// A patient: the owner (and delegator) of a personal health record.
pub struct Patient {
    delegator: Delegator,
    policy: DisclosurePolicy,
}

impl Patient {
    /// Registers a patient at her KGC (the paper's `KGC1`) and extracts her
    /// single key pair.
    pub fn new(identity: impl AsRef<str>, kgc: &Kgc) -> Self {
        let id = Identity::new(identity);
        Patient {
            delegator: Delegator::new(kgc.public_params().clone(), kgc.extract(&id)),
            policy: DisclosurePolicy::new(),
        }
    }

    /// Wraps an existing delegator (e.g. reconstructed from stored key material).
    pub fn from_delegator(delegator: Delegator) -> Self {
        Patient {
            delegator,
            policy: DisclosurePolicy::new(),
        }
    }

    /// The patient's identity.
    pub fn identity(&self) -> &Identity {
        self.delegator.identity()
    }

    /// The underlying delegator (exposed for the benchmark harness).
    pub fn delegator(&self) -> &Delegator {
        &self.delegator
    }

    /// The patient's current disclosure policy.
    pub fn policy(&self) -> &DisclosurePolicy {
        &self.policy
    }

    /// Encrypts a record under its category's type tag and stores it.
    ///
    /// The record's patient field must be the patient herself — she is the only
    /// party able to run `Encrypt1` under her identity.
    pub fn store_record<R: RngCore + CryptoRng>(
        &self,
        store: &EncryptedPhrStore,
        record: &HealthRecord,
        rng: &mut R,
    ) -> Result<RecordId> {
        if &record.patient != self.identity() {
            return Err(PhrError::PolicyConflict(
                "a patient can only store records she owns",
            ));
        }
        let ciphertext = self.delegator.encrypt_bytes(
            &record.body,
            &record.aad(),
            &record.category.type_tag(),
            rng,
        );
        Ok(store.put(&record.patient, &record.category, &record.title, ciphertext))
    }

    /// Reads back and decrypts one of her own records directly (no proxy involved).
    pub fn read_own_record(
        &self,
        store: &EncryptedPhrStore,
        id: RecordId,
    ) -> Result<DisclosedRecord> {
        let stored = store.get(id)?;
        if &stored.patient != self.identity() {
            return Err(PhrError::AccessDenied {
                category: stored.category.label(),
                requester: self.identity().display(),
            });
        }
        let aad = HealthRecord::associated_data(&stored.patient, &stored.category, &stored.title);
        let body = self
            .delegator
            .decrypt_bytes(&stored.ciphertext, &aad)
            .map_err(PhrError::Pre)?;
        Ok(DisclosedRecord {
            id: stored.id,
            patient: stored.patient.clone(),
            category: stored.category.clone(),
            title: stored.title.clone(),
            body,
        })
    }

    /// Grants a healthcare provider access to one category: creates the
    /// re-encryption key (`Pextract`), installs it at the chosen proxy, and
    /// records the grant in the local policy.
    pub fn grant_access<R: RngCore + CryptoRng>(
        &mut self,
        category: Category,
        grantee: &Identity,
        grantee_domain: &IbePublicParams,
        proxy: &mut ProxyService,
        rng: &mut R,
    ) -> Result<()> {
        if self.policy.is_granted(&category, grantee)
            && proxy.has_grant(self.identity(), &category, grantee)
        {
            return Err(PhrError::PolicyConflict("this grant already exists"));
        }
        let rekey = self
            .delegator
            .make_reencryption_key(grantee, grantee_domain, &category.type_tag(), rng)
            .map_err(PhrError::Pre)?;
        proxy.install_key(rekey);
        self.policy
            .add_grant(category, grantee.clone(), proxy.name());
        Ok(())
    }

    /// Revokes a previously granted delegation: removes the key from the proxy
    /// and the grant from the policy.
    pub fn revoke_access(
        &mut self,
        category: &Category,
        grantee: &Identity,
        proxy: &mut ProxyService,
    ) -> Result<()> {
        let removed_from_proxy = proxy.revoke_key(self.identity(), category, grantee);
        let removed_from_policy = self.policy.remove_grant(category, grantee, proxy.name());
        if removed_from_proxy || removed_from_policy {
            Ok(())
        } else {
            Err(PhrError::PolicyConflict("no such grant to revoke"))
        }
    }
}

impl core::fmt::Debug for Patient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Patient(identity={}, grants={})",
            self.identity(),
            self.policy.grant_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy_service::ProxyService;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tibpre_ibe::Kgc;
    use tibpre_pairing::PairingParams;

    struct Fixture {
        patient_kgc: Kgc,
        provider_kgc: Kgc,
        store: Arc<EncryptedPhrStore>,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(151);
        let params = PairingParams::insecure_toy();
        Fixture {
            patient_kgc: Kgc::setup(params.clone(), "patients", &mut rng),
            provider_kgc: Kgc::setup(params, "providers", &mut rng),
            store: Arc::new(EncryptedPhrStore::new("db")),
            rng,
        }
    }

    #[test]
    fn store_and_read_own_records() {
        let mut f = fixture();
        let alice = Patient::new("alice", &f.patient_kgc);
        let record = HealthRecord::new(
            alice.identity().clone(),
            Category::Vaccinations,
            "tetanus booster",
            b"2008-01-15".to_vec(),
        );
        let id = alice.store_record(&f.store, &record, &mut f.rng).unwrap();
        let read = alice.read_own_record(&f.store, id).unwrap();
        assert_eq!(read.body, b"2008-01-15");
        assert_eq!(read.category, Category::Vaccinations);
        assert_eq!(read.title, "tetanus booster");
        assert_eq!(read.id, id);
    }

    #[test]
    fn cannot_store_records_for_someone_else() {
        let mut f = fixture();
        let alice = Patient::new("alice", &f.patient_kgc);
        let foreign = HealthRecord::new(
            Identity::new("bob"),
            Category::Emergency,
            "not mine",
            b"x".to_vec(),
        );
        assert!(matches!(
            alice.store_record(&f.store, &foreign, &mut f.rng),
            Err(PhrError::PolicyConflict(_))
        ));
    }

    #[test]
    fn cannot_read_other_patients_records() {
        let mut f = fixture();
        let alice = Patient::new("alice", &f.patient_kgc);
        let bob = Patient::new("bob", &f.patient_kgc);
        let record = HealthRecord::new(
            alice.identity().clone(),
            Category::LabResults,
            "glucose",
            b"5.1 mmol/L".to_vec(),
        );
        let id = alice.store_record(&f.store, &record, &mut f.rng).unwrap();
        assert!(matches!(
            bob.read_own_record(&f.store, id),
            Err(PhrError::AccessDenied { .. })
        ));
    }

    #[test]
    fn grant_updates_policy_and_proxy() {
        let mut f = fixture();
        let mut alice = Patient::new("alice", &f.patient_kgc);
        let mut proxy = ProxyService::new("proxy", f.store.clone());
        let doctor = Identity::new("doctor");

        assert_eq!(alice.policy().grant_count(), 0);
        alice
            .grant_access(
                Category::Medication,
                &doctor,
                f.provider_kgc.public_params(),
                &mut proxy,
                &mut f.rng,
            )
            .unwrap();
        assert_eq!(alice.policy().grant_count(), 1);
        assert!(alice.policy().is_granted(&Category::Medication, &doctor));
        assert!(proxy.has_grant(alice.identity(), &Category::Medication, &doctor));
        assert_eq!(proxy.key_count(), 1);

        alice
            .revoke_access(&Category::Medication, &doctor, &mut proxy)
            .unwrap();
        assert_eq!(alice.policy().grant_count(), 0);
        assert!(!proxy.has_grant(alice.identity(), &Category::Medication, &doctor));
        assert_eq!(proxy.key_count(), 0);
    }

    #[test]
    fn duplicate_grant_is_a_conflict_and_missing_revoke_is_an_error() {
        let mut f = fixture();
        let mut alice = Patient::new("alice", &f.patient_kgc);
        let mut proxy = ProxyService::new("proxy", f.store.clone());
        let doctor = Identity::new("doctor");
        alice
            .grant_access(
                Category::Emergency,
                &doctor,
                f.provider_kgc.public_params(),
                &mut proxy,
                &mut f.rng,
            )
            .unwrap();
        assert!(matches!(
            alice.grant_access(
                Category::Emergency,
                &doctor,
                f.provider_kgc.public_params(),
                &mut proxy,
                &mut f.rng,
            ),
            Err(PhrError::PolicyConflict(_))
        ));
        assert!(alice
            .revoke_access(&Category::LabResults, &doctor, &mut proxy)
            .is_err());
    }

    #[test]
    fn from_delegator_preserves_identity_and_debug_hides_keys() {
        let mut f = fixture();
        let id = Identity::new("carol");
        let delegator = Delegator::new(
            f.patient_kgc.public_params().clone(),
            f.patient_kgc.extract(&id),
        );
        let carol = Patient::from_delegator(delegator);
        assert_eq!(carol.identity(), &id);
        let dbg = format!("{carol:?}");
        assert!(dbg.contains("carol"));
        let _ = &mut f.rng;
    }
}
