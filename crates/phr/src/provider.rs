//! Healthcare providers — the delegatees of the PHR scenario.

use crate::proxy_service::DisclosureBundle;
use crate::record::{DisclosedRecord, HealthRecord};
use crate::{PhrError, Result};
use tibpre_core::Delegatee;
use tibpre_ibe::{IbePrivateKey, Identity};

/// A healthcare provider (doctor, dietician, emergency team, …) holding a key
/// extracted by *their own* KGC (the paper's `KGC2`).
pub struct HealthcareProvider {
    delegatee: Delegatee,
}

impl HealthcareProvider {
    /// Wraps the provider's extracted private key.
    pub fn new(private_key: IbePrivateKey) -> Self {
        HealthcareProvider {
            delegatee: Delegatee::new(private_key),
        }
    }

    /// The provider's identity.
    pub fn identity(&self) -> &Identity {
        self.delegatee.identity()
    }

    /// The underlying delegatee (exposed for the benchmark harness).
    pub fn delegatee(&self) -> &Delegatee {
        &self.delegatee
    }

    /// Opens a disclosure bundle received from a proxy.
    pub fn open(&self, bundle: &DisclosureBundle) -> Result<DisclosedRecord> {
        let aad = HealthRecord::associated_data(&bundle.patient, &bundle.category, &bundle.title);
        let body = self
            .delegatee
            .decrypt_bytes(&bundle.ciphertext, &aad)
            .map_err(PhrError::Pre)?;
        Ok(DisclosedRecord {
            id: bundle.id,
            patient: bundle.patient.clone(),
            category: bundle.category.clone(),
            title: bundle.title.clone(),
            body,
        })
    }
}

impl core::fmt::Debug for HealthcareProvider {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "HealthcareProvider(identity={})", self.identity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::Category;
    use crate::patient::Patient;
    use crate::proxy_service::ProxyService;
    use crate::store::EncryptedPhrStore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tibpre_ibe::Kgc;
    use tibpre_pairing::PairingParams;

    #[test]
    fn provider_opens_entitled_bundles_and_detects_metadata_tampering() {
        let mut rng = StdRng::seed_from_u64(161);
        let params = PairingParams::insecure_toy();
        let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
        let provider_kgc = Kgc::setup(params, "providers", &mut rng);
        let store = Arc::new(EncryptedPhrStore::new("db"));
        let mut proxy = ProxyService::new("proxy", store.clone());
        let mut alice = Patient::new("alice", &patient_kgc);
        let doctor = Identity::new("doctor");
        let provider = HealthcareProvider::new(provider_kgc.extract(&doctor));
        assert_eq!(provider.identity(), &doctor);

        let record = HealthRecord::new(
            alice.identity().clone(),
            Category::Medication,
            "rx-2008-03",
            b"metformin 500mg".to_vec(),
        );
        let id = alice.store_record(&store, &record, &mut rng).unwrap();
        alice
            .grant_access(
                Category::Medication,
                &doctor,
                provider_kgc.public_params(),
                &mut proxy,
                &mut rng,
            )
            .unwrap();
        let bundle = proxy.disclose(alice.identity(), id, &doctor).unwrap();
        let opened = provider.open(&bundle).unwrap();
        assert_eq!(opened.body, b"metformin 500mg");

        // If the proxy (or the store) tampers with the bundle metadata, the
        // AEAD associated data no longer matches and decryption fails.
        let mut forged = bundle.clone();
        forged.title = "rx-2008-04".to_string();
        assert!(provider.open(&forged).is_err());
        let mut forged = bundle.clone();
        forged.category = Category::Emergency;
        assert!(provider.open(&forged).is_err());
        let mut forged = bundle;
        forged.patient = Identity::new("mallory");
        assert!(provider.open(&forged).is_err());
    }
}
