//! Per-category proxy services: they hold re-encryption keys, transform
//! ciphertexts on request, and log every disclosure.
//!
//! In the paper's design the patient "finds a proxy" per category and installs
//! the corresponding re-encryption key there.  A proxy is semi-trusted: it is
//! expected to convert ciphertexts honestly, but even a fully compromised
//! proxy only exposes the categories whose keys it holds (Theorem 1), which is
//! exactly what experiment E6 measures.
//!
//! A proxy can optionally be given a [`ReEncryptEngine`] (see
//! [`ProxyService::with_engine`]); multi-record disclosures then fan out
//! across the engine's workers, with output bit-identical to the sequential
//! path.
//!
//! A proxy can also be opened *durably* ([`ProxyService::open`]): installed
//! re-encryption keys and the proxy's own audit log are then written to a
//! CRC-framed WAL and replayed on the next open, so a restart loses neither
//! the grants nor the disclosure history.

use crate::audit::{AuditEvent, AuditLog};
use crate::category::Category;
use crate::durable::{self, Durability, ProxyWalOp};
use crate::record::RecordId;
use crate::source::RecordSource;
use crate::store::StoredRecord;
use crate::{PhrError, Result};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;
use tibpre_core::{hybrid, Proxy, ReEncryptedHybridCiphertext, ReEncryptionKey};
use tibpre_engine::ReEncryptEngine;
use tibpre_ibe::Identity;
use tibpre_storage::WalWriter;

/// A re-encrypted record on its way to a healthcare provider.
#[derive(Debug, Clone)]
pub struct DisclosureBundle {
    /// The record identifier.
    pub id: RecordId,
    /// The owning patient.
    pub patient: Identity,
    /// The record category.
    pub category: Category,
    /// The non-secret title (needed to reconstruct the AEAD associated data).
    pub title: String,
    /// The re-encrypted hybrid ciphertext.
    pub ciphertext: ReEncryptedHybridCiphertext,
}

impl tibpre_wire::WireEncode for DisclosureBundle {
    /// `id ‖ patient ‖ category ‖ title ‖ ciphertext_len ‖ ciphertext` —
    /// the same field order as a stored record, with the re-encrypted
    /// ciphertext nested bare (inheriting the container's version).
    fn encode(&self, w: &mut tibpre_wire::Writer) {
        w.put_u64(self.id.0);
        w.put_bytes(self.patient.as_bytes());
        w.put_bytes(self.category.label().as_bytes());
        w.put_bytes(self.title.as_bytes());
        w.put_nested(|w| self.ciphertext.encode(w));
    }
}

impl tibpre_wire::WireDecode for DisclosureBundle {
    type Ctx = tibpre_pairing::DecodeCtx;

    fn decode(
        r: &mut tibpre_wire::Reader<'_>,
        ctx: &Self::Ctx,
    ) -> core::result::Result<Self, tibpre_wire::DecodeError> {
        let id = RecordId(r.u64()?);
        let patient = Identity::from_bytes(r.bytes()?.to_vec());
        let category = Category::from_label(&r.string()?);
        let title = r.string()?;
        let ciphertext_bytes = r.bytes()?;
        let mut cr = tibpre_wire::Reader::with_version(ciphertext_bytes, r.version());
        let ciphertext = ReEncryptedHybridCiphertext::decode(&mut cr, ctx)?;
        cr.finish()?;
        Ok(DisclosureBundle {
            id,
            patient,
            category,
            title,
            ciphertext,
        })
    }
}

/// A proxy service bound to one record source — an in-process
/// [`EncryptedPhrStore`](crate::EncryptedPhrStore) or a client for a remote
/// store node (any [`RecordSource`]).
pub struct ProxyService {
    name: String,
    store: Arc<dyn RecordSource>,
    proxy: Proxy,
    engine: ReEncryptEngine,
    audit: Mutex<AuditLog>,
    /// The durable proxy log (`None` for in-memory proxies).  Lock order:
    /// `audit` before `wal`, everywhere.
    wal: Option<Mutex<WalWriter>>,
    /// Advisory lock excluding concurrent opens of the same proxy log; held
    /// for the proxy's lifetime, released by the OS on exit or crash.
    _wal_lock: Option<tibpre_storage::DirLock>,
}

impl ProxyService {
    /// Creates a proxy service with no keys installed.  Conversions run
    /// sequentially; use [`Self::with_engine`] (or [`Self::set_engine`]) for
    /// a multi-threaded proxy.
    pub fn new(name: impl AsRef<str>, store: Arc<dyn RecordSource>) -> Self {
        Self::with_engine(name, store, ReEncryptEngine::sequential())
    }

    /// Creates a proxy service whose multi-record disclosures fan out over
    /// the given engine's workers.  An engine with one worker behaves exactly
    /// like [`Self::new`].
    pub fn with_engine(
        name: impl AsRef<str>,
        store: Arc<dyn RecordSource>,
        engine: ReEncryptEngine,
    ) -> Self {
        ProxyService {
            name: name.as_ref().to_string(),
            store,
            proxy: Proxy::new(name.as_ref()),
            engine,
            audit: Mutex::new(AuditLog::new()),
            wal: None,
            _wal_lock: None,
        }
    }

    /// Opens (or creates) a *durable* proxy service: installed re-encryption
    /// keys and the proxy's own audit trail are logged to
    /// `dir/proxy-<name>.wal` and replayed here, so a restarted proxy still
    /// holds exactly the grants the patients installed.  The log is
    /// truncated at the first torn or corrupt frame, like every WAL in this
    /// workspace.
    ///
    /// Store-side audit entries are *not* replayed from this log — the store
    /// has its own durable trail ([`crate::EncryptedPhrStore::open`]); replaying
    /// them here would double-log every disclosure.
    pub fn open(
        name: impl AsRef<str>,
        store: Arc<dyn RecordSource>,
        dir: impl AsRef<Path>,
        durability: &Durability,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = durable::proxy_wal_path(dir, name.as_ref());
        // Same guard as the store: a second concurrent holder would truncate
        // frames this one is appending and interleave writes.
        let lock = tibpre_storage::DirLock::acquire(&path.with_extension("wal.lock"))?;
        let scan = WalWriter::recover(&path, 0)?;

        let mut proxy = Proxy::new(name.as_ref());
        let mut audit = AuditLog::new();
        for payload in &scan.frames {
            // A checksummed frame that fails to decode is not storage
            // corruption — it means wrong pairing parameters or an unknown
            // format tag.  Fail the open rather than truncate intact data
            // (same policy as the store's recovery path).
            let op = ProxyWalOp::from_bytes(durability.params(), payload).map_err(|_| {
                PhrError::CorruptedRecord(
                    "CRC-valid proxy WAL frame failed to decode; check pairing \
                     parameters and binary version — refusing to truncate intact data",
                )
            })?;
            match op {
                ProxyWalOp::Audit { event } => audit.replay(event),
                ProxyWalOp::InstallKey { key } => {
                    proxy.install_key(*key);
                }
                ProxyWalOp::RevokeKey {
                    patient,
                    category,
                    grantee,
                } => {
                    proxy.revoke_key(&patient, &category.type_tag(), &grantee);
                }
            }
        }
        // Every frame decoded (a failure returned above), so the valid
        // prefix ends where the scanner stopped.
        let wal = WalWriter::open(&path, scan.valid_len, durability.fsync_policy())?;

        Ok(ProxyService {
            name: name.as_ref().to_string(),
            store,
            proxy,
            engine: ReEncryptEngine::sequential(),
            audit: Mutex::new(audit),
            wal: Some(Mutex::new(wal)),
            _wal_lock: Some(lock),
        })
    }

    /// Whether this proxy persists its keys and audit log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Appends already-encoded frame payloads to the proxy log as one group
    /// commit.  Fail-stop on I/O errors, like the store's WAL (see
    /// [`crate::store`]'s module docs).
    fn persist(&self, payloads: &[Vec<u8>]) {
        let Some(wal) = &self.wal else { return };
        let mut wal = wal.lock();
        for payload in payloads {
            wal.append(payload);
        }
        wal.commit()
            .expect("proxy WAL append failed; cannot continue without durability (fail-stop)");
    }

    /// Replaces the re-encryption engine (e.g. to resize the worker pool).
    pub fn set_engine(&mut self, engine: ReEncryptEngine) {
        self.engine = engine;
    }

    /// The engine multi-record disclosures run on.
    pub fn engine(&self) -> &ReEncryptEngine {
        &self.engine
    }

    /// The proxy's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Installs a re-encryption key (called by the patient when granting access).
    pub fn install_key(&mut self, key: ReEncryptionKey) {
        let patient = key.delegator().clone();
        let grantee = key.delegatee().clone();
        let category = Category::from_label(&key.type_tag().display());
        // Encoded from the borrowed key: no clone of the key (or its pairing
        // tables) on the grant path.
        let persisted_key = self.wal.is_some().then(|| ProxyWalOp::encode_install(&key));
        self.proxy.install_key(key);
        let mut audit = self.audit.lock();
        let at = audit.tick();
        let event = AuditEvent::AccessGranted {
            patient: patient.clone(),
            category: category.clone(),
            grantee: grantee.clone(),
            at,
        };
        if let Some(install) = persisted_key {
            // One group commit covers the key and its audit entry.
            let audit_frame = ProxyWalOp::Audit {
                event: event.clone(),
            }
            .to_bytes();
            self.persist(&[install, audit_frame]);
        }
        audit.append(event);
        self.store
            .log_policy_change(&patient, &category, &grantee, true);
    }

    /// Removes a re-encryption key (revocation).
    pub fn revoke_key(
        &mut self,
        patient: &Identity,
        category: &Category,
        grantee: &Identity,
    ) -> bool {
        // Check first, mutate after the log write: a crash must never leave
        // a revocation that took effect in memory but is absent from the
        // log (the revoked grantee would regain access on restart).
        if !self.proxy.has_key(patient, &category.type_tag(), grantee) {
            return false;
        }
        let mut audit = self.audit.lock();
        let at = audit.tick();
        let event = AuditEvent::AccessRevoked {
            patient: patient.clone(),
            category: category.clone(),
            grantee: grantee.clone(),
            at,
        };
        if self.wal.is_some() {
            self.persist(&[
                ProxyWalOp::RevokeKey {
                    patient: patient.clone(),
                    category: category.clone(),
                    grantee: grantee.clone(),
                }
                .to_bytes(),
                ProxyWalOp::Audit {
                    event: event.clone(),
                }
                .to_bytes(),
            ]);
        }
        audit.append(event);
        drop(audit);
        self.proxy
            .revoke_key(patient, &category.type_tag(), grantee);
        self.store
            .log_policy_change(patient, category, grantee, false);
        true
    }

    /// Number of re-encryption keys currently installed.
    pub fn key_count(&self) -> usize {
        self.proxy.key_count()
    }

    /// Whether a grant is active for the given triple.
    pub fn has_grant(&self, patient: &Identity, category: &Category, grantee: &Identity) -> bool {
        self.proxy.has_key(patient, &category.type_tag(), grantee)
    }

    /// The keys a compromise of this proxy would expose (used by experiment E6).
    pub fn leaked_keys_on_compromise(&self) -> Vec<ReEncryptionKey> {
        self.proxy.installed_keys().cloned().collect()
    }

    /// Handles a disclosure request: looks up the record, re-encrypts its KEM
    /// header with the matching key, and logs the outcome.
    pub fn disclose(
        &self,
        patient: &Identity,
        record_id: RecordId,
        requester: &Identity,
    ) -> Result<DisclosureBundle> {
        let stored = self.store.get(record_id)?;
        if &stored.patient != patient {
            self.store.log_disclosure(record_id, requester, false);
            return Err(PhrError::RecordNotFound);
        }
        let key = match self
            .proxy
            .key_for(patient, &stored.category.type_tag(), requester)
        {
            Some(key) => key,
            None => {
                self.record_denial(record_id, requester);
                return Err(PhrError::AccessDenied {
                    category: stored.category.label(),
                    requester: requester.display(),
                });
            }
        };
        let ciphertext = hybrid::re_encrypt_hybrid(&stored.ciphertext, key).map_err(|e| {
            self.record_denial(record_id, requester);
            PhrError::Pre(e)
        })?;
        self.record_success(record_id, requester);
        Ok(DisclosureBundle {
            id: stored.id,
            patient: stored.patient.clone(),
            category: stored.category.clone(),
            title: stored.title.clone(),
            ciphertext,
        })
    }

    /// Handles a run of *independent* disclosure requests as one batch —
    /// the seam the server's cross-request scheduler feeds.  Per item the
    /// observable behaviour (result value, proxy audit events, store-side
    /// log entries, and their order) is exactly that of calling
    /// [`Self::disclose`] sequentially in input order; what the batch
    /// buys is amortization:
    ///
    /// * all records are fetched through one [`RecordSource::get_many`]
    ///   call (a remote store answers the whole run pipelined),
    /// * conversions sharing a re-encryption key run through the engine's
    ///   batched path (shared pairing precomputation, bit-identical
    ///   output),
    /// * the audit writes are group-committed: one WAL commit and one
    ///   batched store-side log run for the whole batch.
    ///
    /// The result vector has exactly one entry per input, in input order.
    pub fn disclose_batch(
        &self,
        items: &[(Identity, RecordId, Identity)],
    ) -> Vec<Result<DisclosureBundle>> {
        if items.is_empty() {
            return Vec::new();
        }
        if items.len() == 1 {
            let (patient, id, requester) = &items[0];
            return vec![self.disclose(patient, *id, requester)];
        }
        let ids: Vec<RecordId> = items.iter().map(|(_, id, _)| *id).collect();
        let fetched = self.store.get_many(&ids);

        /// What each item owes the audit trails, mirroring the branches of
        /// [`ProxyService::disclose`].
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            /// Nothing logged (the record fetch itself failed).
            Silent,
            /// Store-side log only (patient mismatch logs no proxy event).
            StoreOnly,
            /// Proxy audit denial + store-side log.
            Denied,
            /// Proxy audit success + store-side log.
            Granted,
        }

        let mut results: Vec<Option<Result<DisclosureBundle>>> = vec![None; items.len()];
        let mut marks = vec![Mark::Silent; items.len()];
        // Items that resolved a key, grouped for batched conversion.  The
        // same (patient, type, requester) triple resolves to the same key
        // object, so pointer identity is the group key.
        #[allow(clippy::type_complexity)]
        let mut groups: Vec<(&ReEncryptionKey, Vec<(usize, Arc<StoredRecord>)>)> = Vec::new();

        for (i, ((patient, _, requester), fetched)) in items.iter().zip(fetched).enumerate() {
            let stored = match fetched {
                Ok(stored) => stored,
                Err(e) => {
                    results[i] = Some(Err(e));
                    continue;
                }
            };
            if &stored.patient != patient {
                marks[i] = Mark::StoreOnly;
                results[i] = Some(Err(PhrError::RecordNotFound));
                continue;
            }
            match self
                .proxy
                .key_for(patient, &stored.category.type_tag(), requester)
            {
                Some(key) => match groups.iter_mut().find(|(k, _)| core::ptr::eq(*k, key)) {
                    Some((_, members)) => members.push((i, stored)),
                    None => groups.push((key, vec![(i, stored)])),
                },
                None => {
                    marks[i] = Mark::Denied;
                    results[i] = Some(Err(PhrError::AccessDenied {
                        category: stored.category.label(),
                        requester: requester.display(),
                    }));
                }
            }
        }

        for (key, members) in groups {
            // The batch APIs fail atomically on the first mismatched type;
            // the per-item contract is a per-item error.  Screen mismatched
            // headers onto the single-record path so only clean members
            // share the batch call.
            let (clean, mismatched): (Vec<_>, Vec<_>) = members
                .into_iter()
                .partition(|(_, stored)| stored.ciphertext.type_tag() == key.type_tag());
            let mut convert_one = |i: usize, stored: &StoredRecord| match hybrid::re_encrypt_hybrid(
                &stored.ciphertext,
                key,
            ) {
                Ok(ciphertext) => {
                    marks[i] = Mark::Granted;
                    results[i] = Some(Ok(DisclosureBundle {
                        id: stored.id,
                        patient: stored.patient.clone(),
                        category: stored.category.clone(),
                        title: stored.title.clone(),
                        ciphertext,
                    }));
                }
                Err(e) => {
                    marks[i] = Mark::Denied;
                    results[i] = Some(Err(PhrError::Pre(e)));
                }
            };
            for (i, stored) in &mismatched {
                convert_one(*i, stored);
            }
            if clean.is_empty() {
                continue;
            }
            match self
                .engine
                .re_encrypt_hybrid_batch(clean.iter().map(|(_, s)| &s.ciphertext), key)
            {
                Ok(converted) => {
                    for ((i, stored), ciphertext) in clean.iter().zip(converted) {
                        marks[*i] = Mark::Granted;
                        results[*i] = Some(Ok(DisclosureBundle {
                            id: stored.id,
                            patient: stored.patient.clone(),
                            category: stored.category.clone(),
                            title: stored.title.clone(),
                            ciphertext,
                        }));
                    }
                }
                Err(_) => {
                    // Screening should make a failing batch unreachable;
                    // fall back to per-item conversion so the batch path
                    // can never change observable semantics.
                    for (i, stored) in &clean {
                        convert_one(*i, stored);
                    }
                }
            }
        }

        // One audit pass in input order: a single audit lock, a single WAL
        // group commit, and a single batched store-side log run, producing
        // exactly the events a sequential run would have.
        let mut store_entries: Vec<(RecordId, Identity, bool)> = Vec::new();
        {
            let mut audit = self.audit.lock();
            let mut frames = Vec::new();
            let mut events = Vec::new();
            for ((_, id, requester), mark) in items.iter().zip(&marks) {
                match mark {
                    Mark::Silent => {}
                    Mark::StoreOnly => store_entries.push((*id, requester.clone(), false)),
                    Mark::Denied | Mark::Granted => {
                        let granted = *mark == Mark::Granted;
                        let at = audit.tick();
                        let event = if granted {
                            AuditEvent::DisclosurePerformed {
                                id: *id,
                                requester: requester.clone(),
                                at,
                            }
                        } else {
                            AuditEvent::DisclosureDenied {
                                id: *id,
                                requester: requester.clone(),
                                at,
                            }
                        };
                        if self.wal.is_some() {
                            frames.push(
                                ProxyWalOp::Audit {
                                    event: event.clone(),
                                }
                                .to_bytes(),
                            );
                        }
                        events.push(event);
                        store_entries.push((*id, requester.clone(), granted));
                    }
                }
            }
            if !frames.is_empty() {
                self.persist(&frames);
            }
            for event in events {
                audit.append(event);
            }
        }
        if !store_entries.is_empty() {
            self.store.log_disclosures(&store_entries);
        }

        results
            .into_iter()
            .map(|r| r.expect("every batch item resolved to a result"))
            .collect()
    }

    /// Discloses every record of one category the requester is entitled to.
    ///
    /// Multi-record disclosure goes through the batched re-encryption path:
    /// the re-encryption key is looked up once and its one-time pairing
    /// precomputation is shared across every record's KEM header, so a
    /// category dump costs far less than the same number of single-record
    /// [`Self::disclose`] calls used to.  On a proxy built with
    /// [`Self::with_engine`], the batch additionally fans out across the
    /// engine's workers (the result is bit-identical either way).
    pub fn disclose_category(
        &self,
        patient: &Identity,
        category: &Category,
        requester: &Identity,
    ) -> Result<Vec<DisclosureBundle>> {
        let ids = self.store.list_for_patient_category(patient, category)?;
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        let mut records = Vec::with_capacity(ids.len());
        for id in ids {
            let stored = self.store.get(id)?;
            if &stored.patient != patient {
                self.store.log_disclosure(id, requester, false);
                return Err(PhrError::RecordNotFound);
            }
            records.push(stored);
        }
        let Some(key) = self.proxy.key_for(patient, &category.type_tag(), requester) else {
            self.record_denial(records[0].id, requester);
            return Err(PhrError::AccessDenied {
                category: category.label(),
                requester: requester.display(),
            });
        };
        let converted = self
            .engine
            .re_encrypt_hybrid_batch(records.iter().map(|r| &r.ciphertext), key)
            .map_err(|e| {
                // Attribute the denial to the record that made the batch
                // fail: the batch APIs fail atomically on the first (lowest
                // index) header whose type does not match the key.
                let failed = records
                    .iter()
                    .find(|r| r.ciphertext.type_tag() != key.type_tag())
                    .unwrap_or(&records[0]);
                self.record_denial(failed.id, requester);
                PhrError::Pre(e)
            })?;
        let mut bundles = Vec::with_capacity(records.len());
        for (stored, ciphertext) in records.into_iter().zip(converted) {
            self.record_success(stored.id, requester);
            bundles.push(DisclosureBundle {
                id: stored.id,
                patient: stored.patient.clone(),
                category: stored.category.clone(),
                title: stored.title.clone(),
                ciphertext,
            });
        }
        Ok(bundles)
    }

    /// What a *corrupted* proxy could do: try to convert every record of the
    /// patient with every key it holds, ignoring the type checks.  Returns the
    /// record identifiers whose conversion succeeded — i.e. the extent of the
    /// breach.  Used by the proxy-compromise experiment (E6) and the
    /// `proxy_compromise` example binary, which contrasts this with the
    /// identity-only baseline where one key converts *everything*.
    ///
    /// The paper's containment claim (Theorem 1), executable:
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    /// use std::sync::Arc;
    /// use tibpre_ibe::{Identity, Kgc};
    /// use tibpre_pairing::PairingParams;
    /// use tibpre_phr::category::Category;
    /// use tibpre_phr::patient::Patient;
    /// use tibpre_phr::proxy_service::ProxyService;
    /// use tibpre_phr::record::HealthRecord;
    /// use tibpre_phr::store::EncryptedPhrStore;
    ///
    /// let mut rng = StdRng::seed_from_u64(13);
    /// let params = PairingParams::insecure_toy();
    /// let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
    /// let provider_kgc = Kgc::setup(params.clone(), "providers", &mut rng);
    ///
    /// let store = Arc::new(EncryptedPhrStore::new("db"));
    /// let mut alice = Patient::new("alice@phr.example", &patient_kgc);
    /// let mut diet_proxy = ProxyService::new("diet-proxy", store.clone());
    ///
    /// // One record per category; only the diet category is delegated
    /// // through this proxy.
    /// for (category, body) in [
    ///     (Category::FoodStatistics, "low sodium"),
    ///     (Category::IllnessHistory, "2007 angioplasty"),
    /// ] {
    ///     let record = HealthRecord::new(
    ///         alice.identity().clone(),
    ///         category,
    ///         "entry",
    ///         body.as_bytes().to_vec(),
    ///     );
    ///     alice.store_record(&store, &record, &mut rng).unwrap();
    /// }
    /// let dietician = Identity::new("dietician@wellness.example");
    /// alice
    ///     .grant_access(
    ///         Category::FoodStatistics,
    ///         &dietician,
    ///         provider_kgc.public_params(),
    ///         &mut diet_proxy,
    ///         &mut rng,
    ///     )
    ///     .unwrap();
    ///
    /// // The proxy is compromised by a colluding dietician: the breach is
    /// // exactly the one delegated category — one record, not two.
    /// let exposed = diet_proxy.simulate_compromise(alice.identity(), &dietician);
    /// assert_eq!(exposed.len(), 1);
    /// assert_eq!(
    ///     store.get(exposed[0]).unwrap().category,
    ///     Category::FoodStatistics
    /// );
    /// ```
    pub fn simulate_compromise(&self, patient: &Identity, attacker: &Identity) -> Vec<RecordId> {
        let mut exposed = Vec::new();
        for id in self.store.list_for_patient(patient).unwrap_or_default() {
            if let Ok(stored) = self.store.get(id) {
                let converted = self.proxy.installed_keys().any(|key| {
                    key.delegatee() == attacker
                        && hybrid::re_encrypt_hybrid(&stored.ciphertext, key).is_ok()
                });
                if converted {
                    exposed.push(id);
                }
            }
        }
        exposed
    }

    /// A snapshot of the proxy's own audit trail.
    pub fn audit_snapshot(&self) -> Vec<AuditEvent> {
        self.audit.lock().events().to_vec()
    }

    fn record_success(&self, record_id: RecordId, requester: &Identity) {
        let mut audit = self.audit.lock();
        let at = audit.tick();
        let event = AuditEvent::DisclosurePerformed {
            id: record_id,
            requester: requester.clone(),
            at,
        };
        if self.wal.is_some() {
            self.persist(&[ProxyWalOp::Audit {
                event: event.clone(),
            }
            .to_bytes()]);
        }
        audit.append(event);
        drop(audit);
        self.store.log_disclosure(record_id, requester, true);
    }

    fn record_denial(&self, record_id: RecordId, requester: &Identity) {
        let mut audit = self.audit.lock();
        let at = audit.tick();
        let event = AuditEvent::DisclosureDenied {
            id: record_id,
            requester: requester.clone(),
            at,
        };
        if self.wal.is_some() {
            self.persist(&[ProxyWalOp::Audit {
                event: event.clone(),
            }
            .to_bytes()]);
        }
        audit.append(event);
        drop(audit);
        self.store.log_disclosure(record_id, requester, false);
    }
}

impl core::fmt::Debug for ProxyService {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ProxyService(name={}, keys={})",
            self.name,
            self.proxy.key_count()
        )
    }
}
