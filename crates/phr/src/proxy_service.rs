//! Per-category proxy services: they hold re-encryption keys, transform
//! ciphertexts on request, and log every disclosure.
//!
//! In the paper's design the patient "finds a proxy" per category and installs
//! the corresponding re-encryption key there.  A proxy is semi-trusted: it is
//! expected to convert ciphertexts honestly, but even a fully compromised
//! proxy only exposes the categories whose keys it holds (Theorem 1), which is
//! exactly what experiment E6 measures.
//!
//! A proxy can optionally be given a [`ReEncryptEngine`] (see
//! [`ProxyService::with_engine`]); multi-record disclosures then fan out
//! across the engine's workers, with output bit-identical to the sequential
//! path.

use crate::audit::{AuditEvent, AuditLog};
use crate::category::Category;
use crate::record::RecordId;
use crate::store::EncryptedPhrStore;
use crate::{PhrError, Result};
use parking_lot::Mutex;
use std::sync::Arc;
use tibpre_core::{hybrid, Proxy, ReEncryptedHybridCiphertext, ReEncryptionKey};
use tibpre_engine::ReEncryptEngine;
use tibpre_ibe::Identity;

/// A re-encrypted record on its way to a healthcare provider.
#[derive(Debug, Clone)]
pub struct DisclosureBundle {
    /// The record identifier.
    pub id: RecordId,
    /// The owning patient.
    pub patient: Identity,
    /// The record category.
    pub category: Category,
    /// The non-secret title (needed to reconstruct the AEAD associated data).
    pub title: String,
    /// The re-encrypted hybrid ciphertext.
    pub ciphertext: ReEncryptedHybridCiphertext,
}

/// A proxy service bound to one encrypted store.
pub struct ProxyService {
    name: String,
    store: Arc<EncryptedPhrStore>,
    proxy: Proxy,
    engine: ReEncryptEngine,
    audit: Mutex<AuditLog>,
}

impl ProxyService {
    /// Creates a proxy service with no keys installed.  Conversions run
    /// sequentially; use [`Self::with_engine`] (or [`Self::set_engine`]) for
    /// a multi-threaded proxy.
    pub fn new(name: impl AsRef<str>, store: Arc<EncryptedPhrStore>) -> Self {
        Self::with_engine(name, store, ReEncryptEngine::sequential())
    }

    /// Creates a proxy service whose multi-record disclosures fan out over
    /// the given engine's workers.  An engine with one worker behaves exactly
    /// like [`Self::new`].
    pub fn with_engine(
        name: impl AsRef<str>,
        store: Arc<EncryptedPhrStore>,
        engine: ReEncryptEngine,
    ) -> Self {
        ProxyService {
            name: name.as_ref().to_string(),
            store,
            proxy: Proxy::new(name.as_ref()),
            engine,
            audit: Mutex::new(AuditLog::new()),
        }
    }

    /// Replaces the re-encryption engine (e.g. to resize the worker pool).
    pub fn set_engine(&mut self, engine: ReEncryptEngine) {
        self.engine = engine;
    }

    /// The engine multi-record disclosures run on.
    pub fn engine(&self) -> &ReEncryptEngine {
        &self.engine
    }

    /// The proxy's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Installs a re-encryption key (called by the patient when granting access).
    pub fn install_key(&mut self, key: ReEncryptionKey) {
        let patient = key.delegator().clone();
        let grantee = key.delegatee().clone();
        let category = Category::from_label(&key.type_tag().display());
        self.proxy.install_key(key);
        let mut audit = self.audit.lock();
        let at = audit.tick();
        audit.append(AuditEvent::AccessGranted {
            patient: patient.clone(),
            category: category.clone(),
            grantee: grantee.clone(),
            at,
        });
        self.store
            .log_policy_change(&patient, &category, &grantee, true);
    }

    /// Removes a re-encryption key (revocation).
    pub fn revoke_key(
        &mut self,
        patient: &Identity,
        category: &Category,
        grantee: &Identity,
    ) -> bool {
        let removed = self
            .proxy
            .revoke_key(patient, &category.type_tag(), grantee)
            .is_some();
        if removed {
            let mut audit = self.audit.lock();
            let at = audit.tick();
            audit.append(AuditEvent::AccessRevoked {
                patient: patient.clone(),
                category: category.clone(),
                grantee: grantee.clone(),
                at,
            });
            self.store
                .log_policy_change(patient, category, grantee, false);
        }
        removed
    }

    /// Number of re-encryption keys currently installed.
    pub fn key_count(&self) -> usize {
        self.proxy.key_count()
    }

    /// Whether a grant is active for the given triple.
    pub fn has_grant(&self, patient: &Identity, category: &Category, grantee: &Identity) -> bool {
        self.proxy.has_key(patient, &category.type_tag(), grantee)
    }

    /// The keys a compromise of this proxy would expose (used by experiment E6).
    pub fn leaked_keys_on_compromise(&self) -> Vec<ReEncryptionKey> {
        self.proxy.installed_keys().cloned().collect()
    }

    /// Handles a disclosure request: looks up the record, re-encrypts its KEM
    /// header with the matching key, and logs the outcome.
    pub fn disclose(
        &self,
        patient: &Identity,
        record_id: RecordId,
        requester: &Identity,
    ) -> Result<DisclosureBundle> {
        let stored = self.store.get(record_id)?;
        if &stored.patient != patient {
            self.store.log_disclosure(record_id, requester, false);
            return Err(PhrError::RecordNotFound);
        }
        let key = match self
            .proxy
            .key_for(patient, &stored.category.type_tag(), requester)
        {
            Some(key) => key,
            None => {
                self.record_denial(record_id, requester);
                return Err(PhrError::AccessDenied {
                    category: stored.category.label(),
                    requester: requester.display(),
                });
            }
        };
        let ciphertext = hybrid::re_encrypt_hybrid(&stored.ciphertext, key).map_err(|e| {
            self.record_denial(record_id, requester);
            PhrError::Pre(e)
        })?;
        self.record_success(record_id, requester);
        Ok(DisclosureBundle {
            id: stored.id,
            patient: stored.patient,
            category: stored.category,
            title: stored.title,
            ciphertext,
        })
    }

    /// Discloses every record of one category the requester is entitled to.
    ///
    /// Multi-record disclosure goes through the batched re-encryption path:
    /// the re-encryption key is looked up once and its one-time pairing
    /// precomputation is shared across every record's KEM header, so a
    /// category dump costs far less than the same number of single-record
    /// [`Self::disclose`] calls used to.  On a proxy built with
    /// [`Self::with_engine`], the batch additionally fans out across the
    /// engine's workers (the result is bit-identical either way).
    pub fn disclose_category(
        &self,
        patient: &Identity,
        category: &Category,
        requester: &Identity,
    ) -> Result<Vec<DisclosureBundle>> {
        let ids = self.store.list_for_patient_category(patient, category);
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        let mut records = Vec::with_capacity(ids.len());
        for id in ids {
            let stored = self.store.get(id)?;
            if &stored.patient != patient {
                self.store.log_disclosure(id, requester, false);
                return Err(PhrError::RecordNotFound);
            }
            records.push(stored);
        }
        let Some(key) = self.proxy.key_for(patient, &category.type_tag(), requester) else {
            self.record_denial(records[0].id, requester);
            return Err(PhrError::AccessDenied {
                category: category.label(),
                requester: requester.display(),
            });
        };
        let converted = self
            .engine
            .re_encrypt_hybrid_batch(records.iter().map(|r| &r.ciphertext), key)
            .map_err(|e| {
                // Attribute the denial to the record that made the batch
                // fail: the batch APIs fail atomically on the first (lowest
                // index) header whose type does not match the key.
                let failed = records
                    .iter()
                    .find(|r| r.ciphertext.type_tag() != key.type_tag())
                    .unwrap_or(&records[0]);
                self.record_denial(failed.id, requester);
                PhrError::Pre(e)
            })?;
        let mut bundles = Vec::with_capacity(records.len());
        for (stored, ciphertext) in records.into_iter().zip(converted) {
            self.record_success(stored.id, requester);
            bundles.push(DisclosureBundle {
                id: stored.id,
                patient: stored.patient,
                category: stored.category,
                title: stored.title,
                ciphertext,
            });
        }
        Ok(bundles)
    }

    /// What a *corrupted* proxy could do: try to convert every record of the
    /// patient with every key it holds, ignoring the type checks.  Returns the
    /// record identifiers whose conversion succeeded — i.e. the extent of the
    /// breach.  Used by the proxy-compromise experiment (E6) and the
    /// `proxy_compromise` example binary, which contrasts this with the
    /// identity-only baseline where one key converts *everything*.
    ///
    /// The paper's containment claim (Theorem 1), executable:
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    /// use std::sync::Arc;
    /// use tibpre_ibe::{Identity, Kgc};
    /// use tibpre_pairing::PairingParams;
    /// use tibpre_phr::category::Category;
    /// use tibpre_phr::patient::Patient;
    /// use tibpre_phr::proxy_service::ProxyService;
    /// use tibpre_phr::record::HealthRecord;
    /// use tibpre_phr::store::EncryptedPhrStore;
    ///
    /// let mut rng = StdRng::seed_from_u64(13);
    /// let params = PairingParams::insecure_toy();
    /// let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
    /// let provider_kgc = Kgc::setup(params.clone(), "providers", &mut rng);
    ///
    /// let store = Arc::new(EncryptedPhrStore::new("db"));
    /// let mut alice = Patient::new("alice@phr.example", &patient_kgc);
    /// let mut diet_proxy = ProxyService::new("diet-proxy", store.clone());
    ///
    /// // One record per category; only the diet category is delegated
    /// // through this proxy.
    /// for (category, body) in [
    ///     (Category::FoodStatistics, "low sodium"),
    ///     (Category::IllnessHistory, "2007 angioplasty"),
    /// ] {
    ///     let record = HealthRecord::new(
    ///         alice.identity().clone(),
    ///         category,
    ///         "entry",
    ///         body.as_bytes().to_vec(),
    ///     );
    ///     alice.store_record(&store, &record, &mut rng).unwrap();
    /// }
    /// let dietician = Identity::new("dietician@wellness.example");
    /// alice
    ///     .grant_access(
    ///         Category::FoodStatistics,
    ///         &dietician,
    ///         provider_kgc.public_params(),
    ///         &mut diet_proxy,
    ///         &mut rng,
    ///     )
    ///     .unwrap();
    ///
    /// // The proxy is compromised by a colluding dietician: the breach is
    /// // exactly the one delegated category — one record, not two.
    /// let exposed = diet_proxy.simulate_compromise(alice.identity(), &dietician);
    /// assert_eq!(exposed.len(), 1);
    /// assert_eq!(
    ///     store.get(exposed[0]).unwrap().category,
    ///     Category::FoodStatistics
    /// );
    /// ```
    pub fn simulate_compromise(&self, patient: &Identity, attacker: &Identity) -> Vec<RecordId> {
        let mut exposed = Vec::new();
        for id in self.store.list_for_patient(patient) {
            if let Ok(stored) = self.store.get(id) {
                let converted = self.proxy.installed_keys().any(|key| {
                    key.delegatee() == attacker
                        && hybrid::re_encrypt_hybrid(&stored.ciphertext, key).is_ok()
                });
                if converted {
                    exposed.push(id);
                }
            }
        }
        exposed
    }

    /// A snapshot of the proxy's own audit trail.
    pub fn audit_snapshot(&self) -> Vec<AuditEvent> {
        self.audit.lock().events().to_vec()
    }

    fn record_success(&self, record_id: RecordId, requester: &Identity) {
        let mut audit = self.audit.lock();
        let at = audit.tick();
        audit.append(AuditEvent::DisclosurePerformed {
            id: record_id,
            requester: requester.clone(),
            at,
        });
        drop(audit);
        self.store.log_disclosure(record_id, requester, true);
    }

    fn record_denial(&self, record_id: RecordId, requester: &Identity) {
        let mut audit = self.audit.lock();
        let at = audit.tick();
        audit.append(AuditEvent::DisclosureDenied {
            id: record_id,
            requester: requester.clone(),
            at,
        });
        drop(audit);
        self.store.log_disclosure(record_id, requester, false);
    }
}

impl core::fmt::Debug for ProxyService {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ProxyService(name={}, keys={})",
            self.name,
            self.proxy.key_count()
        )
    }
}
