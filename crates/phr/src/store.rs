//! The encrypted PHR store — the "database" the patient outsources storage to.
//!
//! The store only ever sees ciphertexts (hybrid ciphertexts of `tibpre-core`);
//! the paper's point is that the patient needs to trust it *only* to keep the
//! blobs available, not to keep them confidential.  It is safe to share one
//! store between the patient, several proxies and many providers.
//!
//! # Sharding
//!
//! The store is **lock-striped**: records are distributed over `N` shards by
//! a hash of their [`RecordId`], each shard behind its own `parking_lot`
//! `RwLock`.  Every operation on a single record (`put`, `get`, `delete`,
//! `log_disclosure`) touches exactly one shard, so writers to different
//! records never contend and readers of the same record proceed in parallel;
//! per-record operations are linearizable because that one shard lock orders
//! them.  Cross-record reads (`list_for_patient*`, `record_count`,
//! `audit_snapshot`) take the shard *read* locks one at a time — they never
//! hold more than one lock and never block writers on other shards.
//!
//! Identifiers and audit timestamps come from store-global atomic counters,
//! so ids stay unique and the audit trail keeps one strictly increasing
//! logical clock across all shards; each shard appends to its own audit
//! segment and [`EncryptedPhrStore::audit_snapshot`] merges the segments by
//! timestamp.

use crate::audit::AuditEvent;
use crate::category::Category;
use crate::record::RecordId;
use crate::{PhrError, Result};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use tibpre_core::HybridCiphertext;
use tibpre_ibe::Identity;

/// Default shard count.  Sixteen stripes keep the per-shard contention
/// negligible for any worker count this workspace's engine will realistically
/// run, while the merge-style reads stay cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// One encrypted record at rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRecord {
    /// Identifier assigned by the store.
    pub id: RecordId,
    /// The owning patient (non-secret metadata; it is also bound into the AEAD
    /// associated data, so the store cannot re-attribute blobs undetected).
    pub patient: Identity,
    /// The record category (non-secret; equals the scheme's type tag).
    pub category: Category,
    /// The non-secret title.
    pub title: String,
    /// The hybrid ciphertext (typed KEM header + AEAD body).
    pub ciphertext: HybridCiphertext,
}

/// One lock stripe: the records whose id hashes here, the per-patient index
/// restricted to those records, and this stripe's audit segment.
#[derive(Default)]
struct Shard {
    records: BTreeMap<RecordId, StoredRecord>,
    by_patient: HashMap<Vec<u8>, BTreeSet<RecordId>>,
    audit: Vec<AuditEvent>,
}

/// A concurrent, sharded, indexed, append-audited store of encrypted PHR
/// records.
pub struct EncryptedPhrStore {
    name: String,
    shards: Box<[RwLock<Shard>]>,
    next_id: AtomicU64,
    clock: AtomicU64,
}

impl EncryptedPhrStore {
    /// Creates an empty store with [`DEFAULT_SHARDS`] lock stripes.
    pub fn new(name: impl AsRef<str>) -> Self {
        Self::with_shards(name, DEFAULT_SHARDS)
    }

    /// Creates an empty store with an explicit shard count (clamped to ≥ 1).
    /// `with_shards(name, 1)` degenerates to the single-lock store this type
    /// used to be.
    pub fn with_shards(name: impl AsRef<str>, shards: usize) -> Self {
        EncryptedPhrStore {
            name: name.as_ref().to_string(),
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
            next_id: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }

    /// The store's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a record id lives on.  Sequential ids are spread with a
    /// Fibonacci multiplicative hash so bursts of fresh records do not all
    /// land on neighbouring stripes.
    fn shard_for_id(&self, id: RecordId) -> &RwLock<Shard> {
        let hashed = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(hashed >> 32) as usize % self.shards.len()]
    }

    /// The shard that hosts audit events not tied to any record (policy
    /// changes), chosen by patient so one patient's policy history stays on
    /// one stripe.
    fn shard_for_patient(&self, patient: &Identity) -> &RwLock<Shard> {
        let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for &byte in patient.as_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(hash >> 32) as usize % self.shards.len()]
    }

    /// Advances the store-global logical clock.  Called while holding the
    /// destination shard's write lock, so events within a shard are appended
    /// in timestamp order and timestamps are unique across the store.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Inserts an encrypted record and returns its identifier.
    pub fn put(
        &self,
        patient: &Identity,
        category: &Category,
        title: &str,
        ciphertext: HybridCiphertext,
    ) -> RecordId {
        let id = RecordId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let record = StoredRecord {
            id,
            patient: patient.clone(),
            category: category.clone(),
            title: title.to_string(),
            ciphertext,
        };
        let mut shard = self.shard_for_id(id).write();
        shard.records.insert(id, record);
        shard
            .by_patient
            .entry(patient.as_bytes().to_vec())
            .or_default()
            .insert(id);
        let at = self.tick();
        shard.audit.push(AuditEvent::RecordStored {
            id,
            patient: patient.clone(),
            category: category.clone(),
            at,
        });
        id
    }

    /// Fetches one record by identifier.  Takes only the owning shard's read
    /// lock, so lookups on different shards run fully in parallel.
    pub fn get(&self, id: RecordId) -> Result<StoredRecord> {
        self.shard_for_id(id)
            .read()
            .records
            .get(&id)
            .cloned()
            .ok_or(PhrError::RecordNotFound)
    }

    /// Deletes a record.  Only the owning patient may delete.
    pub fn delete(&self, id: RecordId, requester: &Identity) -> Result<()> {
        let mut shard = self.shard_for_id(id).write();
        let record = shard.records.get(&id).ok_or(PhrError::RecordNotFound)?;
        if &record.patient != requester {
            return Err(PhrError::AccessDenied {
                category: record.category.label(),
                requester: requester.display(),
            });
        }
        let patient_key = record.patient.as_bytes().to_vec();
        shard.records.remove(&id);
        if let Some(set) = shard.by_patient.get_mut(&patient_key) {
            set.remove(&id);
        }
        let at = self.tick();
        shard.audit.push(AuditEvent::RecordDeleted { id, at });
        Ok(())
    }

    /// Lists the identifiers of all records owned by a patient, in ascending
    /// id order, merged from every shard's per-patient index.
    pub fn list_for_patient(&self, patient: &Identity) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .by_patient
                    .get(patient.as_bytes())
                    .map(|set| set.iter().copied().collect::<Vec<_>>())
                    .unwrap_or_default()
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Lists the identifiers of a patient's records in one category, in
    /// ascending id order.
    pub fn list_for_patient_category(
        &self,
        patient: &Identity,
        category: &Category,
    ) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let shard = shard.read();
                shard
                    .by_patient
                    .get(patient.as_bytes())
                    .map(|set| {
                        set.iter()
                            .filter(|id| {
                                shard
                                    .records
                                    .get(id)
                                    .map(|r| &r.category == category)
                                    .unwrap_or(false)
                            })
                            .copied()
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default()
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Total number of stored records.
    pub fn record_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.read().records.len())
            .sum()
    }

    /// Number of records owned by one patient.
    pub fn count_for_patient(&self, patient: &Identity) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .read()
                    .by_patient
                    .get(patient.as_bytes())
                    .map(|s| s.len())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Records a disclosure event in the store's audit trail (called by
    /// proxies).  The event lands on the record's shard.
    pub fn log_disclosure(&self, id: RecordId, requester: &Identity, granted: bool) {
        let mut shard = self.shard_for_id(id).write();
        let at = self.tick();
        let event = if granted {
            AuditEvent::DisclosurePerformed {
                id,
                requester: requester.clone(),
                at,
            }
        } else {
            AuditEvent::DisclosureDenied {
                id,
                requester: requester.clone(),
                at,
            }
        };
        shard.audit.push(event);
    }

    /// Records a grant / revoke event in the store's audit trail.  The event
    /// lands on the patient's policy shard.
    pub fn log_policy_change(
        &self,
        patient: &Identity,
        category: &Category,
        grantee: &Identity,
        granted: bool,
    ) {
        let mut shard = self.shard_for_patient(patient).write();
        let at = self.tick();
        let event = if granted {
            AuditEvent::AccessGranted {
                patient: patient.clone(),
                category: category.clone(),
                grantee: grantee.clone(),
                at,
            }
        } else {
            AuditEvent::AccessRevoked {
                patient: patient.clone(),
                category: category.clone(),
                grantee: grantee.clone(),
                at,
            }
        };
        shard.audit.push(event);
    }

    /// A snapshot of the audit trail: every shard's segment, merged into one
    /// sequence ordered by the store-global logical clock.
    pub fn audit_snapshot(&self) -> Vec<AuditEvent> {
        let mut events: Vec<AuditEvent> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().audit.clone())
            .collect();
        events.sort_by_key(AuditEvent::at);
        events
    }
}

impl core::fmt::Debug for EncryptedPhrStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "EncryptedPhrStore(name={}, records={}, shards={})",
            self.name,
            self.record_count(),
            self.shards.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_core::{Delegator, TypeTag};
    use tibpre_ibe::Kgc;
    use tibpre_pairing::PairingParams;

    fn sample_ciphertext(rng: &mut StdRng) -> HybridCiphertext {
        let params = PairingParams::insecure_toy();
        let kgc = Kgc::setup(params, "kgc", rng);
        let delegator = Delegator::new(
            kgc.public_params().clone(),
            kgc.extract(&Identity::new("alice")),
        );
        delegator.encrypt_bytes(b"payload", b"", &TypeTag::new("t"), rng)
    }

    #[test]
    fn put_get_list_delete() {
        let mut rng = StdRng::seed_from_u64(131);
        let store = EncryptedPhrStore::new("db");
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let ct = sample_ciphertext(&mut rng);

        let id1 = store.put(&alice, &Category::Emergency, "r1", ct.clone());
        let id2 = store.put(&alice, &Category::LabResults, "r2", ct.clone());
        let id3 = store.put(&bob, &Category::Emergency, "r3", ct.clone());
        assert_ne!(id1, id2);
        assert_eq!(store.record_count(), 3);
        assert_eq!(store.count_for_patient(&alice), 2);
        assert_eq!(store.count_for_patient(&bob), 1);

        assert_eq!(store.get(id1).unwrap().title, "r1");
        assert_eq!(store.list_for_patient(&alice), vec![id1, id2]);
        assert_eq!(
            store.list_for_patient_category(&alice, &Category::Emergency),
            vec![id1]
        );
        assert!(store
            .list_for_patient_category(&bob, &Category::LabResults)
            .is_empty());

        // Only the owner can delete.
        assert!(matches!(
            store.delete(id1, &bob),
            Err(PhrError::AccessDenied { .. })
        ));
        store.delete(id1, &alice).unwrap();
        assert!(matches!(store.get(id1), Err(PhrError::RecordNotFound)));
        assert_eq!(store.count_for_patient(&alice), 1);
        assert!(matches!(
            store.delete(id1, &alice),
            Err(PhrError::RecordNotFound)
        ));
        let _ = id3;
    }

    #[test]
    fn audit_trail_records_everything() {
        let mut rng = StdRng::seed_from_u64(132);
        let store = EncryptedPhrStore::new("db");
        let alice = Identity::new("alice");
        let doctor = Identity::new("doctor");
        let ct = sample_ciphertext(&mut rng);
        let id = store.put(&alice, &Category::Emergency, "r", ct);
        store.log_policy_change(&alice, &Category::Emergency, &doctor, true);
        store.log_disclosure(id, &doctor, true);
        store.log_disclosure(id, &Identity::new("employer"), false);
        store.log_policy_change(&alice, &Category::Emergency, &doctor, false);
        store.delete(id, &alice).unwrap();

        let audit = store.audit_snapshot();
        assert_eq!(audit.len(), 6);
        assert!(matches!(audit[0], AuditEvent::RecordStored { .. }));
        assert!(matches!(audit[1], AuditEvent::AccessGranted { .. }));
        assert!(matches!(audit[2], AuditEvent::DisclosurePerformed { .. }));
        assert!(matches!(audit[3], AuditEvent::DisclosureDenied { .. }));
        assert!(matches!(audit[4], AuditEvent::AccessRevoked { .. }));
        assert!(matches!(audit[5], AuditEvent::RecordDeleted { .. }));
        // Timestamps are strictly increasing.
        for pair in audit.windows(2) {
            assert!(pair[0].at() < pair[1].at());
        }
    }

    #[test]
    fn single_shard_store_still_works() {
        let mut rng = StdRng::seed_from_u64(134);
        let store = EncryptedPhrStore::with_shards("db", 1);
        assert_eq!(store.shard_count(), 1);
        let alice = Identity::new("alice");
        let ct = sample_ciphertext(&mut rng);
        let ids: Vec<_> = (0..5)
            .map(|i| store.put(&alice, &Category::Medication, &format!("r{i}"), ct.clone()))
            .collect();
        assert_eq!(store.list_for_patient(&alice), ids);
        store.delete(ids[2], &alice).unwrap();
        assert_eq!(store.count_for_patient(&alice), 4);
        assert_eq!(store.audit_snapshot().len(), 6);
    }

    #[test]
    fn records_spread_across_shards() {
        let mut rng = StdRng::seed_from_u64(135);
        let store = EncryptedPhrStore::new("db");
        let alice = Identity::new("alice");
        let ct = sample_ciphertext(&mut rng);
        let ids: Vec<_> = (0..64)
            .map(|i| store.put(&alice, &Category::LabResults, &format!("r{i}"), ct.clone()))
            .collect();
        // The Fibonacci hash must not funnel a sequential id burst onto one
        // stripe: with 64 records over 16 shards, several shards must be hit.
        let hit: std::collections::BTreeSet<usize> = ids
            .iter()
            .map(|id| {
                (id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % store.shard_count()
            })
            .collect();
        assert!(hit.len() >= store.shard_count() / 2, "hit {hit:?}");
        // And every record is still found.
        assert_eq!(store.list_for_patient(&alice), ids);
        for id in ids {
            assert!(store.get(id).is_ok());
        }
    }

    #[test]
    fn concurrent_access_is_safe() {
        let mut rng = StdRng::seed_from_u64(133);
        let store = std::sync::Arc::new(EncryptedPhrStore::new("db"));
        let ct = sample_ciphertext(&mut rng);
        let mut handles = Vec::new();
        for thread_id in 0..4u64 {
            let store = store.clone();
            let ct = ct.clone();
            handles.push(std::thread::spawn(move || {
                let patient = Identity::new(format!("patient-{thread_id}"));
                for i in 0..25 {
                    store.put(
                        &patient,
                        &Category::LabResults,
                        &format!("r{i}"),
                        ct.clone(),
                    );
                }
                store.count_for_patient(&patient)
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 25);
        }
        assert_eq!(store.record_count(), 100);
    }
}
