//! The encrypted PHR store — the "database" the patient outsources storage to.
//!
//! The store only ever sees ciphertexts (hybrid ciphertexts of `tibpre-core`);
//! the paper's point is that the patient needs to trust it *only* to keep the
//! blobs available, not to keep them confidential.  It is safe to share one
//! store between the patient, several proxies and many providers, so the type
//! is `Sync` and uses an internal `RwLock`.

use crate::audit::{AuditEvent, AuditLog};
use crate::category::Category;
use crate::record::RecordId;
use crate::{PhrError, Result};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tibpre_core::HybridCiphertext;
use tibpre_ibe::Identity;

/// One encrypted record at rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRecord {
    /// Identifier assigned by the store.
    pub id: RecordId,
    /// The owning patient (non-secret metadata; it is also bound into the AEAD
    /// associated data, so the store cannot re-attribute blobs undetected).
    pub patient: Identity,
    /// The record category (non-secret; equals the scheme's type tag).
    pub category: Category,
    /// The non-secret title.
    pub title: String,
    /// The hybrid ciphertext (typed KEM header + AEAD body).
    pub ciphertext: HybridCiphertext,
}

#[derive(Default)]
struct StoreInner {
    next_id: u64,
    records: BTreeMap<RecordId, StoredRecord>,
    by_patient: HashMap<Vec<u8>, BTreeSet<RecordId>>,
    audit: AuditLog,
}

/// A concurrent, indexed, append-audited store of encrypted PHR records.
pub struct EncryptedPhrStore {
    name: String,
    inner: RwLock<StoreInner>,
}

impl EncryptedPhrStore {
    /// Creates an empty store.
    pub fn new(name: impl AsRef<str>) -> Self {
        EncryptedPhrStore {
            name: name.as_ref().to_string(),
            inner: RwLock::new(StoreInner::default()),
        }
    }

    /// The store's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inserts an encrypted record and returns its identifier.
    pub fn put(
        &self,
        patient: &Identity,
        category: &Category,
        title: &str,
        ciphertext: HybridCiphertext,
    ) -> RecordId {
        let mut inner = self.inner.write();
        inner.next_id += 1;
        let id = RecordId(inner.next_id);
        let record = StoredRecord {
            id,
            patient: patient.clone(),
            category: category.clone(),
            title: title.to_string(),
            ciphertext,
        };
        inner.records.insert(id, record);
        inner
            .by_patient
            .entry(patient.as_bytes().to_vec())
            .or_default()
            .insert(id);
        let at = inner.audit.tick();
        inner.audit.append(AuditEvent::RecordStored {
            id,
            patient: patient.clone(),
            category: category.clone(),
            at,
        });
        id
    }

    /// Fetches one record by identifier.
    pub fn get(&self, id: RecordId) -> Result<StoredRecord> {
        self.inner
            .read()
            .records
            .get(&id)
            .cloned()
            .ok_or(PhrError::RecordNotFound)
    }

    /// Deletes a record.  Only the owning patient may delete.
    pub fn delete(&self, id: RecordId, requester: &Identity) -> Result<()> {
        let mut inner = self.inner.write();
        let record = inner.records.get(&id).ok_or(PhrError::RecordNotFound)?;
        if &record.patient != requester {
            return Err(PhrError::AccessDenied {
                category: record.category.label(),
                requester: requester.display(),
            });
        }
        let patient_key = record.patient.as_bytes().to_vec();
        inner.records.remove(&id);
        if let Some(set) = inner.by_patient.get_mut(&patient_key) {
            set.remove(&id);
        }
        let at = inner.audit.tick();
        inner.audit.append(AuditEvent::RecordDeleted { id, at });
        Ok(())
    }

    /// Lists the identifiers of all records owned by a patient.
    pub fn list_for_patient(&self, patient: &Identity) -> Vec<RecordId> {
        self.inner
            .read()
            .by_patient
            .get(patient.as_bytes())
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Lists the identifiers of a patient's records in one category.
    pub fn list_for_patient_category(
        &self,
        patient: &Identity,
        category: &Category,
    ) -> Vec<RecordId> {
        let inner = self.inner.read();
        inner
            .by_patient
            .get(patient.as_bytes())
            .map(|set| {
                set.iter()
                    .filter(|id| {
                        inner
                            .records
                            .get(id)
                            .map(|r| &r.category == category)
                            .unwrap_or(false)
                    })
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Total number of stored records.
    pub fn record_count(&self) -> usize {
        self.inner.read().records.len()
    }

    /// Number of records owned by one patient.
    pub fn count_for_patient(&self, patient: &Identity) -> usize {
        self.inner
            .read()
            .by_patient
            .get(patient.as_bytes())
            .map(|s| s.len())
            .unwrap_or(0)
    }

    /// Records a disclosure event in the store's audit trail (called by proxies).
    pub fn log_disclosure(&self, id: RecordId, requester: &Identity, granted: bool) {
        let mut inner = self.inner.write();
        let at = inner.audit.tick();
        let event = if granted {
            AuditEvent::DisclosurePerformed {
                id,
                requester: requester.clone(),
                at,
            }
        } else {
            AuditEvent::DisclosureDenied {
                id,
                requester: requester.clone(),
                at,
            }
        };
        inner.audit.append(event);
    }

    /// Records a grant / revoke event in the store's audit trail.
    pub fn log_policy_change(
        &self,
        patient: &Identity,
        category: &Category,
        grantee: &Identity,
        granted: bool,
    ) {
        let mut inner = self.inner.write();
        let at = inner.audit.tick();
        let event = if granted {
            AuditEvent::AccessGranted {
                patient: patient.clone(),
                category: category.clone(),
                grantee: grantee.clone(),
                at,
            }
        } else {
            AuditEvent::AccessRevoked {
                patient: patient.clone(),
                category: category.clone(),
                grantee: grantee.clone(),
                at,
            }
        };
        inner.audit.append(event);
    }

    /// A snapshot of the audit trail.
    pub fn audit_snapshot(&self) -> Vec<AuditEvent> {
        self.inner.read().audit.events().to_vec()
    }
}

impl core::fmt::Debug for EncryptedPhrStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "EncryptedPhrStore(name={}, records={})",
            self.name,
            self.record_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_core::{Delegator, TypeTag};
    use tibpre_ibe::Kgc;
    use tibpre_pairing::PairingParams;

    fn sample_ciphertext(rng: &mut StdRng) -> HybridCiphertext {
        let params = PairingParams::insecure_toy();
        let kgc = Kgc::setup(params, "kgc", rng);
        let delegator = Delegator::new(
            kgc.public_params().clone(),
            kgc.extract(&Identity::new("alice")),
        );
        delegator.encrypt_bytes(b"payload", b"", &TypeTag::new("t"), rng)
    }

    #[test]
    fn put_get_list_delete() {
        let mut rng = StdRng::seed_from_u64(131);
        let store = EncryptedPhrStore::new("db");
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let ct = sample_ciphertext(&mut rng);

        let id1 = store.put(&alice, &Category::Emergency, "r1", ct.clone());
        let id2 = store.put(&alice, &Category::LabResults, "r2", ct.clone());
        let id3 = store.put(&bob, &Category::Emergency, "r3", ct.clone());
        assert_ne!(id1, id2);
        assert_eq!(store.record_count(), 3);
        assert_eq!(store.count_for_patient(&alice), 2);
        assert_eq!(store.count_for_patient(&bob), 1);

        assert_eq!(store.get(id1).unwrap().title, "r1");
        assert_eq!(store.list_for_patient(&alice), vec![id1, id2]);
        assert_eq!(
            store.list_for_patient_category(&alice, &Category::Emergency),
            vec![id1]
        );
        assert!(store
            .list_for_patient_category(&bob, &Category::LabResults)
            .is_empty());

        // Only the owner can delete.
        assert!(matches!(
            store.delete(id1, &bob),
            Err(PhrError::AccessDenied { .. })
        ));
        store.delete(id1, &alice).unwrap();
        assert!(matches!(store.get(id1), Err(PhrError::RecordNotFound)));
        assert_eq!(store.count_for_patient(&alice), 1);
        assert!(matches!(
            store.delete(id1, &alice),
            Err(PhrError::RecordNotFound)
        ));
        let _ = id3;
    }

    #[test]
    fn audit_trail_records_everything() {
        let mut rng = StdRng::seed_from_u64(132);
        let store = EncryptedPhrStore::new("db");
        let alice = Identity::new("alice");
        let doctor = Identity::new("doctor");
        let ct = sample_ciphertext(&mut rng);
        let id = store.put(&alice, &Category::Emergency, "r", ct);
        store.log_policy_change(&alice, &Category::Emergency, &doctor, true);
        store.log_disclosure(id, &doctor, true);
        store.log_disclosure(id, &Identity::new("employer"), false);
        store.log_policy_change(&alice, &Category::Emergency, &doctor, false);
        store.delete(id, &alice).unwrap();

        let audit = store.audit_snapshot();
        assert_eq!(audit.len(), 6);
        assert!(matches!(audit[0], AuditEvent::RecordStored { .. }));
        assert!(matches!(audit[1], AuditEvent::AccessGranted { .. }));
        assert!(matches!(audit[2], AuditEvent::DisclosurePerformed { .. }));
        assert!(matches!(audit[3], AuditEvent::DisclosureDenied { .. }));
        assert!(matches!(audit[4], AuditEvent::AccessRevoked { .. }));
        assert!(matches!(audit[5], AuditEvent::RecordDeleted { .. }));
        // Timestamps are strictly increasing.
        for pair in audit.windows(2) {
            assert!(pair[0].at() < pair[1].at());
        }
    }

    #[test]
    fn concurrent_access_is_safe() {
        let mut rng = StdRng::seed_from_u64(133);
        let store = std::sync::Arc::new(EncryptedPhrStore::new("db"));
        let ct = sample_ciphertext(&mut rng);
        let mut handles = Vec::new();
        for thread_id in 0..4u64 {
            let store = store.clone();
            let ct = ct.clone();
            handles.push(std::thread::spawn(move || {
                let patient = Identity::new(format!("patient-{thread_id}"));
                for i in 0..25 {
                    store.put(
                        &patient,
                        &Category::LabResults,
                        &format!("r{i}"),
                        ct.clone(),
                    );
                }
                store.count_for_patient(&patient)
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 25);
        }
        assert_eq!(store.record_count(), 100);
    }
}
