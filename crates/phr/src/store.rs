//! The encrypted PHR store — the "database" the patient outsources storage to.
//!
//! The store only ever sees ciphertexts (hybrid ciphertexts of `tibpre-core`);
//! the paper's point is that the patient needs to trust it *only* to keep the
//! blobs available, not to keep them confidential.  It is safe to share one
//! store between the patient, several proxies and many providers.
//!
//! # Sharding
//!
//! The store is **lock-striped**: records are distributed over `N` shards by
//! a hash of their [`RecordId`], each shard behind its own `parking_lot`
//! `RwLock`.  Every operation on a single record (`put`, `get`, `delete`,
//! `log_disclosure`) touches exactly one shard, so writers to different
//! records never contend and readers of the same record proceed in parallel;
//! per-record operations are linearizable because that one shard lock orders
//! them.  Cross-record reads (`list_for_patient*`, `record_count`,
//! `audit_snapshot`) take the shard *read* locks one at a time — they never
//! hold more than one lock and never block writers on other shards.
//!
//! Identifiers and audit timestamps come from store-global atomic counters,
//! so ids stay unique and the audit trail keeps one strictly increasing
//! logical clock across all shards; each shard appends to its own audit
//! segment and [`EncryptedPhrStore::audit_snapshot`] merges the segments by
//! timestamp.
//!
//! # Wire residency
//!
//! Shards do not hold decoded record structs — they hold each record's
//! **encoded bytes**, validated once at the API boundary (see the private
//! `resident` module and the "In-memory representation" section of
//! `ARCHITECTURE.md`):
//!
//! * `put` encodes the record exactly once; on a durable store the shard
//!   retains *the same buffer* the WAL appended, so persisting costs
//!   validate + memcpy + CRC and zero extra codec round trips
//!   ([`crate::metrics`] counts them),
//! * `get` decodes lazily, returning `Arc<StoredRecord>`s through a small
//!   per-shard LRU of hot records (`TIBPRE_RECORD_CACHE` records per shard),
//! * the `by_patient` / category indexes and delete's ownership check run
//!   on lightweight headers parsed from the encoding's prefix — never a
//!   full decode,
//! * records recovered from an indexed (`TBS2`) snapshot stay backed by the
//!   **memory-mapped** snapshot file: reopening is O(index), and a record's
//!   pages fault in only when it is first read (CRC-checked at that moment).
//!
//! Plain in-memory stores ([`EncryptedPhrStore::new`]) have no pairing
//! parameters and therefore cannot decode ciphertexts lazily; they pin the
//! decoded struct instead (shared by `Arc` with every reader).  An
//! in-memory store built with
//! [`EncryptedPhrStore::in_memory_with_params`] keeps records encoded.
//!
//! # Durability
//!
//! A store is either **in-memory** ([`EncryptedPhrStore::new`] /
//! [`EncryptedPhrStore::in_memory`]) — exactly the pre-durability store, no
//! hidden I/O — or **durable** ([`EncryptedPhrStore::open`]): each shard
//! additionally owns a write-ahead log segment and a generational snapshot
//! series in the store directory (see [`crate::durable`] for the frame
//! contents and [`tibpre_storage`] for the envelope).  Every mutation is
//! appended to the owning shard's WAL *before* it is applied in memory, both
//! under the same shard write lock the in-memory path already takes, so
//! durability introduces no extra synchronization and no cross-shard locks.
//! `open` replays `newest valid snapshot + WAL tail` per shard — in parallel
//! across shards on a [`ReEncryptEngine`] — truncating each log at the first
//! torn or corrupt frame.
//!
//! Durable writes are **fail-stop**: an I/O error while appending to a WAL
//! panics rather than silently continuing with a log that no longer matches
//! memory.  That is the standard correctness posture for write-ahead
//! logging; a process that cannot log can no longer promise recoverability.

use crate::audit::AuditEvent;
use crate::category::Category;
use crate::durable::{
    self, Durability, ShardLog, StoreDurability, WalOp, SNAPSHOT_GENERATIONS_KEPT,
};
use crate::record::RecordId;
use crate::resident::{DecodedCache, EncodedRecord, RecordBody, RecordHeader};
use crate::{PhrError, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tibpre_core::HybridCiphertext;
use tibpre_engine::ReEncryptEngine;
use tibpre_ibe::Identity;
use tibpre_pairing::{DecodeCtx, PairingParams};
use tibpre_storage::{
    codec, frame, segment, snapshot, ChunkOutcome, CommitNotifier, FsyncPolicy, ReplicationLog,
    SegmentedWal, StorageError,
};
use tibpre_wire::WireVersion;

/// Default shard count.  Sixteen stripes keep the per-shard contention
/// negligible for any worker count this workspace's engine will realistically
/// run, while the merge-style reads stay cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// One encrypted record at rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredRecord {
    /// Identifier assigned by the store.
    pub id: RecordId,
    /// The owning patient (non-secret metadata; it is also bound into the AEAD
    /// associated data, so the store cannot re-attribute blobs undetected).
    pub patient: Identity,
    /// The record category (non-secret; equals the scheme's type tag).
    pub category: Category,
    /// The non-secret title.
    pub title: String,
    /// The hybrid ciphertext (typed KEM header + AEAD body).
    pub ciphertext: HybridCiphertext,
}

/// What snapshot recovery hands back per shard: the resident record map and
/// the audit trail.
type RecoveredShardState = (BTreeMap<RecordId, RecordBody>, Vec<Arc<AuditEvent>>);

/// One lock stripe: the records whose id hashes here (as wire-resident
/// bodies), the per-patient index restricted to those records, this stripe's
/// audit segment, the LRU of hot decoded records, and — on a durable store —
/// its write-ahead log handle.
#[derive(Default)]
struct Shard {
    records: BTreeMap<RecordId, RecordBody>,
    by_patient: HashMap<Vec<u8>, BTreeSet<RecordId>>,
    audit: Vec<Arc<AuditEvent>>,
    log: Option<ShardLog>,
    /// Hot decoded records.  A `Mutex` inside the shard because `get` must
    /// update LRU recency while holding only the shard *read* lock.
    cache: Mutex<DecodedCache>,
}

impl Shard {
    /// Rebuilds the per-patient index from the record headers (used after
    /// recovery; the index is derived state and is not persisted).  No
    /// record is decoded — the header carries the patient.
    fn rebuild_index(&mut self) {
        self.by_patient.clear();
        for (&id, body) in &self.records {
            self.by_patient
                .entry(body.patient().as_bytes().to_vec())
                .or_default()
                .insert(id);
        }
    }
}

/// A concurrent, sharded, indexed, append-audited store of encrypted PHR
/// records, optionally durable (see the [module docs](self)).
pub struct EncryptedPhrStore {
    name: String,
    shards: Box<[RwLock<Shard>]>,
    next_id: AtomicU64,
    clock: AtomicU64,
    durability: Option<StoreDurability>,
    /// Pairing parameters for lazily decoding resident record bytes.  Always
    /// present on durable stores; `None` only on plain in-memory stores,
    /// which pin decoded structs instead.
    params: Option<Arc<PairingParams>>,
    /// Bumped after every durable commit (and every replicated apply) —
    /// the subscription point replication shipping loops block on.
    notifier: Arc<CommitNotifier>,
}

/// Name of the store metadata file inside a durable store's directory.
const META_FILE: &str = "store.meta";

/// Version number of the store metadata format.
const META_VERSION: u32 = 1;

impl EncryptedPhrStore {
    /// Creates an empty in-memory store with [`DEFAULT_SHARDS`] lock stripes.
    pub fn new(name: impl AsRef<str>) -> Self {
        Self::with_shards(name, DEFAULT_SHARDS)
    }

    /// Creates an empty in-memory store — an explicit alias of [`Self::new`]
    /// for symmetry with [`Self::open`].
    pub fn in_memory(name: impl AsRef<str>) -> Self {
        Self::new(name)
    }

    /// Creates an empty in-memory store that keeps records *wire-resident*
    /// (encoded bytes, decoded lazily through the per-shard LRU) — the
    /// memory-frugal mode for large working sets.  [`Self::new`] needs no
    /// parameters but pins decoded structs instead.
    pub fn in_memory_with_params(name: impl AsRef<str>, params: Arc<PairingParams>) -> Self {
        Self::with_shards_and_params(name, DEFAULT_SHARDS, params)
    }

    /// Creates an empty in-memory store with an explicit shard count
    /// (clamped to ≥ 1).  `with_shards(name, 1)` degenerates to the
    /// single-lock store this type used to be.
    pub fn with_shards(name: impl AsRef<str>, shards: usize) -> Self {
        EncryptedPhrStore {
            name: name.as_ref().to_string(),
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
            next_id: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            durability: None,
            params: None,
            notifier: Arc::new(CommitNotifier::new()),
        }
    }

    /// [`Self::in_memory_with_params`] with an explicit shard count.
    pub fn with_shards_and_params(
        name: impl AsRef<str>,
        shards: usize,
        params: Arc<PairingParams>,
    ) -> Self {
        let mut store = Self::with_shards(name, shards);
        store.params = Some(params);
        store
    }

    /// Opens (or creates) a durable store in directory `dir`, recovering any
    /// existing state by replaying each shard's `newest valid snapshot + WAL
    /// tail` and truncating each log at the first torn or corrupt frame.
    ///
    /// The store's display name is the directory's final path component.  A
    /// fresh store uses the shard count from `durability`; an existing store
    /// keeps the count persisted in its `store.meta` file (the id→shard
    /// mapping depends on it).  Shards are recovered in parallel on a
    /// [`ReEncryptEngine::from_env`] worker pool, which also parallelizes
    /// the per-shard index rebuild from snapshot trailer metadata.
    ///
    /// Indexed (`TBS2`) snapshots are served through a memory map: the open
    /// validates and parses only the trailer — O(index), not O(data) — and
    /// record bytes fault in when first read.  Legacy monolithic (`TBS1`)
    /// snapshots still load eagerly; the records they carry become resident
    /// encoded bytes all the same, and the next snapshot rewrites them in
    /// the indexed layout.
    ///
    /// Recovery never panics on corrupt input: a damaged snapshot generation
    /// falls back to the previous generation (or a full log replay), and a
    /// damaged log frame truncates the log at the last intact boundary.  A
    /// frame that passes its checksum but does not *decode* (wrong pairing
    /// parameters, unknown tag from a newer format) fails the open instead —
    /// that is an operator error, and truncating there would destroy intact
    /// data.
    ///
    /// The directory is guarded by an advisory `LOCK` file: a second
    /// concurrent open (which would truncate WAL tails the first process is
    /// appending to) fails with [`PhrError::Storage`].  The lock is released
    /// by the OS on process exit, crashes included.
    pub fn open(dir: impl AsRef<Path>, durability: Durability) -> Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let lock = tibpre_storage::DirLock::acquire(&dir.join("LOCK"))?;
        let shards = Self::read_or_create_meta(dir, &durability)?;
        let name = dir
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "phr-store".to_string());

        let indices: Vec<usize> = (0..shards).collect();
        let engine = ReEncryptEngine::from_env();
        let recovered: Vec<Shard> = engine.try_par_map(&indices, |_, &i| {
            Self::recover_shard(dir, i, &durability, &engine)
        })?;

        // The id allocator and the logical clock resume above everything the
        // log has ever seen — including ids of since-deleted records, which
        // still appear in audit events and must never be reissued.
        let mut next_id = 0u64;
        let mut clock = 0u64;
        for shard in &recovered {
            if let Some((&id, _)) = shard.records.iter().next_back() {
                next_id = next_id.max(id.0);
            }
            for event in &shard.audit {
                clock = clock.max(event.at());
                match event.as_ref() {
                    AuditEvent::RecordStored { id, .. }
                    | AuditEvent::RecordDeleted { id, .. }
                    | AuditEvent::DisclosurePerformed { id, .. }
                    | AuditEvent::DisclosureDenied { id, .. } => next_id = next_id.max(id.0),
                    _ => {}
                }
            }
        }

        Ok(EncryptedPhrStore {
            name,
            shards: recovered.into_iter().map(RwLock::new).collect(),
            next_id: AtomicU64::new(next_id),
            clock: AtomicU64::new(clock),
            durability: Some(StoreDurability {
                dir: dir.to_path_buf(),
                fsync: durability.fsync_policy(),
                snapshot_every: durability.snapshot_cadence(),
                lock,
            }),
            params: Some(durability.params().clone()),
            notifier: Arc::new(CommitNotifier::new()),
        })
    }

    /// Reads the persisted shard count, or persists the configured one on
    /// first open.  The meta file is one CRC frame, so a torn first open is
    /// detected rather than silently mis-sharding every id.
    fn read_or_create_meta(dir: &Path, durability: &Durability) -> Result<usize> {
        let path = dir.join(META_FILE);
        match std::fs::read(&path) {
            Ok(bytes) => {
                let payload = frame::decode_single_frame(&bytes)
                    .ok_or(PhrError::CorruptedRecord("store meta file torn or corrupt"))?;
                let mut r = codec::Reader::new(&payload);
                if r.u32()? != META_VERSION {
                    return Err(PhrError::CorruptedRecord("unsupported store meta version"));
                }
                let shards = r.u32()? as usize;
                r.finish()?;
                Ok(shards.max(1))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let shards = durability.shard_count();
                let mut payload = Vec::new();
                codec::put_u32(&mut payload, META_VERSION);
                codec::put_u32(&mut payload, shards as u32);
                let tmp = dir.join("store.meta.tmp");
                // Meta determines the id→shard mapping forever, so it is
                // made durable unconditionally (fsync file, rename, fsync
                // dir) — losing it to a power cut and silently recreating it
                // with a different shard count would orphan every record.
                {
                    use std::io::Write;
                    let mut file = std::fs::File::create(&tmp)?;
                    file.write_all(&frame::encode_frame(&payload))?;
                    file.sync_data()?;
                }
                std::fs::rename(&tmp, &path)?;
                std::fs::File::open(dir)?.sync_all()?;
                Ok(shards)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Recovers one shard: newest valid snapshot (falling back through the
    /// generations, then to empty), then the WAL tail from the snapshot's
    /// offset, truncated at the first torn or corrupt frame.  Only the tail
    /// behind the chosen snapshot is read from disk — earlier WAL segments
    /// are skipped entirely (and may already have been garbage-collected).
    fn recover_shard(
        dir: &Path,
        index: usize,
        durability: &Durability,
        engine: &ReEncryptEngine,
    ) -> Result<Shard> {
        let base = durable::shard_base(index);
        let segments = match segment::list_segments(dir, &base) {
            Ok(segments) => segments,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let wal_floor = segments.first().map(|s| s.start).unwrap_or(0);
        let wal_end = segments.last().map(|s| s.end()).unwrap_or(0);

        let mut shard = Shard::default();
        let mut start = 0u64;
        let mut gen = 0u64;
        let mut have_state = false;
        let mut snap_offsets = std::collections::BTreeMap::new();
        for candidate in snapshot::list_generations(dir, &base)? {
            if have_state {
                // A later (older-generation) pass only harvests the offset
                // for the GC map; the trailer-level peek validates enough.
                let Ok(offset) = snapshot::peek_wal_offset(dir, &base, candidate) else {
                    continue; // checksum/torn: ignored, pruning retires it
                };
                if offset > wal_end || offset < wal_floor {
                    continue; // references log bytes that no longer exist
                }
                snap_offsets.insert(candidate, offset);
                continue;
            }
            // The indexed (TBS2) layout — what this version writes — is
            // tried first; a magic mismatch falls through to the legacy
            // monolithic (TBS1) loader.  Any validation or decode failure
            // falls back to an older generation, per the recovery contract.
            match snapshot::load_indexed(dir, &base, candidate) {
                Ok(snap) => {
                    let offset = snap.wal_offset();
                    if offset > wal_end || offset < wal_floor {
                        continue;
                    }
                    let Ok((records, audit)) = Self::state_from_indexed(engine, snap) else {
                        continue; // trailer decodes, metadata does not
                    };
                    shard.records = records;
                    shard.audit = audit;
                    start = offset;
                    gen = candidate;
                    have_state = true;
                    snap_offsets.insert(candidate, offset);
                }
                Err(_) => {
                    let Ok(snap) = snapshot::load_snapshot(dir, &base, candidate) else {
                        continue; // neither layout: fall back a generation
                    };
                    if snap.wal_offset > wal_end || snap.wal_offset < wal_floor {
                        continue;
                    }
                    let Ok((records, audit)) =
                        durable::decode_shard_state_resident(durability.params(), &snap.payload)
                    else {
                        continue; // CRC-valid but undecodable: same fallback
                    };
                    shard.records = records
                        .into_iter()
                        .map(|enc| (enc.header.id, RecordBody::Encoded(enc)))
                        .collect();
                    shard.audit = audit.into_iter().map(Arc::new).collect();
                    start = snap.wal_offset;
                    gen = candidate;
                    have_state = true;
                    snap_offsets.insert(candidate, snap.wal_offset);
                }
            }
        }

        // A WAL whose prefix was garbage-collected can only be opened
        // through a snapshot at or above the surviving floor.  If no kept
        // generation is usable, refuse to open instead of replaying a
        // partial tail (silent data loss) or truncating segments a repair
        // might still need — compaction trades the old "all snapshots
        // corrupt → full log replay" fallback for bounded disk usage, so
        // this failure is surfaced, not papered over.
        if start < wal_floor {
            return Err(PhrError::CorruptedRecord(
                "no usable snapshot at or above the oldest surviving WAL segment — \
                 the log prefix was compacted away; refusing to open with partial state",
            ));
        }

        let scan = segment::recover(dir, &base, start)?;
        let valid_len = scan.valid_len;
        for payload in scan.frames {
            // A frame that passes its checksum but fails to *decode* is not
            // storage corruption (the CRC vouches for the bytes) — it means
            // the wrong pairing parameters or an unknown format tag.
            // Truncating would destroy intact data, so refuse to open.
            let op = WalOp::from_bytes(durability.params(), &payload).map_err(|_| {
                PhrError::CorruptedRecord(
                    "CRC-valid WAL frame failed to decode; check pairing parameters \
                     and binary version — refusing to truncate intact data",
                )
            })?;
            match op {
                WalOp::Put { record, at } => {
                    // The decode above validated the frame; what the shard
                    // retains is the frame's own buffer (the record body is
                    // a well-known suffix of a Put frame).  The decoded
                    // struct is dissolved into the header and audit event.
                    let (version, body_start) = durable::wal_put_body_layout(&payload);
                    let record = *record;
                    let header = RecordHeader {
                        id: record.id,
                        patient: record.patient.clone(),
                        category: record.category.clone(),
                    };
                    shard.audit.push(Arc::new(AuditEvent::RecordStored {
                        id: record.id,
                        patient: record.patient,
                        category: record.category,
                        at,
                    }));
                    let enc =
                        EncodedRecord::from_owned(payload.into(), body_start, version, header);
                    shard
                        .records
                        .insert(enc.header.id, RecordBody::Encoded(enc));
                }
                WalOp::Delete { id, at } => {
                    shard.records.remove(&id);
                    shard
                        .audit
                        .push(Arc::new(AuditEvent::RecordDeleted { id, at }));
                }
                WalOp::Audit { event } => shard.audit.push(Arc::new(event)),
            }
        }
        shard.rebuild_index();

        // The truncation boundary is the scanner's: every frame decoded (a
        // failure returned above), so the valid prefix ends where the scan
        // stopped.
        let wal = SegmentedWal::open(dir, &base, valid_len, durability.fsync_policy())?;
        shard.log = Some(ShardLog {
            wal,
            base,
            gen,
            ops_since_snapshot: 0,
            snap_offsets,
        });
        Ok(shard)
    }

    /// Turns a mapped indexed snapshot into shard state: the audit trail
    /// from the trailer metadata, and one [`EncodedRecord`] per blob whose
    /// header comes from the blob's trailer-resident index metadata — no
    /// data page is touched, which is what keeps reopening O(index).  The
    /// metadata parse fans out over the engine's workers.
    fn state_from_indexed(
        engine: &ReEncryptEngine,
        snap: snapshot::IndexedSnapshot,
    ) -> Result<RecoveredShardState> {
        let audit = durable::decode_audit_meta(snap.meta())?;
        let snap = Arc::new(snap);
        let parsed: Vec<(WireVersion, RecordHeader)> =
            engine.try_par_map_indices(snap.blob_count(), |i| {
                let meta = snap.index_meta(i).ok_or(PhrError::CorruptedRecord(
                    "snapshot blob index out of range",
                ))?;
                crate::resident::decode_index_meta(meta)
            })?;
        let mut records = BTreeMap::new();
        for (i, (version, header)) in parsed.into_iter().enumerate() {
            let id = header.id;
            let enc = EncodedRecord::from_mapped(snap.clone(), i, version, header);
            if records.insert(id, RecordBody::Encoded(enc)).is_some() {
                return Err(PhrError::CorruptedRecord(
                    "duplicate record id in snapshot index",
                ));
            }
        }
        Ok((records, audit.into_iter().map(Arc::new).collect()))
    }

    /// The decode context for lazily decoding resident record bytes.
    fn decode_ctx(&self) -> Result<DecodeCtx> {
        let params = self.params.as_ref().ok_or(PhrError::CorruptedRecord(
            "store holds encoded records but no pairing parameters",
        ))?;
        Ok(DecodeCtx::from(params))
    }

    /// Appends one operation to a shard's WAL (no-op on in-memory stores;
    /// the caller avoids even constructing the op in that case).  Runs under
    /// the shard's write lock.
    fn log_op(&self, shard: &mut Shard, op: &WalOp) {
        if self.durability.is_some() && shard.log.is_some() {
            self.log_encoded(shard, &op.to_bytes());
        }
    }

    /// Appends one already-encoded frame payload to a shard's WAL — the
    /// hot-path entry ([`WalOp::encode_put`] feeds it without cloning the
    /// record).  Fail-stop: an I/O failure here panics, see the
    /// [module docs](self).
    fn log_encoded(&self, shard: &mut Shard, payload: &[u8]) {
        let Some(d) = self.durability.as_ref() else {
            return;
        };
        // Snapshot *before* appending the new frame: logging runs ahead of
        // the in-memory apply (write-ahead), so right now the shard state is
        // consistent with exactly `committed_len()` bytes of log — the only
        // moment a `(state, wal_offset)` pair can be captured without
        // including a frame the state does not yet reflect.
        let snapshot_due = shard
            .log
            .as_ref()
            .is_some_and(|log| d.snapshot_every > 0 && log.ops_since_snapshot >= d.snapshot_every);
        if snapshot_due {
            self.snapshot_shard(shard)
                .expect("snapshot write failed; cannot continue without durability (fail-stop)");
        }
        let Some(log) = shard.log.as_mut() else {
            return;
        };
        log.wal.append(payload);
        log.wal
            .commit()
            .expect("WAL append failed; cannot continue without durability (fail-stop)");
        log.ops_since_snapshot += 1;
        self.notifier.notify();
    }

    /// Streams a shard's state into the next indexed (`TBS2`) snapshot
    /// generation — resident record bytes are *copied*, not re-encoded; the
    /// audit trail and per-record headers go into the trailer — then prunes
    /// old generations (keeping [`SNAPSHOT_GENERATIONS_KEPT`]) and
    /// garbage-collects WAL segments wholly behind the oldest kept
    /// snapshot — the compaction that bounds disk usage by churn since the
    /// last snapshot instead of store lifetime.
    fn snapshot_shard(&self, shard: &mut Shard) -> Result<()> {
        let d = self
            .durability
            .as_ref()
            .expect("snapshotting a durable store");
        // Upgrade pass: a record still resident in an older wire version
        // (recovered from a legacy store) is re-encoded at the current
        // default, so snapshots converge the store onto one format.  A
        // no-op for every already-current record — the common case.
        let ctx = self.decode_ctx()?;
        for body in shard.records.values_mut() {
            if let RecordBody::Encoded(enc) = body {
                enc.upgrade_to_default(&ctx)?;
            }
        }
        let meta = durable::encode_audit_meta(&shard.audit);
        let log = shard.log.as_mut().expect("snapshotting a durable shard");
        // Rotate so the snapshot's offset lands on a segment boundary —
        // that is what makes the prefix reclaimable as whole files once
        // this snapshot is the oldest kept.  Rotation syncs the old
        // segment first (under `Never` it only commits, keeping that
        // policy's no-fsync contract), so the snapshot never references
        // WAL bytes less durable than itself.
        let wal_offset = log.wal.rotate()?;
        log.gen += 1;
        snapshot::write_indexed_snapshot(
            &d.dir,
            &log.base,
            log.gen,
            wal_offset,
            &meta,
            shard.records.values().map(|body| match body {
                // A mapped body is read (and CRC-checked) here; a corrupt
                // blob fails the snapshot instead of being re-persisted
                // under a fresh checksum.
                RecordBody::Encoded(enc) => Ok(snapshot::IndexedBlob {
                    body: enc.body()?,
                    index_meta: crate::resident::encode_index_meta(enc.version(), &enc.header),
                }),
                RecordBody::Pinned(_) => Err(StorageError::Corrupt(
                    "durable shard holds a decoded-only record",
                )),
            }),
            !matches!(d.fsync, FsyncPolicy::Never),
        )?;
        snapshot::prune(&d.dir, &log.base, SNAPSHOT_GENERATIONS_KEPT)?;
        log.snap_offsets.insert(log.gen, wal_offset);
        // Segment GC: safe only when a full complement of generations is
        // on disk and the offset of *every* one of them is known — the
        // boundary is the smallest of those offsets, so no kept snapshot
        // can ever reference a deleted segment, and losing the newest
        // generation still leaves an older one whose log suffix survives.
        // An unknown generation (e.g. a corrupt newer file surviving from
        // a previous run) simply defers GC until pruning retires it.
        let kept = snapshot::list_generations(&d.dir, &log.base)?;
        log.snap_offsets.retain(|g, _| kept.contains(g));
        if kept.len() >= SNAPSHOT_GENERATIONS_KEPT
            && kept.iter().all(|g| log.snap_offsets.contains_key(g))
        {
            if let Some(&oldest) = log.snap_offsets.values().min() {
                log.wal.truncate_before(oldest)?;
            }
        }
        log.ops_since_snapshot = 0;
        Ok(())
    }

    /// Whether this store persists to disk.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durable store's directory (`None` for in-memory stores).
    pub fn storage_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Forces every shard's WAL to stable storage regardless of the fsync
    /// policy (clean shutdown).  No-op on in-memory stores.
    pub fn sync(&self) -> Result<()> {
        for shard in self.shards.iter() {
            let mut shard = shard.write();
            if let Some(log) = shard.log.as_mut() {
                log.wal.sync()?;
            }
        }
        Ok(())
    }

    /// Writes a fresh snapshot of every shard immediately (e.g. before a
    /// planned shutdown, to make the next recovery O(1) in the log length).
    /// No-op on in-memory stores.
    pub fn force_snapshot(&self) -> Result<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        for shard in self.shards.iter() {
            let mut shard = shard.write();
            if shard.log.is_some() {
                self.snapshot_shard(&mut shard)?;
            }
        }
        Ok(())
    }

    /// The store's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total encoded record-payload bytes resident across all shards — the
    /// store's record memory footprint (mapped snapshot blobs count at
    /// their on-disk size; pinned decoded structs report 0).  This is the
    /// numerator of the bytes-per-record gate the e12 bench and CI check.
    pub fn encoded_payload_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .read()
                    .records
                    .values()
                    .map(|body| body.encoded_len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// The shard a record id lives on.  Sequential ids are spread with a
    /// Fibonacci multiplicative hash so bursts of fresh records do not all
    /// land on neighbouring stripes.
    fn shard_for_id(&self, id: RecordId) -> &RwLock<Shard> {
        let hashed = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(hashed >> 32) as usize % self.shards.len()]
    }

    /// The shard that hosts audit events not tied to any record (policy
    /// changes), chosen by patient so one patient's policy history stays on
    /// one stripe.
    fn shard_for_patient(&self, patient: &Identity) -> &RwLock<Shard> {
        let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for &byte in patient.as_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(hash >> 32) as usize % self.shards.len()]
    }

    /// Advances the store-global logical clock.  Called while holding the
    /// destination shard's write lock, so events within a shard are appended
    /// in timestamp order and timestamps are unique across the store.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Inserts an encrypted record and returns its identifier.  On a durable
    /// store the record is logged to the owning shard's WAL before it becomes
    /// visible in memory — and the shard then retains *the same encoded
    /// buffer* the WAL appended: one encode total, no decoded copy kept
    /// (the freshly built struct primes the read cache instead).
    pub fn put(
        &self,
        patient: &Identity,
        category: &Category,
        title: &str,
        ciphertext: HybridCiphertext,
    ) -> RecordId {
        let id = RecordId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let record = Arc::new(StoredRecord {
            id,
            patient: patient.clone(),
            category: category.clone(),
            title: title.to_string(),
            ciphertext,
        });
        let header = RecordHeader {
            id,
            patient: patient.clone(),
            category: category.clone(),
        };
        let mut shard = self.shard_for_id(id).write();
        let at = self.tick();
        let body = if self.is_durable() {
            // Encoded from the borrowed record: no clone of the ciphertext
            // body on the write path — and the frame buffer the WAL just
            // appended becomes the record's resident bytes.
            let frame = WalOp::encode_put(record.as_ref(), at);
            self.log_encoded(&mut shard, &frame);
            let (version, body_start) = durable::wal_put_body_layout(&frame);
            RecordBody::Encoded(EncodedRecord::from_owned(
                frame.into(),
                body_start,
                version,
                header,
            ))
        } else if self.params.is_some() {
            let version = WireVersion::DEFAULT;
            let bytes = tibpre_wire::encode_bare(record.as_ref(), version);
            RecordBody::Encoded(EncodedRecord::from_owned(bytes.into(), 0, version, header))
        } else {
            RecordBody::Pinned(record.clone())
        };
        if matches!(body, RecordBody::Encoded(_)) {
            // The caller just handed us the decoded struct; cache it so the
            // common read-after-write needs no decode.
            shard.cache.get_mut().insert(id, record.clone());
        }
        shard.records.insert(id, body);
        shard
            .by_patient
            .entry(patient.as_bytes().to_vec())
            .or_default()
            .insert(id);
        shard.audit.push(Arc::new(AuditEvent::RecordStored {
            id,
            patient: patient.clone(),
            category: category.clone(),
            at,
        }));
        id
    }

    /// Fetches one record by identifier.  Takes only the owning shard's read
    /// lock, so lookups on different shards run fully in parallel.
    ///
    /// Returns a shared handle, not a copy: a hit in the per-shard LRU of
    /// hot decoded records costs one `Arc` clone.  On a miss the resident
    /// bytes are decoded (faulting in and CRC-checking mapped snapshot
    /// pages on first touch) and the result is cached.
    pub fn get(&self, id: RecordId) -> Result<Arc<StoredRecord>> {
        let shard = self.shard_for_id(id).read();
        match shard.records.get(&id) {
            None => Err(PhrError::RecordNotFound),
            Some(RecordBody::Pinned(record)) => Ok(record.clone()),
            Some(RecordBody::Encoded(enc)) => {
                let mut cache = shard.cache.lock();
                if let Some(hit) = cache.get(id) {
                    return Ok(hit);
                }
                let record = Arc::new(enc.decode(&self.decode_ctx()?)?);
                cache.insert(id, record.clone());
                Ok(record)
            }
        }
    }

    /// Deletes a record.  Only the owning patient may delete.  The check
    /// runs on the record's header — no decode.
    pub fn delete(&self, id: RecordId, requester: &Identity) -> Result<()> {
        let mut shard = self.shard_for_id(id).write();
        let body = shard.records.get(&id).ok_or(PhrError::RecordNotFound)?;
        if body.patient() != requester {
            return Err(PhrError::AccessDenied {
                category: body.category().label(),
                requester: requester.display(),
            });
        }
        let patient_key = body.patient().as_bytes().to_vec();
        let at = self.tick();
        self.log_op(&mut shard, &WalOp::Delete { id, at });
        shard.records.remove(&id);
        shard.cache.get_mut().remove(id);
        if let Some(set) = shard.by_patient.get_mut(&patient_key) {
            set.remove(&id);
        }
        shard
            .audit
            .push(Arc::new(AuditEvent::RecordDeleted { id, at }));
        Ok(())
    }

    /// Lists the identifiers of all records owned by a patient, in ascending
    /// id order, merged from every shard's per-patient index.
    pub fn list_for_patient(&self, patient: &Identity) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .by_patient
                    .get(patient.as_bytes())
                    .map(|set| set.iter().copied().collect::<Vec<_>>())
                    .unwrap_or_default()
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Lists the identifiers of a patient's records in one category, in
    /// ascending id order.  The category filter reads record headers, so no
    /// record is decoded.
    pub fn list_for_patient_category(
        &self,
        patient: &Identity,
        category: &Category,
    ) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let shard = shard.read();
                shard
                    .by_patient
                    .get(patient.as_bytes())
                    .map(|set| {
                        set.iter()
                            .filter(|id| {
                                shard
                                    .records
                                    .get(id)
                                    .map(|body| body.category() == category)
                                    .unwrap_or(false)
                            })
                            .copied()
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default()
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Total number of stored records.
    pub fn record_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.read().records.len())
            .sum()
    }

    /// Number of records owned by one patient.
    pub fn count_for_patient(&self, patient: &Identity) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .read()
                    .by_patient
                    .get(patient.as_bytes())
                    .map(|s| s.len())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Records a disclosure event in the store's audit trail (called by
    /// proxies).  The event lands on the record's shard.
    pub fn log_disclosure(&self, id: RecordId, requester: &Identity, granted: bool) {
        let mut shard = self.shard_for_id(id).write();
        let at = self.tick();
        let event = Arc::new(if granted {
            AuditEvent::DisclosurePerformed {
                id,
                requester: requester.clone(),
                at,
            }
        } else {
            AuditEvent::DisclosureDenied {
                id,
                requester: requester.clone(),
                at,
            }
        });
        if self.is_durable() && shard.log.is_some() {
            // Encoded from the borrowed event: no clone for the log.
            self.log_encoded(&mut shard, &WalOp::encode_audit(event.as_ref()));
        }
        shard.audit.push(event);
    }

    /// Records a grant / revoke event in the store's audit trail.  The event
    /// lands on the patient's policy shard.
    pub fn log_policy_change(
        &self,
        patient: &Identity,
        category: &Category,
        grantee: &Identity,
        granted: bool,
    ) {
        let mut shard = self.shard_for_patient(patient).write();
        let at = self.tick();
        let event = Arc::new(if granted {
            AuditEvent::AccessGranted {
                patient: patient.clone(),
                category: category.clone(),
                grantee: grantee.clone(),
                at,
            }
        } else {
            AuditEvent::AccessRevoked {
                patient: patient.clone(),
                category: category.clone(),
                grantee: grantee.clone(),
                at,
            }
        });
        if self.is_durable() && shard.log.is_some() {
            self.log_encoded(&mut shard, &WalOp::encode_audit(event.as_ref()));
        }
        shard.audit.push(event);
    }

    /// A snapshot of the audit trail: every shard's segment, merged into one
    /// sequence ordered by the store-global logical clock.  Events are
    /// shared handles — no event is copied.
    pub fn audit_snapshot(&self) -> Vec<Arc<AuditEvent>> {
        let mut events: Vec<Arc<AuditEvent>> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().audit.clone())
            .collect();
        events.sort_by_key(|event| event.at());
        events
    }

    // --- Replication -----------------------------------------------------
    //
    // The primary side reads committed WAL bytes per shard
    // ([`Self::replication_chunk`]) and ships whole snapshot files
    // ([`Self::replication_snapshot`]) when a replica's offset was
    // garbage-collected; the replica side applies shipped frames through
    // the same code path crash recovery replays them
    // ([`Self::apply_replication_frame`]).  Per-patient policy events land
    // on one shard (`shard_for_patient`), so in-order per-shard apply
    // preserves every grant/revoke ordering — replication cannot resurrect
    // a revoked key.

    /// The subscription point for log shipping: bumped after every durable
    /// commit and every replicated apply.  A shipping loop that has caught
    /// up waits on it instead of polling.
    pub fn commit_notifier(&self) -> Arc<CommitNotifier> {
        Arc::clone(&self.notifier)
    }

    /// Per-shard committed logical WAL positions, read under each shard's
    /// read lock — the safe upper bounds for [`Self::replication_chunk`]
    /// reads (a group commit is one `write(2)` under the shard write lock,
    /// so committed positions never expose a torn frame).  In-memory shards
    /// report 0.
    pub fn replication_positions(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .read()
                    .log
                    .as_ref()
                    .map_or(0, |log| log.wal.logical_len())
            })
            .collect()
    }

    /// Reads up to `max` committed WAL bytes of one shard starting at
    /// logical offset `from` — raw log bytes, cut at segment ends, with no
    /// frame alignment promised (receivers reassemble frames with
    /// [`tibpre_storage::frame::scan`]).  `Gone` means the prefix behind
    /// `from` was garbage-collected and the replica must bootstrap from
    /// [`Self::replication_snapshot`].
    pub fn replication_chunk(
        &self,
        shard_index: usize,
        from: u64,
        max: usize,
    ) -> Result<ChunkOutcome> {
        let d = self.durability.as_ref().ok_or(PhrError::CorruptedRecord(
            "replication source must be a durable store",
        ))?;
        let shard = self
            .shards
            .get(shard_index)
            .ok_or(PhrError::CorruptedRecord("shard index out of range"))?;
        let committed = shard
            .read()
            .log
            .as_ref()
            .map_or(0, |log| log.wal.logical_len());
        let log = ReplicationLog::new(&d.dir, &durable::shard_base(shard_index));
        Ok(log.read_chunk(from, committed, max)?)
    }

    /// The newest intact snapshot generation of one shard as raw file
    /// bytes, with its generation number and WAL offset — what a primary
    /// ships to bootstrap a replica whose requested offset lies behind the
    /// garbage-collected log floor.  `None` when the shard has never
    /// snapshotted (replicas then stream the log from offset 0).
    pub fn replication_snapshot(&self, shard_index: usize) -> Result<Option<(u64, u64, Vec<u8>)>> {
        let d = self.durability.as_ref().ok_or(PhrError::CorruptedRecord(
            "replication source must be a durable store",
        ))?;
        let shard = self
            .shards
            .get(shard_index)
            .ok_or(PhrError::CorruptedRecord("shard index out of range"))?;
        let base = durable::shard_base(shard_index);
        // Snapshot files are immutable once renamed into place; the shard
        // read lock only excludes pruning (which runs under the write
        // lock) between listing a generation and reading its bytes.
        let _guard = shard.read();
        for gen in snapshot::list_generations(&d.dir, &base)? {
            let Ok(offset) = snapshot::peek_wal_offset(&d.dir, &base, gen) else {
                continue; // torn or corrupt: fall back a generation
            };
            let Ok(bytes) = std::fs::read(snapshot::snapshot_path(&d.dir, &base, gen)) else {
                continue;
            };
            return Ok(Some((gen, offset, bytes)));
        }
        Ok(None)
    }

    /// Applies one replicated WAL frame payload to a shard — the
    /// replica-side twin of crash recovery's replay loop, incremental
    /// instead of batch.  Frames must arrive in per-shard log order; that
    /// ordering is exactly what makes the revocation invariant hold, since
    /// one patient's grants and revocations all live on one shard.
    pub fn apply_replication_frame(&self, shard_index: usize, payload: &[u8]) -> Result<()> {
        let params = self.params.as_ref().ok_or(PhrError::CorruptedRecord(
            "replica store has no pairing parameters",
        ))?;
        let op = WalOp::from_bytes(params, payload)?;
        let shard = self
            .shards
            .get(shard_index)
            .ok_or(PhrError::CorruptedRecord("shard index out of range"))?;
        let mut shard = shard.write();
        match op {
            WalOp::Put { record, at } => {
                let (version, body_start) = durable::wal_put_body_layout(payload);
                let record = *record;
                let id = record.id;
                let header = RecordHeader {
                    id,
                    patient: record.patient.clone(),
                    category: record.category.clone(),
                };
                shard.audit.push(Arc::new(AuditEvent::RecordStored {
                    id,
                    patient: record.patient.clone(),
                    category: record.category,
                    at,
                }));
                let enc =
                    EncodedRecord::from_owned(payload.to_vec().into(), body_start, version, header);
                shard
                    .by_patient
                    .entry(record.patient.as_bytes().to_vec())
                    .or_default()
                    .insert(id);
                shard.records.insert(id, RecordBody::Encoded(enc));
                self.next_id.fetch_max(id.0, Ordering::Relaxed);
                self.clock.fetch_max(at, Ordering::Relaxed);
            }
            WalOp::Delete { id, at } => {
                if let Some(body) = shard.records.remove(&id) {
                    let key = body.patient().as_bytes().to_vec();
                    if let Some(set) = shard.by_patient.get_mut(&key) {
                        set.remove(&id);
                    }
                }
                shard.cache.get_mut().remove(id);
                shard
                    .audit
                    .push(Arc::new(AuditEvent::RecordDeleted { id, at }));
                self.clock.fetch_max(at, Ordering::Relaxed);
            }
            WalOp::Audit { event } => {
                self.clock.fetch_max(event.at(), Ordering::Relaxed);
                shard.audit.push(Arc::new(event));
            }
        }
        drop(shard);
        self.notifier.notify();
        Ok(())
    }

    /// Replaces one shard's state with a shipped snapshot generation (the
    /// raw file bytes a primary's [`Self::replication_snapshot`] produced)
    /// and returns the snapshot's WAL offset — where the replica resumes
    /// applying chunks.  Works on in-memory replicas: the bytes are
    /// materialized under the snapshot's canonical name in a scratch
    /// directory so the existing loaders (memory-mapped `TBS2` first,
    /// legacy `TBS1` fallback) read them unchanged; the mapping outlives
    /// the unlinked scratch file.
    pub fn install_replica_snapshot(
        &self,
        shard_index: usize,
        gen: u64,
        bytes: &[u8],
    ) -> Result<u64> {
        let params = self.params.as_ref().ok_or(PhrError::CorruptedRecord(
            "replica store has no pairing parameters",
        ))?;
        let shard_lock = self
            .shards
            .get(shard_index)
            .ok_or(PhrError::CorruptedRecord("shard index out of range"))?;
        let base = durable::shard_base(shard_index);
        let scratch = tibpre_storage::TempDir::new("replica-snap")?;
        std::fs::write(snapshot::snapshot_path(scratch.path(), &base, gen), bytes)?;
        let (records, audit, offset): (BTreeMap<RecordId, RecordBody>, _, u64) =
            match snapshot::load_indexed(scratch.path(), &base, gen) {
                Ok(snap) => {
                    let offset = snap.wal_offset();
                    let engine = ReEncryptEngine::from_env();
                    let (records, audit) = Self::state_from_indexed(&engine, snap)?;
                    (records, audit, offset)
                }
                Err(_) => {
                    let snap =
                        snapshot::load_snapshot(scratch.path(), &base, gen).map_err(|_| {
                            PhrError::CorruptedRecord(
                                "shipped snapshot failed to validate in either layout",
                            )
                        })?;
                    let (records, audit) =
                        durable::decode_shard_state_resident(params, &snap.payload)?;
                    (
                        records
                            .into_iter()
                            .map(|enc| (enc.header.id, RecordBody::Encoded(enc)))
                            .collect(),
                        audit.into_iter().map(Arc::new).collect(),
                        snap.wal_offset,
                    )
                }
            };
        let mut shard = shard_lock.write();
        shard.records = records;
        shard.audit = audit;
        *shard.cache.get_mut() = DecodedCache::from_env();
        shard.rebuild_index();
        // Resume the id allocator and logical clock above everything the
        // snapshot carries, exactly as `open` does after recovery.
        if let Some((&id, _)) = shard.records.iter().next_back() {
            self.next_id.fetch_max(id.0, Ordering::Relaxed);
        }
        for event in &shard.audit {
            self.clock.fetch_max(event.at(), Ordering::Relaxed);
            match event.as_ref() {
                AuditEvent::RecordStored { id, .. }
                | AuditEvent::RecordDeleted { id, .. }
                | AuditEvent::DisclosurePerformed { id, .. }
                | AuditEvent::DisclosureDenied { id, .. } => {
                    self.next_id.fetch_max(id.0, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        drop(shard);
        self.notifier.notify();
        Ok(offset)
    }
}

impl core::fmt::Debug for EncryptedPhrStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "EncryptedPhrStore(name={}, records={}, shards={}, durable={})",
            self.name,
            self.record_count(),
            self.shards.len(),
            self.durability.is_some()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_core::{Delegator, TypeTag};
    use tibpre_ibe::Kgc;
    use tibpre_pairing::PairingParams;

    fn sample_ciphertext(rng: &mut StdRng) -> HybridCiphertext {
        let params = PairingParams::insecure_toy();
        let kgc = Kgc::setup(params, "kgc", rng);
        let delegator = Delegator::new(
            kgc.public_params().clone(),
            kgc.extract(&Identity::new("alice")),
        );
        delegator.encrypt_bytes(b"payload", b"", &TypeTag::new("t"), rng)
    }

    #[test]
    fn put_get_list_delete() {
        let mut rng = StdRng::seed_from_u64(131);
        let store = EncryptedPhrStore::new("db");
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let ct = sample_ciphertext(&mut rng);

        let id1 = store.put(&alice, &Category::Emergency, "r1", ct.clone());
        let id2 = store.put(&alice, &Category::LabResults, "r2", ct.clone());
        let id3 = store.put(&bob, &Category::Emergency, "r3", ct.clone());
        assert_ne!(id1, id2);
        assert_eq!(store.record_count(), 3);
        assert_eq!(store.count_for_patient(&alice), 2);
        assert_eq!(store.count_for_patient(&bob), 1);

        assert_eq!(store.get(id1).unwrap().title, "r1");
        assert_eq!(store.list_for_patient(&alice), vec![id1, id2]);
        assert_eq!(
            store.list_for_patient_category(&alice, &Category::Emergency),
            vec![id1]
        );
        assert!(store
            .list_for_patient_category(&bob, &Category::LabResults)
            .is_empty());

        // Only the owner can delete.
        assert!(matches!(
            store.delete(id1, &bob),
            Err(PhrError::AccessDenied { .. })
        ));
        store.delete(id1, &alice).unwrap();
        assert!(matches!(store.get(id1), Err(PhrError::RecordNotFound)));
        assert_eq!(store.count_for_patient(&alice), 1);
        assert!(matches!(
            store.delete(id1, &alice),
            Err(PhrError::RecordNotFound)
        ));
        let _ = id3;
    }

    #[test]
    fn audit_trail_records_everything() {
        let mut rng = StdRng::seed_from_u64(132);
        let store = EncryptedPhrStore::new("db");
        let alice = Identity::new("alice");
        let doctor = Identity::new("doctor");
        let ct = sample_ciphertext(&mut rng);
        let id = store.put(&alice, &Category::Emergency, "r", ct);
        store.log_policy_change(&alice, &Category::Emergency, &doctor, true);
        store.log_disclosure(id, &doctor, true);
        store.log_disclosure(id, &Identity::new("employer"), false);
        store.log_policy_change(&alice, &Category::Emergency, &doctor, false);
        store.delete(id, &alice).unwrap();

        let audit = store.audit_snapshot();
        assert_eq!(audit.len(), 6);
        assert!(matches!(*audit[0], AuditEvent::RecordStored { .. }));
        assert!(matches!(*audit[1], AuditEvent::AccessGranted { .. }));
        assert!(matches!(*audit[2], AuditEvent::DisclosurePerformed { .. }));
        assert!(matches!(*audit[3], AuditEvent::DisclosureDenied { .. }));
        assert!(matches!(*audit[4], AuditEvent::AccessRevoked { .. }));
        assert!(matches!(*audit[5], AuditEvent::RecordDeleted { .. }));
        // Timestamps are strictly increasing.
        for pair in audit.windows(2) {
            assert!(pair[0].at() < pair[1].at());
        }
    }

    #[test]
    fn single_shard_store_still_works() {
        let mut rng = StdRng::seed_from_u64(134);
        let store = EncryptedPhrStore::with_shards("db", 1);
        assert_eq!(store.shard_count(), 1);
        let alice = Identity::new("alice");
        let ct = sample_ciphertext(&mut rng);
        let ids: Vec<_> = (0..5)
            .map(|i| store.put(&alice, &Category::Medication, &format!("r{i}"), ct.clone()))
            .collect();
        assert_eq!(store.list_for_patient(&alice), ids);
        store.delete(ids[2], &alice).unwrap();
        assert_eq!(store.count_for_patient(&alice), 4);
        assert_eq!(store.audit_snapshot().len(), 6);
    }

    #[test]
    fn records_spread_across_shards() {
        let mut rng = StdRng::seed_from_u64(135);
        let store = EncryptedPhrStore::new("db");
        let alice = Identity::new("alice");
        let ct = sample_ciphertext(&mut rng);
        let ids: Vec<_> = (0..64)
            .map(|i| store.put(&alice, &Category::LabResults, &format!("r{i}"), ct.clone()))
            .collect();
        // The Fibonacci hash must not funnel a sequential id burst onto one
        // stripe: with 64 records over 16 shards, several shards must be hit.
        let hit: std::collections::BTreeSet<usize> = ids
            .iter()
            .map(|id| {
                (id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % store.shard_count()
            })
            .collect();
        assert!(hit.len() >= store.shard_count() / 2, "hit {hit:?}");
        // And every record is still found.
        assert_eq!(store.list_for_patient(&alice), ids);
        for id in ids {
            assert!(store.get(id).is_ok());
        }
    }

    #[test]
    fn encoded_stores_serve_hot_gets_from_the_lru() {
        let mut rng = StdRng::seed_from_u64(150);
        let store = EncryptedPhrStore::in_memory_with_params("ram-enc", toy_params());
        let alice = Identity::new("alice");
        let ct = sample_ciphertext(&mut rng);
        let id = store.put(&alice, &Category::Emergency, "r", ct);
        // Wire-resident: the record is held encoded...
        assert!(store.encoded_payload_bytes() > 0);
        // ...and repeated reads share one decoded instance through the LRU.
        let a = store.get(id).unwrap();
        let b = store.get(id).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second read must hit the cache");
        assert_eq!(a.title, "r");

        // The plain store pins decoded structs: zero resident encoded bytes,
        // and reads share the pinned instance.
        let plain = EncryptedPhrStore::new("ram");
        let ct = sample_ciphertext(&mut rng);
        let id = plain.put(&alice, &Category::Emergency, "r", ct);
        assert_eq!(plain.encoded_payload_bytes(), 0);
        let p1 = plain.get(id).unwrap();
        let p2 = plain.get(id).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn encoded_in_memory_store_matches_the_pinned_oracle() {
        let mut rng = StdRng::seed_from_u64(151);
        let encoded = EncryptedPhrStore::with_shards_and_params("enc", 4, toy_params());
        let oracle = EncryptedPhrStore::with_shards("plain", 4);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let ct = sample_ciphertext(&mut rng);
        for i in 0..10 {
            let patient = if i % 2 == 0 { &alice } else { &bob };
            let a = encoded.put(patient, &Category::LabResults, &format!("r{i}"), ct.clone());
            let b = oracle.put(patient, &Category::LabResults, &format!("r{i}"), ct.clone());
            assert_eq!(a, b);
        }
        encoded.delete(RecordId(3), &alice).unwrap();
        oracle.delete(RecordId(3), &alice).unwrap();
        assert_stores_equal(&encoded, &oracle, &[alice, bob]);
    }

    fn toy_params() -> std::sync::Arc<PairingParams> {
        PairingParams::insecure_toy()
    }

    /// Compares every observable of two stores: records (byte-identical via
    /// `PartialEq` on the ciphertexts), per-patient indexes and the merged
    /// audit trail.
    fn assert_stores_equal(a: &EncryptedPhrStore, b: &EncryptedPhrStore, patients: &[Identity]) {
        assert_eq!(a.record_count(), b.record_count());
        assert_eq!(a.audit_snapshot(), b.audit_snapshot());
        for patient in patients {
            assert_eq!(a.list_for_patient(patient), b.list_for_patient(patient));
            for id in a.list_for_patient(patient) {
                assert_eq!(a.get(id).unwrap(), b.get(id).unwrap());
            }
        }
    }

    #[test]
    fn durable_store_round_trips_across_reopen() {
        let mut rng = StdRng::seed_from_u64(140);
        let params = toy_params();
        let tmp = tibpre_storage::TempDir::new("store-reopen").unwrap();
        let dir = tmp.path().join("phr-db");
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let doctor = Identity::new("doctor");
        let ct = sample_ciphertext(&mut rng);

        let durability = || {
            Durability::new(params.clone())
                .shards(4)
                .fsync(FsyncPolicy::Never)
        };
        let (id1, id3) = {
            let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
            assert!(store.is_durable());
            assert_eq!(store.name(), "phr-db");
            assert_eq!(store.shard_count(), 4);
            let id1 = store.put(&alice, &Category::Emergency, "r1", ct.clone());
            let id2 = store.put(&alice, &Category::LabResults, "r2", ct.clone());
            let id3 = store.put(&bob, &Category::Medication, "r3", ct.clone());
            store.log_policy_change(&alice, &Category::Emergency, &doctor, true);
            store.log_disclosure(id1, &doctor, true);
            store.delete(id2, &alice).unwrap();
            (id1, id3)
        };

        let reopened = EncryptedPhrStore::open(&dir, durability()).unwrap();
        // The persisted shard count wins over the configured one.
        assert_eq!(reopened.shard_count(), 4);
        assert_eq!(reopened.record_count(), 2);
        assert_eq!(reopened.get(id1).unwrap().title, "r1");
        assert_eq!(reopened.get(id3).unwrap().patient, bob);
        assert_eq!(reopened.list_for_patient(&alice), vec![id1]);
        let audit = reopened.audit_snapshot();
        assert_eq!(audit.len(), 6);
        for pair in audit.windows(2) {
            assert!(pair[0].at() < pair[1].at());
        }
        // Fresh ids and timestamps continue above everything ever logged —
        // including the deleted record's id.
        let id4 = reopened.put(&alice, &Category::Emergency, "r4", ct.clone());
        assert!(id4.0 > id3.0);
        let audit = reopened.audit_snapshot();
        assert_eq!(audit.len(), 7);
        assert!(audit[6].at() > audit[5].at());

        // The recovered store equals an in-memory oracle fed the same ops.
        let oracle = EncryptedPhrStore::with_shards("oracle", 4);
        let o1 = oracle.put(&alice, &Category::Emergency, "r1", ct.clone());
        let o2 = oracle.put(&alice, &Category::LabResults, "r2", ct.clone());
        oracle.put(&bob, &Category::Medication, "r3", ct.clone());
        oracle.log_policy_change(&alice, &Category::Emergency, &doctor, true);
        oracle.log_disclosure(o1, &doctor, true);
        oracle.delete(o2, &alice).unwrap();
        oracle.put(&alice, &Category::Emergency, "r4", ct);
        assert_stores_equal(&reopened, &oracle, &[alice, bob]);
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let mut rng = StdRng::seed_from_u64(141);
        let params = toy_params();
        let tmp = tibpre_storage::TempDir::new("store-torn").unwrap();
        let dir = tmp.path().join("db");
        let alice = Identity::new("alice");
        let ct = sample_ciphertext(&mut rng);
        let durability = || {
            Durability::new(params.clone())
                .shards(1)
                .fsync(FsyncPolicy::Never)
        };
        {
            let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
            store.put(&alice, &Category::Emergency, "r1", ct.clone());
            store.put(&alice, &Category::Emergency, "r2", ct.clone());
        }
        // Tear the last frame mid-payload.
        let wal = crate::durable::shard_wal_path(&dir, 0);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

        let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
        assert_eq!(store.record_count(), 1);
        assert_eq!(store.audit_snapshot().len(), 1);
        // The torn tail is physically gone and the log accepts new writes.
        assert!(std::fs::metadata(&wal).unwrap().len() < bytes.len() as u64);
        let id = store.put(&alice, &Category::Emergency, "r2-again", ct);
        drop(store);
        let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
        assert_eq!(store.record_count(), 2);
        assert_eq!(store.get(id).unwrap().title, "r2-again");
    }

    #[test]
    fn snapshots_bound_recovery_to_the_wal_tail() {
        let mut rng = StdRng::seed_from_u64(142);
        let params = toy_params();
        let tmp = tibpre_storage::TempDir::new("store-snap").unwrap();
        let dir = tmp.path().join("db");
        let alice = Identity::new("alice");
        let ct = sample_ciphertext(&mut rng);
        let durability = || {
            Durability::new(params.clone())
                .shards(1)
                .fsync(FsyncPolicy::Never)
                .snapshot_every(4)
        };
        {
            let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
            for i in 0..10 {
                store.put(&alice, &Category::LabResults, &format!("r{i}"), ct.clone());
            }
        }
        // Snapshots were written (10 ops, cadence 4 → generations 1 and 2),
        // in the indexed layout.
        let gens = tibpre_storage::snapshot::list_generations(&dir, "shard-00").unwrap();
        assert_eq!(gens, vec![2, 1]);
        let newest = tibpre_storage::snapshot::load_indexed(&dir, "shard-00", 2).unwrap();
        assert_eq!(newest.blob_count(), 8, "snapshot 2 captured puts 1..=8");

        let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
        assert_eq!(store.record_count(), 10);
        assert_eq!(store.audit_snapshot().len(), 10);
        assert_eq!(store.list_for_patient(&alice).len(), 10);
        // Every record decodes — snapshot-mapped blobs and WAL-tail frames
        // alike.
        for (i, id) in store.list_for_patient(&alice).into_iter().enumerate() {
            assert_eq!(store.get(id).unwrap().title, format!("r{i}"));
        }
        // force_snapshot writes a fresh generation and prunes to two.
        store.force_snapshot().unwrap();
        let gens = tibpre_storage::snapshot::list_generations(&dir, "shard-00").unwrap();
        assert_eq!(gens, vec![3, 2]);
        store.sync().unwrap();
    }

    #[test]
    fn mapped_snapshot_corruption_is_contained() {
        let mut rng = StdRng::seed_from_u64(152);
        let params = toy_params();
        let tmp = tibpre_storage::TempDir::new("store-mmap-corrupt").unwrap();
        let dir = tmp.path().join("db");
        let alice = Identity::new("alice");
        let ct = sample_ciphertext(&mut rng);
        let durability = || {
            Durability::new(params.clone())
                .shards(1)
                .fsync(FsyncPolicy::Never)
                .snapshot_every(4)
        };
        {
            let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
            for i in 0..10 {
                store.put(&alice, &Category::LabResults, &format!("r{i}"), ct.clone());
            }
        }
        let newest = tibpre_storage::snapshot::snapshot_path(&dir, "shard-00", 2);
        let pristine = std::fs::read(&newest).unwrap();

        // Truncation (torn write of the newest generation): the open falls
        // back to the previous generation plus a longer WAL replay, and
        // recovers everything.
        std::fs::write(&newest, &pristine[..pristine.len() / 2]).unwrap();
        {
            let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
            assert_eq!(store.record_count(), 10);
            for id in store.list_for_patient(&alice) {
                assert!(store.get(id).is_ok());
            }
        }

        // A bit flip inside the *data region* of the mapped snapshot: the
        // open still succeeds (it validates only the trailer — that is what
        // makes reopening O(index)), every intact record is served, and the
        // damaged record surfaces as an error on read — never as corrupt
        // plaintext bytes.
        let mut flipped = pristine.clone();
        flipped[10] ^= 0x40; // inside blob 0 (the data region starts at 4)
        std::fs::write(&newest, &flipped).unwrap();
        {
            let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
            assert_eq!(store.record_count(), 10);
            let mut failures = 0;
            let mut served = 0;
            for id in store.list_for_patient(&alice) {
                match store.get(id) {
                    Ok(_) => served += 1,
                    Err(PhrError::CorruptedRecord(_)) => failures += 1,
                    Err(other) => panic!("unexpected error: {other:?}"),
                }
            }
            assert_eq!(failures, 1, "exactly the flipped blob fails");
            assert_eq!(served, 9);
        }
    }

    #[test]
    fn second_concurrent_open_of_the_same_directory_is_refused() {
        let params = toy_params();
        let tmp = tibpre_storage::TempDir::new("store-lock").unwrap();
        let dir = tmp.path().join("db");
        let durability = || {
            Durability::new(params.clone())
                .shards(1)
                .fsync(FsyncPolicy::Never)
        };
        let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
        // A second open would truncate WAL tails the first holder is still
        // appending to — it must fail while the first store lives...
        assert!(matches!(
            EncryptedPhrStore::open(&dir, durability()),
            Err(PhrError::Storage(_))
        ));
        // ...and succeed once it is gone (the OS releases the lock).
        drop(store);
        EncryptedPhrStore::open(&dir, durability()).unwrap();
    }

    #[test]
    fn crc_valid_but_undecodable_frame_fails_open_instead_of_truncating() {
        let mut rng = StdRng::seed_from_u64(143);
        let params = toy_params();
        let tmp = tibpre_storage::TempDir::new("store-undecodable").unwrap();
        let dir = tmp.path().join("db");
        let alice = Identity::new("alice");
        let ct = sample_ciphertext(&mut rng);
        let durability = || {
            Durability::new(params.clone())
                .shards(1)
                .fsync(FsyncPolicy::Never)
        };
        {
            let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
            store.put(&alice, &Category::Emergency, "r1", ct);
        }
        // Append a frame that passes its checksum but carries an unknown op
        // tag — e.g. written by a future format version.
        let wal_path = crate::durable::shard_wal_path(&dir, 0);
        let before = std::fs::metadata(&wal_path).unwrap().len();
        let mut wal =
            tibpre_storage::WalWriter::open(&wal_path, before, tibpre_storage::FsyncPolicy::Never)
                .unwrap();
        wal.append(&[0xEE, 1, 2, 3]);
        wal.sync().unwrap();
        drop(wal);
        let after = std::fs::metadata(&wal_path).unwrap().len();

        // The open refuses: this is an operator error, not corruption, and
        // truncating would destroy intact data.
        assert!(matches!(
            EncryptedPhrStore::open(&dir, durability()),
            Err(PhrError::CorruptedRecord(_))
        ));
        // Nothing was truncated by the failed open.
        assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), after);
        let _ = before;
    }

    #[test]
    fn legacy_monolithic_snapshots_recover_and_repersist_indexed() {
        // Fabricate a store whose only snapshot is a legacy TBS1 monolith —
        // what a pre-indexed version would have left behind — and check the
        // wire-resident store recovers it and converges to TBS2.
        let mut rng = StdRng::seed_from_u64(153);
        let params = toy_params();
        let tmp = tibpre_storage::TempDir::new("store-tbs1").unwrap();
        let dir = tmp.path().join("db");
        let alice = Identity::new("alice");
        let ct = sample_ciphertext(&mut rng);
        let durability = || {
            Durability::new(params.clone())
                .shards(1)
                .fsync(FsyncPolicy::Never)
                .snapshot_every(4)
        };
        {
            let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
            for i in 0..6 {
                store.put(&alice, &Category::Medication, &format!("r{i}"), ct.clone());
            }
        }
        // Rewrite the newest generation in the legacy monolithic layout,
        // from the same records and audit trail the store would persist.
        let reopened = EncryptedPhrStore::open(&dir, durability()).unwrap();
        let records: Vec<StoredRecord> = reopened
            .list_for_patient(&alice)
            .into_iter()
            .map(|id| reopened.get(id).unwrap().as_ref().clone())
            .collect();
        let audit: Vec<AuditEvent> = reopened
            .audit_snapshot()
            .iter()
            .map(|e| e.as_ref().clone())
            .collect();
        drop(reopened);
        let newest = tibpre_storage::snapshot::load_indexed(&dir, "shard-00", 1).unwrap();
        let wal_offset = newest.wal_offset();
        drop(newest);
        let payload = durable::encode_shard_state(records.iter().take(4), &audit[..4]);
        tibpre_storage::snapshot::write_snapshot(&dir, "shard-00", 1, wal_offset, &payload, false)
            .unwrap();

        let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
        assert_eq!(store.record_count(), 6);
        for (i, id) in store.list_for_patient(&alice).into_iter().enumerate() {
            assert_eq!(store.get(id).unwrap().title, format!("r{i}"));
        }
        // The next snapshot repersists everything in the indexed layout.
        store.force_snapshot().unwrap();
        let gens = tibpre_storage::snapshot::list_generations(&dir, "shard-00").unwrap();
        let repersisted =
            tibpre_storage::snapshot::load_indexed(&dir, "shard-00", gens[0]).unwrap();
        assert_eq!(repersisted.blob_count(), 6);
    }

    /// Streams every shard of a durable primary into an in-memory replica
    /// through the public replication API: snapshot bootstrap when the log
    /// floor was GC'd, then chunked frame application.
    fn replicate_all(primary: &EncryptedPhrStore, replica: &EncryptedPhrStore) {
        let positions = primary.replication_positions();
        for (shard, &want) in positions.iter().enumerate() {
            let mut from = 0u64;
            let mut buffer: Vec<u8> = Vec::new();
            loop {
                match primary
                    .replication_chunk(shard, from + buffer.len() as u64, 64)
                    .unwrap()
                {
                    ChunkOutcome::Bytes(chunk) => {
                        buffer.extend(chunk);
                        let scan = frame::scan(&buffer, 0);
                        for payload in &scan.frames {
                            replica.apply_replication_frame(shard, payload).unwrap();
                        }
                        from += scan.valid_len;
                        buffer.drain(..scan.valid_len as usize);
                    }
                    ChunkOutcome::Gone => {
                        assert!(buffer.is_empty(), "GC below an already-read offset");
                        let (gen, offset, bytes) = primary
                            .replication_snapshot(shard)
                            .unwrap()
                            .expect("a GC'd log floor implies a kept snapshot");
                        let resumed = replica
                            .install_replica_snapshot(shard, gen, &bytes)
                            .unwrap();
                        assert_eq!(resumed, offset);
                        from = resumed;
                    }
                    ChunkOutcome::CaughtUp => break,
                    ChunkOutcome::Ahead => panic!("replica ahead of primary"),
                }
            }
            assert_eq!(from, want, "shard {shard} fully applied");
        }
    }

    #[test]
    fn replication_chunks_rebuild_an_identical_replica() {
        let mut rng = StdRng::seed_from_u64(160);
        let params = toy_params();
        let tmp = tibpre_storage::TempDir::new("store-repl").unwrap();
        let dir = tmp.path().join("db");
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let doctor = Identity::new("doctor");
        let ct = sample_ciphertext(&mut rng);
        let primary = EncryptedPhrStore::open(
            &dir,
            Durability::new(params.clone())
                .shards(4)
                .fsync(FsyncPolicy::Never),
        )
        .unwrap();
        let mut kept = Vec::new();
        for i in 0..12 {
            let patient = if i % 2 == 0 { &alice } else { &bob };
            kept.push(primary.put(patient, &Category::LabResults, &format!("r{i}"), ct.clone()));
        }
        primary.log_policy_change(&alice, &Category::LabResults, &doctor, true);
        primary.log_disclosure(kept[0], &doctor, true);
        primary.log_policy_change(&alice, &Category::LabResults, &doctor, false);
        primary.delete(kept[3], &bob).unwrap();

        let replica = EncryptedPhrStore::with_shards_and_params("replica", 4, params.clone());
        replicate_all(&primary, &replica);
        assert_stores_equal(&replica, &primary, &[alice.clone(), bob.clone()]);
        // The revocation landed behind the grant on the replica too — the
        // merged audit trail preserves log order per patient.
        let audit = replica.audit_snapshot();
        let granted = audit
            .iter()
            .position(|e| matches!(e.as_ref(), AuditEvent::AccessGranted { .. }))
            .unwrap();
        let revoked = audit
            .iter()
            .position(|e| matches!(e.as_ref(), AuditEvent::AccessRevoked { .. }))
            .unwrap();
        assert!(granted < revoked);
    }

    #[test]
    fn replication_bootstraps_from_a_snapshot_when_the_log_floor_moved() {
        let mut rng = StdRng::seed_from_u64(161);
        let params = toy_params();
        let tmp = tibpre_storage::TempDir::new("store-repl-snap").unwrap();
        let dir = tmp.path().join("db");
        let alice = Identity::new("alice");
        let ct = sample_ciphertext(&mut rng);
        // One shard with an aggressive snapshot cadence: after enough puts
        // the oldest segments are GC'd and offset 0 is Gone.
        let primary = EncryptedPhrStore::open(
            &dir,
            Durability::new(params.clone())
                .shards(1)
                .fsync(FsyncPolicy::Never)
                .snapshot_every(4),
        )
        .unwrap();
        for i in 0..20 {
            primary.put(&alice, &Category::Medication, &format!("r{i}"), ct.clone());
        }
        assert_eq!(
            primary.replication_chunk(0, 0, 1 << 20).unwrap(),
            ChunkOutcome::Gone,
            "the log prefix must have been garbage-collected"
        );
        let replica = EncryptedPhrStore::with_shards_and_params("replica", 1, params.clone());
        replicate_all(&primary, &replica);
        assert_stores_equal(&replica, &primary, &[alice]);
    }

    #[test]
    fn in_memory_alias_and_accessors() {
        let store = EncryptedPhrStore::in_memory("ram");
        assert!(!store.is_durable());
        assert!(store.storage_dir().is_none());
        // Durable no-ops on the in-memory store.
        store.sync().unwrap();
        store.force_snapshot().unwrap();
    }

    #[test]
    fn concurrent_access_is_safe() {
        let mut rng = StdRng::seed_from_u64(133);
        let store = std::sync::Arc::new(EncryptedPhrStore::new("db"));
        let ct = sample_ciphertext(&mut rng);
        let mut handles = Vec::new();
        for thread_id in 0..4u64 {
            let store = store.clone();
            let ct = ct.clone();
            handles.push(std::thread::spawn(move || {
                let patient = Identity::new(format!("patient-{thread_id}"));
                for i in 0..25 {
                    store.put(
                        &patient,
                        &Category::LabResults,
                        &format!("r{i}"),
                        ct.clone(),
                    );
                }
                store.count_for_patient(&patient)
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 25);
        }
        assert_eq!(store.record_count(), 100);
    }
}
