//! Process-wide codec activity counters.
//!
//! The wire-resident store's core claim is *zero codec round trips on the
//! put path* (one encode, shared by the WAL and the shard) and *lazy
//! decodes on the read path* (only on a cache miss).  These counters make
//! the claim checkable: `crates/phr/src/durable.rs` bumps them inside
//! `StoredRecord`'s `WireEncode` / `WireDecode` impls — the single choke
//! point every full record encode and decode passes through — and the e12
//! bench plus the CI gate test assert on the deltas.
//!
//! The counters are global to the process and monotonically increasing, so
//! a test asserting an exact delta must not run concurrently with other
//! record traffic; the gate test lives alone in its own integration-test
//! binary for that reason.  Header peeks and index-meta parses are *not*
//! counted — they are the cheap partial reads the design exists to enable.

use std::sync::atomic::{AtomicU64, Ordering};

static RECORD_ENCODES: AtomicU64 = AtomicU64::new(0);
static RECORD_DECODES: AtomicU64 = AtomicU64::new(0);

/// Total full `StoredRecord` wire encodes since process start.
pub fn record_encodes() -> u64 {
    RECORD_ENCODES.load(Ordering::Relaxed)
}

/// Total full `StoredRecord` wire decodes since process start.
pub fn record_decodes() -> u64 {
    RECORD_DECODES.load(Ordering::Relaxed)
}

pub(crate) fn note_record_encode() {
    RECORD_ENCODES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_record_decode() {
    RECORD_DECODES.fetch_add(1, Ordering::Relaxed);
}
