//! The travelling / emergency-access scenario of Section 5.
//!
//! The paper's example: before travelling, Alice finds a proxy in the country
//! she visits, stores (or mirrors) her *emergency* category there and installs
//! a re-encryption key for the local emergency service.  If something happens,
//! the emergency team obtains exactly that category on demand — and nothing
//! else, even if the foreign proxy is later found to be corrupt.
//!
//! The whole trip, end to end (the `travel_emergency` example binary walks
//! the same flow with narration):
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//! use tibpre_ibe::{Identity, Kgc};
//! use tibpre_pairing::PairingParams;
//! use tibpre_phr::category::Category;
//! use tibpre_phr::emergency::{emergency_disclosure, provision_travel_access};
//! use tibpre_phr::patient::Patient;
//! use tibpre_phr::provider::HealthcareProvider;
//! use tibpre_phr::proxy_service::ProxyService;
//! use tibpre_phr::record::HealthRecord;
//! use tibpre_phr::store::EncryptedPhrStore;
//! use tibpre_phr::PhrError;
//!
//! let mut rng = StdRng::seed_from_u64(1492);
//! let params = PairingParams::insecure_toy();
//! let dutch_kgc = Kgc::setup(params.clone(), "nl-phr-kgc", &mut rng);
//! let us_kgc = Kgc::setup(params.clone(), "us-provider-kgc", &mut rng);
//!
//! // Before the trip: Alice mirrors her emergency data to a US store and
//! // provisions access for the US emergency service through a local proxy.
//! let us_store = Arc::new(EncryptedPhrStore::new("us-mirror"));
//! let mut us_proxy = ProxyService::new("us-proxy", us_store.clone());
//! let mut alice = Patient::new("alice@phr.example", &dutch_kgc);
//! let record = HealthRecord::new(
//!     alice.identity().clone(),
//!     Category::Emergency,
//!     "blood group",
//!     b"O negative".to_vec(),
//! );
//! alice.store_record(&us_store, &record, &mut rng).unwrap();
//!
//! let team_id = Identity::new("er@us-hospital.example");
//! let team = HealthcareProvider::new(us_kgc.extract(&team_id));
//! provision_travel_access(
//!     &mut alice,
//!     &team_id,
//!     us_kgc.public_params(),
//!     &mut us_proxy,
//!     &mut rng,
//! )
//! .unwrap();
//!
//! // The emergency: the team pulls exactly the emergency category.
//! let disclosed = emergency_disclosure(&us_proxy, alice.identity(), &team).unwrap();
//! assert_eq!(disclosed.len(), 1);
//! assert_eq!(disclosed[0].body, b"O negative");
//!
//! // After the trip: revocation closes the capability again.
//! alice
//!     .revoke_access(&Category::Emergency, &team_id, &mut us_proxy)
//!     .unwrap();
//! assert!(matches!(
//!     emergency_disclosure(&us_proxy, alice.identity(), &team),
//!     Err(PhrError::AccessDenied { .. })
//! ));
//! ```

use crate::category::Category;
use crate::patient::Patient;
use crate::provider::HealthcareProvider;
use crate::proxy_service::ProxyService;
use crate::record::DisclosedRecord;
use crate::{PhrError, Result};
use rand::{CryptoRng, RngCore};
use tibpre_ibe::{IbePublicParams, Identity};

/// The standing emergency data set the paper suggests keeping available:
/// blood group, allergies, current medication, emergency contact.
pub fn standard_emergency_titles() -> Vec<&'static str> {
    vec![
        "blood group",
        "allergies",
        "current medication",
        "emergency contact",
    ]
}

/// Provisions emergency access for a trip: grants the destination's emergency
/// team access to the [`Category::Emergency`] records through the local proxy.
pub fn provision_travel_access<R: RngCore + CryptoRng>(
    patient: &mut Patient,
    emergency_team: &Identity,
    team_domain: &IbePublicParams,
    local_proxy: &mut ProxyService,
    rng: &mut R,
) -> Result<()> {
    patient.grant_access(
        Category::Emergency,
        emergency_team,
        team_domain,
        local_proxy,
        rng,
    )
}

/// Executes an emergency disclosure: the team requests every emergency record
/// of the patient through the proxy and decrypts them.
///
/// Fails with [`PhrError::AccessDenied`] if access was never provisioned (or
/// has been revoked), and with [`PhrError::RecordNotFound`] if the patient has
/// no emergency records at the proxy's store.
pub fn emergency_disclosure(
    proxy: &ProxyService,
    patient: &Identity,
    team: &HealthcareProvider,
) -> Result<Vec<DisclosedRecord>> {
    let bundles = proxy.disclose_category(patient, &Category::Emergency, team.identity())?;
    if bundles.is_empty() {
        return Err(PhrError::RecordNotFound);
    }
    bundles.iter().map(|b| team.open(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HealthRecord;
    use crate::store::EncryptedPhrStore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tibpre_ibe::Kgc;
    use tibpre_pairing::PairingParams;

    #[test]
    fn travel_scenario_end_to_end() {
        let mut rng = StdRng::seed_from_u64(141);
        let params = PairingParams::insecure_toy();
        let patient_kgc = Kgc::setup(params.clone(), "nl-patients", &mut rng);
        let us_kgc = Kgc::setup(params.clone(), "us-providers", &mut rng);

        let us_store = Arc::new(EncryptedPhrStore::new("us-hospital-db"));
        let mut us_proxy = ProxyService::new("us-proxy", us_store.clone());

        let mut alice = Patient::new("alice@nl.example", &patient_kgc);
        let er_team = Identity::new("er-team@us-hospital.example");
        let er_provider = HealthcareProvider::new(us_kgc.extract(&er_team));

        // Alice mirrors her emergency data set to the US store before the trip.
        for title in standard_emergency_titles() {
            let record = HealthRecord::new(
                alice.identity().clone(),
                Category::Emergency,
                title,
                format!("value of {title}").into_bytes(),
            );
            alice.store_record(&us_store, &record, &mut rng).unwrap();
        }
        // She also keeps an illness-history record there — which must stay sealed.
        let private = HealthRecord::new(
            alice.identity().clone(),
            Category::IllnessHistory,
            "oncology notes",
            b"not for the ER".to_vec(),
        );
        alice.store_record(&us_store, &private, &mut rng).unwrap();

        // Before provisioning, the ER team gets nothing.
        assert!(matches!(
            emergency_disclosure(&us_proxy, alice.identity(), &er_provider),
            Err(PhrError::AccessDenied { .. })
        ));

        provision_travel_access(
            &mut alice,
            &er_team,
            us_kgc.public_params(),
            &mut us_proxy,
            &mut rng,
        )
        .unwrap();

        // Emergency: the team recovers exactly the emergency data set.
        let records = emergency_disclosure(&us_proxy, alice.identity(), &er_provider).unwrap();
        assert_eq!(records.len(), standard_emergency_titles().len());
        for record in &records {
            assert_eq!(record.category, Category::Emergency);
            assert!(record.body.starts_with(b"value of"));
        }

        // The illness-history record remains inaccessible through this proxy.
        let illness_ids =
            us_store.list_for_patient_category(alice.identity(), &Category::IllnessHistory);
        assert_eq!(illness_ids.len(), 1);
        assert!(matches!(
            us_proxy.disclose(alice.identity(), illness_ids[0], &er_team),
            Err(PhrError::AccessDenied { .. })
        ));

        // After the trip Alice revokes the grant; further requests fail.
        alice
            .revoke_access(&Category::Emergency, &er_team, &mut us_proxy)
            .unwrap();
        assert!(matches!(
            emergency_disclosure(&us_proxy, alice.identity(), &er_provider),
            Err(PhrError::AccessDenied { .. })
        ));
    }

    #[test]
    fn emergency_disclosure_without_records_reports_not_found() {
        let mut rng = StdRng::seed_from_u64(142);
        let params = PairingParams::insecure_toy();
        let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
        let provider_kgc = Kgc::setup(params.clone(), "providers", &mut rng);
        let store = Arc::new(EncryptedPhrStore::new("db"));
        let mut proxy = ProxyService::new("proxy", store);
        let mut alice = Patient::new("alice", &patient_kgc);
        let team = Identity::new("er");
        let provider = HealthcareProvider::new(provider_kgc.extract(&team));
        provision_travel_access(
            &mut alice,
            &team,
            provider_kgc.public_params(),
            &mut proxy,
            &mut rng,
        )
        .unwrap();
        assert!(matches!(
            emergency_disclosure(&proxy, alice.identity(), &provider),
            Err(PhrError::RecordNotFound)
        ));
    }
}
