//! PHR record categories and their mapping to scheme type tags.
//!
//! Section 5 of the paper gives three examples — illness history (`t1`), food
//! statistics (`t2`) and emergency data (`t3`) — and notes that the patient
//! categorises data "according to her privacy concerns".  The enum below
//! provides the common categories plus a free-form [`Category::Custom`].

use core::fmt;
use tibpre_core::TypeTag;

/// A category of personal health data.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Diagnoses, surgeries, chronic conditions (the paper's `t1`).
    IllnessHistory,
    /// Nutrition and lifestyle data the patient collects herself (the paper's `t2`).
    FoodStatistics,
    /// The minimal data set needed in an emergency (the paper's `t3`).
    Emergency,
    /// Prescriptions and drug reactions.
    Medication,
    /// Laboratory test results.
    LabResults,
    /// Vaccination records.
    Vaccinations,
    /// Mental-health notes (often the most privacy-sensitive category).
    MentalHealth,
    /// Any other category, labelled by the patient.
    Custom(String),
}

impl Category {
    /// The canonical label used as the scheme's type tag.
    pub fn label(&self) -> String {
        match self {
            Category::IllnessHistory => "illness-history".to_string(),
            Category::FoodStatistics => "food-statistics".to_string(),
            Category::Emergency => "emergency".to_string(),
            Category::Medication => "medication".to_string(),
            Category::LabResults => "lab-results".to_string(),
            Category::Vaccinations => "vaccinations".to_string(),
            Category::MentalHealth => "mental-health".to_string(),
            Category::Custom(label) => format!("custom:{label}"),
        }
    }

    /// The scheme-level type tag for this category.
    pub fn type_tag(&self) -> TypeTag {
        TypeTag::new(self.label())
    }

    /// Parses a label back into a category.
    pub fn from_label(label: &str) -> Self {
        match label {
            "illness-history" => Category::IllnessHistory,
            "food-statistics" => Category::FoodStatistics,
            "emergency" => Category::Emergency,
            "medication" => Category::Medication,
            "lab-results" => Category::LabResults,
            "vaccinations" => Category::Vaccinations,
            "mental-health" => Category::MentalHealth,
            other => Category::Custom(other.strip_prefix("custom:").unwrap_or(other).to_string()),
        }
    }

    /// The standard (non-custom) categories.
    pub fn standard() -> Vec<Category> {
        vec![
            Category::IllnessHistory,
            Category::FoodStatistics,
            Category::Emergency,
            Category::Medication,
            Category::LabResults,
            Category::Vaccinations,
            Category::MentalHealth,
        ]
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for c in Category::standard() {
            assert_eq!(Category::from_label(&c.label()), c);
        }
        let custom = Category::Custom("genomics".into());
        assert_eq!(Category::from_label(&custom.label()), custom);
    }

    #[test]
    fn type_tags_are_distinct() {
        let tags: std::collections::HashSet<_> = Category::standard()
            .into_iter()
            .map(|c| c.type_tag())
            .collect();
        assert_eq!(tags.len(), Category::standard().len());
    }

    #[test]
    fn custom_categories_do_not_collide_with_standard_ones() {
        let sneaky = Category::Custom("illness-history".into());
        assert_ne!(sneaky.type_tag(), Category::IllnessHistory.type_tag());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Category::Emergency.to_string(), "emergency");
        assert_eq!(Category::Custom("sleep".into()).to_string(), "custom:sleep");
    }
}
