//! The durable backend of the PHR store: operation framing, shard snapshots,
//! and the [`Durability`] configuration.
//!
//! The paper's storage server keeps encrypted records and audit trails
//! *long-term*; this module makes a restart a supported scenario.  Every
//! mutation of a durable [`EncryptedPhrStore`](crate::store::EncryptedPhrStore)
//! is first appended to the
//! owning shard's write-ahead log as one self-contained frame (see
//! [`tibpre_storage::frame`] for the envelope), then applied in memory —
//! both under the shard's existing write lock, so durability adds no new
//! synchronization.  Periodically a shard serializes its full state into a
//! generational snapshot so recovery replays `snapshot + WAL tail` instead
//! of the whole history.
//!
//! Three frame kinds exist, mirroring the store's mutations one-to-one:
//!
//! * `Put` — a full [`StoredRecord`] plus the audit timestamp of its
//!   `RecordStored` event,
//! * `Delete` — a record id plus the audit timestamp of `RecordDeleted`,
//! * `Audit` — a bare [`AuditEvent`] (disclosure and policy-change entries).
//!
//! Each frame replays to exactly the state transition the original call
//! made, so a store recovered from a prefix of the log equals the store that
//! would have existed had the process stopped cleanly after that prefix —
//! the invariant `tests/tests/recovery_props.rs` checks at every byte
//! boundary.
//!
//! Every frame payload starts with the one-byte wire-format envelope (see
//! `tibpre-wire`); frames written before the envelope existed decode
//! through the bare-legacy `v0` path, so mixed-generation logs replay
//! seamlessly.  Record ciphertexts go through the workspace's single
//! `WireEncode`/`WireDecode` codec ([`HybridCiphertext`]'s impl); no
//! second serialization of any cryptographic object is introduced here.

use crate::audit::AuditEvent;
use crate::category::Category;
use crate::record::RecordId;
use crate::store::StoredRecord;
use crate::Result;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use tibpre_core::{HybridCiphertext, ReEncryptionKey};
use tibpre_ibe::Identity;
use tibpre_pairing::{DecodeCtx, PairingParams};
use tibpre_storage::{segment, FsyncPolicy, SegmentedWal};
use tibpre_wire::{DecodeError, Reader, WireDecode, WireEncode, WireVersion, Writer};

/// Default number of logged operations between two snapshots of one shard.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

/// Snapshot generations kept per shard: the newest plus one fallback, so a
/// corrupt newest snapshot degrades to a longer log replay, never to data
/// loss.
pub const SNAPSHOT_GENERATIONS_KEPT: usize = 2;

/// Configuration of the durable backend, passed to
/// [`EncryptedPhrStore::open`](crate::store::EncryptedPhrStore::open).
///
/// The pairing parameters are needed to deserialize the stored ciphertexts
/// during recovery; everything else tunes the durability/throughput
/// trade-off.
#[derive(Debug, Clone)]
pub struct Durability {
    params: Arc<PairingParams>,
    shards: usize,
    fsync: FsyncPolicy,
    snapshot_every: u64,
}

impl Durability {
    /// A durable configuration with the store's default shard count, the
    /// fsync policy from the `TIBPRE_FSYNC` environment variable (default:
    /// fsync on every commit) and the default snapshot cadence.
    pub fn new(params: Arc<PairingParams>) -> Self {
        Durability {
            params,
            shards: crate::store::DEFAULT_SHARDS,
            fsync: FsyncPolicy::from_env(),
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        }
    }

    /// Sets the shard count used when *creating* a store (an existing store
    /// keeps the count persisted in its meta file).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets the per-shard operation count between snapshots (`0` disables
    /// periodic snapshots; recovery then always replays the full log).
    pub fn snapshot_every(mut self, ops: u64) -> Self {
        self.snapshot_every = ops;
        self
    }

    /// The pairing parameters used to decode stored ciphertexts.
    pub fn params(&self) -> &Arc<PairingParams> {
        &self.params
    }

    /// The configured shard count for fresh stores.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// The configured snapshot cadence.
    pub fn snapshot_cadence(&self) -> u64 {
        self.snapshot_every
    }
}

/// Wire tags of the WAL operation frames (stable on-disk format).
mod op_tag {
    pub const PUT: u8 = 1;
    pub const DELETE: u8 = 2;
    pub const AUDIT: u8 = 3;
}

/// One logged store mutation — the unit of atomicity of the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A record was stored (carries the `RecordStored` audit timestamp).
    Put {
        /// The record exactly as it entered the store (boxed: a full record
        /// dwarfs the other variants).
        record: Box<StoredRecord>,
        /// The logical timestamp of the accompanying audit event.
        at: u64,
    },
    /// A record was deleted (carries the `RecordDeleted` audit timestamp).
    Delete {
        /// The deleted record's id.
        id: RecordId,
        /// The logical timestamp of the accompanying audit event.
        at: u64,
    },
    /// A bare audit append (disclosures, policy changes).
    Audit {
        /// The appended event.
        event: AuditEvent,
    },
}

impl WireEncode for StoredRecord {
    /// `id ‖ patient ‖ category ‖ title ‖ ciphertext_len ‖ ciphertext`
    /// (the ciphertext nested bare, inheriting the container's version).
    ///
    /// The index fields come *first*, before the title and the (dominant)
    /// ciphertext: `crate::resident::RecordHeader::peek` parses exactly
    /// this prefix to rebuild indexes without decoding records — the two
    /// layouts must stay in sync.
    fn encode(&self, w: &mut Writer) {
        crate::metrics::note_record_encode();
        w.put_u64(self.id.0);
        w.put_bytes(self.patient.as_bytes());
        w.put_bytes(self.category.label().as_bytes());
        w.put_bytes(self.title.as_bytes());
        w.put_nested(|w| self.ciphertext.encode(w));
    }
}

impl WireDecode for StoredRecord {
    type Ctx = DecodeCtx;

    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> core::result::Result<Self, DecodeError> {
        crate::metrics::note_record_decode();
        let id = RecordId(r.u64()?);
        let patient = Identity::from_bytes(r.bytes()?.to_vec());
        let category = Category::from_label(&r.string()?);
        let title = r.string()?;
        let ciphertext_bytes = r.bytes()?;
        let mut cr = Reader::with_version(ciphertext_bytes, r.version());
        let ciphertext = HybridCiphertext::decode(&mut cr, ctx)?;
        cr.finish()?;
        Ok(StoredRecord {
            id,
            patient,
            category,
            title,
            ciphertext,
        })
    }
}

/// Decodes a nested, length-prefixed audit event at the reader's version.
fn decode_nested_event(r: &mut Reader<'_>) -> core::result::Result<AuditEvent, DecodeError> {
    let version = r.version();
    tibpre_wire::decode_bare(r.bytes()?, version, &())
}

impl WalOp {
    /// Encodes a `Put` frame payload directly from a borrowed record — the
    /// hot-path twin of `WalOp::Put { .. }.to_bytes()` that skips cloning
    /// the record (and its whole ciphertext body) just to serialize it.
    pub fn encode_put(record: &StoredRecord, at: u64) -> Vec<u8> {
        let version = WireVersion::DEFAULT;
        let mut w = Writer::with_version(version);
        w.put_u8(version.tag());
        w.put_u8(op_tag::PUT);
        w.put_u64(at);
        record.encode(&mut w);
        w.into_bytes()
    }

    /// Encodes an `Audit` frame payload directly from a borrowed event —
    /// the audit-path twin of [`Self::encode_put`], skipping the event
    /// clone `WalOp::Audit { .. }.to_bytes()` would require.
    pub fn encode_audit(event: &AuditEvent) -> Vec<u8> {
        let version = WireVersion::DEFAULT;
        let mut w = Writer::with_version(version);
        w.put_u8(version.tag());
        w.put_u8(op_tag::AUDIT);
        w.put_nested(|w| event.encode(w));
        w.into_bytes()
    }

    /// Serializes the operation into one versioned frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes()
    }

    /// Parses a frame payload, accepting both the versioned envelope and
    /// the bare legacy (pre-envelope) layout — no legacy first byte
    /// collides with an envelope tag, so one-byte sniffing is unambiguous.
    /// All errors are values, never panics.
    pub fn from_bytes(params: &Arc<PairingParams>, bytes: &[u8]) -> Result<Self> {
        let ctx = DecodeCtx::from(params);
        match bytes.first() {
            Some(&b) if WireVersion::is_envelope_tag(b) => Ok(Self::from_wire_bytes(bytes, &ctx)?),
            _ => Ok(tibpre_wire::decode_bare(bytes, WireVersion::V0, &ctx)?),
        }
    }
}

impl WireEncode for WalOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            WalOp::Put { record, at } => {
                w.put_u8(op_tag::PUT);
                w.put_u64(*at);
                record.encode(w);
            }
            WalOp::Delete { id, at } => {
                w.put_u8(op_tag::DELETE);
                w.put_u64(*at);
                w.put_u64(id.0);
            }
            WalOp::Audit { event } => {
                w.put_u8(op_tag::AUDIT);
                w.put_nested(|w| event.encode(w));
            }
        }
    }
}

impl WireDecode for WalOp {
    type Ctx = DecodeCtx;

    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> core::result::Result<Self, DecodeError> {
        let start = r.offset();
        let op = match r.u8()? {
            op_tag::PUT => {
                let at = r.u64()?;
                let record = Box::new(StoredRecord::decode(r, ctx)?);
                WalOp::Put { record, at }
            }
            op_tag::DELETE => {
                let at = r.u64()?;
                WalOp::Delete {
                    id: RecordId(r.u64()?),
                    at,
                }
            }
            op_tag::AUDIT => WalOp::Audit {
                event: decode_nested_event(r)?,
            },
            other => return Err(DecodeError::invalid_tag(start, "WAL op", other)),
        };
        Ok(op)
    }
}

/// The wire version and record-body offset inside a `Put` WAL frame
/// payload: envelope frames prefix the record with `version ‖ op ‖ at`
/// (10 bytes), bare legacy frames with `op ‖ at` (9).  Keeping the
/// arithmetic here, next to the encoders it mirrors, is what lets the
/// store retain a validated frame's own buffer as a record's resident
/// bytes — the WAL appends and the shard keeps *the same allocation*.
pub(crate) fn wal_put_body_layout(payload: &[u8]) -> (WireVersion, usize) {
    match payload.first() {
        Some(&b) if WireVersion::is_envelope_tag(b) => {
            (WireVersion::from_tag(b).expect("checked above"), 10)
        }
        _ => (WireVersion::V0, 9),
    }
}

/// Serializes a shard's audit trail into the `meta` region of an indexed
/// (`TBS2`) snapshot: one envelope byte, then the counted, length-prefixed
/// events.  Records do *not* appear here — they live in the snapshot's
/// blob region, indexed by `crate::resident::encode_index_meta` entries.
pub(crate) fn encode_audit_meta(audit: &[Arc<AuditEvent>]) -> Vec<u8> {
    let version = WireVersion::DEFAULT;
    let mut w = Writer::with_version(version);
    w.put_u8(version.tag());
    w.put_u64(audit.len() as u64);
    for event in audit {
        w.put_nested(|w| event.encode(w));
    }
    w.into_bytes()
}

/// Parses the audit trail written by [`encode_audit_meta`].
pub(crate) fn decode_audit_meta(meta: &[u8]) -> Result<Vec<AuditEvent>> {
    let mut r = match meta.first() {
        Some(&b) if WireVersion::is_envelope_tag(b) => {
            let version = WireVersion::from_tag(b).expect("checked above");
            Reader::with_version(&meta[1..], version)
        }
        _ => {
            return Err(crate::PhrError::CorruptedRecord(
                "snapshot audit metadata lacks a wire envelope",
            ))
        }
    };
    let event_count = r.u64()? as usize;
    let mut audit = Vec::with_capacity(event_count.min(1024));
    for _ in 0..event_count {
        audit.push(decode_nested_event(&mut r)?);
    }
    r.finish()?;
    Ok(audit)
}

/// Parses a legacy monolithic (`TBS1`) snapshot payload into *wire-resident*
/// records: each record is still fully decoded once — recovery validates
/// everything it accepts — but what is retained is the validated encoded
/// slice plus its parsed header; the decoded struct is dropped.  Accepts the
/// same envelope/bare layouts as [`decode_shard_state`].
pub(crate) fn decode_shard_state_resident(
    params: &Arc<PairingParams>,
    payload: &[u8],
) -> Result<(Vec<crate::resident::EncodedRecord>, Vec<AuditEvent>)> {
    use crate::resident::{EncodedRecord, RecordHeader};
    let ctx = DecodeCtx::from(params);
    let mut r = match payload.first() {
        Some(&b) if WireVersion::is_envelope_tag(b) => {
            let version = WireVersion::from_tag(b).expect("checked above");
            Reader::with_version(&payload[1..], version)
        }
        _ => Reader::with_version(payload, WireVersion::V0),
    };
    let version = r.version();
    let record_count = r.u64()? as usize;
    let mut records = Vec::with_capacity(record_count.min(1024));
    for _ in 0..record_count {
        let slice = r.bytes()?;
        let mut field = Reader::with_version(slice, version);
        let record = StoredRecord::decode(&mut field, &ctx)?;
        field.finish()?;
        let header = RecordHeader {
            id: record.id,
            patient: record.patient,
            category: record.category,
        };
        records.push(EncodedRecord::from_owned(slice.into(), 0, version, header));
    }
    let event_count = r.u64()? as usize;
    let mut audit = Vec::with_capacity(event_count.min(1024));
    for _ in 0..event_count {
        audit.push(decode_nested_event(&mut r)?);
    }
    r.finish()?;
    Ok((records, audit))
}

/// Serializes one shard's full state (records in id order, then the audit
/// segment) into a versioned monolithic (`TBS1`) snapshot payload: one
/// envelope byte, then the counted, length-prefixed records and events.
/// The store now writes indexed (`TBS2`) snapshots; this encoder is kept
/// for tests that fabricate legacy-format stores.
#[cfg(test)]
pub(crate) fn encode_shard_state<'a>(
    records: impl ExactSizeIterator<Item = &'a StoredRecord>,
    audit: &[AuditEvent],
) -> Vec<u8> {
    let version = WireVersion::DEFAULT;
    let mut w = Writer::with_version(version);
    w.put_u8(version.tag());
    w.put_u64(records.len() as u64);
    for record in records {
        w.put_nested(|w| record.encode(w));
    }
    w.put_u64(audit.len() as u64);
    for event in audit {
        w.put_nested(|w| event.encode(w));
    }
    w.into_bytes()
}

/// Parses a snapshot payload back into `(records, audit)`.  Accepts both
/// the versioned envelope and the bare legacy layout (which opens with the
/// high byte of a `u64` record count — never an envelope tag).  Recovery
/// uses [`decode_shard_state_resident`]; this decoded-struct twin remains
/// as the test oracle the resident form is checked against.
#[cfg(test)]
pub(crate) fn decode_shard_state(
    params: &Arc<PairingParams>,
    payload: &[u8],
) -> Result<(Vec<StoredRecord>, Vec<AuditEvent>)> {
    let ctx = DecodeCtx::from(params);
    let mut r = match payload.first() {
        Some(&b) if WireVersion::is_envelope_tag(b) => {
            let version = WireVersion::from_tag(b).expect("checked above");
            Reader::with_version(&payload[1..], version)
        }
        _ => Reader::with_version(payload, WireVersion::V0),
    };
    let record_count = r.u64()? as usize;
    // Guard the pre-allocation against a corrupt count; the loop below
    // naturally fails on a short buffer either way.
    let mut records = Vec::with_capacity(record_count.min(1024));
    for _ in 0..record_count {
        let version = r.version();
        let mut field = Reader::with_version(r.bytes()?, version);
        let record = StoredRecord::decode(&mut field, &ctx)?;
        field.finish()?;
        records.push(record);
    }
    let event_count = r.u64()? as usize;
    let mut audit = Vec::with_capacity(event_count.min(1024));
    for _ in 0..event_count {
        audit.push(decode_nested_event(&mut r)?);
    }
    r.finish()?;
    Ok((records, audit))
}

/// Wire tags of the proxy WAL frames (stable on-disk format).
mod proxy_tag {
    pub const AUDIT: u8 = 1;
    pub const INSTALL_KEY: u8 = 2;
    pub const REVOKE_KEY: u8 = 3;
}

/// One logged proxy mutation: audit appends plus the re-encryption-key
/// install/revoke history, so a restarted proxy still holds exactly the
/// grants the patients installed (the paper's proxy is the long-lived party
/// *entrusted* with those keys — losing them on restart would force every
/// patient to re-delegate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyWalOp {
    /// An entry of the proxy's own audit log.
    Audit {
        /// The appended event.
        event: AuditEvent,
    },
    /// A re-encryption key was installed.
    InstallKey {
        /// The installed key (serialized with the existing
        /// [`ReEncryptionKey::to_bytes`] wire format; boxed because a key
        /// dwarfs the other variants).
        key: Box<ReEncryptionKey>,
    },
    /// A re-encryption key was revoked.
    RevokeKey {
        /// The delegating patient.
        patient: Identity,
        /// The revoked category.
        category: Category,
        /// The grantee whose key is removed.
        grantee: Identity,
    },
}

impl ProxyWalOp {
    /// Encodes an `InstallKey` frame payload directly from a borrowed key —
    /// skips cloning the key (pairing tables included) just to serialize it.
    pub fn encode_install(key: &ReEncryptionKey) -> Vec<u8> {
        let version = WireVersion::DEFAULT;
        let mut w = Writer::with_version(version);
        w.put_u8(version.tag());
        w.put_u8(proxy_tag::INSTALL_KEY);
        w.put_nested(|w| key.encode(w));
        w.into_bytes()
    }

    /// Serializes the operation into one versioned frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes()
    }

    /// Parses a frame payload, accepting both the versioned envelope and
    /// the bare legacy layout.  All errors are values, never panics.
    pub fn from_bytes(params: &Arc<PairingParams>, bytes: &[u8]) -> Result<Self> {
        let ctx = DecodeCtx::from(params);
        match bytes.first() {
            Some(&b) if WireVersion::is_envelope_tag(b) => Ok(Self::from_wire_bytes(bytes, &ctx)?),
            _ => Ok(tibpre_wire::decode_bare(bytes, WireVersion::V0, &ctx)?),
        }
    }
}

impl WireEncode for ProxyWalOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            ProxyWalOp::Audit { event } => {
                w.put_u8(proxy_tag::AUDIT);
                w.put_nested(|w| event.encode(w));
            }
            ProxyWalOp::InstallKey { key } => {
                w.put_u8(proxy_tag::INSTALL_KEY);
                w.put_nested(|w| key.encode(w));
            }
            ProxyWalOp::RevokeKey {
                patient,
                category,
                grantee,
            } => {
                w.put_u8(proxy_tag::REVOKE_KEY);
                w.put_bytes(patient.as_bytes());
                w.put_bytes(category.label().as_bytes());
                w.put_bytes(grantee.as_bytes());
            }
        }
    }
}

impl WireDecode for ProxyWalOp {
    type Ctx = DecodeCtx;

    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> core::result::Result<Self, DecodeError> {
        let start = r.offset();
        let op = match r.u8()? {
            proxy_tag::AUDIT => ProxyWalOp::Audit {
                event: decode_nested_event(r)?,
            },
            proxy_tag::INSTALL_KEY => {
                let version = r.version();
                let mut kr = Reader::with_version(r.bytes()?, version);
                let key = Box::new(ReEncryptionKey::decode(&mut kr, ctx)?);
                kr.finish()?;
                ProxyWalOp::InstallKey { key }
            }
            proxy_tag::REVOKE_KEY => ProxyWalOp::RevokeKey {
                patient: Identity::from_bytes(r.bytes()?.to_vec()),
                category: Category::from_label(&r.string()?),
                grantee: Identity::from_bytes(r.bytes()?.to_vec()),
            },
            other => return Err(DecodeError::invalid_tag(start, "proxy WAL op", other)),
        };
        Ok(op)
    }
}

/// The WAL path of the proxy named `name` under `dir`.  The name is escaped
/// to a filesystem-safe alphabet *injectively* (every unsafe byte, and the
/// escape character itself, becomes `_XX` hex), so two distinct proxy names
/// can never collide on one log file and silently share keys.
pub fn proxy_wal_path(dir: &Path, name: &str) -> std::path::PathBuf {
    let mut safe = String::with_capacity(name.len());
    for &byte in name.as_bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' => safe.push(byte as char),
            other => safe.push_str(&format!("_{other:02x}")),
        }
    }
    dir.join(format!("proxy-{safe}.wal"))
}

/// The per-shard durable state, owned by the shard and mutated only under
/// its write lock.
#[derive(Debug)]
pub(crate) struct ShardLog {
    pub wal: SegmentedWal,
    /// Snapshot series base name (`shard-NN`).
    pub base: String,
    /// Latest snapshot generation written or recovered.
    pub gen: u64,
    /// Operations logged since the last snapshot.
    pub ops_since_snapshot: u64,
    /// WAL offsets of the snapshot generations currently on disk, as far
    /// as this process knows them (gen → offset).  Segment GC only runs
    /// when *every* listed generation's offset is known, and never deletes
    /// bytes at or above the oldest kept offset — so recovery from any
    /// kept snapshot always finds its starting offset on disk.
    pub snap_offsets: BTreeMap<u64, u64>,
}

/// The store-wide durable context.
#[derive(Debug)]
pub(crate) struct StoreDurability {
    pub dir: std::path::PathBuf,
    pub fsync: FsyncPolicy,
    pub snapshot_every: u64,
    /// Advisory lock excluding concurrent opens of the same directory; held
    /// for the store's lifetime, released by the OS on exit or crash.
    #[allow(dead_code)] // held for its Drop side effect
    pub lock: tibpre_storage::DirLock,
}

/// The path of shard `index`'s *first* WAL segment under `dir` (the
/// legacy single-file name; rotated segments live beside it, named by
/// their starting logical offset — see [`tibpre_storage::segment`]).
pub fn shard_wal_path(dir: &Path, index: usize) -> std::path::PathBuf {
    segment::first_segment_path(dir, &shard_base(index))
}

/// The snapshot series base name of shard `index`.
pub(crate) fn shard_base(index: usize) -> String {
    format!("shard-{index:02}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_core::{Delegator, TypeTag};
    use tibpre_ibe::Kgc;

    fn sample_record(seed: u64, id: u64) -> (Arc<PairingParams>, StoredRecord) {
        let params = PairingParams::insecure_toy();
        let mut rng = StdRng::seed_from_u64(seed);
        let kgc = Kgc::setup(params.clone(), "kgc", &mut rng);
        let delegator = Delegator::new(
            kgc.public_params().clone(),
            kgc.extract(&Identity::new("alice")),
        );
        let ciphertext = delegator.encrypt_bytes(b"payload", b"", &TypeTag::new("t"), &mut rng);
        (
            params,
            StoredRecord {
                id: RecordId(id),
                patient: Identity::new("alice"),
                category: Category::Custom("genomics".into()),
                title: "exome".into(),
                ciphertext,
            },
        )
    }

    #[test]
    fn wal_ops_round_trip() {
        let (params, record) = sample_record(7, 3);
        let ops = vec![
            WalOp::Put {
                record: Box::new(record.clone()),
                at: 11,
            },
            WalOp::Delete {
                id: RecordId(3),
                at: 12,
            },
            WalOp::Audit {
                event: AuditEvent::DisclosureDenied {
                    id: RecordId(3),
                    requester: Identity::new("eve"),
                    at: 13,
                },
            },
        ];
        for op in ops {
            let bytes = op.to_bytes();
            assert_eq!(WalOp::from_bytes(&params, &bytes).unwrap(), op);
            // Every strict prefix fails cleanly.
            for cut in 0..bytes.len() {
                assert!(
                    WalOp::from_bytes(&params, &bytes[..cut]).is_err(),
                    "cut {cut}"
                );
            }
            // Trailing garbage fails cleanly.
            let mut longer = bytes.clone();
            longer.push(0);
            assert!(WalOp::from_bytes(&params, &longer).is_err());
        }
        assert!(WalOp::from_bytes(&params, &[99]).is_err());
    }

    #[test]
    fn shard_state_round_trips() {
        let (params, record) = sample_record(8, 1);
        let (_, record2) = sample_record(8, 2);
        let audit = vec![
            AuditEvent::RecordStored {
                id: RecordId(1),
                patient: Identity::new("alice"),
                category: record.category.clone(),
                at: 1,
            },
            AuditEvent::AccessGranted {
                patient: Identity::new("alice"),
                category: Category::Emergency,
                grantee: Identity::new("doctor"),
                at: 2,
            },
        ];
        let records = vec![record, record2];
        let payload = encode_shard_state(records.iter(), &audit);
        let (decoded_records, decoded_audit) = decode_shard_state(&params, &payload).unwrap();
        assert_eq!(decoded_records, records);
        assert_eq!(decoded_audit, audit);
        // Truncations are rejected, never panic.
        for cut in [0, 1, 7, payload.len() / 2, payload.len() - 1] {
            assert!(
                decode_shard_state(&params, &payload[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn borrowed_encoders_match_the_owned_ops() {
        let params = PairingParams::insecure_toy();
        let mut rng = StdRng::seed_from_u64(21);
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let delegator = Delegator::new(
            kgc1.public_params().clone(),
            kgc1.extract(&Identity::new("alice")),
        );
        let (_, record) = sample_record(21, 4);
        assert_eq!(
            WalOp::encode_put(&record, 9),
            WalOp::Put {
                record: Box::new(record),
                at: 9
            }
            .to_bytes()
        );
        let key = delegator
            .make_reencryption_key(
                &Identity::new("bob"),
                kgc2.public_params(),
                &TypeTag::new("t"),
                &mut rng,
            )
            .unwrap();
        assert_eq!(
            ProxyWalOp::encode_install(&key),
            ProxyWalOp::InstallKey { key: Box::new(key) }.to_bytes()
        );
    }

    #[test]
    fn put_body_layout_recovers_the_bare_record_encoding() {
        let (params, record) = sample_record(31, 6);
        let framed = WalOp::encode_put(&record, 17);
        let (version, body_start) = wal_put_body_layout(&framed);
        assert_eq!(version, WireVersion::DEFAULT);
        assert_eq!(
            &framed[body_start..],
            &tibpre_wire::encode_bare(&record, WireVersion::DEFAULT)[..],
            "the frame suffix IS the bare record encoding"
        );
        // A bare legacy frame: op ‖ at ‖ record, all at v0.
        let mut legacy = Writer::with_version(WireVersion::V0);
        legacy.put_u8(2); // any non-envelope first byte
        legacy.put_u64(17);
        record.encode(&mut legacy);
        let legacy = legacy.into_bytes();
        let (version, body_start) = wal_put_body_layout(&legacy);
        assert_eq!(version, WireVersion::V0);
        assert_eq!(
            &legacy[body_start..],
            &tibpre_wire::encode_bare(&record, WireVersion::V0)[..]
        );
        let _ = params;
    }

    #[test]
    fn audit_encoders_and_meta_round_trip() {
        let event = AuditEvent::DisclosurePerformed {
            id: RecordId(5),
            requester: Identity::new("doctor"),
            at: 44,
        };
        assert_eq!(
            WalOp::encode_audit(&event),
            WalOp::Audit {
                event: event.clone()
            }
            .to_bytes()
        );

        let audit = vec![
            Arc::new(event),
            Arc::new(AuditEvent::RecordDeleted {
                id: RecordId(5),
                at: 45,
            }),
        ];
        let meta = encode_audit_meta(&audit);
        let decoded = decode_audit_meta(&meta).unwrap();
        assert_eq!(decoded.len(), 2);
        for (arc, plain) in audit.iter().zip(&decoded) {
            assert_eq!(arc.as_ref(), plain);
        }
        assert!(decode_audit_meta(&[]).is_err());
        assert!(decode_audit_meta(&[0x00]).is_err(), "no envelope");
        for cut in 1..meta.len() {
            assert!(decode_audit_meta(&meta[..cut]).is_err(), "cut {cut}");
        }
        assert_eq!(decode_audit_meta(&encode_audit_meta(&[])).unwrap(), vec![]);
    }

    #[test]
    fn resident_shard_state_matches_the_decoded_oracle() {
        let (params, record) = sample_record(8, 1);
        let (_, record2) = sample_record(8, 2);
        let audit = vec![AuditEvent::RecordStored {
            id: RecordId(1),
            patient: Identity::new("alice"),
            category: record.category.clone(),
            at: 1,
        }];
        let records = [record, record2];
        let payload = encode_shard_state(records.iter(), &audit);
        let (oracle_records, oracle_audit) = decode_shard_state(&params, &payload).unwrap();
        let (resident, resident_audit) = decode_shard_state_resident(&params, &payload).unwrap();
        assert_eq!(resident_audit, oracle_audit);
        assert_eq!(resident.len(), oracle_records.len());
        let ctx = DecodeCtx::from(&params);
        for (enc, oracle) in resident.iter().zip(&oracle_records) {
            assert_eq!(enc.header.id, oracle.id);
            assert_eq!(enc.header.patient, oracle.patient);
            assert_eq!(enc.header.category, oracle.category);
            assert_eq!(&enc.decode(&ctx).unwrap(), oracle);
        }
        for cut in [0, 1, 7, payload.len() / 2, payload.len() - 1] {
            assert!(
                decode_shard_state_resident(&params, &payload[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn proxy_wal_paths_never_collide_for_distinct_names() {
        let dir = Path::new("/store");
        // The historic failure shape: '.' and '-' both mapping to '-'.
        assert_ne!(
            proxy_wal_path(dir, "dr.alice"),
            proxy_wal_path(dir, "dr-alice")
        );
        // The escape character itself is escaped, so 'a_b' cannot forge the
        // escape sequence of 'a.b' etc.
        let names = ["a_b", "a.b", "a_2eb", "a/b", "a b", "ab", "a-b"];
        let paths: std::collections::HashSet<_> =
            names.iter().map(|n| proxy_wal_path(dir, n)).collect();
        assert_eq!(paths.len(), names.len());
        // Safe names stay readable.
        assert_eq!(
            proxy_wal_path(dir, "hospital-proxy"),
            dir.join("proxy-hospital-proxy.wal")
        );
    }

    #[test]
    fn durability_builder() {
        let params = PairingParams::insecure_toy();
        let d = Durability::new(params)
            .shards(0)
            .fsync(FsyncPolicy::Never)
            .snapshot_every(9);
        assert_eq!(d.shard_count(), 1);
        assert_eq!(d.fsync_policy(), FsyncPolicy::Never);
        assert_eq!(d.snapshot_cadence(), 9);
    }
}
