//! Append-only audit trail shared by the store and the proxy services.
//!
//! Regulations such as HIPAA (which the paper cites as the motivation for
//! patient-controlled disclosure) require an account of disclosures; every
//! store and proxy operation therefore appends an event here.
//!
//! Two holders use these types differently: each [`ProxyService`] keeps its
//! own [`AuditLog`] (one writer, its private logical clock), while the
//! sharded [`EncryptedPhrStore`] keeps a plain event segment *per shard*
//! under a store-global atomic clock and merges the segments by timestamp in
//! `audit_snapshot` — so one store-wide, strictly ordered trail survives the
//! lock striping.
//!
//! [`ProxyService`]: crate::proxy_service::ProxyService
//! [`EncryptedPhrStore`]: crate::store::EncryptedPhrStore

use crate::category::Category;
use crate::record::RecordId;
use crate::Result;
use tibpre_ibe::Identity;
use tibpre_wire::{DecodeError, Reader, WireDecode, WireEncode, WireVersion, Writer};

/// Wire tags of the [`AuditEvent`] variants (stable on-disk format).
mod tag {
    pub const RECORD_STORED: u8 = 1;
    pub const RECORD_DELETED: u8 = 2;
    pub const ACCESS_GRANTED: u8 = 3;
    pub const ACCESS_REVOKED: u8 = 4;
    pub const DISCLOSURE_PERFORMED: u8 = 5;
    pub const DISCLOSURE_DENIED: u8 = 6;
}

/// One entry of the audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEvent {
    /// An encrypted record was stored.
    RecordStored {
        /// Identifier assigned by the store.
        id: RecordId,
        /// Owning patient.
        patient: Identity,
        /// Category of the record.
        category: Category,
        /// Logical timestamp.
        at: u64,
    },
    /// An encrypted record was deleted by its owner.
    RecordDeleted {
        /// Identifier of the deleted record.
        id: RecordId,
        /// Logical timestamp.
        at: u64,
    },
    /// A re-encryption key was installed at a proxy.
    AccessGranted {
        /// The patient who delegated.
        patient: Identity,
        /// The category that was delegated.
        category: Category,
        /// The grantee (delegatee).
        grantee: Identity,
        /// Logical timestamp.
        at: u64,
    },
    /// A re-encryption key was removed from a proxy.
    AccessRevoked {
        /// The patient who revoked.
        patient: Identity,
        /// The category that was revoked.
        category: Category,
        /// The grantee whose access was revoked.
        grantee: Identity,
        /// Logical timestamp.
        at: u64,
    },
    /// A record was re-encrypted and handed to a requester.
    DisclosurePerformed {
        /// The record that was disclosed.
        id: RecordId,
        /// The requesting identity.
        requester: Identity,
        /// Logical timestamp.
        at: u64,
    },
    /// A disclosure request was refused (no matching re-encryption key).
    DisclosureDenied {
        /// The record that was requested.
        id: RecordId,
        /// The requesting identity.
        requester: Identity,
        /// Logical timestamp.
        at: u64,
    },
}

impl AuditEvent {
    /// The logical timestamp of the event.
    pub fn at(&self) -> u64 {
        match self {
            AuditEvent::RecordStored { at, .. }
            | AuditEvent::RecordDeleted { at, .. }
            | AuditEvent::AccessGranted { at, .. }
            | AuditEvent::AccessRevoked { at, .. }
            | AuditEvent::DisclosurePerformed { at, .. }
            | AuditEvent::DisclosureDenied { at, .. } => *at,
        }
    }

    /// Serializes the event for the durable audit trail (a tag byte followed
    /// by length-prefixed fields).  Audit events carry no group elements, so
    /// the body is identical in every wire version; the bare form is emitted
    /// because events are always nested inside a length-prefixed WAL or
    /// snapshot field that carries the version.
    pub fn to_bytes(&self) -> Vec<u8> {
        tibpre_wire::encode_bare(self, WireVersion::V0)
    }

    /// Parses the serialization produced by [`Self::to_bytes`].  Every error
    /// is a value ([`crate::PhrError::Decode`]), never a panic — recovery
    /// treats an undecodable event like a checksum failure.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Ok(tibpre_wire::decode_bare(bytes, WireVersion::V0, &())?)
    }
}

impl WireEncode for AuditEvent {
    fn encode(&self, w: &mut Writer) {
        match self {
            AuditEvent::RecordStored {
                id,
                patient,
                category,
                at,
            } => {
                w.put_u8(tag::RECORD_STORED);
                w.put_u64(id.0);
                w.put_bytes(patient.as_bytes());
                w.put_bytes(category.label().as_bytes());
                w.put_u64(*at);
            }
            AuditEvent::RecordDeleted { id, at } => {
                w.put_u8(tag::RECORD_DELETED);
                w.put_u64(id.0);
                w.put_u64(*at);
            }
            AuditEvent::AccessGranted {
                patient,
                category,
                grantee,
                at,
            }
            | AuditEvent::AccessRevoked {
                patient,
                category,
                grantee,
                at,
            } => {
                w.put_u8(if matches!(self, AuditEvent::AccessGranted { .. }) {
                    tag::ACCESS_GRANTED
                } else {
                    tag::ACCESS_REVOKED
                });
                w.put_bytes(patient.as_bytes());
                w.put_bytes(category.label().as_bytes());
                w.put_bytes(grantee.as_bytes());
                w.put_u64(*at);
            }
            AuditEvent::DisclosurePerformed { id, requester, at }
            | AuditEvent::DisclosureDenied { id, requester, at } => {
                w.put_u8(if matches!(self, AuditEvent::DisclosurePerformed { .. }) {
                    tag::DISCLOSURE_PERFORMED
                } else {
                    tag::DISCLOSURE_DENIED
                });
                w.put_u64(id.0);
                w.put_bytes(requester.as_bytes());
                w.put_u64(*at);
            }
        }
    }
}

impl WireDecode for AuditEvent {
    type Ctx = ();

    fn decode(r: &mut Reader<'_>, _ctx: &()) -> core::result::Result<Self, DecodeError> {
        let start = r.offset();
        let event = match r.u8()? {
            tag::RECORD_STORED => AuditEvent::RecordStored {
                id: RecordId(r.u64()?),
                patient: Identity::from_bytes(r.bytes()?.to_vec()),
                category: Category::from_label(&r.string()?),
                at: r.u64()?,
            },
            tag::RECORD_DELETED => AuditEvent::RecordDeleted {
                id: RecordId(r.u64()?),
                at: r.u64()?,
            },
            t @ (tag::ACCESS_GRANTED | tag::ACCESS_REVOKED) => {
                let patient = Identity::from_bytes(r.bytes()?.to_vec());
                let category = Category::from_label(&r.string()?);
                let grantee = Identity::from_bytes(r.bytes()?.to_vec());
                let at = r.u64()?;
                if t == tag::ACCESS_GRANTED {
                    AuditEvent::AccessGranted {
                        patient,
                        category,
                        grantee,
                        at,
                    }
                } else {
                    AuditEvent::AccessRevoked {
                        patient,
                        category,
                        grantee,
                        at,
                    }
                }
            }
            t @ (tag::DISCLOSURE_PERFORMED | tag::DISCLOSURE_DENIED) => {
                let id = RecordId(r.u64()?);
                let requester = Identity::from_bytes(r.bytes()?.to_vec());
                let at = r.u64()?;
                if t == tag::DISCLOSURE_PERFORMED {
                    AuditEvent::DisclosurePerformed { id, requester, at }
                } else {
                    AuditEvent::DisclosureDenied { id, requester, at }
                }
            }
            other => return Err(DecodeError::invalid_tag(start, "audit event", other)),
        };
        Ok(event)
    }
}

/// An append-only audit log with a logical clock.
#[derive(Debug, Default, Clone)]
pub struct AuditLog {
    events: Vec<AuditEvent>,
    clock: u64,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the logical clock and returns the new timestamp.
    pub fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Appends an event.
    pub fn append(&mut self, event: AuditEvent) {
        self.events.push(event);
    }

    /// Re-appends an event recovered from a durable log, advancing the clock
    /// to at least the event's timestamp so post-recovery ticks stay strictly
    /// increasing.
    pub fn replay(&mut self, event: AuditEvent) {
        self.clock = self.clock.max(event.at());
        self.events.push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A snapshot of all events, in order.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Events concerning one record.
    pub fn events_for_record(&self, id: RecordId) -> Vec<&AuditEvent> {
        self.events
            .iter()
            .filter(|e| match e {
                AuditEvent::RecordStored { id: rid, .. }
                | AuditEvent::RecordDeleted { id: rid, .. }
                | AuditEvent::DisclosurePerformed { id: rid, .. }
                | AuditEvent::DisclosureDenied { id: rid, .. } => *rid == id,
                _ => false,
            })
            .collect()
    }

    /// Count of disclosures performed for one requester.
    pub fn disclosures_to(&self, requester: &Identity) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(e, AuditEvent::DisclosurePerformed { requester: r, .. } if r == requester)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_orders_and_filters_events() {
        let mut log = AuditLog::new();
        let alice = Identity::new("alice");
        let doctor = Identity::new("doctor");
        let at1 = log.tick();
        log.append(AuditEvent::RecordStored {
            id: RecordId(1),
            patient: alice.clone(),
            category: Category::Emergency,
            at: at1,
        });
        let at2 = log.tick();
        log.append(AuditEvent::DisclosurePerformed {
            id: RecordId(1),
            requester: doctor.clone(),
            at: at2,
        });
        let at3 = log.tick();
        log.append(AuditEvent::DisclosureDenied {
            id: RecordId(2),
            requester: doctor.clone(),
            at: at3,
        });

        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert!(at1 < at2 && at2 < at3);
        assert_eq!(log.events_for_record(RecordId(1)).len(), 2);
        assert_eq!(log.events_for_record(RecordId(2)).len(), 1);
        assert_eq!(log.disclosures_to(&doctor), 1);
        assert_eq!(log.disclosures_to(&alice), 0);
        assert_eq!(log.events()[0].at(), at1);
    }

    #[test]
    fn disclosures_to_counts_only_performed_disclosures_per_requester() {
        let mut log = AuditLog::new();
        let doctor = Identity::new("doctor");
        let nurse = Identity::new("nurse");
        // Empty log: everyone is at zero.
        assert_eq!(log.disclosures_to(&doctor), 0);

        for id in 1..=3 {
            let at = log.tick();
            log.append(AuditEvent::DisclosurePerformed {
                id: RecordId(id),
                requester: doctor.clone(),
                at,
            });
        }
        let at = log.tick();
        log.append(AuditEvent::DisclosurePerformed {
            id: RecordId(9),
            requester: nurse.clone(),
            at,
        });
        // Denials and grants mentioning the doctor must NOT count.
        let at = log.tick();
        log.append(AuditEvent::DisclosureDenied {
            id: RecordId(4),
            requester: doctor.clone(),
            at,
        });
        let at = log.tick();
        log.append(AuditEvent::AccessGranted {
            patient: Identity::new("alice"),
            category: Category::Emergency,
            grantee: doctor.clone(),
            at,
        });

        assert_eq!(log.disclosures_to(&doctor), 3);
        assert_eq!(log.disclosures_to(&nurse), 1);
        assert_eq!(log.disclosures_to(&Identity::new("stranger")), 0);
        assert_eq!(log.len(), 6);
    }
}
