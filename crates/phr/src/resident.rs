//! The wire-resident record representation: shards keep records as encoded
//! bytes and decode lazily.
//!
//! The paper's storage server relays ciphertexts it can never read, so the
//! natural resident form of a record is its *wire encoding* — validated once
//! at the API boundary and then treated as opaque bytes.  This module holds
//! the machinery the store builds on:
//!
//! * [`RecordHeader`] — the cheap, non-secret prefix of a record's encoding
//!   (id, patient, category), parsed without touching the title or the
//!   ciphertext.  `StoredRecord`'s wire layout deliberately puts these
//!   fields first (see `durable.rs`) so indexes rebuild from a few dozen
//!   bytes per record.
//! * [`EncodedRecord`] — encoded record bytes plus their parsed header.  The
//!   bytes are either owned (`Arc<[u8]>`, shared with the WAL frame that
//!   persisted them — zero re-encode on `put`) or a blob of a memory-mapped
//!   indexed snapshot (paged in on first read, CRC-checked on every read).
//! * [`RecordBody`] — what a shard slot holds: an [`EncodedRecord`], or a
//!   pinned decoded struct for plain in-memory stores that have no pairing
//!   parameters to decode with.
//! * [`DecodedCache`] — a small per-shard LRU of hot decoded records, so
//!   repeated reads of the same record cost one pointer clone instead of a
//!   ciphertext decode.  Capacity comes from `TIBPRE_RECORD_CACHE`
//!   (records per shard; `0` disables caching).

use crate::category::Category;
use crate::record::RecordId;
use crate::store::StoredRecord;
use crate::{PhrError, Result};
use std::collections::HashMap;
use std::sync::Arc;
use tibpre_ibe::Identity;
use tibpre_pairing::DecodeCtx;
use tibpre_storage::{IndexedSnapshot, StorageError};
use tibpre_wire::{DecodeError, Reader, WireDecode, WireEncode, WireVersion, Writer};

/// Default decoded-record LRU capacity per shard.
pub(crate) const DEFAULT_CACHE_PER_SHARD: usize = 64;

/// The index-bearing prefix of a record's wire encoding: everything the
/// store's `by_patient` / category filters and audit bookkeeping need,
/// without the title or the ciphertext.
#[derive(Debug, Clone)]
pub(crate) struct RecordHeader {
    /// Identifier assigned by the store.
    pub id: RecordId,
    /// The owning patient.
    pub patient: Identity,
    /// The record category.
    pub category: Category,
}

impl RecordHeader {
    /// Parses a header off the front of an encoded record body.  Stops after
    /// the category — the title and ciphertext fields are never touched, so
    /// this is O(header), not O(record).
    pub fn peek(body: &[u8]) -> core::result::Result<Self, DecodeError> {
        Self::read_from(&mut Reader::new(body))
    }

    /// Reader-cursor form of [`Self::peek`] for callers that continue
    /// parsing after the header.
    pub fn read_from(r: &mut Reader<'_>) -> core::result::Result<Self, DecodeError> {
        let id = RecordId(r.u64()?);
        let patient = Identity::from_bytes(r.bytes()?.to_vec());
        let at = r.offset();
        let label = core::str::from_utf8(r.bytes()?)
            .map_err(|_| DecodeError::invalid(at, "UTF-8 category label"))?;
        Ok(RecordHeader {
            id,
            patient,
            category: Category::from_label(label),
        })
    }

    /// Encodes the header fields — byte-identical to the prefix
    /// `StoredRecord`'s encoding emits for the same record.
    fn encode_into(&self, w: &mut Writer) {
        w.put_u64(self.id.0);
        w.put_bytes(self.patient.as_bytes());
        w.put_bytes(self.category.label().as_bytes());
    }
}

/// Encodes a snapshot blob's trailer-resident index metadata: the record's
/// wire version, then its header.  This is what lets a mapped snapshot
/// rebuild every index at open time without faulting one data page.
pub(crate) fn encode_index_meta(version: WireVersion, header: &RecordHeader) -> Vec<u8> {
    let mut w = Writer::with_version(version);
    w.put_u8(version.tag());
    header.encode_into(&mut w);
    w.into_bytes()
}

/// Parses the metadata produced by [`encode_index_meta`].
pub(crate) fn decode_index_meta(meta: &[u8]) -> Result<(WireVersion, RecordHeader)> {
    let mut r = Reader::new(meta);
    let at = r.offset();
    let tag = r.u8()?;
    let version = WireVersion::from_tag(tag)
        .ok_or_else(|| PhrError::Decode(DecodeError::invalid_tag(at, "index-meta version", tag)))?;
    let header = RecordHeader::read_from(&mut r)?;
    r.finish()?;
    Ok((version, header))
}

/// Where an encoded record's bytes live.
#[derive(Debug)]
enum BlobBytes {
    /// Heap bytes, shared by `Arc` — on the put path this is *the same
    /// allocation* the WAL appended, so persisting and retaining a record
    /// costs one encode total.
    Owned(Arc<[u8]>),
    /// Blob `index` of a memory-mapped indexed snapshot.  Nothing is read
    /// until the record is; every read is CRC-verified by the snapshot.
    Mapped {
        snap: Arc<IndexedSnapshot>,
        index: usize,
    },
}

/// One record held as validated wire bytes plus its parsed [`RecordHeader`].
#[derive(Debug)]
pub(crate) struct EncodedRecord {
    bytes: BlobBytes,
    /// Offset of the bare record encoding inside `bytes` (a WAL `Put` frame
    /// carries an envelope/op/timestamp prefix; snapshot blobs start at 0).
    body_start: usize,
    version: WireVersion,
    /// The parsed index fields.
    pub header: RecordHeader,
}

impl EncodedRecord {
    /// Wraps owned bytes whose record body starts at `body_start` and is
    /// encoded under `version`.
    pub fn from_owned(
        bytes: Arc<[u8]>,
        body_start: usize,
        version: WireVersion,
        header: RecordHeader,
    ) -> Self {
        // The handed header must be the one the body's prefix encodes —
        // everything that never decodes the body (indexes, ownership
        // checks, snapshot index metadata) trusts this.
        debug_assert!(
            RecordHeader::peek(&bytes[body_start..])
                .map(|p| p.id == header.id && p.patient == header.patient)
                .unwrap_or(false),
            "encoded body disagrees with its header"
        );
        EncodedRecord {
            bytes: BlobBytes::Owned(bytes),
            body_start,
            version,
            header,
        }
    }

    /// Wraps blob `index` of a mapped snapshot (blobs are bare record
    /// bodies, so the body starts at 0).
    pub fn from_mapped(
        snap: Arc<IndexedSnapshot>,
        index: usize,
        version: WireVersion,
        header: RecordHeader,
    ) -> Self {
        EncodedRecord {
            bytes: BlobBytes::Mapped { snap, index },
            body_start: 0,
            version,
            header,
        }
    }

    /// The wire version the body is encoded under.
    pub fn version(&self) -> WireVersion {
        self.version
    }

    /// The bare encoded record body.  For mapped bytes this faults the pages
    /// in and verifies the blob CRC — a bit-flip in a snapshot's data region
    /// surfaces here, as an error, never as corrupt bytes.
    pub fn body(&self) -> core::result::Result<&[u8], StorageError> {
        match &self.bytes {
            BlobBytes::Owned(bytes) => Ok(&bytes[self.body_start..]),
            BlobBytes::Mapped { snap, index } => Ok(&snap.blob(*index)?[self.body_start..]),
        }
    }

    /// The body's length in bytes, without reading (or faulting) it.
    ///
    /// Saturating: a blob shorter than `body_start` (or an index a snapshot
    /// no longer covers) reports `0` rather than underflowing — the read
    /// path ([`body`](Self::body)) is where such damage surfaces as an
    /// error.
    pub fn encoded_len(&self) -> usize {
        match &self.bytes {
            BlobBytes::Owned(bytes) => bytes.len().saturating_sub(self.body_start),
            BlobBytes::Mapped { snap, index } => snap
                .blob_len(*index)
                .unwrap_or(0)
                .saturating_sub(self.body_start),
        }
    }

    /// Decodes the full record (the lazy half of `get`).
    pub fn decode(&self, ctx: &DecodeCtx) -> Result<StoredRecord> {
        let body = self.body()?;
        let mut r = Reader::with_version(body, self.version);
        let record = StoredRecord::decode(&mut r, ctx)?;
        r.finish()?;
        Ok(record)
    }

    /// Re-encodes the body at [`WireVersion::DEFAULT`] if it is resident in
    /// an older version — the in-place migration step snapshots run so a
    /// legacy store converges onto the current format.  A no-op (no decode,
    /// no copy) when the body is already current.
    pub fn upgrade_to_default(&mut self, ctx: &DecodeCtx) -> Result<()> {
        if self.version == WireVersion::DEFAULT {
            return Ok(());
        }
        let record = self.decode(ctx)?;
        let mut w = Writer::with_version(WireVersion::DEFAULT);
        record.encode(&mut w);
        self.bytes = BlobBytes::Owned(w.into_bytes().into());
        self.body_start = 0;
        self.version = WireVersion::DEFAULT;
        Ok(())
    }
}

/// What one shard slot holds.
#[derive(Debug)]
pub(crate) enum RecordBody {
    /// Encoded bytes, decoded lazily (durable stores, and in-memory stores
    /// constructed with pairing parameters).
    Encoded(EncodedRecord),
    /// A decoded struct pinned in memory.  Plain in-memory stores have no
    /// pairing parameters, and a ciphertext cannot be decoded without them
    /// (`Fp` elements carry only their field context) — so those stores
    /// keep the struct itself, shared by `Arc` with every reader.
    Pinned(Arc<StoredRecord>),
}

impl RecordBody {
    /// The owning patient, served from the header without decoding.
    pub fn patient(&self) -> &Identity {
        match self {
            RecordBody::Encoded(enc) => &enc.header.patient,
            RecordBody::Pinned(rec) => &rec.patient,
        }
    }

    /// The record category, served from the header without decoding.
    pub fn category(&self) -> &Category {
        match self {
            RecordBody::Encoded(enc) => &enc.header.category,
            RecordBody::Pinned(rec) => &rec.category,
        }
    }

    /// Resident encoded size (0 for pinned decoded structs).
    pub fn encoded_len(&self) -> usize {
        match self {
            RecordBody::Encoded(enc) => enc.encoded_len(),
            RecordBody::Pinned(_) => 0,
        }
    }
}

/// A small LRU of hot decoded records, one per shard, sitting behind the
/// shard's read lock (in a `Mutex`, since `get` must update recency).
///
/// Capacity is per shard and small by design — the cache exists to make
/// *repeated* reads of a hot record cost an `Arc` clone, not to hold the
/// working set; capacity × shards records is the store's decoded-memory
/// ceiling.  Eviction scans for the least-recent entry, O(capacity), which
/// at the default of 64 is noise next to one ciphertext decode.
#[derive(Debug)]
pub(crate) struct DecodedCache {
    cap: usize,
    tick: u64,
    map: HashMap<RecordId, (u64, Arc<StoredRecord>)>,
}

impl DecodedCache {
    /// A cache holding at most `cap` records (`0` disables caching).
    pub fn with_capacity(cap: usize) -> Self {
        DecodedCache {
            cap,
            tick: 0,
            map: HashMap::with_capacity(cap.min(1024)),
        }
    }

    /// Capacity from `TIBPRE_RECORD_CACHE` (records per shard), defaulting
    /// to [`DEFAULT_CACHE_PER_SHARD`]; unparsable values fall back to the
    /// default — a typo degrades performance, not correctness.
    pub fn from_env() -> Self {
        let cap = std::env::var("TIBPRE_RECORD_CACHE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_CACHE_PER_SHARD);
        Self::with_capacity(cap)
    }

    /// The cached record, freshened to most-recently-used.
    pub fn get(&mut self, id: RecordId) -> Option<Arc<StoredRecord>> {
        let (at, record) = self.map.get_mut(&id)?;
        self.tick += 1;
        *at = self.tick;
        Some(record.clone())
    }

    /// Inserts (or freshens) a record, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, id: RecordId, record: Arc<StoredRecord>) {
        if self.cap == 0 {
            return;
        }
        if self.map.len() >= self.cap && !self.map.contains_key(&id) {
            if let Some(&victim) = self
                .map
                .iter()
                .min_by_key(|(_, (at, _))| *at)
                .map(|(id, _)| id)
            {
                self.map.remove(&victim);
            }
        }
        self.tick += 1;
        self.map.insert(id, (self.tick, record));
    }

    /// Drops a record (called on delete, so a re-used id can never serve a
    /// stale cached body).
    pub fn remove(&mut self, id: RecordId) {
        self.map.remove(&id);
    }

    /// Number of resident decoded records.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.map.len()
    }
}

impl Default for DecodedCache {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_core::{Delegator, TypeTag};
    use tibpre_ibe::Kgc;
    use tibpre_pairing::PairingParams;

    fn sample_record(id: u64) -> (Arc<PairingParams>, StoredRecord) {
        let params = PairingParams::insecure_toy();
        let mut rng = StdRng::seed_from_u64(id ^ 0xA5A5);
        let kgc = Kgc::setup(params.clone(), "kgc", &mut rng);
        let delegator = Delegator::new(
            kgc.public_params().clone(),
            kgc.extract(&Identity::new("alice")),
        );
        let ciphertext = delegator.encrypt_bytes(b"payload", b"", &TypeTag::new("t"), &mut rng);
        (
            params,
            StoredRecord {
                id: RecordId(id),
                patient: Identity::new("alice"),
                category: Category::Custom("genomics".into()),
                title: "exome".into(),
                ciphertext,
            },
        )
    }

    #[test]
    fn header_peek_matches_the_full_decode_and_skips_the_tail() {
        let (params, record) = sample_record(7);
        let body = tibpre_wire::encode_bare(&record, WireVersion::DEFAULT);
        let header = RecordHeader::peek(&body).unwrap();
        assert_eq!(header.id, record.id);
        assert_eq!(header.patient, record.patient);
        assert_eq!(header.category, record.category);

        // The peek parses only the prefix: chopping the body right after
        // the category still yields the same header.
        let mut r = Reader::new(&body);
        RecordHeader::read_from(&mut r).unwrap();
        let header_len = r.offset();
        assert!(header_len < body.len() / 4, "header dwarfed by the body");
        let header2 = RecordHeader::peek(&body[..header_len]).unwrap();
        assert_eq!(header2.id, record.id);

        // Round trip through the snapshot index-meta form.
        let meta = encode_index_meta(WireVersion::DEFAULT, &header);
        let (version, parsed) = decode_index_meta(&meta).unwrap();
        assert_eq!(version, WireVersion::DEFAULT);
        assert_eq!(parsed.id, header.id);
        assert_eq!(parsed.patient, header.patient);
        assert_eq!(parsed.category, header.category);
        for cut in 0..meta.len() {
            assert!(decode_index_meta(&meta[..cut]).is_err(), "cut {cut}");
        }
        assert!(decode_index_meta(&[0x42]).is_err(), "not a version tag");
        let _ = params;
    }

    #[test]
    fn encoded_record_decodes_and_upgrades_versions() {
        let (params, record) = sample_record(9);
        let ctx = DecodeCtx::from(&params);
        let v0 = tibpre_wire::encode_bare(&record, WireVersion::V0);
        let header = RecordHeader::peek(&v0).unwrap();
        let mut enc =
            EncodedRecord::from_owned(v0.clone().into(), 0, WireVersion::V0, header.clone());
        assert_eq!(enc.encoded_len(), v0.len());
        assert_eq!(enc.decode(&ctx).unwrap(), record);

        enc.upgrade_to_default(&ctx).unwrap();
        assert_eq!(enc.version(), WireVersion::DEFAULT);
        // v1 compresses the group-element portion, so the upgrade shrinks.
        assert!(enc.encoded_len() < v0.len());
        assert_eq!(enc.decode(&ctx).unwrap(), record);
        // Upgrading an already-current body is a no-op.
        let len = enc.encoded_len();
        enc.upgrade_to_default(&ctx).unwrap();
        assert_eq!(enc.encoded_len(), len);
    }

    #[test]
    fn encoded_len_saturates_instead_of_underflowing() {
        let (_, record) = sample_record(11);
        let body = tibpre_wire::encode_bare(&record, WireVersion::DEFAULT);
        let header = RecordHeader::peek(&body).unwrap();

        // An owned body behind a nonzero prefix reports the body length.
        let mut framed = vec![0u8; 3];
        framed.extend_from_slice(&body);
        let enc = EncodedRecord::from_owned(framed.into(), 3, WireVersion::DEFAULT, header.clone());
        assert_eq!(enc.encoded_len(), body.len());

        // The mapped arms are built directly because the public constructor
        // pins `body_start = 0` — this pins the saturating behaviour for a
        // future caller that does not.
        let tmp = tibpre_storage::TempDir::new("resident-len").unwrap();
        tibpre_storage::snapshot::write_indexed_snapshot(
            tmp.path(),
            "s",
            1,
            0,
            b"",
            [Ok(tibpre_storage::snapshot::IndexedBlob {
                body: body.as_slice(),
                index_meta: Vec::new(),
            })],
            true,
        )
        .unwrap();
        let snap = Arc::new(tibpre_storage::snapshot::load_indexed(tmp.path(), "s", 1).unwrap());

        // In-range body_start subtracts normally.
        let mapped = EncodedRecord {
            bytes: BlobBytes::Mapped {
                snap: snap.clone(),
                index: 0,
            },
            body_start: 2,
            version: WireVersion::DEFAULT,
            header: header.clone(),
        };
        assert_eq!(mapped.encoded_len(), body.len() - 2);

        // body_start beyond the blob saturates to 0 (this used to
        // underflow: debug panic, release wrap to ~usize::MAX).
        let beyond = EncodedRecord {
            bytes: BlobBytes::Mapped {
                snap: snap.clone(),
                index: 0,
            },
            body_start: body.len() + 10,
            version: WireVersion::DEFAULT,
            header: header.clone(),
        };
        assert_eq!(beyond.encoded_len(), 0);

        // An out-of-range blob index reports 0 even with a nonzero
        // body_start (this used to underflow too); the read path still
        // surfaces the damage as an error.
        let stale = EncodedRecord {
            bytes: BlobBytes::Mapped { snap, index: 7 },
            body_start: 4,
            version: WireVersion::DEFAULT,
            header,
        };
        assert_eq!(stale.encoded_len(), 0);
        assert!(stale.body().is_err());
    }

    #[test]
    fn lru_cache_evicts_the_least_recent_and_respects_zero_capacity() {
        let mut cache = DecodedCache::with_capacity(2);
        let (_, r1) = sample_record(1);
        let (_, r2) = sample_record(2);
        let (_, r3) = sample_record(3);
        let (r1, r2, r3) = (Arc::new(r1), Arc::new(r2), Arc::new(r3));

        cache.insert(RecordId(1), r1.clone());
        cache.insert(RecordId(2), r2.clone());
        // Touch 1, making 2 the eviction victim.
        assert!(Arc::ptr_eq(&cache.get(RecordId(1)).unwrap(), &r1));
        cache.insert(RecordId(3), r3.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(RecordId(2)).is_none());
        assert!(cache.get(RecordId(1)).is_some());
        assert!(cache.get(RecordId(3)).is_some());
        // Re-inserting a resident id freshens without evicting.
        cache.insert(RecordId(1), r1.clone());
        assert_eq!(cache.len(), 2);
        cache.remove(RecordId(1));
        assert!(cache.get(RecordId(1)).is_none());

        let mut off = DecodedCache::with_capacity(0);
        off.insert(RecordId(1), r1);
        assert!(off.get(RecordId(1)).is_none());
        assert_eq!(off.len(), 0);
    }
}
