//! Boneh–Franklin identity-based encryption on the TIB-PRE pairing substrate.
//!
//! Section 3.2 of Ibraimi et al. reviews the Boneh–Franklin scheme in a
//! slightly modified form — the message space is the pairing target group and
//! the mask is multiplicative (`c2 = m · ê(pk_id, pk)^r`) instead of the
//! original XOR mask — because that modification is what makes the proxy
//! re-encryption algebra work.  This crate implements **both** variants:
//!
//! * [`bf`] — the multiplicative ("modified") variant used as `Encrypt2` /
//!   `Decrypt2` by the PRE scheme,
//! * [`bf_xor`] — the original `BasicIdent` XOR variant over byte messages,
//!   provided as a baseline and for completeness,
//!
//! together with the key-generation-centre abstraction ([`kgc::Kgc`]) that the
//! paper's two domains (`KGC1` for the delegator, `KGC2` for the delegatee)
//! instantiate over *shared* pairing parameters but independent master keys.
//!
//! # Example
//!
//! ```
//! use tibpre_ibe::{Identity, Kgc};
//! use tibpre_pairing::PairingParams;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let params = PairingParams::insecure_toy();
//! let kgc = Kgc::setup(params.clone(), "hospital-kgc", &mut rng);
//! let pp = kgc.public_params().clone();
//!
//! let alice = Identity::new("alice@example.org");
//! let sk_alice = kgc.extract(&alice);
//!
//! let message = params.random_gt(&mut rng);
//! let ct = tibpre_ibe::bf::encrypt_gt(&pp, &alice, &message, &mut rng);
//! let recovered = tibpre_ibe::bf::decrypt_gt(&sk_alice, &ct).unwrap();
//! assert_eq!(recovered, message);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bf;
pub mod bf_xor;
pub mod error;
pub mod identity;
pub mod kgc;

pub use bf::IbeCiphertext;
pub use bf_xor::IbeXorCiphertext;
pub use error::IbeError;
pub use identity::Identity;
pub use kgc::{IbePrivateKey, IbePublicParams, Kgc};

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, IbeError>;

/// Domain-separation tag of the paper's `H1 : {0,1}* → G` oracle.
///
/// `H1` is part of the *shared* public parameters, so it deliberately does not
/// depend on which KGC extracts the key.
pub const H1_DOMAIN: &str = "TIBPRE-BF-H1";
