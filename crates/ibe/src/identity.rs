//! Identities — the "public keys" of identity-based encryption.

use core::fmt;

/// An identity string (e-mail address, role name, licence number, …).
///
/// Identities are arbitrary byte strings; the convenience constructors accept
/// UTF-8 but nothing in the scheme requires it.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Identity {
    bytes: Vec<u8>,
}

impl Identity {
    /// Creates an identity from a string.
    pub fn new(id: impl AsRef<str>) -> Self {
        Identity {
            bytes: id.as_ref().as_bytes().to_vec(),
        }
    }

    /// Creates an identity from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Identity {
            bytes: bytes.into(),
        }
    }

    /// The raw identity bytes (the input to `H1`).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Best-effort string rendering for logs and error messages.
    pub fn display(&self) -> String {
        String::from_utf8_lossy(&self.bytes).into_owned()
    }
}

impl fmt::Debug for Identity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Identity({})", self.display())
    }
}

impl fmt::Display for Identity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

impl From<&str> for Identity {
    fn from(s: &str) -> Self {
        Identity::new(s)
    }
}

impl From<String> for Identity {
    fn from(s: String) -> Self {
        Identity::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Identity::new("alice@example.org");
        let b: Identity = "alice@example.org".into();
        let c = Identity::from_bytes(b"alice@example.org".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, Identity::new("bob@example.org"));
    }

    #[test]
    fn non_utf8_identities_are_allowed() {
        let id = Identity::from_bytes(vec![0xFF, 0xFE, 0x00, 0x42]);
        assert_eq!(id.as_bytes(), &[0xFF, 0xFE, 0x00, 0x42]);
        // Display is lossy but does not panic.
        let _ = id.display();
        let _ = format!("{id:?}");
    }

    #[test]
    fn display_round_trip() {
        let id = Identity::new("cardiologist@hospital.example");
        assert_eq!(id.to_string(), "cardiologist@hospital.example");
    }
}
