//! Boneh–Franklin encryption, multiplicative ("modified") variant.
//!
//! This is the `Encrypt` / `Decrypt` of Section 3.2 of the paper: the message
//! space is the pairing target group and the mask is multiplicative,
//!
//! ```text
//! Encrypt(m, id):  r ∈R Z_q^*,  c = (g^r,  m · ê(pk_id, pk)^r)
//! Decrypt(c, sk):  m = c2 / ê(sk_id, c1)
//! ```
//!
//! which is exactly the form the proxy re-encryption algebra of Section 4
//! builds on (the same modification appears in Green–Ateniese).  The PRE layer
//! uses this module as its `Encrypt2` / `Decrypt2`.

use crate::identity::Identity;
use crate::kgc::{IbePrivateKey, IbePublicParams};
use crate::{IbeError, Result};
use rand::{CryptoRng, RngCore};
use std::sync::Arc;
use tibpre_pairing::{wire, DecodeCtx, G1Affine, Gt, PairingParams};
use tibpre_wire::{DecodeError, Reader, WireDecode, WireEncode, WireVersion, Writer};

/// A Boneh–Franklin ciphertext `(c1, c2) = (g^r, m · ê(pk_id, pk)^r)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IbeCiphertext {
    /// `c1 = g^r`.
    pub c1: G1Affine,
    /// `c2 = m · ê(pk_id, pk)^r`.
    pub c2: Gt,
}

impl IbeCiphertext {
    /// Serializes under the default versioned envelope (`c1 ‖ c2`, with
    /// compressed group elements in `v1`).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes()
    }

    /// Parses the serialization produced by [`Self::to_bytes`], rejecting
    /// unknown versions and trailing bytes.
    pub fn from_bytes(params: &Arc<PairingParams>, bytes: &[u8]) -> Result<Self> {
        Ok(Self::from_wire_bytes(bytes, &DecodeCtx::from(params))?)
    }

    /// Bare (envelope-less) serialized length under the given wire version.
    pub fn serialized_len_versioned(params: &PairingParams, version: WireVersion) -> usize {
        match version {
            WireVersion::V0 => params.g1_byte_len() + params.gt_byte_len(),
            WireVersion::V1 => params.g1_compressed_byte_len() + params.gt_compressed_byte_len(),
        }
    }

    /// Total standalone serialized length (envelope byte included) under the
    /// default wire version.
    pub fn serialized_len(params: &PairingParams) -> usize {
        1 + Self::serialized_len_versioned(params, WireVersion::DEFAULT)
    }
}

impl WireEncode for IbeCiphertext {
    fn encode(&self, w: &mut Writer) {
        self.c1.encode(w);
        self.c2.encode(w);
    }
}

impl WireDecode for IbeCiphertext {
    type Ctx = DecodeCtx;

    /// Validates `c1` against the curve *and* the prime-order subgroup;
    /// `c2` is range/torus-validated only (see the pairing crate's wire
    /// docs for why the full `Gt` subgroup check is skipped).
    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> core::result::Result<Self, DecodeError> {
        let c1 = wire::decode_g1_in_subgroup(r, ctx, "c1 outside the prime-order subgroup")?;
        let c2 = Gt::decode(r, ctx.fp_ctx())?;
        Ok(IbeCiphertext { c1, c2 })
    }
}

/// Encrypts a target-group element `m` to the identity `id`.
pub fn encrypt_gt<R: RngCore + CryptoRng>(
    pp: &IbePublicParams,
    id: &Identity,
    message: &Gt,
    rng: &mut R,
) -> IbeCiphertext {
    let params = pp.pairing();
    let r = params.random_nonzero_scalar(rng);
    encrypt_gt_with_randomness(pp, id, message, &r)
}

/// Deterministic encryption with caller-supplied randomness `r`.
///
/// Exposed for the security-game harness (which must re-encrypt challenge
/// messages with known coins) and for tests; normal callers use [`encrypt_gt`].
pub fn encrypt_gt_with_randomness(
    pp: &IbePublicParams,
    id: &Identity,
    message: &Gt,
    r: &tibpre_pairing::Scalar,
) -> IbeCiphertext {
    let params = pp.pairing();
    // g^r through the cached fixed-base table for g.
    let c1 = params.mul_generator(r);
    // ê(pk_id, pk)^r through the Miller loop prepared for the fixed pk.
    let pk_id = pp.identity_public_key(id);
    let shared = pp.prepared_kgc_key().pairing(&pk_id).pow_scalar(r);
    let c2 = message.mul(&shared);
    IbeCiphertext { c1, c2 }
}

/// Decrypts a ciphertext with the private key of the recipient identity:
/// `m = c2 / ê(sk_id, c1)` — the pairing runs over the Miller loop prepared
/// for the fixed `sk_id`.
pub fn decrypt_gt(sk: &IbePrivateKey, ciphertext: &IbeCiphertext) -> Result<Gt> {
    let shared = sk.prepared_key().pairing(&ciphertext.c1);
    ciphertext
        .c2
        .div(&shared)
        .map_err(|_| IbeError::InvalidCiphertext("degenerate mask"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kgc::Kgc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Kgc, IbePublicParams, StdRng) {
        let mut rng = StdRng::seed_from_u64(21);
        let params = PairingParams::insecure_toy();
        let kgc = Kgc::setup(params, "bf-test", &mut rng);
        let pp = kgc.public_params().clone();
        (kgc, pp, rng)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let (kgc, pp, mut rng) = setup();
        let id = Identity::new("alice@example.org");
        let sk = kgc.extract(&id);
        for _ in 0..5 {
            let m = pp.pairing().random_gt(&mut rng);
            let ct = encrypt_gt(&pp, &id, &m, &mut rng);
            assert_eq!(decrypt_gt(&sk, &ct).unwrap(), m);
        }
    }

    #[test]
    fn decryption_with_wrong_key_fails_to_recover() {
        let (kgc, pp, mut rng) = setup();
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let sk_bob = kgc.extract(&bob);
        let m = pp.pairing().random_gt(&mut rng);
        let ct = encrypt_gt(&pp, &alice, &m, &mut rng);
        let recovered = decrypt_gt(&sk_bob, &ct).unwrap();
        assert_ne!(recovered, m);
    }

    #[test]
    fn ciphertexts_are_randomised() {
        let (_kgc, pp, mut rng) = setup();
        let id = Identity::new("alice");
        let m = pp.pairing().random_gt(&mut rng);
        let c1 = encrypt_gt(&pp, &id, &m, &mut rng);
        let c2 = encrypt_gt(&pp, &id, &m, &mut rng);
        assert_ne!(c1, c2);
    }

    #[test]
    fn deterministic_with_fixed_randomness() {
        let (_kgc, pp, mut rng) = setup();
        let id = Identity::new("alice");
        let m = pp.pairing().random_gt(&mut rng);
        let r = pp.pairing().random_nonzero_scalar(&mut rng);
        let c1 = encrypt_gt_with_randomness(&pp, &id, &m, &r);
        let c2 = encrypt_gt_with_randomness(&pp, &id, &m, &r);
        assert_eq!(c1, c2);
        assert_eq!(c1.c1, pp.pairing().generator().mul_scalar(&r));
    }

    #[test]
    fn serialization_round_trip() {
        let (kgc, pp, mut rng) = setup();
        let id = Identity::new("alice");
        let sk = kgc.extract(&id);
        let m = pp.pairing().random_gt(&mut rng);
        let ct = encrypt_gt(&pp, &id, &m, &mut rng);
        let bytes = ct.to_bytes();
        assert_eq!(bytes.len(), IbeCiphertext::serialized_len(pp.pairing()));
        let parsed = IbeCiphertext::from_bytes(pp.pairing(), &bytes).unwrap();
        assert_eq!(parsed, ct);
        assert_eq!(decrypt_gt(&sk, &parsed).unwrap(), m);
        // Corrupted encodings are rejected or fail to decrypt to m.
        assert!(IbeCiphertext::from_bytes(pp.pairing(), &bytes[..10]).is_err());
        let mut truncated = bytes.clone();
        truncated.pop();
        assert!(IbeCiphertext::from_bytes(pp.pairing(), &truncated).is_err());
    }

    #[test]
    fn keys_from_a_different_domain_decrypt_to_garbage() {
        // Same pairing parameters, different KGC master keys: decryption
        // "succeeds" algebraically but yields a different message.
        let mut rng = StdRng::seed_from_u64(22);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc-1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc-2", &mut rng);
        let id = Identity::new("carol");
        let m = params.random_gt(&mut rng);
        let ct = encrypt_gt(kgc1.public_params(), &id, &m, &mut rng);
        let wrong = decrypt_gt(&kgc2.extract(&id), &ct).unwrap();
        assert_ne!(wrong, m);
        let right = decrypt_gt(&kgc1.extract(&id), &ct).unwrap();
        assert_eq!(right, m);
    }
}
