//! Error type for the IBE layer.

use core::fmt;
use tibpre_pairing::PairingError;
use tibpre_wire::DecodeError;

/// Errors produced by the IBE layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IbeError {
    /// An error bubbled up from the pairing substrate.
    Pairing(PairingError),
    /// A wire decode failed (truncation, bad tag, invalid group element).
    Decode(DecodeError),
    /// A ciphertext failed to decode or decrypt.
    InvalidCiphertext(&'static str),
    /// A key or parameter encoding was malformed.
    InvalidEncoding(&'static str),
    /// Elements from different parameter sets / domains were mixed.
    DomainMismatch,
}

impl fmt::Display for IbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IbeError::Pairing(e) => write!(f, "pairing error: {e}"),
            IbeError::Decode(e) => write!(f, "decode error: {e}"),
            IbeError::InvalidCiphertext(why) => write!(f, "invalid ciphertext: {why}"),
            IbeError::InvalidEncoding(why) => write!(f, "invalid encoding: {why}"),
            IbeError::DomainMismatch => write!(f, "elements belong to different IBE domains"),
        }
    }
}

impl std::error::Error for IbeError {}

impl From<PairingError> for IbeError {
    fn from(e: PairingError) -> Self {
        IbeError::Pairing(e)
    }
}

impl From<DecodeError> for IbeError {
    fn from(e: DecodeError) -> Self {
        IbeError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: IbeError = PairingError::NotOnCurve.into();
        assert!(e.to_string().contains("pairing"));
        assert!(IbeError::DomainMismatch.to_string().contains("domains"));
    }
}
