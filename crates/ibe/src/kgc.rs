//! The Key Generation Centre (KGC) and its keys.
//!
//! `Setup` and `Extract` of the Boneh–Franklin scheme (Section 3.2 of the
//! paper).  The TIB-PRE construction uses two KGCs — `KGC1` for the delegator
//! and `KGC2` for the delegatee — that share the pairing parameters but hold
//! independent master keys `α₁`, `α₂`; both are instances of this type.

use crate::identity::Identity;
use crate::{IbeError, Result, H1_DOMAIN};
use rand::{CryptoRng, RngCore};
use std::sync::{Arc, OnceLock};
use tibpre_pairing::{wire, DecodeCtx, G1Affine, PairingParams, PreparedPairing, Scalar};

/// Lazily-built pairing precomputation for one KGC domain, shared by every
/// clone of the public parameters (the `Arc` makes the cache survive the
/// pervasive `IbePublicParams::clone` calls in the scheme layers).
#[derive(Debug, Default)]
struct DomainCache {
    /// Prepared Miller loop for `pk = g^α` — the fixed argument of every
    /// `ê(pk_id, pk)` encryption pairing in this domain.
    prepared_pk: OnceLock<Arc<PreparedPairing>>,
}

/// Public parameters of one KGC domain: the shared pairing parameters plus the
/// KGC public key `pk = g^α`.
#[derive(Clone, Debug)]
pub struct IbePublicParams {
    pairing: Arc<PairingParams>,
    kgc_public_key: G1Affine,
    label: String,
    cache: Arc<DomainCache>,
}

impl IbePublicParams {
    /// The shared pairing parameters.
    pub fn pairing(&self) -> &Arc<PairingParams> {
        &self.pairing
    }

    /// The KGC public key `pk = g^α`.
    pub fn kgc_public_key(&self) -> &G1Affine {
        &self.kgc_public_key
    }

    /// Human-readable label of the KGC (e.g. `"national-phr-kgc"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The paper's `pk_id = H1(id)`: the public key associated with an identity.
    ///
    /// `H1` is part of the shared parameters, so this value is the same in
    /// every domain; only the extracted private keys differ.
    pub fn identity_public_key(&self, id: &Identity) -> G1Affine {
        self.pairing
            .hash_to_g1(H1_DOMAIN, &[id.as_bytes()])
            .expect("hash-to-curve budget is astronomically unlikely to be exceeded")
    }

    /// Checks that two domains share the same pairing parameters (required by
    /// the delegation algebra).
    pub fn shares_parameters_with(&self, other: &IbePublicParams) -> bool {
        Arc::ptr_eq(&self.pairing, &other.pairing) || self.pairing.p() == other.pairing.p()
    }

    /// The Miller loop prepared for `pk = g^α`, built on first use and shared
    /// by every clone of these parameters.  Encryption pairings
    /// `ê(pk_id, pk)` against the fixed KGC key go through this table.
    pub fn prepared_kgc_key(&self) -> Arc<PreparedPairing> {
        Arc::clone(
            self.cache
                .prepared_pk
                .get_or_init(|| Arc::new(self.pairing.prepare(&self.kgc_public_key))),
        )
    }

    /// Reassembles public parameters from transported parts — the receiving
    /// half of a KGC node's `PublicParams` response, where the pairing
    /// parameters themselves travel as a [`tibpre_pairing::SecurityLevel`]
    /// name rather than as group-element bytes.
    ///
    /// Rejects a public key outside the prime-order subgroup: these
    /// parameters decide which KGC every encryption trusts, so the boundary
    /// validates like any other decode.
    pub fn from_parts(
        pairing: Arc<PairingParams>,
        kgc_public_key: G1Affine,
        label: String,
    ) -> Result<Self> {
        if !kgc_public_key.is_in_subgroup(pairing.q()) {
            return Err(IbeError::InvalidEncoding(
                "KGC public key is not in the prime-order subgroup",
            ));
        }
        Ok(IbePublicParams {
            pairing,
            kgc_public_key,
            label,
            cache: Arc::default(),
        })
    }
}

impl tibpre_wire::WireEncode for IbePublicParams {
    /// Transport form: `label ‖ pk` (the point compressed under `v1`).  The
    /// pairing parameters are *not* encoded — peers reconstruct them from a
    /// shared security level, and the decode context supplies them.
    fn encode(&self, w: &mut tibpre_wire::Writer) {
        w.put_bytes(self.label.as_bytes());
        self.kgc_public_key.encode(w);
    }
}

impl tibpre_wire::WireDecode for IbePublicParams {
    type Ctx = DecodeCtx;

    fn decode(
        r: &mut tibpre_wire::Reader<'_>,
        ctx: &DecodeCtx,
    ) -> core::result::Result<Self, tibpre_wire::DecodeError> {
        let label = r.string()?;
        let kgc_public_key =
            wire::decode_g1_in_subgroup(r, ctx, "KGC public key outside the subgroup")?;
        Ok(IbePublicParams {
            pairing: Arc::clone(ctx.params()),
            kgc_public_key,
            label,
            cache: Arc::default(),
        })
    }
}

/// Lazily-built precomputation for one private key, shared across clones.
#[derive(Debug, Default)]
struct KeyCache {
    /// Prepared Miller loop for `sk_id` — the fixed argument of the
    /// decryption pairing `ê(sk_id, c1)`.
    prepared: OnceLock<Arc<PreparedPairing>>,
}

/// The private key extracted for an identity: `sk_id = pk_id^α = H1(id)^α`.
#[derive(Clone, Debug)]
pub struct IbePrivateKey {
    identity: Identity,
    key: G1Affine,
    /// The label of the KGC that extracted this key (for diagnostics only).
    kgc_label: String,
    /// The shared pairing parameters, kept so decryption does not need a
    /// separate parameter handle.
    params: Arc<PairingParams>,
    cache: Arc<KeyCache>,
}

impl IbePrivateKey {
    /// The identity this key belongs to.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// The group element `H1(id)^α`.
    pub fn key(&self) -> &G1Affine {
        &self.key
    }

    /// Label of the extracting KGC.
    pub fn kgc_label(&self) -> &str {
        &self.kgc_label
    }

    /// The shared pairing parameters.
    pub fn params(&self) -> &Arc<PairingParams> {
        &self.params
    }

    /// The Miller loop prepared for `sk_id`, built on first use and shared by
    /// every clone of this key.  The decryption pairing `ê(sk_id, c1)` goes
    /// through this table.
    pub fn prepared_key(&self) -> Arc<PreparedPairing> {
        Arc::clone(
            self.cache
                .prepared
                .get_or_init(|| Arc::new(self.params.prepare(&self.key))),
        )
    }

    /// Canonical serialization of the key material: the *uncompressed*
    /// group element, always.
    ///
    /// This is deliberately **not** the versioned wire format: these bytes
    /// are the preimage of the paper's `H2(sk_id ‖ t)` type exponent, so
    /// they must stay byte-stable across wire-format generations —
    /// re-encoding the key compressed would silently change every derived
    /// virtual key and orphan all previously encrypted data.  Use the
    /// [`WireEncode`](tibpre_wire::WireEncode) impl for transport instead.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.key.to_bytes()
    }

    /// Reconstructs a private key from its serialized group element.
    pub fn from_bytes(
        params: &Arc<PairingParams>,
        identity: Identity,
        kgc_label: &str,
        bytes: &[u8],
    ) -> Result<Self> {
        let key = G1Affine::from_bytes(params.fp_ctx(), bytes).map_err(IbeError::Pairing)?;
        if !key.is_in_subgroup(params.q()) {
            return Err(IbeError::InvalidEncoding(
                "private key is not in the prime-order subgroup",
            ));
        }
        Ok(IbePrivateKey {
            identity,
            key,
            kgc_label: kgc_label.to_string(),
            params: Arc::clone(params),
            cache: Arc::default(),
        })
    }
}

impl PartialEq for IbePrivateKey {
    /// Compares the key material and its provenance; the lazily-built
    /// pairing cache and the parameter handle are not part of identity.
    fn eq(&self, other: &Self) -> bool {
        self.identity == other.identity
            && self.key == other.key
            && self.kgc_label == other.kgc_label
    }
}

impl Eq for IbePrivateKey {}

impl tibpre_wire::WireEncode for IbePrivateKey {
    /// Transport form of the full key material:
    /// `identity ‖ kgc_label ‖ key point` (length-prefixed strings, the
    /// point compressed under `v1`).  The hashing-preimage form is
    /// [`IbePrivateKey::to_bytes`].
    fn encode(&self, w: &mut tibpre_wire::Writer) {
        w.put_bytes(self.identity.as_bytes());
        w.put_bytes(self.kgc_label.as_bytes());
        self.key.encode(w);
    }
}

impl tibpre_wire::WireDecode for IbePrivateKey {
    type Ctx = DecodeCtx;

    fn decode(
        r: &mut tibpre_wire::Reader<'_>,
        ctx: &DecodeCtx,
    ) -> core::result::Result<Self, tibpre_wire::DecodeError> {
        let identity = Identity::from_bytes(r.bytes()?.to_vec());
        let kgc_label = r.string()?;
        let key = wire::decode_g1_in_subgroup(r, ctx, "private key outside the subgroup")?;
        Ok(IbePrivateKey {
            identity,
            key,
            kgc_label,
            params: Arc::clone(ctx.params()),
            cache: Arc::default(),
        })
    }
}

/// A Key Generation Centre: holds the master key `α` and answers `Extract` queries.
pub struct Kgc {
    master_key: Scalar,
    public: IbePublicParams,
}

impl Kgc {
    /// `Setup`: samples a master key `α ∈ Z_q^*` and publishes `pk = g^α`.
    pub fn setup<R: RngCore + CryptoRng>(
        pairing: Arc<PairingParams>,
        label: &str,
        rng: &mut R,
    ) -> Self {
        let master_key = pairing.random_nonzero_scalar(rng);
        let kgc_public_key = pairing.mul_generator(&master_key);
        Kgc {
            master_key,
            public: IbePublicParams {
                pairing,
                kgc_public_key,
                label: label.to_string(),
                cache: Arc::default(),
            },
        }
    }

    /// Reconstructs a KGC from an existing master key (e.g. loaded from secure
    /// storage).  The public key is re-derived.
    pub fn from_master_key(pairing: Arc<PairingParams>, label: &str, master_key: Scalar) -> Self {
        let kgc_public_key = pairing.mul_generator(&master_key);
        Kgc {
            master_key,
            public: IbePublicParams {
                pairing,
                kgc_public_key,
                label: label.to_string(),
                cache: Arc::default(),
            },
        }
    }

    /// The public parameters of this domain.
    pub fn public_params(&self) -> &IbePublicParams {
        &self.public
    }

    /// The master secret `α`.  Exposed for the security-game harness and for
    /// tests; production code never needs it outside the KGC.
    pub fn master_key(&self) -> &Scalar {
        &self.master_key
    }

    /// `Extract`: computes `sk_id = H1(id)^α`.
    pub fn extract(&self, id: &Identity) -> IbePrivateKey {
        let pk_id = self.public.identity_public_key(id);
        IbePrivateKey {
            identity: id.clone(),
            key: pk_id.mul_scalar(&self.master_key),
            kgc_label: self.public.label.clone(),
            params: Arc::clone(&self.public.pairing),
            cache: Arc::default(),
        }
    }
}

impl core::fmt::Debug for Kgc {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print the master key.
        write!(f, "Kgc(label={})", self.public.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_pairing::PairingParams;

    fn setup() -> (Kgc, StdRng) {
        let mut rng = StdRng::seed_from_u64(11);
        let params = PairingParams::insecure_toy();
        let kgc = Kgc::setup(params, "test-kgc", &mut rng);
        (kgc, rng)
    }

    #[test]
    fn setup_produces_consistent_public_key() {
        let (kgc, _) = setup();
        let pp = kgc.public_params();
        let expect = pp.pairing().generator().mul_scalar(kgc.master_key());
        assert_eq!(pp.kgc_public_key(), &expect);
        assert_eq!(pp.label(), "test-kgc");
    }

    #[test]
    fn extract_satisfies_the_key_equation() {
        let (kgc, _) = setup();
        let pp = kgc.public_params();
        let id = Identity::new("alice@example.org");
        let sk = kgc.extract(&id);
        // ê(sk_id, g) == ê(H1(id), pk): both equal ê(H1(id), g)^α.
        let params = pp.pairing();
        let lhs = params.pairing(sk.key(), params.generator());
        let rhs = params.pairing(&pp.identity_public_key(&id), pp.kgc_public_key());
        assert_eq!(lhs, rhs);
        assert_eq!(sk.identity(), &id);
        assert_eq!(sk.kgc_label(), "test-kgc");
    }

    #[test]
    fn different_identities_get_different_keys() {
        let (kgc, _) = setup();
        let a = kgc.extract(&Identity::new("alice"));
        let b = kgc.extract(&Identity::new("bob"));
        assert_ne!(a.key(), b.key());
        // Extraction is deterministic.
        let a2 = kgc.extract(&Identity::new("alice"));
        assert_eq!(a.key(), a2.key());
    }

    #[test]
    fn different_kgcs_share_identity_public_keys_but_not_private_keys() {
        let mut rng = StdRng::seed_from_u64(12);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "domain-1", &mut rng);
        let kgc2 = Kgc::setup(params, "domain-2", &mut rng);
        let id = Identity::new("carol");
        assert_eq!(
            kgc1.public_params().identity_public_key(&id),
            kgc2.public_params().identity_public_key(&id)
        );
        assert_ne!(kgc1.extract(&id).key(), kgc2.extract(&id).key());
        assert!(kgc1
            .public_params()
            .shares_parameters_with(kgc2.public_params()));
    }

    #[test]
    fn from_master_key_round_trip() {
        let (kgc, _) = setup();
        let rebuilt = Kgc::from_master_key(
            kgc.public_params().pairing().clone(),
            "rebuilt",
            kgc.master_key().clone(),
        );
        assert_eq!(
            rebuilt.public_params().kgc_public_key(),
            kgc.public_params().kgc_public_key()
        );
        let id = Identity::new("dave");
        assert_eq!(rebuilt.extract(&id).key(), kgc.extract(&id).key());
    }

    #[test]
    fn private_key_serialization_round_trip() {
        let (kgc, _) = setup();
        let id = Identity::new("erin");
        let sk = kgc.extract(&id);
        let bytes = sk.to_bytes();
        let params = kgc.public_params().pairing();
        let restored = IbePrivateKey::from_bytes(params, id.clone(), "test-kgc", &bytes).unwrap();
        assert_eq!(restored.key(), sk.key());
        assert!(IbePrivateKey::from_bytes(params, id, "test-kgc", &bytes[1..]).is_err());
    }

    #[test]
    fn public_params_wire_round_trip_and_from_parts() {
        use tibpre_wire::{WireDecode, WireEncode};
        let (kgc, _) = setup();
        let pp = kgc.public_params();
        let ctx = DecodeCtx::from(pp.pairing());
        let bytes = pp.to_wire_bytes();
        let restored = IbePublicParams::from_wire_bytes(&bytes, &ctx).unwrap();
        assert_eq!(restored.kgc_public_key(), pp.kgc_public_key());
        assert_eq!(restored.label(), pp.label());
        // The restored parameters encrypt against the same KGC: extraction
        // by the original KGC still satisfies the key equation.
        let id = Identity::new("frank");
        let sk = kgc.extract(&id);
        let params = restored.pairing();
        assert_eq!(
            params.pairing(sk.key(), params.generator()),
            params.pairing(
                &restored.identity_public_key(&id),
                restored.kgc_public_key()
            )
        );
        for cut in 0..bytes.len() {
            assert!(IbePublicParams::from_wire_bytes(&bytes[..cut], &ctx).is_err());
        }

        let rebuilt = IbePublicParams::from_parts(
            pp.pairing().clone(),
            pp.kgc_public_key().clone(),
            "renamed".into(),
        )
        .unwrap();
        assert_eq!(rebuilt.label(), "renamed");
        assert_eq!(rebuilt.kgc_public_key(), pp.kgc_public_key());
    }

    #[test]
    fn debug_output_hides_master_key() {
        let (kgc, _) = setup();
        let dbg = format!("{kgc:?}");
        assert!(dbg.contains("test-kgc"));
        assert!(!dbg.contains(&kgc.master_key().to_uint().to_hex()));
    }
}
