//! Boneh–Franklin `BasicIdent`: the original XOR variant over byte messages.
//!
//! In the original scheme the mask is `H2'(ê(pk_id, pk)^r)` stretched to the
//! message length and XORed onto the plaintext.  The paper points out that the
//! PRE construction *cannot* be built on this variant (the multiplicative
//! structure is what the proxy exploits); it is provided here as the baseline
//! "plain IBE, patient decrypts on demand" alternative discussed in Section 5
//! and measured by the benchmark harness.

use crate::identity::Identity;
use crate::kgc::{IbePrivateKey, IbePublicParams};
use crate::Result;
use rand::{CryptoRng, RngCore};
use std::sync::Arc;
use tibpre_hash::DomainSeparatedHasher;
use tibpre_pairing::{DecodeCtx, G1Affine, Gt, PairingParams};
use tibpre_wire::{DecodeError, Reader, WireDecode, WireEncode, Writer};

/// Domain-separation tag of the mask-derivation oracle (the original scheme's `H2`).
const MASK_DOMAIN: &str = "TIBPRE-BF-XOR-MASK";

/// A `BasicIdent` ciphertext `(c1, c2) = (g^r, m ⊕ H2'(ê(pk_id, pk)^r))`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IbeXorCiphertext {
    /// `c1 = g^r`.
    pub c1: G1Affine,
    /// `c2 = m ⊕ mask`.
    pub c2: Vec<u8>,
}

fn mask_bytes(shared: &Gt, len: usize) -> Vec<u8> {
    DomainSeparatedHasher::hash(MASK_DOMAIN, &[&shared.to_bytes()], len)
}

/// Encrypts an arbitrary byte message to the identity `id`.
pub fn encrypt<R: RngCore + CryptoRng>(
    pp: &IbePublicParams,
    id: &Identity,
    message: &[u8],
    rng: &mut R,
) -> IbeXorCiphertext {
    let params = pp.pairing();
    let r = params.random_nonzero_scalar(rng);
    let c1 = params.generator().mul_scalar(&r);
    let pk_id = pp.identity_public_key(id);
    let shared = params.pairing(&pk_id, pp.kgc_public_key()).pow_scalar(&r);
    let mask = mask_bytes(&shared, message.len());
    let c2 = message
        .iter()
        .zip(mask.iter())
        .map(|(m, k)| m ^ k)
        .collect();
    IbeXorCiphertext { c1, c2 }
}

/// Decrypts a `BasicIdent` ciphertext.
pub fn decrypt(sk: &IbePrivateKey, ciphertext: &IbeXorCiphertext) -> Result<Vec<u8>> {
    let shared = sk.params().pairing(sk.key(), &ciphertext.c1);
    let mask = mask_bytes(&shared, ciphertext.c2.len());
    Ok(ciphertext
        .c2
        .iter()
        .zip(mask.iter())
        .map(|(c, k)| c ^ k)
        .collect())
}

impl IbeXorCiphertext {
    /// Serializes under the default versioned envelope
    /// (`c1 ‖ body_len(u64 BE) ‖ body`).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes()
    }

    /// Parses the serialization produced by [`Self::to_bytes`], rejecting
    /// unknown versions and trailing bytes.
    pub fn from_bytes(params: &Arc<PairingParams>, bytes: &[u8]) -> Result<Self> {
        Ok(Self::from_wire_bytes(bytes, &DecodeCtx::from(params))?)
    }
}

impl WireEncode for IbeXorCiphertext {
    fn encode(&self, w: &mut Writer) {
        self.c1.encode(w);
        w.put_u64(self.c2.len() as u64);
        w.put_slice(&self.c2);
    }
}

impl WireDecode for IbeXorCiphertext {
    type Ctx = DecodeCtx;

    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> core::result::Result<Self, DecodeError> {
        let c1 = G1Affine::decode(r, ctx.fp_ctx())?;
        let body_len = r.u64()? as usize;
        let c2 = r.take(body_len)?.to_vec();
        Ok(IbeXorCiphertext { c1, c2 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kgc::Kgc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Kgc, IbePublicParams, StdRng) {
        let mut rng = StdRng::seed_from_u64(31);
        let params = PairingParams::insecure_toy();
        let kgc = Kgc::setup(params, "xor-test", &mut rng);
        let pp = kgc.public_params().clone();
        (kgc, pp, rng)
    }

    #[test]
    fn round_trip_various_lengths() {
        let (kgc, pp, mut rng) = setup();
        let id = Identity::new("alice");
        let sk = kgc.extract(&id);
        for len in [0usize, 1, 16, 100, 1000] {
            let message: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = encrypt(&pp, &id, &message, &mut rng);
            assert_eq!(decrypt(&sk, &ct).unwrap(), message, "len {len}");
        }
    }

    #[test]
    fn wrong_key_gives_garbage() {
        let (kgc, pp, mut rng) = setup();
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let message = b"confidential lab result".to_vec();
        let ct = encrypt(&pp, &alice, &message, &mut rng);
        let wrong = decrypt(&kgc.extract(&bob), &ct).unwrap();
        assert_ne!(wrong, message);
    }

    #[test]
    fn ciphertext_is_randomised_and_length_preserving() {
        let (_kgc, pp, mut rng) = setup();
        let id = Identity::new("alice");
        let message = vec![0xAB; 64];
        let c1 = encrypt(&pp, &id, &message, &mut rng);
        let c2 = encrypt(&pp, &id, &message, &mut rng);
        assert_ne!(c1, c2);
        assert_eq!(c1.c2.len(), 64);
    }

    #[test]
    fn serialization_round_trip() {
        let (kgc, pp, mut rng) = setup();
        let id = Identity::new("alice");
        let sk = kgc.extract(&id);
        let message = b"serialize me too".to_vec();
        let ct = encrypt(&pp, &id, &message, &mut rng);
        let bytes = ct.to_bytes();
        let parsed = IbeXorCiphertext::from_bytes(pp.pairing(), &bytes).unwrap();
        assert_eq!(parsed, ct);
        assert_eq!(decrypt(&sk, &parsed).unwrap(), message);
        assert!(IbeXorCiphertext::from_bytes(pp.pairing(), &bytes[..5]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(IbeXorCiphertext::from_bytes(pp.pairing(), &extended).is_err());
    }
}
