//! Hybrid (KEM/DEM) mode for byte payloads.
//!
//! The paper encrypts elements of the target group; real PHR payloads are byte
//! strings of arbitrary length.  The standard bridge is a KEM/DEM hybrid:
//!
//! 1. the delegator samples a random target-group element `k ∈ G_1`,
//! 2. encrypts it with `Encrypt1(k, t, id)` (the **header**),
//! 3. derives an AEAD key from `k` and encrypts the payload (the **body**).
//!
//! Crucially, the proxy only ever touches the *header*: re-encryption converts
//! `Encrypt1(k, …)` into something the delegatee can open, while the AEAD body
//! is forwarded untouched.  Delegation therefore stays exactly as fine-grained
//! as the underlying scheme, and the proxy's work is independent of the
//! payload size (measured in experiment E7).

use crate::delegatee::Delegatee;
use crate::delegator::{Delegator, TypedCiphertext};
use crate::proxy::{re_encrypt, ReEncryptedCiphertext};
use crate::rekey::ReEncryptionKey;
use crate::types::TypeTag;
use crate::Result;
use rand::{CryptoRng, RngCore};
use std::sync::Arc;
use tibpre_pairing::{DecodeCtx, Gt, PairingParams};
use tibpre_symmetric::{AeadCiphertext, AeadKey};
use tibpre_wire::{DecodeError, Reader, WireDecode, WireEncode, Writer};

/// Context string binding derived AEAD keys to this construction.
const KEM_CONTEXT: &str = "tibpre-hybrid-kem-v1";

/// A hybrid ciphertext: typed KEM header plus AEAD-encrypted payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HybridCiphertext {
    /// `Encrypt1(k, t, id)` — the encapsulated key, still under the delegator's identity.
    pub header: TypedCiphertext,
    /// The AEAD-encrypted payload under the key derived from `k`.
    pub body: AeadCiphertext,
}

/// A hybrid ciphertext whose header has been re-encrypted for a delegatee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReEncryptedHybridCiphertext {
    /// The re-encrypted KEM header.
    pub header: ReEncryptedCiphertext,
    /// The AEAD body, forwarded by the proxy untouched.
    pub body: AeadCiphertext,
}

fn dem_key(k: &Gt, type_tag: &TypeTag) -> AeadKey {
    // Bind the derived key to the type tag as well, so a header maliciously
    // re-labelled to another type cannot be combined with the original body.
    let mut ikm = k.to_bytes();
    ikm.extend_from_slice(type_tag.as_bytes());
    AeadKey::derive(&ikm, KEM_CONTEXT)
}

impl HybridCiphertext {
    /// The message type of the header.
    pub fn type_tag(&self) -> &TypeTag {
        &self.header.type_tag
    }

    /// Total serialized size in bytes (envelope + header + body) under the
    /// default wire version, for the size experiments.
    pub fn serialized_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes under the default versioned envelope
    /// (`header_len(u32 BE) ‖ header ‖ body`).
    ///
    /// The KEM header is length-prefixed so the hybrid format stays
    /// parseable field by field; the AEAD body carries its own length
    /// field.  This is the encoding the durable PHR store logs and
    /// snapshots records with.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes()
    }

    /// Parses the serialization produced by [`Self::to_bytes`], rejecting
    /// unknown versions and trailing bytes.
    pub fn from_bytes(params: &Arc<PairingParams>, bytes: &[u8]) -> Result<Self> {
        Ok(Self::from_wire_bytes(bytes, &DecodeCtx::from(params))?)
    }
}

impl WireEncode for HybridCiphertext {
    fn encode(&self, w: &mut Writer) {
        w.put_nested(|w| self.header.encode(w));
        self.body.encode(w);
    }
}

impl WireDecode for HybridCiphertext {
    type Ctx = DecodeCtx;

    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> core::result::Result<Self, DecodeError> {
        // The header is length-prefixed; decode it from its own cursor (at
        // the container's version) and require it to be consumed exactly.
        let header_bytes = r.bytes()?;
        let mut hr = Reader::with_version(header_bytes, r.version());
        let header = TypedCiphertext::decode(&mut hr, ctx)?;
        hr.finish()?;
        let body = AeadCiphertext::decode(r, &())?;
        Ok(HybridCiphertext { header, body })
    }
}

impl WireEncode for ReEncryptedHybridCiphertext {
    fn encode(&self, w: &mut Writer) {
        w.put_nested(|w| self.header.encode(w));
        self.body.encode(w);
    }
}

impl WireDecode for ReEncryptedHybridCiphertext {
    type Ctx = DecodeCtx;

    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> core::result::Result<Self, DecodeError> {
        let header_bytes = r.bytes()?;
        let mut hr = Reader::with_version(header_bytes, r.version());
        let header = ReEncryptedCiphertext::decode(&mut hr, ctx)?;
        hr.finish()?;
        let body = AeadCiphertext::decode(r, &())?;
        Ok(ReEncryptedHybridCiphertext { header, body })
    }
}

impl ReEncryptedHybridCiphertext {
    /// Serializes under the default versioned envelope (re-encrypted KEM
    /// header, length-prefixed, then the untouched AEAD body).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes()
    }

    /// Parses the serialization produced by [`Self::to_bytes`], rejecting
    /// unknown versions and trailing bytes.
    pub fn from_bytes(params: &Arc<PairingParams>, bytes: &[u8]) -> Result<Self> {
        Ok(Self::from_wire_bytes(bytes, &DecodeCtx::from(params))?)
    }
}

impl Delegator {
    /// Hybrid encryption of an arbitrary byte payload under the given type.
    pub fn encrypt_bytes<R: RngCore + CryptoRng>(
        &self,
        payload: &[u8],
        associated_data: &[u8],
        type_tag: &TypeTag,
        rng: &mut R,
    ) -> HybridCiphertext {
        let k = self.params().random_gt(rng);
        let header = self.encrypt_typed(&k, type_tag, rng);
        let body = dem_key(&k, type_tag).seal(rng, payload, associated_data);
        HybridCiphertext { header, body }
    }

    /// Direct hybrid decryption by the delegator.
    pub fn decrypt_bytes(
        &self,
        ciphertext: &HybridCiphertext,
        associated_data: &[u8],
    ) -> Result<Vec<u8>> {
        let k = self.decrypt_typed(&ciphertext.header)?;
        let key = dem_key(&k, &ciphertext.header.type_tag);
        Ok(key.open(&ciphertext.body, associated_data)?)
    }
}

/// Re-encrypts only the KEM header of a hybrid ciphertext (proxy operation).
pub fn re_encrypt_hybrid(
    ciphertext: &HybridCiphertext,
    rekey: &ReEncryptionKey,
) -> Result<ReEncryptedHybridCiphertext> {
    Ok(ReEncryptedHybridCiphertext {
        header: re_encrypt(&ciphertext.header, rekey)?,
        body: ciphertext.body.clone(),
    })
}

/// Re-encrypts the KEM headers of many hybrid ciphertexts with one key — the
/// hybrid counterpart of [`crate::proxy::re_encrypt_batch`].
///
/// Every header's type is validated against the key before any conversion
/// happens (a mixed batch fails atomically), and the key's one-time pairing
/// precomputation is shared across the batch.  Bodies are forwarded
/// untouched, so the proxy's per-record work stays independent of payload
/// size.
pub fn re_encrypt_hybrid_batch<'a, I>(
    ciphertexts: I,
    rekey: &ReEncryptionKey,
) -> Result<Vec<ReEncryptedHybridCiphertext>>
where
    I: IntoIterator<Item = &'a HybridCiphertext>,
{
    let ciphertexts: Vec<&HybridCiphertext> = ciphertexts.into_iter().collect();
    crate::proxy::validate_batch_types(ciphertexts.iter().map(|ct| &ct.header.type_tag), rekey)?;
    // Convert all the headers through the shared batched path (one batched
    // final exponentiation for the whole chunk), then re-attach the bodies.
    let headers: Vec<&TypedCiphertext> = ciphertexts.iter().map(|ct| &ct.header).collect();
    let converted = crate::proxy::re_encrypt_validated_batch(&headers, rekey);
    Ok(ciphertexts
        .into_iter()
        .zip(converted)
        .map(|(ciphertext, header)| ReEncryptedHybridCiphertext {
            header,
            body: ciphertext.body.clone(),
        })
        .collect())
}

impl Delegatee {
    /// Hybrid decryption of a re-encrypted ciphertext by the delegatee.
    pub fn decrypt_bytes(
        &self,
        ciphertext: &ReEncryptedHybridCiphertext,
        associated_data: &[u8],
    ) -> Result<Vec<u8>> {
        let k = self.decrypt_reencrypted(&ciphertext.header)?;
        let key = dem_key(&k, &ciphertext.header.type_tag);
        Ok(key.open(&ciphertext.body, associated_data)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PreError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_ibe::{Identity, Kgc};
    use tibpre_pairing::PairingParams;

    struct Fixture {
        delegator: Delegator,
        delegatee: Delegatee,
        delegatee_id: Identity,
        kgc2_pp: tibpre_ibe::IbePublicParams,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(91);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params, "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        Fixture {
            delegator: Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice)),
            delegatee: Delegatee::new(kgc2.extract(&bob)),
            delegatee_id: bob,
            kgc2_pp: kgc2.public_params().clone(),
            rng,
        }
    }

    #[test]
    fn delegator_round_trip_various_sizes() {
        let mut f = fixture();
        let t = TypeTag::new("lab-results");
        for len in [0usize, 1, 100, 4096] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
            let ct = f
                .delegator
                .encrypt_bytes(&payload, b"header", &t, &mut f.rng);
            assert_eq!(
                f.delegator.decrypt_bytes(&ct, b"header").unwrap(),
                payload,
                "len {len}"
            );
        }
    }

    #[test]
    fn end_to_end_delegation_of_bytes() {
        let mut f = fixture();
        let t = TypeTag::new("emergency");
        let record = b"blood type: O-; allergies: penicillin".to_vec();
        let ct = f
            .delegator
            .encrypt_bytes(&record, b"record-42", &t, &mut f.rng);
        let rk = f
            .delegator
            .make_reencryption_key(&f.delegatee_id, &f.kgc2_pp, &t, &mut f.rng)
            .unwrap();
        let transformed = re_encrypt_hybrid(&ct, &rk).unwrap();
        // The body is forwarded untouched.
        assert_eq!(transformed.body, ct.body);
        assert_eq!(
            f.delegatee
                .decrypt_bytes(&transformed, b"record-42")
                .unwrap(),
            record
        );
    }

    #[test]
    fn wrong_associated_data_is_rejected() {
        let mut f = fixture();
        let t = TypeTag::new("t");
        let ct = f
            .delegator
            .encrypt_bytes(b"payload", b"aad-1", &t, &mut f.rng);
        assert!(matches!(
            f.delegator.decrypt_bytes(&ct, b"aad-2"),
            Err(PreError::Symmetric(_))
        ));
    }

    #[test]
    fn tampered_body_is_rejected_after_reencryption() {
        let mut f = fixture();
        let t = TypeTag::new("t");
        let ct = f
            .delegator
            .encrypt_bytes(b"sensitive payload", b"", &t, &mut f.rng);
        let rk = f
            .delegator
            .make_reencryption_key(&f.delegatee_id, &f.kgc2_pp, &t, &mut f.rng)
            .unwrap();
        let mut transformed = re_encrypt_hybrid(&ct, &rk).unwrap();
        transformed.body.body[0] ^= 1;
        assert!(matches!(
            f.delegatee.decrypt_bytes(&transformed, b""),
            Err(PreError::Symmetric(_))
        ));
    }

    #[test]
    fn header_reencryption_respects_types() {
        let mut f = fixture();
        let ct = f
            .delegator
            .encrypt_bytes(b"diet diary", b"", &TypeTag::new("diet"), &mut f.rng);
        let rk = f
            .delegator
            .make_reencryption_key(
                &f.delegatee_id,
                &f.kgc2_pp,
                &TypeTag::new("illness-history"),
                &mut f.rng,
            )
            .unwrap();
        assert!(matches!(
            re_encrypt_hybrid(&ct, &rk),
            Err(PreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn hybrid_serialization_round_trips_and_rejects_corruption() {
        let mut f = fixture();
        let params = f.delegator.params().clone();
        let t = TypeTag::new("lab-results");
        for len in [0usize, 1, 257, 4096] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = f.delegator.encrypt_bytes(&payload, b"aad", &t, &mut f.rng);
            let bytes = ct.to_bytes();
            assert_eq!(bytes.len(), ct.serialized_len(), "len {len}");
            let parsed = HybridCiphertext::from_bytes(&params, &bytes).unwrap();
            assert_eq!(parsed, ct, "len {len}");
            assert_eq!(parsed.to_bytes(), bytes, "len {len}");
            // The parsed copy still decrypts.
            assert_eq!(f.delegator.decrypt_bytes(&parsed, b"aad").unwrap(), payload);
        }

        let ct = f.delegator.encrypt_bytes(b"payload", b"", &t, &mut f.rng);
        let bytes = ct.to_bytes();
        // Every strict prefix is rejected: the header is length-prefixed and
        // the AEAD body's internal length field must consume the rest exactly.
        for cut in 0..bytes.len() {
            assert!(
                HybridCiphertext::from_bytes(&params, &bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        // Extension is rejected too.
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(HybridCiphertext::from_bytes(&params, &longer).is_err());
        // A corrupted header-length field (just after the envelope byte)
        // never panics, whatever it claims.
        for claimed in [0u32, 1, (bytes.len() as u32) - 5, u32::MAX] {
            let mut corrupted = bytes.clone();
            corrupted[1..5].copy_from_slice(&claimed.to_be_bytes());
            assert!(HybridCiphertext::from_bytes(&params, &corrupted).is_err());
        }
    }

    #[test]
    fn hybrid_batch_is_bit_identical_to_per_item() {
        let mut f = fixture();
        let t = TypeTag::new("lab-results");
        let rk = f
            .delegator
            .make_reencryption_key(&f.delegatee_id, &f.kgc2_pp, &t, &mut f.rng)
            .unwrap();
        let cts: Vec<HybridCiphertext> = (0..4)
            .map(|i| {
                f.delegator
                    .encrypt_bytes(&[i as u8; 64], b"aad", &t, &mut f.rng)
            })
            .collect();
        let batch = re_encrypt_hybrid_batch(&cts, &rk).unwrap();
        assert_eq!(batch.len(), cts.len());
        for (got, ct) in batch.iter().zip(&cts) {
            let single = re_encrypt_hybrid(ct, &rk).unwrap();
            assert_eq!(got.to_bytes(), single.to_bytes());
        }
    }

    #[test]
    fn proxy_work_is_independent_of_payload_size() {
        // Structural check: the re-encrypted header equals what re-encrypting
        // the header alone produces, and the body is bit-identical, i.e. the
        // proxy never processes the payload.
        let mut f = fixture();
        let t = TypeTag::new("imaging");
        let big_payload = vec![0x5Au8; 1 << 16];
        let ct = f.delegator.encrypt_bytes(&big_payload, b"", &t, &mut f.rng);
        let rk = f
            .delegator
            .make_reencryption_key(&f.delegatee_id, &f.kgc2_pp, &t, &mut f.rng)
            .unwrap();
        let transformed = re_encrypt_hybrid(&ct, &rk).unwrap();
        assert_eq!(transformed.body, ct.body);
        assert_eq!(transformed.header, re_encrypt(&ct.header, &rk).unwrap());
        assert!(ct.serialized_len() > (1 << 16));
    }
}
