//! Message types (the paper's `t ∈ {0,1}*`).
//!
//! A [`TypeTag`] is an arbitrary byte string labelling a category of messages:
//! the paper's healthcare example uses types such as *illness history*, *food
//! statistics* and *emergency data*.  The delegator's per-type virtual key is
//! `H2(sk_id ‖ t)`, so two distinct tags give cryptographically independent
//! delegations.

use core::fmt;

/// A message-type tag.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeTag {
    bytes: Vec<u8>,
}

impl TypeTag {
    /// Creates a tag from a string label.
    pub fn new(label: impl AsRef<str>) -> Self {
        TypeTag {
            bytes: label.as_ref().as_bytes().to_vec(),
        }
    }

    /// Creates a tag from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        TypeTag {
            bytes: bytes.into(),
        }
    }

    /// The raw tag bytes (the `t` that enters `H2(sk ‖ t)`).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Best-effort string rendering for logs and error messages.
    pub fn display(&self) -> String {
        String::from_utf8_lossy(&self.bytes).into_owned()
    }
}

impl fmt::Debug for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypeTag({})", self.display())
    }
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

impl From<&str> for TypeTag {
    fn from(s: &str) -> Self {
        TypeTag::new(s)
    }
}

impl From<String> for TypeTag {
    fn from(s: String) -> Self {
        TypeTag::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_and_ordering() {
        let a = TypeTag::new("illness-history");
        let b: TypeTag = "illness-history".into();
        let c = TypeTag::new("food-statistics");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(c < a); // lexicographic on bytes
    }

    #[test]
    fn binary_tags_are_allowed() {
        let t = TypeTag::from_bytes(vec![0x00, 0xFF, 0x10]);
        assert_eq!(t.as_bytes(), &[0x00, 0xFF, 0x10]);
        let _ = t.display();
        assert!(format!("{t:?}").starts_with("TypeTag("));
    }

    #[test]
    fn display_round_trip() {
        let t = TypeTag::new("emergency");
        assert_eq!(t.to_string(), "emergency");
    }
}
