//! Error type for the proxy re-encryption layer.

use core::fmt;
use tibpre_ibe::IbeError;
use tibpre_pairing::PairingError;
use tibpre_symmetric::SymmetricError;
use tibpre_wire::DecodeError;

/// Errors produced by the TIB-PRE scheme and its baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreError {
    /// An error bubbled up from the pairing substrate.
    Pairing(PairingError),
    /// A wire decode failed (truncation, bad tag, invalid group element).
    Decode(DecodeError),
    /// An error bubbled up from the IBE layer.
    Ibe(IbeError),
    /// An error bubbled up from the symmetric (DEM) layer.
    Symmetric(SymmetricError),
    /// The re-encryption key's type does not match the ciphertext's type.
    TypeMismatch {
        /// Type tag carried by the ciphertext.
        ciphertext_type: String,
        /// Type tag the re-encryption key was issued for.
        key_type: String,
    },
    /// The proxy holds no re-encryption key matching the request.
    NoMatchingKey,
    /// The two KGC domains do not share pairing parameters.
    IncompatibleDomains,
    /// A ciphertext or key encoding was malformed.
    InvalidEncoding(&'static str),
    /// A security-game constraint was violated (e.g. extracting the challenge identity).
    GameConstraintViolated(&'static str),
}

impl fmt::Display for PreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreError::Pairing(e) => write!(f, "pairing error: {e}"),
            PreError::Decode(e) => write!(f, "decode error: {e}"),
            PreError::Ibe(e) => write!(f, "IBE error: {e}"),
            PreError::Symmetric(e) => write!(f, "symmetric-cipher error: {e}"),
            PreError::TypeMismatch {
                ciphertext_type,
                key_type,
            } => write!(
                f,
                "type mismatch: ciphertext has type '{ciphertext_type}' but the \
                 re-encryption key was issued for '{key_type}'"
            ),
            PreError::NoMatchingKey => write!(f, "no matching re-encryption key"),
            PreError::IncompatibleDomains => {
                write!(
                    f,
                    "the delegator and delegatee domains do not share parameters"
                )
            }
            PreError::InvalidEncoding(why) => write!(f, "invalid encoding: {why}"),
            PreError::GameConstraintViolated(why) => {
                write!(f, "security-game constraint violated: {why}")
            }
        }
    }
}

impl std::error::Error for PreError {}

impl From<PairingError> for PreError {
    fn from(e: PairingError) -> Self {
        PreError::Pairing(e)
    }
}

impl From<DecodeError> for PreError {
    fn from(e: DecodeError) -> Self {
        PreError::Decode(e)
    }
}

impl From<IbeError> for PreError {
    fn from(e: IbeError) -> Self {
        PreError::Ibe(e)
    }
}

impl From<SymmetricError> for PreError {
    fn from(e: SymmetricError) -> Self {
        PreError::Symmetric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PreError = PairingError::NotOnCurve.into();
        assert!(e.to_string().contains("pairing"));
        let e: PreError = IbeError::DomainMismatch.into();
        assert!(e.to_string().contains("IBE"));
        let e: PreError = SymmetricError::AuthenticationFailed.into();
        assert!(e.to_string().contains("symmetric"));
        let e = PreError::TypeMismatch {
            ciphertext_type: "illness".into(),
            key_type: "diet".into(),
        };
        assert!(e.to_string().contains("illness"));
        assert!(e.to_string().contains("diet"));
    }
}
