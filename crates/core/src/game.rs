//! An executable version of the paper's IND-ID-DR-CPA security game
//! (Section 4.2), used as a test harness.
//!
//! The game cannot, of course, *prove* security — the paper's Theorem 1 does
//! that under the BDH/CDH assumptions in the random-oracle model — but running
//! it mechanically checks three things that are easy to get wrong in an
//! implementation:
//!
//! 1. the challenger enforces the query constraints of the model (no
//!    `Extract1(id*)`, no `Extract2(id')` once `Pextract(id*, id', t*)` was
//!    issued, …),
//! 2. an adversary restricted to the allowed oracles and blind guessing wins
//!    with probability ≈ ½ (no obvious leakage through the public values), and
//! 3. an adversary that *does* hold the target private key (simulating a full
//!    break) wins every time — i.e. the game actually measures something.

use crate::delegator::{Delegator, TypedCiphertext};
use crate::proxy::{re_encrypt, ReEncryptedCiphertext};
use crate::rekey::ReEncryptionKey;
use crate::types::TypeTag;
use crate::{PreError, Result};
use rand::{CryptoRng, RngCore};
use std::collections::HashSet;
use std::sync::Arc;
use tibpre_ibe::{IbePrivateKey, IbePublicParams, Identity, Kgc};
use tibpre_pairing::{Gt, PairingParams};

/// The challenger of the IND-ID-DR-CPA game.
///
/// It owns both KGCs, answers oracle queries, tracks which queries were made
/// and refuses combinations the model forbids.
pub struct Challenger {
    params: Arc<PairingParams>,
    kgc1: Kgc,
    kgc2: Kgc,
    extracted1: HashSet<Vec<u8>>,
    extracted2: HashSet<Vec<u8>>,
    /// `(id, id', t)` triples given to the Pextract oracle.
    pextracted: HashSet<(Vec<u8>, Vec<u8>, Vec<u8>)>,
    /// `(id, id', t)` triples used in Preenc† queries.
    preenc_queried: HashSet<(Vec<u8>, Vec<u8>, Vec<u8>)>,
    challenge: Option<ChallengeState>,
}

struct ChallengeState {
    bit: bool,
    identity: Identity,
    type_tag: TypeTag,
}

impl Challenger {
    /// Game setup: generates both domains over shared parameters.
    pub fn new<R: RngCore + CryptoRng>(params: Arc<PairingParams>, rng: &mut R) -> Self {
        let kgc1 = Kgc::setup(params.clone(), "game-kgc1", rng);
        let kgc2 = Kgc::setup(params.clone(), "game-kgc2", rng);
        Challenger {
            params,
            kgc1,
            kgc2,
            extracted1: HashSet::new(),
            extracted2: HashSet::new(),
            pextracted: HashSet::new(),
            preenc_queried: HashSet::new(),
            challenge: None,
        }
    }

    /// The shared pairing parameters (public input to the adversary).
    pub fn params(&self) -> &Arc<PairingParams> {
        &self.params
    }

    /// The delegator-domain public parameters (`params1`).
    pub fn public_params1(&self) -> &IbePublicParams {
        self.kgc1.public_params()
    }

    /// The delegatee-domain public parameters (`params2`).
    pub fn public_params2(&self) -> &IbePublicParams {
        self.kgc2.public_params()
    }

    /// `Extract1` oracle.
    pub fn extract1(&mut self, id: &Identity) -> Result<IbePrivateKey> {
        if let Some(ch) = &self.challenge {
            if ch.identity == *id {
                return Err(PreError::GameConstraintViolated(
                    "Extract1 on the challenge identity",
                ));
            }
        }
        self.extracted1.insert(id.as_bytes().to_vec());
        Ok(self.kgc1.extract(id))
    }

    /// `Extract2` oracle.
    pub fn extract2(&mut self, id: &Identity) -> Result<IbePrivateKey> {
        // Constraint (b): if (id*, id', t*) was Pextract-ed, id' may not be extracted.
        if let Some(ch) = &self.challenge {
            if self.pextracted.contains(&(
                ch.identity.as_bytes().to_vec(),
                id.as_bytes().to_vec(),
                ch.type_tag.as_bytes().to_vec(),
            )) {
                return Err(PreError::GameConstraintViolated(
                    "Extract2 on a delegatee that received the challenge delegation",
                ));
            }
        }
        self.extracted2.insert(id.as_bytes().to_vec());
        Ok(self.kgc2.extract(id))
    }

    /// `Pextract` oracle: returns `rk_{id→id'}` for the given type.
    pub fn pextract(
        &mut self,
        delegator_id: &Identity,
        delegatee_id: &Identity,
        type_tag: &TypeTag,
    ) -> Result<ReEncryptionKey> {
        let triple = (
            delegator_id.as_bytes().to_vec(),
            delegatee_id.as_bytes().to_vec(),
            type_tag.as_bytes().to_vec(),
        );
        // Constraint (b), seen from the other side.
        if let Some(ch) = &self.challenge {
            if ch.identity == *delegator_id
                && ch.type_tag == *type_tag
                && self.extracted2.contains(delegatee_id.as_bytes())
            {
                return Err(PreError::GameConstraintViolated(
                    "Pextract of the challenge (identity, type) towards an extracted delegatee",
                ));
            }
        }
        // Constraint (c): a triple used in a Preenc† query may not be Pextract-ed.
        if self.preenc_queried.contains(&triple) {
            return Err(PreError::GameConstraintViolated(
                "Pextract on a triple already used in a Preenc query",
            ));
        }
        self.pextracted.insert(triple);
        let delegator = Delegator::new(
            self.kgc1.public_params().clone(),
            self.kgc1.extract(delegator_id),
        );
        // The challenger uses fresh internal randomness for the oracle answer.
        let mut rng = rand::rngs::OsRng;
        delegator.make_reencryption_key(delegatee_id, self.kgc2.public_params(), type_tag, &mut rng)
    }

    /// `Preenc†` oracle: encrypts `m` under `(t, id)` and immediately
    /// re-encrypts it towards `id'`, reflecting a curious delegatee's view.
    pub fn preenc(
        &mut self,
        message: &Gt,
        type_tag: &TypeTag,
        delegator_id: &Identity,
        delegatee_id: &Identity,
    ) -> Result<ReEncryptedCiphertext> {
        let triple = (
            delegator_id.as_bytes().to_vec(),
            delegatee_id.as_bytes().to_vec(),
            type_tag.as_bytes().to_vec(),
        );
        if self.pextracted.contains(&triple) {
            return Err(PreError::GameConstraintViolated(
                "Preenc on a triple whose re-encryption key was already given out",
            ));
        }
        self.preenc_queried.insert(triple);
        let delegator = Delegator::new(
            self.kgc1.public_params().clone(),
            self.kgc1.extract(delegator_id),
        );
        let mut rng = rand::rngs::OsRng;
        let ciphertext = delegator.encrypt_typed(message, type_tag, &mut rng);
        let rekey = delegator.make_reencryption_key(
            delegatee_id,
            self.kgc2.public_params(),
            type_tag,
            &mut rng,
        )?;
        re_encrypt(&ciphertext, &rekey)
    }

    /// Challenge phase: the adversary submits `(m0, m1, t*, id*)` and receives
    /// `Encrypt1(m_b, t*, id*)` for a secret random bit `b`.
    pub fn challenge<R: RngCore + CryptoRng>(
        &mut self,
        m0: &Gt,
        m1: &Gt,
        type_tag: &TypeTag,
        identity: &Identity,
        rng: &mut R,
    ) -> Result<TypedCiphertext> {
        if self.challenge.is_some() {
            return Err(PreError::GameConstraintViolated(
                "challenge requested twice",
            ));
        }
        if self.extracted1.contains(identity.as_bytes()) {
            return Err(PreError::GameConstraintViolated(
                "challenge identity was already extracted",
            ));
        }
        // Constraint (b) at challenge time: for every Pextract(id*, id', t*),
        // id' must not have been extracted in domain 2.
        for (del, dee, t) in &self.pextracted {
            if del == identity.as_bytes()
                && t == type_tag.as_bytes()
                && self.extracted2.contains(dee)
            {
                return Err(PreError::GameConstraintViolated(
                    "challenge (identity, type) was delegated to an extracted delegatee",
                ));
            }
        }
        let bit = (rng.next_u32() & 1) == 1;
        let delegator = Delegator::new(
            self.kgc1.public_params().clone(),
            self.kgc1.extract(identity),
        );
        let chosen = if bit { m1 } else { m0 };
        let ciphertext = delegator.encrypt_typed(chosen, type_tag, rng);
        self.challenge = Some(ChallengeState {
            bit,
            identity: identity.clone(),
            type_tag: type_tag.clone(),
        });
        Ok(ciphertext)
    }

    /// Game ending: checks the adversary's guess against the hidden bit.
    pub fn adjudicate(&self, guess: bool) -> Result<bool> {
        match &self.challenge {
            Some(state) => Ok(state.bit == guess),
            None => Err(PreError::GameConstraintViolated(
                "guess submitted before the challenge phase",
            )),
        }
    }

    /// **Test-only backdoor**: hands out the challenge delegator's private key
    /// regardless of the constraints.  Used to verify that the game harness
    /// detects a "broken" scheme (an adversary with the key must win always).
    pub fn leak_challenge_private_key(&self, identity: &Identity) -> IbePrivateKey {
        self.kgc1.extract(identity)
    }
}

/// An adversary strategy for the IND-ID-DR-CPA game.
pub trait Adversary {
    /// Plays one full game against the challenger and returns its guess.
    fn play<R: RngCore + CryptoRng>(
        &mut self,
        challenger: &mut Challenger,
        rng: &mut R,
    ) -> Result<bool>;
}

/// Runs `iterations` independent games and returns the fraction the adversary won.
pub fn win_rate<A, R>(
    make_adversary: impl Fn() -> A,
    params: &Arc<PairingParams>,
    iterations: usize,
    rng: &mut R,
) -> f64
where
    A: Adversary,
    R: RngCore + CryptoRng,
{
    let mut wins = 0usize;
    for _ in 0..iterations {
        let mut challenger = Challenger::new(Arc::clone(params), rng);
        let mut adversary = make_adversary();
        let guess = adversary
            .play(&mut challenger, rng)
            .expect("adversary must respect the game interface");
        if challenger.adjudicate(guess).expect("challenge was issued") {
            wins += 1;
        }
    }
    wins as f64 / iterations as f64
}

/// A blind adversary: asks for a challenge and guesses at random.
pub struct BlindAdversary;

impl Adversary for BlindAdversary {
    fn play<R: RngCore + CryptoRng>(
        &mut self,
        challenger: &mut Challenger,
        rng: &mut R,
    ) -> Result<bool> {
        let params = Arc::clone(challenger.params());
        let m0 = params.random_gt(rng);
        let m1 = params.random_gt(rng);
        let _ = challenger.challenge(
            &m0,
            &m1,
            &TypeTag::new("challenge-type"),
            &Identity::new("target@example.org"),
            rng,
        )?;
        Ok(rng.next_u32() & 1 == 1)
    }
}

/// An adversary that (through the test-only backdoor) holds the target's
/// private key and therefore distinguishes perfectly.
pub struct KeyHoldingAdversary;

impl Adversary for KeyHoldingAdversary {
    fn play<R: RngCore + CryptoRng>(
        &mut self,
        challenger: &mut Challenger,
        rng: &mut R,
    ) -> Result<bool> {
        let params = Arc::clone(challenger.params());
        let id = Identity::new("target@example.org");
        let t = TypeTag::new("challenge-type");
        let m0 = params.random_gt(rng);
        let m1 = params.random_gt(rng);
        let ciphertext = challenger.challenge(&m0, &m1, &t, &id, rng)?;
        // Simulate a complete break: obtain the private key out of band.
        let sk = challenger.leak_challenge_private_key(&id);
        let delegator = Delegator::new(challenger.public_params1().clone(), sk);
        let recovered = delegator.decrypt_typed(&ciphertext)?;
        Ok(recovered == m1)
    }
}

/// An adversary that uses the allowed oracles on *other* identities and types
/// (everything it is entitled to) before guessing blindly — exercising the
/// bookkeeping paths of the challenger.
pub struct OracleUsingAdversary;

impl Adversary for OracleUsingAdversary {
    fn play<R: RngCore + CryptoRng>(
        &mut self,
        challenger: &mut Challenger,
        rng: &mut R,
    ) -> Result<bool> {
        let params = Arc::clone(challenger.params());
        let other = Identity::new("someone-else@example.org");
        let helper = Identity::new("helper@clinic.example");
        let target = Identity::new("target@example.org");
        let t_other = TypeTag::new("other-type");
        let t_star = TypeTag::new("challenge-type");

        // Allowed: extract other identities in both domains.
        let _ = challenger.extract1(&other)?;
        let _ = challenger.extract2(&helper)?;
        // Allowed: delegation of a *different* type of the target identity.
        let _ = challenger.pextract(&target, &helper, &t_other)?;
        // Allowed: a Preenc query for the challenge type towards a delegatee
        // whose key was never extracted and never Pextract-ed for t*.
        let m = params.random_gt(rng);
        let fresh_delegatee = Identity::new("fresh@clinic.example");
        let _ = challenger.preenc(&m, &t_star, &target, &fresh_delegatee)?;

        let m0 = params.random_gt(rng);
        let m1 = params.random_gt(rng);
        let _ = challenger.challenge(&m0, &m1, &t_star, &target, rng)?;
        Ok(rng.next_u32() & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> Arc<PairingParams> {
        PairingParams::insecure_toy()
    }

    #[test]
    fn blind_adversary_wins_about_half_the_time() {
        let mut rng = StdRng::seed_from_u64(121);
        let rate = win_rate(|| BlindAdversary, &params(), 60, &mut rng);
        assert!(rate > 0.25 && rate < 0.75, "win rate {rate}");
    }

    #[test]
    fn key_holding_adversary_always_wins() {
        let mut rng = StdRng::seed_from_u64(122);
        let rate = win_rate(|| KeyHoldingAdversary, &params(), 10, &mut rng);
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn oracle_using_adversary_gains_nothing() {
        let mut rng = StdRng::seed_from_u64(123);
        let rate = win_rate(|| OracleUsingAdversary, &params(), 40, &mut rng);
        assert!(rate > 0.2 && rate < 0.8, "win rate {rate}");
    }

    #[test]
    fn challenger_enforces_extract_constraints() {
        let mut rng = StdRng::seed_from_u64(124);
        let p = params();
        let mut challenger = Challenger::new(p.clone(), &mut rng);
        let target = Identity::new("target");
        let t = TypeTag::new("t*");
        let m0 = p.random_gt(&mut rng);
        let m1 = p.random_gt(&mut rng);

        // Extracting first, then challenging the same identity: refused.
        challenger.extract1(&target).unwrap();
        assert!(matches!(
            challenger.challenge(&m0, &m1, &t, &target, &mut rng),
            Err(PreError::GameConstraintViolated(_))
        ));

        // Fresh game: challenge first, then Extract1 on the challenge identity: refused.
        let mut challenger = Challenger::new(p.clone(), &mut rng);
        challenger
            .challenge(&m0, &m1, &t, &target, &mut rng)
            .unwrap();
        assert!(matches!(
            challenger.extract1(&target),
            Err(PreError::GameConstraintViolated(_))
        ));
        // A second challenge is refused too.
        assert!(matches!(
            challenger.challenge(&m0, &m1, &t, &target, &mut rng),
            Err(PreError::GameConstraintViolated(_))
        ));
    }

    #[test]
    fn challenger_enforces_delegation_constraints() {
        let mut rng = StdRng::seed_from_u64(125);
        let p = params();
        let target = Identity::new("target");
        let helper = Identity::new("helper");
        let t_star = TypeTag::new("t*");
        let m0 = p.random_gt(&mut rng);
        let m1 = p.random_gt(&mut rng);

        // Pextract(id*, id', t*) then Extract2(id'): refused after the challenge.
        let mut challenger = Challenger::new(p.clone(), &mut rng);
        challenger.pextract(&target, &helper, &t_star).unwrap();
        challenger
            .challenge(&m0, &m1, &t_star, &target, &mut rng)
            .unwrap();
        assert!(matches!(
            challenger.extract2(&helper),
            Err(PreError::GameConstraintViolated(_))
        ));

        // Extract2(id') then Pextract(id*, id', t*) after the challenge: refused.
        let mut challenger = Challenger::new(p.clone(), &mut rng);
        challenger.extract2(&helper).unwrap();
        challenger
            .challenge(&m0, &m1, &t_star, &target, &mut rng)
            .unwrap();
        assert!(matches!(
            challenger.pextract(&target, &helper, &t_star),
            Err(PreError::GameConstraintViolated(_))
        ));
        // ... and at challenge time, the combination is also caught.
        let mut challenger = Challenger::new(p.clone(), &mut rng);
        challenger.extract2(&helper).unwrap();
        challenger.pextract(&target, &helper, &t_star).unwrap();
        assert!(matches!(
            challenger.challenge(&m0, &m1, &t_star, &target, &mut rng),
            Err(PreError::GameConstraintViolated(_))
        ));
    }

    #[test]
    fn challenger_enforces_preenc_pextract_exclusion() {
        let mut rng = StdRng::seed_from_u64(126);
        let p = params();
        let mut challenger = Challenger::new(p.clone(), &mut rng);
        let target = Identity::new("target");
        let helper = Identity::new("helper");
        let t = TypeTag::new("t");
        let m = p.random_gt(&mut rng);

        challenger.preenc(&m, &t, &target, &helper).unwrap();
        assert!(matches!(
            challenger.pextract(&target, &helper, &t),
            Err(PreError::GameConstraintViolated(_))
        ));

        let mut challenger = Challenger::new(p, &mut rng);
        challenger.pextract(&target, &helper, &t).unwrap();
        assert!(matches!(
            challenger.preenc(&m, &t, &target, &helper),
            Err(PreError::GameConstraintViolated(_))
        ));
    }

    #[test]
    fn guess_before_challenge_is_rejected() {
        let mut rng = StdRng::seed_from_u64(127);
        let challenger = Challenger::new(params(), &mut rng);
        assert!(matches!(
            challenger.adjudicate(true),
            Err(PreError::GameConstraintViolated(_))
        ));
    }
}
