//! The delegator role: typed self-encryption (`Encrypt1` / `Decrypt1`) and
//! re-encryption-key generation (`Pextract`).

use crate::rekey::ReEncryptionKey;
use crate::types::TypeTag;
use crate::{PreError, Result, H2_DOMAIN};
use rand::{CryptoRng, RngCore};
use std::sync::{Arc, OnceLock};
use tibpre_ibe::{bf, IbePrivateKey, IbePublicParams, Identity, H1_DOMAIN};
use tibpre_pairing::{
    wire as pairing_wire, DecodeCtx, G1Affine, G1Precomp, Gt, PairingParams, Scalar,
};
use tibpre_wire::{DecodeError, Reader, WireDecode, WireEncode, WireVersion, Writer};

/// A typed ciphertext `(c1, c2, c3) = (g^r, m · ê(pk_id, pk₁)^{r·H2(sk‖t)}, t)`.
///
/// Only the delegator himself can produce (or directly decrypt) these
/// ciphertexts, because the exponent involves his private key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypedCiphertext {
    /// `c1 = g^r`.
    pub c1: G1Affine,
    /// `c2 = m · ê(pk_id, pk₁)^{r·H2(sk_id ‖ t)}`.
    pub c2: Gt,
    /// `c3 = t`, the message type (sent in the clear, as in the paper).
    pub type_tag: TypeTag,
}

impl TypedCiphertext {
    /// Serializes under the default versioned envelope
    /// (`c1 ‖ c2 ‖ type_len(u32 BE) ‖ type`, group elements compressed in
    /// `v1`).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes()
    }

    /// Parses the serialization produced by [`Self::to_bytes`], rejecting
    /// unknown versions and trailing bytes.
    pub fn from_bytes(params: &Arc<PairingParams>, bytes: &[u8]) -> Result<Self> {
        Ok(Self::from_wire_bytes(bytes, &DecodeCtx::from(params))?)
    }

    /// Bare (envelope-less) serialized length under the given wire version.
    pub fn serialized_len_versioned(
        params: &PairingParams,
        type_len: usize,
        version: WireVersion,
    ) -> usize {
        match version {
            WireVersion::V0 => params.g1_byte_len() + params.gt_byte_len() + 4 + type_len,
            WireVersion::V1 => {
                params.g1_compressed_byte_len() + params.gt_compressed_byte_len() + 4 + type_len
            }
        }
    }

    /// Total standalone serialized length (envelope byte included) under the
    /// default wire version.
    pub fn serialized_len(params: &PairingParams, type_len: usize) -> usize {
        1 + Self::serialized_len_versioned(params, type_len, WireVersion::DEFAULT)
    }
}

impl WireEncode for TypedCiphertext {
    fn encode(&self, w: &mut Writer) {
        self.c1.encode(w);
        self.c2.encode(w);
        w.put_bytes(self.type_tag.as_bytes());
    }
}

impl WireDecode for TypedCiphertext {
    type Ctx = DecodeCtx;

    /// Validates `c1` against the curve and the prime-order subgroup; `c2`
    /// is range/torus-validated only (the mask never needs the full
    /// subgroup check — see the pairing crate's wire docs).
    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> core::result::Result<Self, DecodeError> {
        let c1 =
            pairing_wire::decode_g1_in_subgroup(r, ctx, "c1 outside the prime-order subgroup")?;
        let c2 = Gt::decode(r, ctx.fp_ctx())?;
        let type_tag = TypeTag::from_bytes(r.bytes()?.to_vec());
        Ok(TypedCiphertext { c1, c2, type_tag })
    }
}

/// Per-delegator precomputation, built lazily because most delegators only
/// ever exercise one or two of the three hot paths.
#[derive(Default)]
struct DelegatorCache {
    /// `ê(pk_id, pk)` — the delegator's own identity and the KGC key are both
    /// fixed, so the whole encryption pairing is one constant `G_1` element;
    /// `Encrypt1` reduces to `g^r` plus one `G_1` exponentiation.
    encryption_base: OnceLock<Gt>,
    /// Fixed-base table for `sk_id`, used by `Pextract`'s
    /// `sk_id^{−H2(sk_id ‖ t)}`.
    sk_table: OnceLock<Arc<G1Precomp>>,
}

/// The delegator: owns a private key in the `KGC1` domain and categorises his
/// messages into types.
pub struct Delegator {
    domain: IbePublicParams,
    private_key: IbePrivateKey,
    cache: DelegatorCache,
}

impl Delegator {
    /// Binds a delegator to his domain parameters and extracted private key.
    pub fn new(domain: IbePublicParams, private_key: IbePrivateKey) -> Self {
        Delegator {
            domain,
            private_key,
            cache: DelegatorCache::default(),
        }
    }

    /// The delegator's identity.
    pub fn identity(&self) -> &Identity {
        self.private_key.identity()
    }

    /// The delegator's domain (KGC1) public parameters.
    pub fn domain(&self) -> &IbePublicParams {
        &self.domain
    }

    /// The shared pairing parameters.
    pub fn params(&self) -> &Arc<PairingParams> {
        self.domain.pairing()
    }

    /// Access to the private key (needed by the security-game harness).
    pub fn private_key(&self) -> &IbePrivateKey {
        &self.private_key
    }

    /// The paper's per-type exponent `H2(sk_id ‖ t)`.
    ///
    /// Each type tag yields an independent "virtual key", which is exactly what
    /// lets one key pair support many independent delegations.
    pub fn type_exponent(&self, type_tag: &TypeTag) -> Scalar {
        self.params().hash_to_zq(
            H2_DOMAIN,
            &[&self.private_key.to_bytes(), type_tag.as_bytes()],
        )
    }

    /// `Encrypt1(m, t, id)`: encrypts a target-group element to the delegator
    /// himself under the given type.
    pub fn encrypt_typed<R: RngCore + CryptoRng>(
        &self,
        message: &Gt,
        type_tag: &TypeTag,
        rng: &mut R,
    ) -> TypedCiphertext {
        let r = self.params().random_nonzero_scalar(rng);
        self.encrypt_typed_with_randomness(message, type_tag, &r)
    }

    /// Deterministic variant of [`Self::encrypt_typed`] with caller-supplied `r`
    /// (used by the security-game harness).
    pub fn encrypt_typed_with_randomness(
        &self,
        message: &Gt,
        type_tag: &TypeTag,
        r: &Scalar,
    ) -> TypedCiphertext {
        let params = self.params();
        // g^r through the cached fixed-base table for g.
        let c1 = params.mul_generator(r);
        // Both pairing arguments are fixed for this delegator, so the base
        // mask ê(pk_id, pk) is computed once and cached; each encryption
        // then costs a single G_1 exponentiation.
        let base = self.cache.encryption_base.get_or_init(|| {
            let pk_id = self.domain.identity_public_key(self.identity());
            self.domain.prepared_kgc_key().pairing(&pk_id)
        });
        let exponent = r.mul(&self.type_exponent(type_tag));
        let mask = base.pow_scalar(&exponent);
        TypedCiphertext {
            c1,
            c2: message.mul(&mask),
            type_tag: type_tag.clone(),
        }
    }

    /// `Decrypt1(c, sk_id)`: direct decryption by the delegator,
    /// `m = c2 / ê(sk_id, c1)^{H2(sk_id ‖ c3)}` — the pairing runs over the
    /// Miller loop prepared for the fixed `sk_id`.
    pub fn decrypt_typed(&self, ciphertext: &TypedCiphertext) -> Result<Gt> {
        let exponent = self.type_exponent(&ciphertext.type_tag);
        let mask = self
            .private_key
            .prepared_key()
            .pairing(&ciphertext.c1)
            .pow_scalar(&exponent);
        ciphertext
            .c2
            .div(&mask)
            .map_err(|_| PreError::InvalidEncoding("degenerate decryption mask"))
    }

    /// `Pextract(id_i, id_j, t, sk_idi)`: creates the re-encryption key that
    /// lets a proxy convert the delegator's type-`t` ciphertexts for the
    /// delegatee `id_j` registered in `delegatee_domain` (the paper's `KGC2`).
    ///
    /// The two domains must share pairing parameters; the delegatee's domain
    /// may otherwise be completely independent (different master key).
    pub fn make_reencryption_key<R: RngCore + CryptoRng>(
        &self,
        delegatee: &Identity,
        delegatee_domain: &IbePublicParams,
        type_tag: &TypeTag,
        rng: &mut R,
    ) -> Result<ReEncryptionKey> {
        if !self.domain.shares_parameters_with(delegatee_domain) {
            return Err(PreError::IncompatibleDomains);
        }
        let params = self.params();
        // X ∈R G_1 (the target group), encrypted to the delegatee under KGC2.
        let x = params.random_gt(rng);
        let encrypted_x = bf::encrypt_gt(delegatee_domain, delegatee, &x, rng);
        // rk₂ = sk_idi^{−H2(sk_idi ‖ t)} · H1(X), with the sk_idi power taken
        // through a fixed-base table cached across Pextract calls.
        let exponent = self.type_exponent(type_tag).neg();
        let h1_of_x = params.hash_to_g1(H1_DOMAIN, &[&x.to_bytes()])?;
        let sk_table = self
            .cache
            .sk_table
            .get_or_init(|| Arc::new(G1Precomp::new(self.private_key.key(), params.q().bits())));
        let rk_point = sk_table.mul_scalar(&exponent).add(&h1_of_x);
        Ok(ReEncryptionKey::new(
            self.identity().clone(),
            delegatee.clone(),
            type_tag.clone(),
            rk_point,
            encrypted_x,
            Arc::clone(params),
        ))
    }
}

impl core::fmt::Debug for Delegator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Delegator(identity={})", self.identity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_ibe::Kgc;

    fn setup() -> (Delegator, Arc<PairingParams>, StdRng) {
        let mut rng = StdRng::seed_from_u64(51);
        let params = PairingParams::insecure_toy();
        let kgc = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let alice = Identity::new("alice@phr.example");
        let delegator = Delegator::new(kgc.public_params().clone(), kgc.extract(&alice));
        (delegator, params, rng)
    }

    #[test]
    fn typed_encrypt_decrypt_round_trip() {
        let (delegator, params, mut rng) = setup();
        for label in ["illness-history", "food-statistics", "emergency"] {
            let t = TypeTag::new(label);
            let m = params.random_gt(&mut rng);
            let ct = delegator.encrypt_typed(&m, &t, &mut rng);
            assert_eq!(ct.type_tag, t);
            assert_eq!(delegator.decrypt_typed(&ct).unwrap(), m);
        }
    }

    #[test]
    fn decrypting_with_wrong_type_tag_gives_garbage() {
        let (delegator, params, mut rng) = setup();
        let m = params.random_gt(&mut rng);
        let ct = delegator.encrypt_typed(&m, &TypeTag::new("t1"), &mut rng);
        // Tamper with the type tag: the decryption exponent changes.
        let mut tampered = ct.clone();
        tampered.type_tag = TypeTag::new("t2");
        assert_ne!(delegator.decrypt_typed(&tampered).unwrap(), m);
    }

    #[test]
    fn type_exponents_are_distinct_per_type() {
        let (delegator, _params, _rng) = setup();
        let e1 = delegator.type_exponent(&TypeTag::new("t1"));
        let e2 = delegator.type_exponent(&TypeTag::new("t2"));
        let e1_again = delegator.type_exponent(&TypeTag::new("t1"));
        assert_ne!(e1, e2);
        assert_eq!(e1, e1_again);
        assert!(!e1.is_zero());
    }

    #[test]
    fn ciphertexts_are_randomised() {
        let (delegator, params, mut rng) = setup();
        let t = TypeTag::new("t");
        let m = params.random_gt(&mut rng);
        let c1 = delegator.encrypt_typed(&m, &t, &mut rng);
        let c2 = delegator.encrypt_typed(&m, &t, &mut rng);
        assert_ne!(c1, c2);
    }

    #[test]
    fn serialization_round_trip() {
        let (delegator, params, mut rng) = setup();
        let t = TypeTag::new("illness-history");
        let m = params.random_gt(&mut rng);
        let ct = delegator.encrypt_typed(&m, &t, &mut rng);
        let bytes = ct.to_bytes();
        assert_eq!(
            bytes.len(),
            TypedCiphertext::serialized_len(&params, t.as_bytes().len())
        );
        let parsed = TypedCiphertext::from_bytes(&params, &bytes).unwrap();
        assert_eq!(parsed, ct);
        assert_eq!(delegator.decrypt_typed(&parsed).unwrap(), m);
        // Corrupted encodings are rejected.
        assert!(TypedCiphertext::from_bytes(&params, &bytes[..10]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(TypedCiphertext::from_bytes(&params, &longer).is_err());
    }

    #[test]
    fn another_user_cannot_impersonate_the_delegator() {
        // A second user in the same domain cannot create ciphertexts that the
        // delegator would decrypt to the intended message, because Encrypt1
        // requires the delegator's own private key.
        let mut rng = StdRng::seed_from_u64(52);
        let params = PairingParams::insecure_toy();
        let kgc = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let alice = Identity::new("alice");
        let mallory = Identity::new("mallory");
        let alice_delegator = Delegator::new(kgc.public_params().clone(), kgc.extract(&alice));
        let mallory_delegator = Delegator::new(kgc.public_params().clone(), kgc.extract(&mallory));
        let m = params.random_gt(&mut rng);
        let forged = mallory_delegator.encrypt_typed(&m, &TypeTag::new("t"), &mut rng);
        // Alice's decryption of Mallory's ciphertext does not yield m.
        assert_ne!(alice_delegator.decrypt_typed(&forged).unwrap(), m);
    }

    #[test]
    fn rekey_generation_requires_shared_parameters() {
        let (delegator, _params, mut rng) = setup();
        // A domain over *different* pairing parameters must be rejected.
        let mut other_rng = StdRng::seed_from_u64(53);
        let other_params =
            PairingParams::generate(tibpre_pairing::SecurityLevel::Toy, &mut other_rng).unwrap();
        let other_kgc = Kgc::setup(other_params, "foreign", &mut other_rng);
        let result = delegator.make_reencryption_key(
            &Identity::new("bob"),
            other_kgc.public_params(),
            &TypeTag::new("t"),
            &mut rng,
        );
        assert_eq!(result.unwrap_err(), PreError::IncompatibleDomains);
    }
}
