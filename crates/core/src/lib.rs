//! # tibpre-core — the type-and-identity-based proxy re-encryption scheme
//!
//! This crate implements the primary contribution of
//! *"A Type-and-Identity-based Proxy Re-Encryption Scheme and its Application
//! in Healthcare"* (Ibraimi, Tang, Hartel, Jonker; Secure Data Management
//! workshop at VLDB 2008): a proxy re-encryption scheme in which the delegator
//! tags every ciphertext with a **type** and can hand a proxy a re-encryption
//! key that converts ciphertexts of *that type only* for a chosen delegatee —
//! all with a single key pair.
//!
//! ## The scheme (Section 4 of the paper)
//!
//! The delegator (identity `id_i`, registered at `KGC1`) categorises messages
//! into types `t` and encrypts to himself with
//!
//! ```text
//! Encrypt1(m, t, id_i):  r ∈R Z_q^*,
//!     c = ( g^r,  m · ê(pk_idi, pk₁)^{ r · H2(sk_idi ‖ t) },  t )
//! ```
//!
//! Note that `Encrypt1` uses the delegator's own *private* key inside `H2`, so
//! nobody else can create ciphertexts of a given type under his identity, and
//! each type effectively lives under an independent "virtual key"
//! `H2(sk_idi ‖ t)` — this is what makes per-type delegation possible without
//! per-type key pairs.
//!
//! To delegate type `t` to a delegatee (identity `id_j`, registered at `KGC2`,
//! sharing the pairing parameters), the delegator runs
//!
//! ```text
//! Pextract(id_i, id_j, t, sk_idi):  X ∈R G_1,
//!     rk_{i→j} = ( t,  sk_idi^{ −H2(sk_idi ‖ t) } · H1(X),  Encrypt2(X, id_j) )
//! ```
//!
//! and gives `rk` to a proxy.  The proxy converts a type-`t` ciphertext with
//!
//! ```text
//! Preenc(c, rk):  c' = ( c1,  c2 · ê(c1, rk₂),  Encrypt2(X, id_j) )
//! ```
//!
//! after which the mask collapses to `ê(g^r, H1(X))` and the delegatee recovers
//! `m = c'₂ / ê(c'₁, H1(Decrypt2(c'₃, sk_idj)))` — without ever talking to the
//! delegator and without the proxy learning anything about `m`.
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | [`TypeTag`] — the message categories (`t`) |
//! | [`delegator`] | [`Delegator`], [`TypedCiphertext`] — `Encrypt1` / `Decrypt1` |
//! | [`rekey`] | [`ReEncryptionKey`] — `Pextract` output |
//! | [`proxy`] | [`Proxy`], [`ReEncryptedCiphertext`] — `Preenc` |
//! | [`delegatee`] | [`Delegatee`] — decryption of re-encrypted ciphertexts |
//! | [`hybrid`] | KEM/DEM mode for byte payloads (PHR records) |
//! | [`baseline`] | comparison schemes: identity-only PRE, per-type virtual identities, plain IBE |
//! | [`game`] | executable IND-ID-DR-CPA security game (Section 4.2/4.3) |
//! | [`sizes`] | key / ciphertext size accounting for the communication-cost experiment |
//!
//! ## Quick start
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use tibpre_core::{Delegatee, Delegator, Proxy, TypeTag};
//! use tibpre_ibe::{Identity, Kgc};
//! use tibpre_pairing::PairingParams;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let params = PairingParams::insecure_toy();
//!
//! // Two domains sharing the pairing parameters (the paper's KGC1 / KGC2).
//! let kgc1 = Kgc::setup(params.clone(), "patients", &mut rng);
//! let kgc2 = Kgc::setup(params.clone(), "clinicians", &mut rng);
//!
//! // Alice (delegator) and her cardiologist (delegatee).
//! let alice = Identity::new("alice@phr.example");
//! let cardiologist = Identity::new("dr.smith@heart-clinic.example");
//! let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
//! let delegatee = Delegatee::new(kgc2.extract(&cardiologist));
//!
//! // Alice encrypts a message of type "illness-history" to herself.
//! let illness = TypeTag::new("illness-history");
//! let m = params.random_gt(&mut rng);
//! let ct = delegator.encrypt_typed(&m, &illness, &mut rng);
//!
//! // She delegates that type (and only that type) through a proxy.
//! let rk = delegator
//!     .make_reencryption_key(&cardiologist, kgc2.public_params(), &illness, &mut rng)
//!     .unwrap();
//! let proxy = Proxy::new("hospital-gateway");
//! let transformed = proxy.re_encrypt(&ct, &rk).unwrap();
//!
//! // The cardiologist decrypts with his own key — Alice stayed offline.
//! assert_eq!(delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod delegatee;
pub mod delegator;
pub mod error;
pub mod game;
pub mod hybrid;
pub mod proxy;
pub mod rekey;
pub mod sizes;
pub mod types;

pub use delegatee::Delegatee;
pub use delegator::{Delegator, TypedCiphertext};
pub use error::PreError;
pub use hybrid::{HybridCiphertext, ReEncryptedHybridCiphertext};
pub use proxy::{Proxy, ReEncryptedCiphertext};
pub use rekey::ReEncryptionKey;
pub use types::TypeTag;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, PreError>;

/// Domain-separation tag of the paper's `H2 : {0,1}* → Z_q^*` oracle
/// (the per-type exponent `H2(sk_id ‖ t)`).
pub const H2_DOMAIN: &str = "TIBPRE-H2";
