//! The proxy role: re-encryption (`Preenc`) and re-encryption-key management.

use crate::delegator::TypedCiphertext;
use crate::rekey::ReEncryptionKey;
use crate::types::TypeTag;
use crate::{PreError, Result};
use std::collections::HashMap;
use std::sync::Arc;
use tibpre_ibe::{bf::IbeCiphertext, Identity};
use tibpre_pairing::{wire as pairing_wire, DecodeCtx, G1Affine, Gt, PairingParams};
use tibpre_wire::{DecodeError, Reader, WireDecode, WireEncode, Writer};

/// A re-encrypted ciphertext `(c1, c2·ê(c1, rk₂), Encrypt2(X, id_j))`.
///
/// After `Preenc` the mask has collapsed to `ê(g^r, H1(X))`: the ciphertext no
/// longer depends on the delegator's key at all, only on the random `X` that is
/// itself encrypted to the delegatee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReEncryptedCiphertext {
    /// `c'1 = c1 = g^r`.
    pub c1: G1Affine,
    /// `c'2 = m · ê(g^r, H1(X))`.
    pub c2: Gt,
    /// `c'3 = Encrypt2(X, id_j)`.
    pub encrypted_x: IbeCiphertext,
    /// The message type, carried along for bookkeeping (the delegatee does not
    /// need it for decryption).
    pub type_tag: TypeTag,
    /// The intended delegatee (bookkeeping; the ciphertext only opens under
    /// this identity's key anyway).
    pub delegatee: Identity,
}

impl ReEncryptedCiphertext {
    /// Serializes under the default versioned envelope:
    /// `c1 ‖ c2 ‖ encrypted_x ‖ type_len ‖ type ‖ delegatee_len ‖ delegatee`
    /// (group elements compressed in `v1`).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes()
    }

    /// Parses the serialization produced by [`Self::to_bytes`], rejecting
    /// unknown versions and trailing bytes.
    pub fn from_bytes(params: &Arc<PairingParams>, bytes: &[u8]) -> Result<Self> {
        Ok(Self::from_wire_bytes(bytes, &DecodeCtx::from(params))?)
    }
}

impl WireEncode for ReEncryptedCiphertext {
    fn encode(&self, w: &mut Writer) {
        self.c1.encode(w);
        self.c2.encode(w);
        self.encrypted_x.encode(w);
        w.put_bytes(self.type_tag.as_bytes());
        w.put_bytes(self.delegatee.as_bytes());
    }
}

impl WireDecode for ReEncryptedCiphertext {
    type Ctx = DecodeCtx;

    /// Validates `c1` against the curve and the prime-order subgroup
    /// (slightly stricter than the legacy parser, which skipped the
    /// subgroup check here); `c2` is range/torus-validated only.
    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> core::result::Result<Self, DecodeError> {
        let c1 =
            pairing_wire::decode_g1_in_subgroup(r, ctx, "c1 outside the prime-order subgroup")?;
        let c2 = Gt::decode(r, ctx.fp_ctx())?;
        let encrypted_x = IbeCiphertext::decode(r, ctx)?;
        let type_tag = TypeTag::from_bytes(r.bytes()?.to_vec());
        let delegatee = Identity::from_bytes(r.bytes()?.to_vec());
        Ok(ReEncryptedCiphertext {
            c1,
            c2,
            encrypted_x,
            type_tag,
            delegatee,
        })
    }
}

/// Validates a batch's type tags against a re-encryption key *before* any
/// pairing work, so a mixed batch fails atomically with no partial output.
///
/// This is the single validation the sequential batch APIs
/// ([`re_encrypt_batch`], [`crate::hybrid::re_encrypt_hybrid_batch`]) and the
/// parallel engine (`tibpre-engine`) all share; the returned error is the one
/// for the lowest offending index, matching a sequential scan.
pub fn validate_batch_types<'a, I>(type_tags: I, rekey: &ReEncryptionKey) -> Result<()>
where
    I: IntoIterator<Item = &'a TypeTag>,
{
    for tag in type_tags {
        if tag != rekey.type_tag() {
            return Err(PreError::TypeMismatch {
                ciphertext_type: tag.display(),
                key_type: rekey.type_tag().display(),
            });
        }
    }
    Ok(())
}

/// `Preenc(c, rk)`: converts one typed ciphertext with one re-encryption key.
///
/// The proxy refuses to convert a ciphertext whose type does not match the
/// key's type — and even a malicious proxy that skipped this check would only
/// produce garbage, because the key algebraically cancels the wrong exponent.
pub fn re_encrypt(
    ciphertext: &TypedCiphertext,
    rekey: &ReEncryptionKey,
) -> Result<ReEncryptedCiphertext> {
    if ciphertext.type_tag != *rekey.type_tag() {
        return Err(PreError::TypeMismatch {
            ciphertext_type: ciphertext.type_tag.display(),
            key_type: rekey.type_tag().display(),
        });
    }
    // c'2 = c2 · ê(c1, rk₂), through the Miller loop prepared for the fixed
    // rk₂ (tabulated on the key's first use, then shared).
    let adjustment = rekey.prepared_rk_point().pairing(&ciphertext.c1);
    let c2 = ciphertext.c2.mul(&adjustment);
    Ok(ReEncryptedCiphertext {
        c1: ciphertext.c1.clone(),
        c2,
        encrypted_x: rekey.encrypted_x().clone(),
        type_tag: ciphertext.type_tag.clone(),
        delegatee: rekey.delegatee().clone(),
    })
}

/// `Preenc` over a whole batch of same-type ciphertexts with one key.
///
/// The conversion is atomic with respect to validation: every ciphertext's
/// type is checked against the key *before* any pairing work happens, so a
/// mixed batch fails without partial output.  The key's Miller-loop
/// tabulation (and the one-time pairing preparation it implies) is shared by
/// the whole batch — per ciphertext only the stored lines are evaluated,
/// which is what makes proxy-scale bursts cheap.  Results are bit-identical
/// to calling [`re_encrypt`] one ciphertext at a time.
///
/// This function is single-threaded by design (it is the oracle the parallel
/// paths are tested against); `tibpre-engine`'s `ReEncryptEngine` provides
/// the drop-in multi-core variant with identical semantics and output.
pub fn re_encrypt_batch(
    ciphertexts: &[TypedCiphertext],
    rekey: &ReEncryptionKey,
) -> Result<Vec<ReEncryptedCiphertext>> {
    validate_batch_types(ciphertexts.iter().map(|ct| &ct.type_tag), rekey)?;
    let refs: Vec<&TypedCiphertext> = ciphertexts.iter().collect();
    Ok(re_encrypt_validated_batch(&refs, rekey))
}

/// The shared batched conversion behind [`re_encrypt_batch`],
/// [`crate::hybrid::re_encrypt_hybrid_batch`], and the parallel engine's
/// per-chunk jobs: one stored-line Miller loop per ciphertext against the
/// key's shared tabulation, then one *batched* final exponentiation whose
/// easy-part inversions collapse into a single GCD — bit-identical to the
/// per-item [`re_encrypt`] path, which stays alive as the oracle.
///
/// Callers **must** have validated the type tags with
/// [`validate_batch_types`] already (the engine validates the whole batch
/// once, before fanning chunks out); feeding an unvalidated mixed batch
/// produces algebraic garbage rather than an error, exactly like relabelling
/// a ciphertext to bypass [`re_encrypt`]'s check.
pub fn re_encrypt_validated_batch(
    ciphertexts: &[&TypedCiphertext],
    rekey: &ReEncryptionKey,
) -> Vec<ReEncryptedCiphertext> {
    let prepared = rekey.prepared_rk_point();
    let c1s: Vec<&G1Affine> = ciphertexts.iter().map(|ct| &ct.c1).collect();
    let adjustments = prepared.pairing_batch(&c1s);
    ciphertexts
        .iter()
        .zip(adjustments)
        .map(|(ciphertext, adjustment)| ReEncryptedCiphertext {
            c1: ciphertext.c1.clone(),
            c2: ciphertext.c2.mul(&adjustment),
            encrypted_x: rekey.encrypted_x().clone(),
            type_tag: ciphertext.type_tag.clone(),
            delegatee: rekey.delegatee().clone(),
        })
        .collect()
}

/// A stateful proxy service holding re-encryption keys for many
/// (delegator, type, delegatee) triples.
///
/// This models the semi-trusted party of the paper's threat model: it converts
/// ciphertexts honestly using the keys it was given, and the scheme guarantees
/// that even a corrupted proxy learns nothing about the plaintexts and cannot
/// convert types it holds no key for.
pub struct Proxy {
    name: String,
    keys: HashMap<ProxyKeyIndex, ReEncryptionKey>,
}

/// The lookup index of an installed re-encryption key:
/// serialized (delegator identity, type tag, delegatee identity).
type ProxyKeyIndex = (Vec<u8>, Vec<u8>, Vec<u8>);

impl Proxy {
    /// Creates an empty proxy service.
    pub fn new(name: impl AsRef<str>) -> Self {
        Proxy {
            name: name.as_ref().to_string(),
            keys: HashMap::new(),
        }
    }

    /// The proxy's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Installs a re-encryption key.  Replaces any previous key for the same
    /// (delegator, type, delegatee) triple and returns the old one.
    pub fn install_key(&mut self, key: ReEncryptionKey) -> Option<ReEncryptionKey> {
        self.keys.insert(Self::index_of(&key), key)
    }

    /// Removes (revokes) the key for one (delegator, type, delegatee) triple.
    pub fn revoke_key(
        &mut self,
        delegator: &Identity,
        type_tag: &TypeTag,
        delegatee: &Identity,
    ) -> Option<ReEncryptionKey> {
        self.keys.remove(&(
            delegator.as_bytes().to_vec(),
            type_tag.as_bytes().to_vec(),
            delegatee.as_bytes().to_vec(),
        ))
    }

    /// Number of installed keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// All installed keys (e.g. what an adversary obtains when the proxy is compromised).
    pub fn installed_keys(&self) -> impl Iterator<Item = &ReEncryptionKey> {
        self.keys.values()
    }

    /// Looks up the installed key for one (delegator, type, delegatee) triple.
    pub fn key_for(
        &self,
        delegator: &Identity,
        type_tag: &TypeTag,
        delegatee: &Identity,
    ) -> Option<&ReEncryptionKey> {
        self.keys.get(&(
            delegator.as_bytes().to_vec(),
            type_tag.as_bytes().to_vec(),
            delegatee.as_bytes().to_vec(),
        ))
    }

    /// Returns `true` if a key for the triple is installed.
    pub fn has_key(&self, delegator: &Identity, type_tag: &TypeTag, delegatee: &Identity) -> bool {
        self.key_for(delegator, type_tag, delegatee).is_some()
    }

    /// Stateless conversion with an explicit key (does not need the key to be installed).
    pub fn re_encrypt(
        &self,
        ciphertext: &TypedCiphertext,
        rekey: &ReEncryptionKey,
    ) -> Result<ReEncryptedCiphertext> {
        re_encrypt(ciphertext, rekey)
    }

    /// Converts a whole batch of same-type ciphertexts for the given
    /// delegatee using one installed key (looked up from the first
    /// ciphertext's type), amortising the key's pairing precomputation across
    /// the batch.  An empty batch yields an empty result; a batch whose types
    /// disagree fails atomically with no partial output.
    pub fn reencrypt_batch(
        &self,
        ciphertexts: &[TypedCiphertext],
        delegator: &Identity,
        delegatee: &Identity,
    ) -> Result<Vec<ReEncryptedCiphertext>> {
        let Some(first) = ciphertexts.first() else {
            return Ok(Vec::new());
        };
        let key = self
            .key_for(delegator, &first.type_tag, delegatee)
            .ok_or(PreError::NoMatchingKey)?;
        re_encrypt_batch(ciphertexts, key)
    }

    /// Converts a ciphertext for the given delegatee using an installed key.
    pub fn re_encrypt_for(
        &self,
        ciphertext: &TypedCiphertext,
        delegator: &Identity,
        delegatee: &Identity,
    ) -> Result<ReEncryptedCiphertext> {
        let key = self
            .keys
            .get(&(
                delegator.as_bytes().to_vec(),
                ciphertext.type_tag.as_bytes().to_vec(),
                delegatee.as_bytes().to_vec(),
            ))
            .ok_or(PreError::NoMatchingKey)?;
        re_encrypt(ciphertext, key)
    }

    fn index_of(key: &ReEncryptionKey) -> ProxyKeyIndex {
        (
            key.delegator().as_bytes().to_vec(),
            key.type_tag().as_bytes().to_vec(),
            key.delegatee().as_bytes().to_vec(),
        )
    }
}

impl core::fmt::Debug for Proxy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Proxy(name={}, keys={})", self.name, self.keys.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegatee::Delegatee;
    use crate::delegator::Delegator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_ibe::Kgc;

    struct Fixture {
        params: Arc<PairingParams>,
        delegator: Delegator,
        delegatee_id: Identity,
        delegatee: Delegatee,
        kgc2_pp: tibpre_ibe::IbePublicParams,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(71);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        Fixture {
            params: params.clone(),
            delegator: Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice)),
            delegatee_id: bob.clone(),
            delegatee: Delegatee::new(kgc2.extract(&bob)),
            kgc2_pp: kgc2.public_params().clone(),
            rng,
        }
    }

    #[test]
    fn full_delegation_round_trip() {
        let mut f = fixture();
        let t = TypeTag::new("illness-history");
        let m = f.params.random_gt(&mut f.rng);
        let ct = f.delegator.encrypt_typed(&m, &t, &mut f.rng);
        let rk = f
            .delegator
            .make_reencryption_key(&f.delegatee_id, &f.kgc2_pp, &t, &mut f.rng)
            .unwrap();
        let transformed = re_encrypt(&ct, &rk).unwrap();
        assert_eq!(transformed.type_tag, t);
        assert_eq!(transformed.delegatee, f.delegatee_id);
        assert_eq!(f.delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
    }

    #[test]
    fn type_mismatch_is_refused() {
        let mut f = fixture();
        let m = f.params.random_gt(&mut f.rng);
        let ct = f
            .delegator
            .encrypt_typed(&m, &TypeTag::new("diet"), &mut f.rng);
        let rk = f
            .delegator
            .make_reencryption_key(
                &f.delegatee_id,
                &f.kgc2_pp,
                &TypeTag::new("illness-history"),
                &mut f.rng,
            )
            .unwrap();
        match re_encrypt(&ct, &rk) {
            Err(PreError::TypeMismatch { .. }) => {}
            other => panic!("expected a type mismatch, got {other:?}"),
        }
    }

    #[test]
    fn forcing_a_wrong_type_key_yields_garbage() {
        // Even if a malicious proxy relabels the ciphertext to bypass the type
        // check, the algebra does not cooperate: the delegatee gets garbage.
        let mut f = fixture();
        let m = f.params.random_gt(&mut f.rng);
        let mut ct = f
            .delegator
            .encrypt_typed(&m, &TypeTag::new("diet"), &mut f.rng);
        let rk = f
            .delegator
            .make_reencryption_key(
                &f.delegatee_id,
                &f.kgc2_pp,
                &TypeTag::new("illness-history"),
                &mut f.rng,
            )
            .unwrap();
        ct.type_tag = TypeTag::new("illness-history"); // adversarial relabel
        let transformed = re_encrypt(&ct, &rk).unwrap();
        assert_ne!(f.delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
    }

    #[test]
    fn batch_reencryption_is_bit_identical_to_per_item() {
        let mut f = fixture();
        let t = TypeTag::new("illness-history");
        let rk = f
            .delegator
            .make_reencryption_key(&f.delegatee_id, &f.kgc2_pp, &t, &mut f.rng)
            .unwrap();
        let messages: Vec<Gt> = (0..5).map(|_| f.params.random_gt(&mut f.rng)).collect();
        let cts: Vec<TypedCiphertext> = messages
            .iter()
            .map(|m| f.delegator.encrypt_typed(m, &t, &mut f.rng))
            .collect();
        let batch = re_encrypt_batch(&cts, &rk).unwrap();
        assert_eq!(batch.len(), cts.len());
        for ((got, ct), m) in batch.iter().zip(&cts).zip(&messages) {
            let single = re_encrypt(ct, &rk).unwrap();
            assert_eq!(got.to_bytes(), single.to_bytes());
            assert_eq!(&f.delegatee.decrypt_reencrypted(got).unwrap(), m);
        }
        assert!(re_encrypt_batch(&[], &rk).unwrap().is_empty());

        // A mixed batch fails atomically, reporting the mismatching type.
        let mut mixed = cts;
        mixed[3].type_tag = TypeTag::new("diet");
        match re_encrypt_batch(&mixed, &rk) {
            Err(PreError::TypeMismatch { .. }) => {}
            other => panic!("expected a type mismatch, got {other:?}"),
        }
    }

    #[test]
    fn proxy_key_store_lookup_and_revocation() {
        let mut f = fixture();
        let t = TypeTag::new("emergency");
        let rk = f
            .delegator
            .make_reencryption_key(&f.delegatee_id, &f.kgc2_pp, &t, &mut f.rng)
            .unwrap();
        let mut proxy = Proxy::new("gateway");
        assert_eq!(proxy.key_count(), 0);
        assert!(proxy.install_key(rk.clone()).is_none());
        assert_eq!(proxy.key_count(), 1);

        let m = f.params.random_gt(&mut f.rng);
        let ct = f.delegator.encrypt_typed(&m, &t, &mut f.rng);
        let out = proxy
            .re_encrypt_for(&ct, f.delegator.identity(), &f.delegatee_id)
            .unwrap();
        assert_eq!(f.delegatee.decrypt_reencrypted(&out).unwrap(), m);

        // No key for another type.
        let other_ct = f
            .delegator
            .encrypt_typed(&m, &TypeTag::new("diet"), &mut f.rng);
        assert_eq!(
            proxy
                .re_encrypt_for(&other_ct, f.delegator.identity(), &f.delegatee_id)
                .unwrap_err(),
            PreError::NoMatchingKey
        );

        // Revocation removes the capability.
        assert!(proxy
            .revoke_key(f.delegator.identity(), &t, &f.delegatee_id)
            .is_some());
        assert_eq!(
            proxy
                .re_encrypt_for(&ct, f.delegator.identity(), &f.delegatee_id)
                .unwrap_err(),
            PreError::NoMatchingKey
        );
        assert_eq!(proxy.key_count(), 0);
    }

    #[test]
    fn reencrypted_ciphertext_serialization_round_trip() {
        let mut f = fixture();
        let t = TypeTag::new("illness-history");
        let m = f.params.random_gt(&mut f.rng);
        let ct = f.delegator.encrypt_typed(&m, &t, &mut f.rng);
        let rk = f
            .delegator
            .make_reencryption_key(&f.delegatee_id, &f.kgc2_pp, &t, &mut f.rng)
            .unwrap();
        let transformed = re_encrypt(&ct, &rk).unwrap();
        let bytes = transformed.to_bytes();
        let parsed = ReEncryptedCiphertext::from_bytes(&f.params, &bytes).unwrap();
        assert_eq!(parsed, transformed);
        assert_eq!(f.delegatee.decrypt_reencrypted(&parsed).unwrap(), m);
        assert!(ReEncryptedCiphertext::from_bytes(&f.params, &bytes[..12]).is_err());
        let mut longer = bytes;
        longer.push(7);
        assert!(ReEncryptedCiphertext::from_bytes(&f.params, &longer).is_err());
    }

    #[test]
    fn reencryption_does_not_help_other_delegatees() {
        // A ciphertext re-encrypted for Bob is useless to Carol.
        let mut f = fixture();
        let carol_kgc = Kgc::setup(f.params.clone(), "kgc3", &mut f.rng);
        let carol = Delegatee::new(carol_kgc.extract(&Identity::new("carol")));
        let t = TypeTag::new("illness-history");
        let m = f.params.random_gt(&mut f.rng);
        let ct = f.delegator.encrypt_typed(&m, &t, &mut f.rng);
        let rk = f
            .delegator
            .make_reencryption_key(&f.delegatee_id, &f.kgc2_pp, &t, &mut f.rng)
            .unwrap();
        let transformed = re_encrypt(&ct, &rk).unwrap();
        assert_ne!(carol.decrypt_reencrypted(&transformed).unwrap(), m);
    }
}
