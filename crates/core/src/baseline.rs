//! Baseline schemes the paper argues against, implemented for comparison.
//!
//! Section 1.1 and Section 5 of the paper motivate the type-based scheme by
//! contrasting it with what was available at the time:
//!
//! 1. **Identity-based PRE without types** ([`identity_pre`], in the style of
//!    Green–Ateniese): a single re-encryption key converts *every* ciphertext
//!    of the delegator, so a corrupted proxy (or a delegatee the proxy
//!    colludes with) exposes the delegator's entire archive.
//! 2. **One key pair per category** ([`multikey`]): fine-grained control is
//!    recovered by giving the delegator a separate (virtual) identity per
//!    category, at the cost of managing `T` private keys instead of one.
//! 3. **Plain IBE, no delegation** (just `tibpre-ibe`): the delegator must be
//!    online and decrypt every request himself.
//!
//! The benchmark harness (experiments E2, E3 and E6) quantifies these
//! comparisons; the types here expose exactly the operations those experiments
//! need.

use crate::proxy::ReEncryptedCiphertext;
use crate::types::TypeTag;
use crate::{PreError, Result};
use rand::{CryptoRng, RngCore};
use std::collections::HashMap;
use std::sync::Arc;
use tibpre_ibe::{bf, IbePrivateKey, IbePublicParams, Identity, Kgc, H1_DOMAIN};
use tibpre_pairing::{Gt, PairingParams};

/// Identity-based proxy re-encryption **without** types (Green–Ateniese style).
pub mod identity_pre {
    use super::*;

    /// A re-encryption key that converts *all* of the delegator's ciphertexts.
    #[derive(Clone, Debug)]
    pub struct IdentityReKey {
        delegator: Identity,
        delegatee: Identity,
        rk_point: tibpre_pairing::G1Affine,
        encrypted_x: bf::IbeCiphertext,
        params: Arc<PairingParams>,
    }

    impl IdentityReKey {
        /// The delegator this key re-encrypts from.
        pub fn delegator(&self) -> &Identity {
            &self.delegator
        }

        /// The delegatee this key re-encrypts to.
        pub fn delegatee(&self) -> &Identity {
            &self.delegatee
        }
    }

    /// The delegator role of the identity-only baseline.
    pub struct IdentityPreDelegator {
        domain: IbePublicParams,
        private_key: IbePrivateKey,
    }

    impl IdentityPreDelegator {
        /// Binds the delegator to his domain and private key.
        pub fn new(domain: IbePublicParams, private_key: IbePrivateKey) -> Self {
            IdentityPreDelegator {
                domain,
                private_key,
            }
        }

        /// The delegator's identity.
        pub fn identity(&self) -> &Identity {
            self.private_key.identity()
        }

        /// The shared pairing parameters.
        pub fn params(&self) -> &Arc<PairingParams> {
            self.domain.pairing()
        }

        /// Standard Boneh–Franklin encryption to the delegator himself
        /// (no type tag — that is the point of this baseline).
        pub fn encrypt<R: RngCore + CryptoRng>(
            &self,
            message: &Gt,
            rng: &mut R,
        ) -> bf::IbeCiphertext {
            bf::encrypt_gt(&self.domain, self.identity(), message, rng)
        }

        /// Direct decryption by the delegator.
        pub fn decrypt(&self, ciphertext: &bf::IbeCiphertext) -> Result<Gt> {
            Ok(bf::decrypt_gt(&self.private_key, ciphertext)?)
        }

        /// Creates the single re-encryption key
        /// `rk = (sk_i^{-1} · H1(X), Encrypt2(X, id_j))` that converts **all**
        /// of the delegator's ciphertexts for the delegatee.
        pub fn make_reencryption_key<R: RngCore + CryptoRng>(
            &self,
            delegatee: &Identity,
            delegatee_domain: &IbePublicParams,
            rng: &mut R,
        ) -> Result<IdentityReKey> {
            if !self.domain.shares_parameters_with(delegatee_domain) {
                return Err(PreError::IncompatibleDomains);
            }
            let params = self.params();
            let x = params.random_gt(rng);
            let encrypted_x = bf::encrypt_gt(delegatee_domain, delegatee, &x, rng);
            let h1_of_x = params.hash_to_g1(H1_DOMAIN, &[&x.to_bytes()])?;
            // Exponent −1: the proxy will cancel the whole mask, not a typed one.
            let rk_point = self.private_key.key().neg().add(&h1_of_x);
            Ok(IdentityReKey {
                delegator: self.identity().clone(),
                delegatee: delegatee.clone(),
                rk_point,
                encrypted_x,
                params: Arc::clone(params),
            })
        }
    }

    /// Proxy conversion: `c'2 = c2 · ê(c1, rk)`.
    ///
    /// The output re-uses [`ReEncryptedCiphertext`] (with a wildcard type tag)
    /// so the delegatee-side decryption is shared with the typed scheme.
    pub fn re_encrypt(
        ciphertext: &bf::IbeCiphertext,
        rekey: &IdentityReKey,
    ) -> ReEncryptedCiphertext {
        let adjustment = rekey.params.pairing(&ciphertext.c1, &rekey.rk_point);
        ReEncryptedCiphertext {
            c1: ciphertext.c1.clone(),
            c2: ciphertext.c2.mul(&adjustment),
            encrypted_x: rekey.encrypted_x.clone(),
            type_tag: TypeTag::new("*"),
            delegatee: rekey.delegatee.clone(),
        }
    }
}

/// The "one key pair per category" baseline: the delegator registers a
/// *virtual identity* `id ‖ '#' ‖ t` per type and manages one private key per
/// type.
pub mod multikey {
    use super::*;

    /// The delegator role of the per-type-identity baseline.
    pub struct MultiKeyDelegator {
        domain: IbePublicParams,
        base_identity: Identity,
        per_type_keys: HashMap<Vec<u8>, IbePrivateKey>,
    }

    impl MultiKeyDelegator {
        /// Creates a delegator with no per-type keys yet.
        pub fn new(domain: IbePublicParams, base_identity: Identity) -> Self {
            MultiKeyDelegator {
                domain,
                base_identity,
                per_type_keys: HashMap::new(),
            }
        }

        /// The virtual identity used for one type.
        pub fn virtual_identity(&self, type_tag: &TypeTag) -> Identity {
            let mut bytes = self.base_identity.as_bytes().to_vec();
            bytes.push(b'#');
            bytes.extend_from_slice(type_tag.as_bytes());
            Identity::from_bytes(bytes)
        }

        /// Registers a type by extracting (from the KGC) and storing the key of
        /// its virtual identity.  This is the key-management cost the paper's
        /// scheme avoids.
        pub fn register_type(&mut self, kgc: &Kgc, type_tag: &TypeTag) {
            let vid = self.virtual_identity(type_tag);
            self.per_type_keys
                .insert(type_tag.as_bytes().to_vec(), kgc.extract(&vid));
        }

        /// Number of private keys the delegator must store.
        pub fn stored_key_count(&self) -> usize {
            self.per_type_keys.len()
        }

        /// Total size of the stored private-key material, in bytes.
        pub fn stored_key_bytes(&self) -> usize {
            self.per_type_keys
                .values()
                .map(|k| k.to_bytes().len())
                .sum()
        }

        /// Encrypts a message under the virtual identity of the given type.
        pub fn encrypt<R: RngCore + CryptoRng>(
            &self,
            message: &Gt,
            type_tag: &TypeTag,
            rng: &mut R,
        ) -> bf::IbeCiphertext {
            bf::encrypt_gt(&self.domain, &self.virtual_identity(type_tag), message, rng)
        }

        /// Direct decryption (requires the per-type key to be registered).
        pub fn decrypt(&self, ciphertext: &bf::IbeCiphertext, type_tag: &TypeTag) -> Result<Gt> {
            let key = self
                .per_type_keys
                .get(type_tag.as_bytes())
                .ok_or(PreError::NoMatchingKey)?;
            Ok(bf::decrypt_gt(key, ciphertext)?)
        }

        /// Per-type delegation: an identity-PRE re-encryption key for the
        /// virtual identity of `type_tag`.
        pub fn make_reencryption_key<R: RngCore + CryptoRng>(
            &self,
            delegatee: &Identity,
            delegatee_domain: &IbePublicParams,
            type_tag: &TypeTag,
            rng: &mut R,
        ) -> Result<identity_pre::IdentityReKey> {
            let key = self
                .per_type_keys
                .get(type_tag.as_bytes())
                .ok_or(PreError::NoMatchingKey)?;
            let inner = identity_pre::IdentityPreDelegator::new(self.domain.clone(), key.clone());
            inner.make_reencryption_key(delegatee, delegatee_domain, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegatee::Delegatee;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn domains() -> (Kgc, Kgc, Arc<PairingParams>, StdRng) {
        let mut rng = StdRng::seed_from_u64(101);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        (kgc1, kgc2, params, rng)
    }

    #[test]
    fn identity_pre_round_trip() {
        let (kgc1, kgc2, params, mut rng) = domains();
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let delegator = identity_pre::IdentityPreDelegator::new(
            kgc1.public_params().clone(),
            kgc1.extract(&alice),
        );
        let delegatee = Delegatee::new(kgc2.extract(&bob));
        let m = params.random_gt(&mut rng);
        let ct = delegator.encrypt(&m, &mut rng);
        assert_eq!(delegator.decrypt(&ct).unwrap(), m);
        let rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &mut rng)
            .unwrap();
        let transformed = identity_pre::re_encrypt(&ct, &rk);
        assert_eq!(delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
    }

    #[test]
    fn identity_pre_key_converts_everything() {
        // The coarse-grained property the paper criticises: one key converts
        // every ciphertext of the delegator, whatever its category.
        let (kgc1, kgc2, params, mut rng) = domains();
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let delegator = identity_pre::IdentityPreDelegator::new(
            kgc1.public_params().clone(),
            kgc1.extract(&alice),
        );
        let delegatee = Delegatee::new(kgc2.extract(&bob));
        let rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &mut rng)
            .unwrap();
        for _ in 0..5 {
            let m = params.random_gt(&mut rng);
            let ct = delegator.encrypt(&m, &mut rng);
            let transformed = identity_pre::re_encrypt(&ct, &rk);
            assert_eq!(delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
        }
    }

    #[test]
    fn multikey_round_trip_and_key_count() {
        let (kgc1, kgc2, params, mut rng) = domains();
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let mut delegator =
            multikey::MultiKeyDelegator::new(kgc1.public_params().clone(), alice.clone());
        let delegatee = Delegatee::new(kgc2.extract(&bob));

        let types: Vec<TypeTag> = ["illness", "diet", "emergency"]
            .iter()
            .map(|l| TypeTag::new(*l))
            .collect();
        for t in &types {
            delegator.register_type(&kgc1, t);
        }
        assert_eq!(delegator.stored_key_count(), 3);
        assert!(delegator.stored_key_bytes() > 0);

        for t in &types {
            let m = params.random_gt(&mut rng);
            let ct = delegator.encrypt(&m, t, &mut rng);
            assert_eq!(delegator.decrypt(&ct, t).unwrap(), m);
            let rk = delegator
                .make_reencryption_key(&bob, kgc2.public_params(), t, &mut rng)
                .unwrap();
            let transformed = identity_pre::re_encrypt(&ct, &rk);
            assert_eq!(delegatee.decrypt_reencrypted(&transformed).unwrap(), m);
        }
    }

    #[test]
    fn multikey_requires_registration() {
        let (kgc1, kgc2, params, mut rng) = domains();
        let alice = Identity::new("alice");
        let mut delegator = multikey::MultiKeyDelegator::new(kgc1.public_params().clone(), alice);
        let t = TypeTag::new("unregistered");
        let m = params.random_gt(&mut rng);
        let ct = delegator.encrypt(&m, &t, &mut rng);
        assert_eq!(
            delegator.decrypt(&ct, &t).unwrap_err(),
            PreError::NoMatchingKey
        );
        assert_eq!(
            delegator
                .make_reencryption_key(&Identity::new("bob"), kgc2.public_params(), &t, &mut rng)
                .unwrap_err(),
            PreError::NoMatchingKey
        );
        delegator.register_type(&kgc1, &t);
        assert_eq!(delegator.decrypt(&ct, &t).unwrap(), m);
    }

    #[test]
    fn multikey_types_are_isolated_by_virtual_identity() {
        let (kgc1, _kgc2, params, mut rng) = domains();
        let alice = Identity::new("alice");
        let mut delegator = multikey::MultiKeyDelegator::new(kgc1.public_params().clone(), alice);
        let t1 = TypeTag::new("t1");
        let t2 = TypeTag::new("t2");
        delegator.register_type(&kgc1, &t1);
        delegator.register_type(&kgc1, &t2);
        assert_ne!(
            delegator.virtual_identity(&t1),
            delegator.virtual_identity(&t2)
        );
        let m = params.random_gt(&mut rng);
        let ct = delegator.encrypt(&m, &t1, &mut rng);
        // Decrypting a t1 ciphertext with the t2 key yields garbage.
        assert_ne!(delegator.decrypt(&ct, &t2).unwrap(), m);
    }
}
