//! Key and ciphertext size accounting (communication cost, experiment E5).
//!
//! The paper never tabulates sizes, but "one key pair for the delegator" is a
//! storage claim, so the benchmark harness reports concrete byte counts per
//! security level; this module centralises the arithmetic so the benches and
//! the documentation stay consistent.

use tibpre_pairing::{PairingParams, SecurityLevel};

/// Byte sizes of every object the scheme transmits or stores, for one
/// parameter set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeReport {
    /// Security level of the parameter set.
    pub level: SecurityLevel,
    /// Serialized size of an uncompressed curve point.
    pub g1_element: usize,
    /// Serialized size of a target-group element.
    pub gt_element: usize,
    /// Serialized size of a scalar.
    pub scalar: usize,
    /// The delegator / delegatee private key (one curve point).
    pub private_key: usize,
    /// A typed ciphertext (excluding the variable-length type tag).
    pub typed_ciphertext: usize,
    /// A plain Boneh–Franklin ciphertext (the delegatee-domain `Encrypt2`).
    pub ibe_ciphertext: usize,
    /// A re-encryption key (excluding identity / type strings).
    pub reencryption_key: usize,
    /// A re-encrypted ciphertext (excluding identity / type strings).
    pub reencrypted_ciphertext: usize,
    /// Fixed overhead a hybrid ciphertext adds on top of the payload
    /// (KEM header + AEAD nonce/length/tag).
    pub hybrid_overhead: usize,
}

impl SizeReport {
    /// Computes the report for one parameter set.
    pub fn for_params(params: &PairingParams) -> Self {
        let g1 = params.g1_byte_len();
        let gt = params.gt_byte_len();
        let scalar = params.scalar_byte_len();
        let ibe_ciphertext = g1 + gt;
        let typed_ciphertext = g1 + gt + 4;
        let reencryption_key = g1 + ibe_ciphertext + 12;
        let reencrypted_ciphertext = g1 + gt + ibe_ciphertext + 8;
        // AEAD overhead: 12-byte nonce + 8-byte length + 32-byte tag.
        let hybrid_overhead = typed_ciphertext + 12 + 8 + 32;
        SizeReport {
            level: params.level(),
            g1_element: g1,
            gt_element: gt,
            scalar,
            private_key: g1,
            typed_ciphertext,
            ibe_ciphertext,
            reencryption_key,
            reencrypted_ciphertext,
            hybrid_overhead,
        }
    }

    /// Total key material the TIB-PRE delegator stores to manage `types`
    /// categories: always a single private key.
    pub fn tibpre_delegator_storage(&self, _types: usize) -> usize {
        self.private_key
    }

    /// Total key material the multi-key baseline stores for `types` categories:
    /// one private key per category.
    pub fn multikey_delegator_storage(&self, types: usize) -> usize {
        self.private_key * types
    }
}

impl core::fmt::Display for SizeReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "size report for {}:", self.level.label())?;
        writeln!(f, "  G element                {:>6} B", self.g1_element)?;
        writeln!(f, "  G_1 (target) element     {:>6} B", self.gt_element)?;
        writeln!(f, "  scalar                   {:>6} B", self.scalar)?;
        writeln!(f, "  private key              {:>6} B", self.private_key)?;
        writeln!(
            f,
            "  typed ciphertext         {:>6} B",
            self.typed_ciphertext
        )?;
        writeln!(f, "  IBE ciphertext           {:>6} B", self.ibe_ciphertext)?;
        writeln!(
            f,
            "  re-encryption key        {:>6} B",
            self.reencryption_key
        )?;
        writeln!(
            f,
            "  re-encrypted ciphertext  {:>6} B",
            self.reencrypted_ciphertext
        )?;
        write!(
            f,
            "  hybrid overhead          {:>6} B",
            self.hybrid_overhead
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegator::{Delegator, TypedCiphertext};
    use crate::types::TypeTag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_ibe::{bf::IbeCiphertext, Identity, Kgc};
    use tibpre_pairing::PairingParams;

    #[test]
    fn report_matches_actual_serializations() {
        let mut rng = StdRng::seed_from_u64(111);
        let params = PairingParams::insecure_toy();
        let report = SizeReport::for_params(&params);

        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("a");
        let bob = Identity::new("b");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));

        assert_eq!(report.private_key, kgc1.extract(&alice).to_bytes().len());

        let t = TypeTag::from_bytes(Vec::new());
        let m = params.random_gt(&mut rng);
        let ct = delegator.encrypt_typed(&m, &t, &mut rng);
        assert_eq!(report.typed_ciphertext, ct.to_bytes().len());
        assert_eq!(
            report.typed_ciphertext,
            TypedCiphertext::serialized_len(&params, 0)
        );
        assert_eq!(
            report.ibe_ciphertext,
            IbeCiphertext::serialized_len(&params)
        );

        let rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();
        // The report excludes the variable-length identity strings ("a", "b").
        assert_eq!(
            report.reencryption_key + alice.as_bytes().len() + bob.as_bytes().len(),
            rk.to_bytes().len()
        );
    }

    #[test]
    fn storage_comparison_shape() {
        let params = PairingParams::insecure_toy();
        let report = SizeReport::for_params(&params);
        for types in [1usize, 2, 8, 32] {
            assert_eq!(report.tibpre_delegator_storage(types), report.private_key);
            assert_eq!(
                report.multikey_delegator_storage(types),
                report.private_key * types
            );
        }
        // The whole point: the baseline grows linearly, ours does not.
        assert!(report.multikey_delegator_storage(32) > report.tibpre_delegator_storage(32));
    }

    #[test]
    fn display_is_complete() {
        let report = SizeReport::for_params(&PairingParams::insecure_toy());
        let s = report.to_string();
        for needle in ["private key", "re-encryption key", "hybrid overhead"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
