//! Key and ciphertext size accounting (communication cost, experiment E5).
//!
//! The paper never tabulates sizes, but "one key pair for the delegator" is a
//! storage claim, so the benchmark harness reports concrete byte counts per
//! security level; this module centralises the arithmetic so the benches and
//! the documentation stay consistent.
//!
//! Since the `tibpre-wire` refactor every composite object is transmitted
//! under a one-byte versioned envelope, and sizes are reported **per wire
//! version**: `v0` is the original uncompressed layout, `v1` (the default)
//! compresses every group element to one coordinate plus a sign bit —
//! roughly halving the group-element portion of ciphertexts, re-encryption
//! keys and WAL frames.

use tibpre_pairing::{PairingParams, SecurityLevel};
use tibpre_wire::WireVersion;

/// Byte sizes of the scheme's transmitted objects under one wire version.
///
/// Composite objects (ciphertexts, keys) include the one-byte envelope;
/// group-element primitives are reported bare.  Variable-length identity
/// and type strings are excluded, as in the paper's accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSizes {
    /// The wire version these sizes apply to.
    pub version: WireVersion,
    /// Serialized size of a non-identity curve point.
    pub g1_element: usize,
    /// Serialized size of a target-group (subgroup) element.
    pub gt_element: usize,
    /// A typed ciphertext (excluding the variable-length type tag).
    pub typed_ciphertext: usize,
    /// A plain Boneh–Franklin ciphertext (the delegatee-domain `Encrypt2`).
    pub ibe_ciphertext: usize,
    /// A re-encryption key (excluding identity / type strings).
    pub reencryption_key: usize,
    /// A re-encrypted ciphertext (excluding identity / type strings).
    pub reencrypted_ciphertext: usize,
    /// Fixed overhead a hybrid ciphertext adds on top of the payload
    /// (envelope + header length prefix + KEM header + AEAD
    /// nonce/length/tag).
    pub hybrid_overhead: usize,
}

impl WireSizes {
    /// Computes the table for one parameter set and wire version.
    pub fn for_params(params: &PairingParams, version: WireVersion) -> Self {
        let (g1, gt) = match version {
            WireVersion::V0 => (params.g1_byte_len(), params.gt_byte_len()),
            WireVersion::V1 => (
                params.g1_compressed_byte_len(),
                params.gt_compressed_byte_len(),
            ),
        };
        // Bare bodies; the envelope byte is added once per standalone object.
        let ibe_body = g1 + gt;
        let typed_body = g1 + gt + 4;
        let rekey_body = 12 + g1 + ibe_body;
        let reencrypted_body = g1 + gt + ibe_body + 8;
        // AEAD overhead: 12-byte nonce + 8-byte length + 32-byte tag; the
        // hybrid format adds a 4-byte header length prefix.
        let hybrid_overhead = 1 + 4 + typed_body + 12 + 8 + 32;
        WireSizes {
            version,
            g1_element: g1,
            gt_element: gt,
            typed_ciphertext: 1 + typed_body,
            ibe_ciphertext: 1 + ibe_body,
            reencryption_key: 1 + rekey_body,
            reencrypted_ciphertext: 1 + reencrypted_body,
            hybrid_overhead,
        }
    }
}

/// Byte sizes of every object the scheme transmits or stores, for one
/// parameter set, under both supported wire versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeReport {
    /// Security level of the parameter set.
    pub level: SecurityLevel,
    /// Serialized size of a scalar (version-independent).
    pub scalar: usize,
    /// The delegator / delegatee private key in its canonical
    /// (hash-preimage, uncompressed) form — version-independent by design;
    /// see `IbePrivateKey::to_bytes`.
    pub private_key: usize,
    /// Sizes under the legacy uncompressed layout.
    pub v0: WireSizes,
    /// Sizes under the compressed default layout.
    pub v1: WireSizes,
}

impl SizeReport {
    /// Computes the report for one parameter set.
    pub fn for_params(params: &PairingParams) -> Self {
        SizeReport {
            level: params.level(),
            scalar: params.scalar_byte_len(),
            private_key: params.g1_byte_len(),
            v0: WireSizes::for_params(params, WireVersion::V0),
            v1: WireSizes::for_params(params, WireVersion::V1),
        }
    }

    /// Total key material the TIB-PRE delegator stores to manage `types`
    /// categories: always a single private key.
    pub fn tibpre_delegator_storage(&self, _types: usize) -> usize {
        self.private_key
    }

    /// Total key material the multi-key baseline stores for `types` categories:
    /// one private key per category.
    pub fn multikey_delegator_storage(&self, types: usize) -> usize {
        self.private_key * types
    }
}

impl core::fmt::Display for SizeReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "size report for {}:", self.level.label())?;
        writeln!(f, "  scalar                   {:>6} B", self.scalar)?;
        writeln!(f, "  private key              {:>6} B", self.private_key)?;
        writeln!(f, "                               v0      v1   saving")?;
        let row = |name: &str, a: usize, b: usize| {
            format!(
                "  {name:<24} {a:>6} B {b:>6} B  {:>4.0}%",
                100.0 * (1.0 - b as f64 / a as f64)
            )
        };
        writeln!(
            f,
            "{}",
            row("G element", self.v0.g1_element, self.v1.g1_element)
        )?;
        writeln!(
            f,
            "{}",
            row(
                "G_1 (target) element",
                self.v0.gt_element,
                self.v1.gt_element
            )
        )?;
        writeln!(
            f,
            "{}",
            row(
                "typed ciphertext",
                self.v0.typed_ciphertext,
                self.v1.typed_ciphertext
            )
        )?;
        writeln!(
            f,
            "{}",
            row(
                "IBE ciphertext",
                self.v0.ibe_ciphertext,
                self.v1.ibe_ciphertext
            )
        )?;
        writeln!(
            f,
            "{}",
            row(
                "re-encryption key",
                self.v0.reencryption_key,
                self.v1.reencryption_key
            )
        )?;
        writeln!(
            f,
            "{}",
            row(
                "re-encrypted ciphertext",
                self.v0.reencrypted_ciphertext,
                self.v1.reencrypted_ciphertext
            )
        )?;
        write!(
            f,
            "{}",
            row(
                "hybrid overhead",
                self.v0.hybrid_overhead,
                self.v1.hybrid_overhead
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegator::{Delegator, TypedCiphertext};
    use crate::types::TypeTag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_ibe::{bf::IbeCiphertext, Identity, Kgc};
    use tibpre_pairing::PairingParams;
    use tibpre_wire::WireEncode;

    #[test]
    fn report_matches_actual_serializations() {
        let mut rng = StdRng::seed_from_u64(111);
        let params = PairingParams::insecure_toy();
        let report = SizeReport::for_params(&params);

        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("a");
        let bob = Identity::new("b");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));

        assert_eq!(report.private_key, kgc1.extract(&alice).to_bytes().len());

        let t = TypeTag::from_bytes(Vec::new());
        let m = params.random_gt(&mut rng);
        let ct = delegator.encrypt_typed(&m, &t, &mut rng);
        // Both versions of the typed ciphertext match the report exactly.
        assert_eq!(
            report.v0.typed_ciphertext,
            ct.to_wire_bytes_versioned(WireVersion::V0).len()
        );
        assert_eq!(
            report.v1.typed_ciphertext,
            ct.to_wire_bytes_versioned(WireVersion::V1).len()
        );
        // The default serialization is v1.
        assert_eq!(report.v1.typed_ciphertext, ct.to_bytes().len());
        assert_eq!(
            report.v1.typed_ciphertext,
            TypedCiphertext::serialized_len(&params, 0)
        );
        assert_eq!(
            report.v1.ibe_ciphertext,
            IbeCiphertext::serialized_len(&params)
        );

        let rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();
        // The report excludes the variable-length identity strings ("a", "b").
        let strings = alice.as_bytes().len() + bob.as_bytes().len();
        assert_eq!(
            report.v0.reencryption_key + strings,
            rk.to_wire_bytes_versioned(WireVersion::V0).len()
        );
        assert_eq!(
            report.v1.reencryption_key + strings,
            rk.to_wire_bytes_versioned(WireVersion::V1).len()
        );
        assert_eq!(report.v1.reencryption_key + strings, rk.to_bytes().len());

        // Hybrid overhead: serialized size minus payload length.
        let payload = vec![0u8; 257];
        let hybrid = delegator.encrypt_bytes(&payload, b"", &t, &mut rng);
        assert_eq!(
            report.v1.hybrid_overhead,
            hybrid.serialized_len() - payload.len()
        );
    }

    #[test]
    fn v1_compression_meets_the_size_targets() {
        // The acceptance bar: the group-element portion of the v1 encodings
        // is 35–50% smaller than v0.  With both `G1` and `Gt` compressed to
        // one coordinate the saving approaches 50% as the field grows, so
        // the toy level checked here is the worst case — the realistic
        // levels only do better (the e11 bench sweeps and gates them).
        let level = SecurityLevel::Toy;
        let params = PairingParams::cached(level);
        let report = SizeReport::for_params(&params);
        let group_v0 = report.v0.g1_element + report.v0.gt_element;
        let group_v1 = report.v1.g1_element + report.v1.gt_element;
        assert!(
            (group_v1 as f64) <= 0.65 * group_v0 as f64,
            "{level:?}: group portion v1 {group_v1} vs v0 {group_v0}"
        );
        // Whole-object savings for the objects the store and proxy ship.
        assert!(report.v1.typed_ciphertext < report.v0.typed_ciphertext);
        assert!(report.v1.reencryption_key < report.v0.reencryption_key);
        assert!(report.v1.reencrypted_ciphertext < report.v0.reencrypted_ciphertext);
        assert!(report.v1.hybrid_overhead < report.v0.hybrid_overhead);
    }

    #[test]
    fn storage_comparison_shape() {
        let params = PairingParams::insecure_toy();
        let report = SizeReport::for_params(&params);
        for types in [1usize, 2, 8, 32] {
            assert_eq!(report.tibpre_delegator_storage(types), report.private_key);
            assert_eq!(
                report.multikey_delegator_storage(types),
                report.private_key * types
            );
        }
        // The whole point: the baseline grows linearly, ours does not.
        assert!(report.multikey_delegator_storage(32) > report.tibpre_delegator_storage(32));
    }

    #[test]
    fn display_is_complete() {
        let report = SizeReport::for_params(&PairingParams::insecure_toy());
        let s = report.to_string();
        for needle in [
            "private key",
            "re-encryption key",
            "hybrid overhead",
            "v0",
            "v1",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
