//! The delegatee role: decryption of re-encrypted ciphertexts.

use crate::proxy::ReEncryptedCiphertext;
use crate::{PreError, Result};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tibpre_ibe::{bf, IbePrivateKey, Identity, H1_DOMAIN};
use tibpre_pairing::{G1Affine, Gt, PairingParams, PreparedPairing};
use tibpre_wire::WireEncode;

/// The delegatee: holds a private key extracted by *their own* KGC (the
/// paper's `KGC2`) and can open ciphertexts a proxy re-encrypted for them.
pub struct Delegatee {
    private_key: IbePrivateKey,
    /// `c'₃ ↦ prepared Miller loop for H1(Decrypt2(c'₃))`, keyed by the
    /// exact wire bytes of `c'₃`.  Every ciphertext re-encrypted under one
    /// re-encryption key carries the *same* `c'₃ = Encrypt2(X, id_j)`, so a
    /// delegatee opening a run of disclosures pays the IBE decryption, the
    /// hash-to-curve, and the Miller-loop tabulation once per key instead of
    /// once per record.  Identical bytes decrypt to the identical `X`, and
    /// the prepared pairing is bit-identical to the direct one, so the cache
    /// cannot change any output.  Bounded: cleared when full.
    mask_cache: Mutex<HashMap<Box<[u8]>, Arc<PreparedPairing>>>,
}

/// Cached prepared masks per delegatee (distinct re-encryption keys seen).
const MASK_CACHE_CAP: usize = 256;

impl Delegatee {
    /// Binds a delegatee to their extracted private key.
    pub fn new(private_key: IbePrivateKey) -> Self {
        Delegatee {
            private_key,
            mask_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The prepared Miller loop for `H1(Decrypt2(c'₃))`, served from the
    /// cache when this exact `c'₃` has been opened before.
    fn prepared_mask(&self, ciphertext: &ReEncryptedCiphertext) -> Result<Arc<PreparedPairing>> {
        let caching = tibpre_pairing::crypto_caches_enabled();
        let key: Box<[u8]> = ciphertext.encrypted_x.to_wire_bytes().into();
        if caching {
            if let Some(hit) = self
                .mask_cache
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .get(&key)
            {
                return Ok(Arc::clone(hit));
            }
        }
        let params = self.params();
        let x = bf::decrypt_gt(&self.private_key, &ciphertext.encrypted_x)?;
        let h1_of_x = params.hash_to_g1(H1_DOMAIN, &[&x.to_bytes()])?;
        let prepared = Arc::new(params.prepare(&h1_of_x));
        if caching {
            let mut cache = self.mask_cache.lock().unwrap_or_else(|p| p.into_inner());
            if cache.len() >= MASK_CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, Arc::clone(&prepared));
        }
        Ok(prepared)
    }

    /// The delegatee's identity.
    pub fn identity(&self) -> &Identity {
        self.private_key.identity()
    }

    /// The shared pairing parameters.
    pub fn params(&self) -> &Arc<PairingParams> {
        self.private_key.params()
    }

    /// Access to the private key (needed by the security-game harness).
    pub fn private_key(&self) -> &IbePrivateKey {
        &self.private_key
    }

    /// Decrypts a re-encrypted ciphertext:
    /// `m = c'₂ / ê(c'₁, H1(Decrypt2(c'₃, sk_idj)))`.
    pub fn decrypt_reencrypted(&self, ciphertext: &ReEncryptedCiphertext) -> Result<Gt> {
        // Recover the random element X with the delegatee's own IBE key and
        // remove the mask ê(g^r, H1(X)); the prepared loop for H1(X) comes
        // from the per-key cache (bit-identical to the direct pairing).
        let mask = self.prepared_mask(ciphertext)?.pairing(&ciphertext.c1);
        ciphertext
            .c2
            .div(&mask)
            .map_err(|_| PreError::InvalidEncoding("degenerate re-encryption mask"))
    }

    /// Decrypts a whole batch of re-encrypted ciphertexts, batching the mask
    /// pairings: one Miller loop per ciphertext, then a single batched final
    /// exponentiation (the per-element easy-part inversions collapse into one
    /// GCD).  Element-wise bit-identical to [`Self::decrypt_reencrypted`].
    ///
    /// The first (lowest-index) ciphertext whose `X` recovery or hash fails
    /// aborts the whole batch before any pairing work, mirroring a
    /// sequential scan.
    pub fn decrypt_reencrypted_batch(
        &self,
        ciphertexts: &[ReEncryptedCiphertext],
    ) -> Result<Vec<Gt>> {
        let params = self.params();
        let mut h1s = Vec::with_capacity(ciphertexts.len());
        for ct in ciphertexts {
            // Keep the batch path on the direct pairing (it is the oracle
            // the cached path is tested against), but share the recovered
            // `H1(X)` via the same per-key preparation.
            h1s.push(self.prepared_mask(ct)?.point().clone());
        }
        let pairs: Vec<(&G1Affine, &G1Affine)> = ciphertexts
            .iter()
            .zip(h1s.iter())
            .map(|(ct, h1)| (&ct.c1, h1))
            .collect();
        let masks = params.pairing_batch(&pairs);
        ciphertexts
            .iter()
            .zip(masks)
            .map(|(ct, mask)| {
                ct.c2
                    .div(&mask)
                    .map_err(|_| PreError::InvalidEncoding("degenerate re-encryption mask"))
            })
            .collect()
    }
}

impl core::fmt::Debug for Delegatee {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Delegatee(identity={})", self.identity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegator::Delegator;
    use crate::proxy::re_encrypt;
    use crate::types::TypeTag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_ibe::Kgc;

    #[test]
    fn tampered_reencrypted_ciphertexts_do_not_decrypt_to_m() {
        let mut rng = StdRng::seed_from_u64(81);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
        let delegatee = Delegatee::new(kgc2.extract(&bob));
        let t = TypeTag::new("t");
        let m = params.random_gt(&mut rng);
        let ct = delegator.encrypt_typed(&m, &t, &mut rng);
        let rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();
        let good = re_encrypt(&ct, &rk).unwrap();
        assert_eq!(delegatee.decrypt_reencrypted(&good).unwrap(), m);

        // Tamper with c2: decryption yields a different element.
        let mut bad = good.clone();
        bad.c2 = bad.c2.mul(params.gt_generator());
        assert_ne!(delegatee.decrypt_reencrypted(&bad).unwrap(), m);

        // Swap in a different encrypted X: the mask no longer matches.
        let other_rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();
        let mut bad = good.clone();
        bad.encrypted_x = other_rk.encrypted_x().clone();
        assert_ne!(delegatee.decrypt_reencrypted(&bad).unwrap(), m);
    }

    #[test]
    fn batch_decryption_matches_per_item() {
        let mut rng = StdRng::seed_from_u64(83);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let delegator = Delegator::new(
            kgc1.public_params().clone(),
            kgc1.extract(&Identity::new("alice")),
        );
        let bob = Identity::new("bob");
        let delegatee = Delegatee::new(kgc2.extract(&bob));
        let t = TypeTag::new("t");
        let rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();
        let messages: Vec<Gt> = (0..4).map(|_| params.random_gt(&mut rng)).collect();
        let transformed: Vec<_> = messages
            .iter()
            .map(|m| re_encrypt(&delegator.encrypt_typed(m, &t, &mut rng), &rk).unwrap())
            .collect();
        let batch = delegatee.decrypt_reencrypted_batch(&transformed).unwrap();
        assert_eq!(batch.len(), messages.len());
        for ((got, ct), m) in batch.iter().zip(&transformed).zip(&messages) {
            assert_eq!(got, m);
            assert_eq!(
                got.to_bytes(),
                delegatee.decrypt_reencrypted(ct).unwrap().to_bytes()
            );
        }
        assert!(delegatee.decrypt_reencrypted_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn repeated_opens_hit_the_mask_cache_and_stay_bit_identical() {
        let mut rng = StdRng::seed_from_u64(84);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
        let warm = Delegatee::new(kgc2.extract(&bob));
        let t = TypeTag::new("t");
        let rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();
        let m = params.random_gt(&mut rng);
        let ct = re_encrypt(&delegator.encrypt_typed(&m, &t, &mut rng), &rk).unwrap();

        // Second open is served from the per-key mask cache; a fresh
        // delegatee (cold cache) must agree byte-for-byte, so the cache
        // is unobservable except in time.
        let first = warm.decrypt_reencrypted(&ct).unwrap();
        let second = warm.decrypt_reencrypted(&ct).unwrap();
        assert_eq!(first.to_bytes(), second.to_bytes());
        let cold = Delegatee::new(kgc2.extract(&bob));
        assert_eq!(
            first.to_bytes(),
            cold.decrypt_reencrypted(&ct).unwrap().to_bytes()
        );
        assert_eq!(first, m);
    }

    #[test]
    fn delegatee_metadata() {
        let mut rng = StdRng::seed_from_u64(82);
        let params = PairingParams::insecure_toy();
        let kgc = Kgc::setup(params, "kgc2", &mut rng);
        let bob = Identity::new("bob@clinic.example");
        let delegatee = Delegatee::new(kgc.extract(&bob));
        assert_eq!(delegatee.identity(), &bob);
        assert!(format!("{delegatee:?}").contains("bob@clinic.example"));
    }
}
