//! The delegatee role: decryption of re-encrypted ciphertexts.

use crate::proxy::ReEncryptedCiphertext;
use crate::{PreError, Result};
use std::sync::Arc;
use tibpre_ibe::{bf, IbePrivateKey, Identity, H1_DOMAIN};
use tibpre_pairing::{G1Affine, Gt, PairingParams};

/// The delegatee: holds a private key extracted by *their own* KGC (the
/// paper's `KGC2`) and can open ciphertexts a proxy re-encrypted for them.
pub struct Delegatee {
    private_key: IbePrivateKey,
}

impl Delegatee {
    /// Binds a delegatee to their extracted private key.
    pub fn new(private_key: IbePrivateKey) -> Self {
        Delegatee { private_key }
    }

    /// The delegatee's identity.
    pub fn identity(&self) -> &Identity {
        self.private_key.identity()
    }

    /// The shared pairing parameters.
    pub fn params(&self) -> &Arc<PairingParams> {
        self.private_key.params()
    }

    /// Access to the private key (needed by the security-game harness).
    pub fn private_key(&self) -> &IbePrivateKey {
        &self.private_key
    }

    /// Decrypts a re-encrypted ciphertext:
    /// `m = c'₂ / ê(c'₁, H1(Decrypt2(c'₃, sk_idj)))`.
    pub fn decrypt_reencrypted(&self, ciphertext: &ReEncryptedCiphertext) -> Result<Gt> {
        let params = self.params();
        // Recover the random element X with the delegatee's own IBE key.
        let x = bf::decrypt_gt(&self.private_key, &ciphertext.encrypted_x)?;
        // Remove the mask ê(g^r, H1(X)).
        let h1_of_x = params.hash_to_g1(H1_DOMAIN, &[&x.to_bytes()])?;
        let mask = params.pairing(&ciphertext.c1, &h1_of_x);
        ciphertext
            .c2
            .div(&mask)
            .map_err(|_| PreError::InvalidEncoding("degenerate re-encryption mask"))
    }

    /// Decrypts a whole batch of re-encrypted ciphertexts, batching the mask
    /// pairings: one Miller loop per ciphertext, then a single batched final
    /// exponentiation (the per-element easy-part inversions collapse into one
    /// GCD).  Element-wise bit-identical to [`Self::decrypt_reencrypted`].
    ///
    /// The first (lowest-index) ciphertext whose `X` recovery or hash fails
    /// aborts the whole batch before any pairing work, mirroring a
    /// sequential scan.
    pub fn decrypt_reencrypted_batch(
        &self,
        ciphertexts: &[ReEncryptedCiphertext],
    ) -> Result<Vec<Gt>> {
        let params = self.params();
        let mut h1s = Vec::with_capacity(ciphertexts.len());
        for ct in ciphertexts {
            let x = bf::decrypt_gt(&self.private_key, &ct.encrypted_x)?;
            h1s.push(params.hash_to_g1(H1_DOMAIN, &[&x.to_bytes()])?);
        }
        let pairs: Vec<(&G1Affine, &G1Affine)> = ciphertexts
            .iter()
            .zip(h1s.iter())
            .map(|(ct, h1)| (&ct.c1, h1))
            .collect();
        let masks = params.pairing_batch(&pairs);
        ciphertexts
            .iter()
            .zip(masks)
            .map(|(ct, mask)| {
                ct.c2
                    .div(&mask)
                    .map_err(|_| PreError::InvalidEncoding("degenerate re-encryption mask"))
            })
            .collect()
    }
}

impl core::fmt::Debug for Delegatee {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Delegatee(identity={})", self.identity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegator::Delegator;
    use crate::proxy::re_encrypt;
    use crate::types::TypeTag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_ibe::Kgc;

    #[test]
    fn tampered_reencrypted_ciphertexts_do_not_decrypt_to_m() {
        let mut rng = StdRng::seed_from_u64(81);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
        let delegatee = Delegatee::new(kgc2.extract(&bob));
        let t = TypeTag::new("t");
        let m = params.random_gt(&mut rng);
        let ct = delegator.encrypt_typed(&m, &t, &mut rng);
        let rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();
        let good = re_encrypt(&ct, &rk).unwrap();
        assert_eq!(delegatee.decrypt_reencrypted(&good).unwrap(), m);

        // Tamper with c2: decryption yields a different element.
        let mut bad = good.clone();
        bad.c2 = bad.c2.mul(params.gt_generator());
        assert_ne!(delegatee.decrypt_reencrypted(&bad).unwrap(), m);

        // Swap in a different encrypted X: the mask no longer matches.
        let other_rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();
        let mut bad = good.clone();
        bad.encrypted_x = other_rk.encrypted_x().clone();
        assert_ne!(delegatee.decrypt_reencrypted(&bad).unwrap(), m);
    }

    #[test]
    fn batch_decryption_matches_per_item() {
        let mut rng = StdRng::seed_from_u64(83);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let delegator = Delegator::new(
            kgc1.public_params().clone(),
            kgc1.extract(&Identity::new("alice")),
        );
        let bob = Identity::new("bob");
        let delegatee = Delegatee::new(kgc2.extract(&bob));
        let t = TypeTag::new("t");
        let rk = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), &t, &mut rng)
            .unwrap();
        let messages: Vec<Gt> = (0..4).map(|_| params.random_gt(&mut rng)).collect();
        let transformed: Vec<_> = messages
            .iter()
            .map(|m| re_encrypt(&delegator.encrypt_typed(m, &t, &mut rng), &rk).unwrap())
            .collect();
        let batch = delegatee.decrypt_reencrypted_batch(&transformed).unwrap();
        assert_eq!(batch.len(), messages.len());
        for ((got, ct), m) in batch.iter().zip(&transformed).zip(&messages) {
            assert_eq!(got, m);
            assert_eq!(
                got.to_bytes(),
                delegatee.decrypt_reencrypted(ct).unwrap().to_bytes()
            );
        }
        assert!(delegatee.decrypt_reencrypted_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn delegatee_metadata() {
        let mut rng = StdRng::seed_from_u64(82);
        let params = PairingParams::insecure_toy();
        let kgc = Kgc::setup(params, "kgc2", &mut rng);
        let bob = Identity::new("bob@clinic.example");
        let delegatee = Delegatee::new(kgc.extract(&bob));
        assert_eq!(delegatee.identity(), &bob);
        assert!(format!("{delegatee:?}").contains("bob@clinic.example"));
    }
}
