//! Re-encryption keys (`Pextract` output).

use crate::types::TypeTag;
use crate::Result;
use std::sync::{Arc, OnceLock};
use tibpre_ibe::{bf::IbeCiphertext, Identity};
use tibpre_pairing::{wire as pairing_wire, DecodeCtx, G1Affine, PairingParams, PreparedPairing};
use tibpre_wire::{DecodeError, Reader, WireDecode, WireEncode, WireVersion, Writer};

/// Lazily-built pairing precomputation for one re-encryption key, shared
/// across clones (a proxy clones keys freely; the Miller-loop table must not
/// be rebuilt per copy).
#[derive(Debug, Default)]
struct RekeyCache {
    prepared_rk: OnceLock<Arc<PreparedPairing>>,
}

/// A re-encryption key `rk_{i→j} = (t, sk_i^{−H2(sk_i‖t)}·H1(X), Encrypt2(X, id_j))`.
///
/// The key is bound to one (delegator, delegatee, type) triple.  Holding it,
/// the proxy can convert the delegator's ciphertexts *of that type only*; by
/// Theorem 1 of the paper it learns nothing that helps with any other type.
#[derive(Clone, Debug)]
pub struct ReEncryptionKey {
    delegator: Identity,
    delegatee: Identity,
    type_tag: TypeTag,
    /// `rk₂ = sk_i^{−H2(sk_i ‖ t)} · H1(X)`.
    rk_point: G1Affine,
    /// `rk₃ = Encrypt2(X, id_j)` — the random element `X` encrypted to the
    /// delegatee under the delegatee's KGC.
    encrypted_x: IbeCiphertext,
    /// The shared pairing parameters, carried so the proxy can re-encrypt
    /// without a separate parameter handle.
    params: Arc<PairingParams>,
    /// Pairing precomputation for `rk₂` (not part of the key material; never
    /// serialized or compared).
    cache: Arc<RekeyCache>,
}

impl PartialEq for ReEncryptionKey {
    fn eq(&self, other: &Self) -> bool {
        self.delegator == other.delegator
            && self.delegatee == other.delegatee
            && self.type_tag == other.type_tag
            && self.rk_point == other.rk_point
            && self.encrypted_x == other.encrypted_x
    }
}

impl Eq for ReEncryptionKey {}

impl ReEncryptionKey {
    /// Assembles a re-encryption key from its parts (called by
    /// [`crate::Delegator::make_reencryption_key`]).
    pub(crate) fn new(
        delegator: Identity,
        delegatee: Identity,
        type_tag: TypeTag,
        rk_point: G1Affine,
        encrypted_x: IbeCiphertext,
        params: Arc<PairingParams>,
    ) -> Self {
        ReEncryptionKey {
            delegator,
            delegatee,
            type_tag,
            rk_point,
            encrypted_x,
            params,
            cache: Arc::default(),
        }
    }

    /// The shared pairing parameters.
    pub fn params(&self) -> &Arc<PairingParams> {
        &self.params
    }

    /// The delegator this key re-encrypts *from*.
    pub fn delegator(&self) -> &Identity {
        &self.delegator
    }

    /// The delegatee this key re-encrypts *to*.
    pub fn delegatee(&self) -> &Identity {
        &self.delegatee
    }

    /// The message type this key is restricted to.
    pub fn type_tag(&self) -> &TypeTag {
        &self.type_tag
    }

    /// The group element `rk₂` used by the proxy's pairing.
    pub fn rk_point(&self) -> &G1Affine {
        &self.rk_point
    }

    /// The Miller loop prepared for `rk₂`, built on the first conversion and
    /// shared by every clone of this key.  `Preenc`'s `ê(c1, rk₂)` goes
    /// through this table, so converting many ciphertexts with one key pays
    /// the Miller-loop tabulation once.
    ///
    /// The table is immutable once built and safe to read from any number of
    /// threads; a parallel batch converter should call this once *before*
    /// fanning out, so the one-time build happens on the dispatching thread
    /// instead of being raced (and its cost unevenly borne) by the workers.
    pub fn prepared_rk_point(&self) -> Arc<PreparedPairing> {
        Arc::clone(
            self.cache
                .prepared_rk
                .get_or_init(|| Arc::new(self.params.prepare(&self.rk_point))),
        )
    }

    /// The encrypted random element `rk₃ = Encrypt2(X, id_j)`.
    pub fn encrypted_x(&self) -> &IbeCiphertext {
        &self.encrypted_x
    }

    /// Serializes under the default versioned envelope:
    /// `del_len ‖ delegator ‖ dee_len ‖ delegatee ‖ type_len ‖ type ‖
    /// rk_point ‖ encrypted_x` (group elements compressed in `v1`).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes()
    }

    /// Parses the serialization produced by [`Self::to_bytes`], rejecting
    /// unknown versions and trailing bytes.
    pub fn from_bytes(params: &Arc<PairingParams>, bytes: &[u8]) -> Result<Self> {
        Ok(Self::from_wire_bytes(bytes, &DecodeCtx::from(params))?)
    }

    /// Bare (envelope-less) serialized length under the given wire version.
    pub fn serialized_len_versioned(&self, params: &PairingParams, version: WireVersion) -> usize {
        let strings = 12
            + self.delegator.as_bytes().len()
            + self.delegatee.as_bytes().len()
            + self.type_tag.as_bytes().len();
        match version {
            WireVersion::V0 => {
                strings
                    + params.g1_byte_len()
                    + IbeCiphertext::serialized_len_versioned(params, WireVersion::V0)
            }
            WireVersion::V1 => {
                strings
                    + params.g1_compressed_byte_len()
                    + IbeCiphertext::serialized_len_versioned(params, WireVersion::V1)
            }
        }
    }

    /// Total standalone serialized length (envelope byte included) under
    /// the default wire version — bookkeeping for the size experiment.
    pub fn serialized_len(&self, params: &PairingParams) -> usize {
        1 + self.serialized_len_versioned(params, WireVersion::DEFAULT)
    }
}

impl WireEncode for ReEncryptionKey {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.delegator.as_bytes());
        w.put_bytes(self.delegatee.as_bytes());
        w.put_bytes(self.type_tag.as_bytes());
        self.rk_point.encode(w);
        self.encrypted_x.encode(w);
    }
}

impl WireDecode for ReEncryptionKey {
    type Ctx = DecodeCtx;

    /// Validates `rk₂` against the curve and the prime-order subgroup
    /// (an out-of-subgroup key point could leak information through the
    /// proxy's pairings).
    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> core::result::Result<Self, DecodeError> {
        let delegator = Identity::from_bytes(r.bytes()?.to_vec());
        let delegatee = Identity::from_bytes(r.bytes()?.to_vec());
        let type_tag = TypeTag::from_bytes(r.bytes()?.to_vec());
        let rk_point =
            pairing_wire::decode_g1_in_subgroup(r, ctx, "rk point outside the subgroup")?;
        let encrypted_x = IbeCiphertext::decode(r, ctx)?;
        Ok(ReEncryptionKey {
            delegator,
            delegatee,
            type_tag,
            rk_point,
            encrypted_x,
            params: Arc::clone(ctx.params()),
            cache: Arc::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegator::Delegator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_ibe::Kgc;
    use tibpre_pairing::PairingParams;

    fn make_rekey() -> (ReEncryptionKey, Arc<PairingParams>) {
        let mut rng = StdRng::seed_from_u64(61);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
        let rk = delegator
            .make_reencryption_key(
                &Identity::new("bob"),
                kgc2.public_params(),
                &TypeTag::new("illness-history"),
                &mut rng,
            )
            .unwrap();
        (rk, params)
    }

    #[test]
    fn accessors_reflect_the_delegation() {
        let (rk, params) = make_rekey();
        assert_eq!(rk.delegator(), &Identity::new("alice"));
        assert_eq!(rk.delegatee(), &Identity::new("bob"));
        assert_eq!(rk.type_tag(), &TypeTag::new("illness-history"));
        assert!(rk.rk_point().is_on_curve());
        assert!(rk.rk_point().is_in_subgroup(params.q()));
    }

    #[test]
    fn serialization_round_trip() {
        let (rk, params) = make_rekey();
        let bytes = rk.to_bytes();
        assert_eq!(bytes.len(), rk.serialized_len(&params));
        let parsed = ReEncryptionKey::from_bytes(&params, &bytes).unwrap();
        assert_eq!(parsed, rk);
    }

    #[test]
    fn malformed_encodings_rejected() {
        let (rk, params) = make_rekey();
        let bytes = rk.to_bytes();
        assert!(ReEncryptionKey::from_bytes(&params, &bytes[..3]).is_err());
        assert!(ReEncryptionKey::from_bytes(&params, &bytes[..bytes.len() - 1]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(ReEncryptionKey::from_bytes(&params, &longer).is_err());
        assert!(ReEncryptionKey::from_bytes(&params, &[]).is_err());
    }

    #[test]
    fn distinct_delegations_produce_distinct_keys() {
        let mut rng = StdRng::seed_from_u64(62);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let delegator = Delegator::new(
            kgc1.public_params().clone(),
            kgc1.extract(&Identity::new("alice")),
        );
        let t = TypeTag::new("t");
        let rk1 = delegator
            .make_reencryption_key(&Identity::new("bob"), kgc2.public_params(), &t, &mut rng)
            .unwrap();
        let rk2 = delegator
            .make_reencryption_key(&Identity::new("bob"), kgc2.public_params(), &t, &mut rng)
            .unwrap();
        // Even for the same triple, the random X makes the keys differ.
        assert_ne!(rk1, rk2);
    }
}
