//! Shared fixtures for the TIB-PRE benchmark harness.
//!
//! One Criterion bench target exists per experiment in `EXPERIMENTS.md`
//! (E1–E7).  This library centralises the pieces they share — cached pairing
//! parameters, two-domain fixtures, and the PHR workload generator — so that
//! expensive parameter generation happens once per process and every bench
//! reports over identical inputs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_core::{Delegatee, Delegator, TypeTag};
use tibpre_ibe::{IbePublicParams, Identity, Kgc};
use tibpre_pairing::{PairingParams, SecurityLevel};

/// Deterministic RNG so benchmark inputs are identical across runs.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0xBEAC4)
}

/// The security levels swept by the primitive / size experiments.
///
/// `Toy` is included because the workload-scaling experiments (E4, E6) use it
/// to keep wall-clock time reasonable; the op-level experiments focus on the
/// realistic levels.
///
/// The sweep honours `TIBPRE_BENCH_LEVELS` (comma-separated subset of
/// `toy,80,112,128`) so a quick run can skip the expensive parameter
/// generation of the larger levels, which happens during fixture setup and is
/// therefore not avoided by criterion's name filter alone.
pub fn sweep_levels() -> Vec<SecurityLevel> {
    let default = vec![
        SecurityLevel::Toy,
        SecurityLevel::Low80,
        SecurityLevel::Medium112,
    ];
    match std::env::var("TIBPRE_BENCH_LEVELS") {
        Err(_) => default,
        Ok(spec) => {
            let picked: Vec<SecurityLevel> = spec
                .split(',')
                .filter_map(|tag| match tag.trim() {
                    "toy" => Some(SecurityLevel::Toy),
                    "80" => Some(SecurityLevel::Low80),
                    "112" => Some(SecurityLevel::Medium112),
                    "128" => Some(SecurityLevel::High128),
                    "" => None,
                    other => panic!("unknown TIBPRE_BENCH_LEVELS entry: {other:?}"),
                })
                .collect();
            if picked.is_empty() {
                default
            } else {
                picked
            }
        }
    }
}

/// A ready-made two-domain world: shared parameters, `KGC1`/`KGC2`, a
/// delegator ("the patient") and a delegatee ("the doctor").
pub struct Fixture {
    /// Shared pairing parameters.
    pub params: Arc<PairingParams>,
    /// The delegator-domain KGC.
    pub kgc1: Kgc,
    /// The delegatee-domain KGC.
    pub kgc2: Kgc,
    /// The delegator, bound to `kgc1`.
    pub delegator: Delegator,
    /// The delegatee identity.
    pub delegatee_id: Identity,
    /// The delegatee, bound to `kgc2`.
    pub delegatee: Delegatee,
}

impl Fixture {
    /// Builds the fixture for one security level (parameters come from the
    /// process-wide cache).
    pub fn new(level: SecurityLevel) -> Self {
        let mut rng = bench_rng();
        let params = PairingParams::cached(level);
        let kgc1 = Kgc::setup(params.clone(), "bench-kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "bench-kgc2", &mut rng);
        let patient = Identity::new("alice@bench.example");
        let doctor = Identity::new("doctor@bench.example");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&patient));
        let delegatee = Delegatee::new(kgc2.extract(&doctor));
        Fixture {
            params,
            kgc1,
            kgc2,
            delegator,
            delegatee_id: doctor,
            delegatee,
        }
    }

    /// The delegatee-domain public parameters.
    pub fn kgc2_public(&self) -> &IbePublicParams {
        self.kgc2.public_params()
    }
}

/// The three PHR categories of the paper's Section 5 example.
pub fn paper_categories() -> Vec<TypeTag> {
    vec![
        TypeTag::new("illness-history"),
        TypeTag::new("food-statistics"),
        TypeTag::new("emergency"),
    ]
}

/// Generates `count` synthetic PHR payloads of roughly realistic sizes,
/// cycling through the given categories.
pub fn synthetic_records(count: usize, categories: &[TypeTag]) -> Vec<(TypeTag, Vec<u8>)> {
    (0..count)
        .map(|i| {
            let category = categories[i % categories.len()].clone();
            // 200–1200 byte bodies, deterministic content.
            let len = 200 + (i * 97) % 1000;
            let body: Vec<u8> = (0..len).map(|j| ((i + j) % 251) as u8).collect();
            (category, body)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_and_roundtrips() {
        let mut rng = bench_rng();
        let f = Fixture::new(SecurityLevel::Toy);
        let m = f.params.random_gt(&mut rng);
        let t = TypeTag::new("t");
        let ct = f.delegator.encrypt_typed(&m, &t, &mut rng);
        assert_eq!(f.delegator.decrypt_typed(&ct).unwrap(), m);
    }

    #[test]
    fn synthetic_records_cycle_categories() {
        let cats = paper_categories();
        let records = synthetic_records(10, &cats);
        assert_eq!(records.len(), 10);
        assert_eq!(records[0].0, cats[0]);
        assert_eq!(records[1].0, cats[1]);
        assert_eq!(records[3].0, cats[0]);
        assert!(records.iter().all(|(_, b)| b.len() >= 200));
    }
}
