//! E11: the unified wire codec — encode/decode throughput per wire version
//! and the v0→v1 serialized-size regression gate.
//!
//! Two questions this experiment answers:
//!
//! 1. **How much smaller is v1?**  The compressed encodings must keep the
//!    group-element portion of hybrid ciphertexts and re-encryption keys at
//!    least 35% below v0 (the PR's acceptance bar); the assertion runs
//!    before any timing, so a size regression fails the bench smoke in CI,
//!    not just a human reading tables.
//! 2. **What does compression cost?**  v1 decoding pays a square root per
//!    compressed element (point decompression and torus decompression);
//!    the throughput rows make that trade-off visible next to the size
//!    win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tibpre_bench::{bench_rng, sweep_levels, Fixture};
use tibpre_core::{HybridCiphertext, ReEncryptionKey, TypeTag};
use tibpre_pairing::DecodeCtx;
use tibpre_wire::{WireDecode, WireEncode, WireVersion};

/// The acceptance bar: v1's group-element portion is at least this much
/// smaller than v0's.
const MIN_GROUP_SAVING: f64 = 0.35;

fn wire(c: &mut Criterion) {
    println!("\nE11 wire-format sizes (bytes) and savings per security level");
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "level", "hybrid v0", "hybrid v1", "save", "rekey v0", "rekey v1", "save"
    );

    let mut group = c.benchmark_group("e11_wire");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for level in sweep_levels() {
        let fixture = Fixture::new(level);
        let mut rng = bench_rng();
        let t = TypeTag::new("illness-history");
        let ctx = DecodeCtx::from(&fixture.params);
        let payload = vec![0x5Au8; 1024];
        let hybrid = fixture
            .delegator
            .encrypt_bytes(&payload, b"aad", &t, &mut rng);
        let rekey = fixture
            .delegator
            .make_reencryption_key(&fixture.delegatee_id, fixture.kgc2_public(), &t, &mut rng)
            .unwrap();

        let hybrid_v0 = hybrid.to_wire_bytes_versioned(WireVersion::V0);
        let hybrid_v1 = hybrid.to_wire_bytes_versioned(WireVersion::V1);
        let rekey_v0 = rekey.to_wire_bytes_versioned(WireVersion::V0);
        let rekey_v1 = rekey.to_wire_bytes_versioned(WireVersion::V1);

        // ---- Size regression gate on the group-element portion ----
        // The hybrid header carries one G1 point and one Gt element; the
        // re-encryption key carries two G1 points and one Gt element (the
        // rk₂ point plus the embedded IBE ciphertext).  Everything else in
        // those encodings (AEAD body, nonces, strings, length prefixes) is
        // version-independent, so the measured whole-object delta must
        // equal the group-portion delta exactly — and that portion must
        // shrink by at least `MIN_GROUP_SAVING`.
        let params = &fixture.params;
        let saving = |v0: usize, v1: usize| 1.0 - v1 as f64 / v0 as f64;
        let hybrid_group_v0 = params.g1_byte_len() + params.gt_byte_len();
        let hybrid_group_v1 = params.g1_compressed_byte_len() + params.gt_compressed_byte_len();
        let rekey_group_v0 = 2 * params.g1_byte_len() + params.gt_byte_len();
        let rekey_group_v1 = 2 * params.g1_compressed_byte_len() + params.gt_compressed_byte_len();
        assert_eq!(
            hybrid_v0.len() - hybrid_v1.len(),
            hybrid_group_v0 - hybrid_group_v1,
            "{}: hybrid size delta is not explained by group-element compression",
            level.label()
        );
        assert_eq!(
            rekey_v0.len() - rekey_v1.len(),
            rekey_group_v0 - rekey_group_v1,
            "{}: rekey size delta is not explained by group-element compression",
            level.label()
        );
        let hybrid_saving = saving(hybrid_group_v0, hybrid_group_v1);
        let rekey_saving = saving(rekey_group_v0, rekey_group_v1);
        assert!(
            hybrid_saving >= MIN_GROUP_SAVING,
            "{}: hybrid group portion shrank only {:.0}% (v0 {hybrid_group_v0} B, v1 {hybrid_group_v1} B)",
            level.label(),
            100.0 * hybrid_saving
        );
        assert!(
            rekey_saving >= MIN_GROUP_SAVING,
            "{}: rekey group portion shrank only {:.0}% (v0 {rekey_group_v0} B, v1 {rekey_group_v1} B)",
            level.label(),
            100.0 * rekey_saving
        );
        // Both versions still decode to the same objects.
        assert_eq!(
            HybridCiphertext::from_wire_bytes(&hybrid_v0, &ctx).unwrap(),
            HybridCiphertext::from_wire_bytes(&hybrid_v1, &ctx).unwrap()
        );
        assert_eq!(
            ReEncryptionKey::from_wire_bytes(&rekey_v0, &ctx).unwrap(),
            ReEncryptionKey::from_wire_bytes(&rekey_v1, &ctx).unwrap()
        );

        println!(
            "{:<22} {:>10} {:>10} {:>7.0}% {:>10} {:>10} {:>7.0}%",
            level.label(),
            hybrid_v0.len(),
            hybrid_v1.len(),
            100.0 * hybrid_saving,
            rekey_v0.len(),
            rekey_v1.len(),
            100.0 * rekey_saving,
        );

        // ---- Throughput: encode and decode, per version ----
        let label = level.label();
        for (version, tag) in [(WireVersion::V0, "v0"), (WireVersion::V1, "v1")] {
            group.bench_function(
                BenchmarkId::new(format!("hybrid_encode_{tag}"), label),
                |b| b.iter(|| hybrid.to_wire_bytes_versioned(version)),
            );
            let bytes = hybrid.to_wire_bytes_versioned(version);
            group.bench_function(
                BenchmarkId::new(format!("hybrid_decode_{tag}"), label),
                |b| b.iter(|| HybridCiphertext::from_wire_bytes(&bytes, &ctx).unwrap()),
            );
            let kbytes = rekey.to_wire_bytes_versioned(version);
            group.bench_function(
                BenchmarkId::new(format!("rekey_decode_{tag}"), label),
                |b| b.iter(|| ReEncryptionKey::from_wire_bytes(&kbytes, &ctx).unwrap()),
            );
        }
    }
    group.finish();
    println!();
}

criterion_group!(benches, wire);
criterion_main!(benches);
