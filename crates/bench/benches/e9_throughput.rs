//! E9: proxy re-encryption throughput vs. worker count.
//!
//! The multi-core scenario the engine opens: one re-encryption key, a burst
//! of 64 same-type hybrid ciphertexts (a category dump at a busy proxy), fanned
//! out over 1, 2, 4 and 8 workers.  The `thrpt:` column is records/sec —
//! the series to check is `engine/<level>/<workers>` against
//! `sequential/<level>`: on a machine with ≥ 4 cores the 4-worker row should
//! clear 2.5× the sequential rate, because the per-record work (one prepared
//! pairing evaluation + one `Gt` multiplication) is embarrassingly parallel
//! and the key's Miller-loop table is built once, before the fan-out.
//!
//! On a single-core host the engine rows collapse to the sequential rate
//! (modulo scheduling noise) — the fan-out adds microseconds of thread spawn
//! against milliseconds of pairing work, which is also worth seeing measured.
//!
//! Every engine output is asserted byte-identical to the sequential batch
//! before timing starts, so the numbers can never come from a short-cut.
//!
//! Levels: toy and 80-bit (the paper-era level), honouring
//! `TIBPRE_BENCH_LEVELS`; worker counts honour nothing — the sweep is the
//! point.  `TIBPRE_WORKERS` sizes the *default* engine row, showing what
//! `ReEncryptEngine::from_env()` would pick on this host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tibpre_bench::{bench_rng, sweep_levels, Fixture};
use tibpre_core::{hybrid, TypeTag};
use tibpre_engine::ReEncryptEngine;
use tibpre_pairing::SecurityLevel;

/// The burst size: one busy category dump.
const BATCH: usize = 64;

/// The worker-count sweep.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn throughput_vs_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .throughput(Throughput::Elements(BATCH as u64));

    let levels: Vec<SecurityLevel> = sweep_levels()
        .into_iter()
        .filter(|level| matches!(level, SecurityLevel::Toy | SecurityLevel::Low80))
        .collect();

    for level in levels {
        let f = Fixture::new(level);
        let mut rng = bench_rng();
        let t = TypeTag::new("illness-history");
        let rekey = f
            .delegator
            .make_reencryption_key(&f.delegatee_id, f.kgc2_public(), &t, &mut rng)
            .expect("shared parameters");
        let batch: Vec<_> = (0..BATCH)
            .map(|i| {
                f.delegator
                    .encrypt_bytes(&[i as u8; 256], b"e9", &t, &mut rng)
            })
            .collect();
        let label = level.label();

        // Correctness gate: the engine must be a pure speedup, never a
        // different computation.
        let expected = hybrid::re_encrypt_hybrid_batch(&batch, &rekey).expect("same type");
        for workers in WORKER_COUNTS {
            let engine = ReEncryptEngine::new(workers);
            let got = engine
                .re_encrypt_hybrid_batch(&batch, &rekey)
                .expect("same type");
            assert_eq!(
                got, expected,
                "engine output diverged from sequential at {workers} workers"
            );
        }

        group.bench_function(BenchmarkId::new("sequential", label), |b| {
            b.iter(|| hybrid::re_encrypt_hybrid_batch(&batch, &rekey).unwrap())
        });
        for workers in WORKER_COUNTS {
            let engine = ReEncryptEngine::new(workers);
            group.bench_function(
                BenchmarkId::new("engine", format!("{label}/workers={workers}")),
                |b| b.iter(|| engine.re_encrypt_hybrid_batch(&batch, &rekey).unwrap()),
            );
        }
        let env_engine = ReEncryptEngine::from_env();
        group.bench_function(
            BenchmarkId::new(
                "engine",
                format!("{label}/workers=env({})", env_engine.workers()),
            ),
            |b| b.iter(|| env_engine.re_encrypt_hybrid_batch(&batch, &rekey).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, throughput_vs_workers);
criterion_main!(benches);
