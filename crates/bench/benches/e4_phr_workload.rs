//! E4 ("Figure 2"): the end-to-end PHR workload of Section 5 — store encrypted
//! records, provision the three paper categories, serve disclosure requests
//! through per-category proxies, and run the emergency-access path.
//!
//! Series: total time to (a) ingest N records and (b) disclose one full
//! category, for N ∈ {10, 100, 1000}.  Uses the toy parameter level so the
//! sweep stays in seconds; the per-operation costs at realistic levels are
//! covered by E2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use std::sync::Arc;
use std::time::Duration;
use tibpre_bench::bench_rng;
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::{
    category::Category, patient::Patient, provider::HealthcareProvider,
    proxy_service::ProxyService, record::HealthRecord, store::EncryptedPhrStore,
};

struct World {
    provider_kgc: Kgc,
    patient_kgc: Kgc,
    rng: StdRng,
}

fn world() -> World {
    let mut rng = bench_rng();
    let params = PairingParams::insecure_toy();
    World {
        patient_kgc: Kgc::setup(params.clone(), "patients", &mut rng),
        provider_kgc: Kgc::setup(params, "providers", &mut rng),
        rng,
    }
}

fn categories() -> [Category; 3] {
    [
        Category::IllnessHistory,
        Category::FoodStatistics,
        Category::Emergency,
    ]
}

/// Builds a fully-populated store with N records and grants for each category.
fn populate(
    w: &mut World,
    n: usize,
) -> (
    Arc<EncryptedPhrStore>,
    Patient,
    ProxyService,
    HealthcareProvider,
) {
    let store = Arc::new(EncryptedPhrStore::new("bench-store"));
    let mut patient = Patient::new("alice@bench", &w.patient_kgc);
    let mut proxy = ProxyService::new("bench-proxy", store.clone());
    let doctor = Identity::new("doctor@bench");
    let provider = HealthcareProvider::new(w.provider_kgc.extract(&doctor));
    let cats = categories();
    for i in 0..n {
        let category = cats[i % cats.len()].clone();
        let record = HealthRecord::new(
            patient.identity().clone(),
            category,
            format!("record-{i}"),
            vec![0xA5u8; 200 + (i % 800)],
        );
        patient.store_record(&store, &record, &mut w.rng).unwrap();
    }
    for category in cats {
        patient
            .grant_access(
                category,
                &doctor,
                w.provider_kgc.public_params(),
                &mut proxy,
                &mut w.rng,
            )
            .unwrap();
    }
    (store, patient, proxy, provider)
}

fn phr_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_phr_workload");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for n in [10usize, 100, 1000] {
        group.throughput(Throughput::Elements(n as u64));

        // (a) Ingest: encrypt and store N records.
        group.bench_with_input(BenchmarkId::new("ingest_records", n), &n, |b, &n| {
            let mut w = world();
            let store = Arc::new(EncryptedPhrStore::new("ingest-store"));
            let patient = Patient::new("alice@bench", &w.patient_kgc);
            let cats = categories();
            b.iter(|| {
                for i in 0..n {
                    let record = HealthRecord::new(
                        patient.identity().clone(),
                        cats[i % cats.len()].clone(),
                        format!("r{i}"),
                        vec![0x5Au8; 512],
                    );
                    patient.store_record(&store, &record, &mut w.rng).unwrap();
                }
            })
        });

        // (b) Disclose one full category (≈ N/3 records) through the proxy and
        //     decrypt everything at the provider.
        group.bench_with_input(BenchmarkId::new("disclose_one_category", n), &n, |b, &n| {
            let mut w = world();
            let (_store, patient, proxy, provider) = populate(&mut w, n);
            b.iter(|| {
                let bundles = proxy
                    .disclose_category(
                        patient.identity(),
                        &Category::IllnessHistory,
                        provider.identity(),
                    )
                    .unwrap();
                let mut total = 0usize;
                for bundle in &bundles {
                    total += provider.open(bundle).unwrap().body.len();
                }
                total
            })
        });
    }

    // (c) The emergency path: disclose the (small) emergency category on demand.
    group.bench_function("emergency_access_path", |b| {
        let mut w = world();
        let (_store, patient, proxy, provider) = populate(&mut w, 30);
        b.iter(|| {
            tibpre_phr::emergency::emergency_disclosure(&proxy, patient.identity(), &provider)
                .unwrap()
                .len()
        })
    });

    group.finish();
}

criterion_group!(benches, phr_workload);
criterion_main!(benches);
