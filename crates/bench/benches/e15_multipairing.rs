//! Experiment E15 — product-of-pairings batching.
//!
//! Measures the three pairing batch shapes the multi-pairing PR added, each
//! against the per-pairing path it replaces, after first asserting the fast
//! path's output is bit-identical:
//!
//! * **element-wise, one fixed argument** (the proxy shape: one re-encryption
//!   key against a batch of ciphertext `c₁`s) — `PreparedPairing::
//!   pairing_batch` vs a loop of `PreparedPairing::pairing`.  Shares the
//!   final exponentiation's easy part (one GCD inversion per batch).
//! * **product of k distinct pairings** (the multi-pairing shape) —
//!   `tibpre_pairing::multi_pairing` vs a `Gt::mul` fold of k independent
//!   prepared pairings.  Shares the Miller accumulator's squaring chain
//!   *and* runs one final exponentiation total.
//! * **32-ciphertext re-encryption** (the end-to-end e9-style number) —
//!   `proxy::re_encrypt_batch` vs a loop of `proxy::re_encrypt`.
//!
//! Gate: at the 80-bit level the multi-pairing product must be at least
//! `TIBPRE_E15_MIN_SPEEDUP` (default 1.3) times faster than the per-pairing
//! product on a `TIBPRE_E15_BATCH` (default 32) pairing batch.  Results land
//! in `BENCH_e15.json` (redirect with `TIBPRE_BENCH_JSON`).
//!
//! Levels: toy + 80-bit by default (the committed artifact needs the gate's
//! level); `TIBPRE_BENCH_LEVELS` picks a different sweep.

use std::time::Instant;
use tibpre_bench::{bench_rng, Fixture};
use tibpre_core::{proxy, TypeTag};
use tibpre_pairing::{multi_pairing, G1Affine, PairingParams, SecurityLevel};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// E15's own level sweep: toy + 80-bit unless `TIBPRE_BENCH_LEVELS` says
/// otherwise (the gate needs 80-bit in the default run, and 112/128 would
/// make the committed-artifact run needlessly slow).
fn levels() -> Vec<SecurityLevel> {
    match std::env::var("TIBPRE_BENCH_LEVELS") {
        Err(_) => vec![SecurityLevel::Toy, SecurityLevel::Low80],
        Ok(spec) => spec
            .split(',')
            .filter_map(|tag| match tag.trim() {
                "toy" => Some(SecurityLevel::Toy),
                "80" => Some(SecurityLevel::Low80),
                "112" => Some(SecurityLevel::Medium112),
                "128" => Some(SecurityLevel::High128),
                "" => None,
                other => panic!("unknown TIBPRE_BENCH_LEVELS entry: {other:?}"),
            })
            .collect(),
    }
}

/// Milliseconds per call: one warmup, then the mean over `iters` runs.
fn time_ms<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

struct LevelRow {
    label: &'static str,
    elementwise_loop_ms: f64,
    elementwise_batch_ms: f64,
    product_loop_ms: f64,
    product_multi_ms: f64,
    reencrypt_loop_ms: f64,
    reencrypt_batch_ms: f64,
}

fn run_level(level: SecurityLevel, batch: usize, iters: usize) -> LevelRow {
    let params = PairingParams::cached(level);
    let mut rng = bench_rng();

    // -- element-wise shape: one prepared argument, `batch` moving points.
    let fixed = params.random_g1(&mut rng);
    let prepared = params.prepare(&fixed);
    let qs_owned: Vec<G1Affine> = (0..batch).map(|_| params.random_g1(&mut rng)).collect();
    let qs: Vec<&G1Affine> = qs_owned.iter().collect();
    let loop_results: Vec<_> = qs.iter().map(|q| prepared.pairing(q)).collect();
    let batch_results = prepared.pairing_batch(&qs);
    assert_eq!(loop_results.len(), batch_results.len());
    for (a, b) in loop_results.iter().zip(&batch_results) {
        assert_eq!(a.to_bytes(), b.to_bytes(), "pairing_batch diverged");
    }
    let elementwise_loop_ms = time_ms(iters, || {
        let out: Vec<_> = qs.iter().map(|q| prepared.pairing(q)).collect();
        assert_eq!(out.len(), batch);
    });
    let elementwise_batch_ms = time_ms(iters, || {
        assert_eq!(prepared.pairing_batch(&qs).len(), batch);
    });

    // -- product shape: `batch` distinct prepared pairs, one Gt out.
    let pairs_owned: Vec<(G1Affine, G1Affine)> = (0..batch)
        .map(|_| (params.random_g1(&mut rng), params.random_g1(&mut rng)))
        .collect();
    let prepared_pairs: Vec<_> = pairs_owned.iter().map(|(a, _)| params.prepare(a)).collect();
    let multi_refs: Vec<_> = prepared_pairs
        .iter()
        .zip(pairs_owned.iter())
        .map(|(prep, (_, q))| (prep, q))
        .collect();
    let product_loop = multi_refs
        .iter()
        .fold(params.gt_identity(), |acc, (prep, q)| {
            acc.mul(&prep.pairing(q))
        });
    let product_multi = multi_pairing(&multi_refs).expect("non-empty batch");
    assert_eq!(
        product_loop.to_bytes(),
        product_multi.to_bytes(),
        "multi_pairing diverged"
    );
    let product_loop_ms = time_ms(iters, || {
        let out = multi_refs
            .iter()
            .fold(params.gt_identity(), |acc, (prep, q)| {
                acc.mul(&prep.pairing(q))
            });
        assert!(!out.to_bytes().is_empty());
    });
    let product_multi_ms = time_ms(iters, || {
        let out = multi_pairing(&multi_refs).expect("non-empty batch");
        assert!(!out.to_bytes().is_empty());
    });

    // -- end-to-end shape: a 32-ciphertext `Preenc` burst with one key.
    let f = Fixture::new(level);
    let t = TypeTag::new("illness-history");
    let rekey = f
        .delegator
        .make_reencryption_key(&f.delegatee_id, f.kgc2_public(), &t, &mut rng)
        .expect("shared parameters");
    let ciphertexts: Vec<_> = (0..batch)
        .map(|_| {
            let m = f.params.random_gt(&mut rng);
            f.delegator.encrypt_typed(&m, &t, &mut rng)
        })
        .collect();
    let reencrypt_loop_ms = time_ms(iters, || {
        let out: Vec<_> = ciphertexts
            .iter()
            .map(|ct| proxy::re_encrypt(ct, &rekey).expect("matching type"))
            .collect();
        assert_eq!(out.len(), batch);
    });
    let reencrypt_batch_ms = time_ms(iters, || {
        let out = proxy::re_encrypt_batch(&ciphertexts, &rekey).expect("matching type");
        assert_eq!(out.len(), batch);
    });

    LevelRow {
        label: level.label(),
        elementwise_loop_ms,
        elementwise_batch_ms,
        product_loop_ms,
        product_multi_ms,
        reencrypt_loop_ms,
        reencrypt_batch_ms,
    }
}

fn main() {
    let batch = env_usize("TIBPRE_E15_BATCH", 32);
    let iters = env_usize("TIBPRE_E15_ITERS", 10);
    let min_speedup = env_f64("TIBPRE_E15_MIN_SPEEDUP", 1.3);

    let mut rows = Vec::new();
    for level in levels() {
        let row = run_level(level, batch, iters);
        eprintln!(
            "e15 [{}]: elementwise {:.3} -> {:.3} ms ({:.2}x) | product {:.3} -> {:.3} ms ({:.2}x) | reencrypt {:.3} -> {:.3} ms ({:.2}x)",
            row.label,
            row.elementwise_loop_ms,
            row.elementwise_batch_ms,
            row.elementwise_loop_ms / row.elementwise_batch_ms,
            row.product_loop_ms,
            row.product_multi_ms,
            row.product_loop_ms / row.product_multi_ms,
            row.reencrypt_loop_ms,
            row.reencrypt_batch_ms,
            row.reencrypt_loop_ms / row.reencrypt_batch_ms,
        );
        rows.push(row);
    }

    let level_entries: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"level\": \"{}\",\n",
                    "      \"elementwise_loop_ms\": {:.3},\n",
                    "      \"elementwise_batch_ms\": {:.3},\n",
                    "      \"elementwise_speedup\": {:.2},\n",
                    "      \"product_loop_ms\": {:.3},\n",
                    "      \"product_multi_pairing_ms\": {:.3},\n",
                    "      \"multi_pairing_speedup\": {:.2},\n",
                    "      \"reencrypt_loop_ms\": {:.3},\n",
                    "      \"reencrypt_batch_ms\": {:.3},\n",
                    "      \"reencrypt_speedup\": {:.2}\n",
                    "    }}"
                ),
                row.label,
                row.elementwise_loop_ms,
                row.elementwise_batch_ms,
                row.elementwise_loop_ms / row.elementwise_batch_ms,
                row.product_loop_ms,
                row.product_multi_ms,
                row.product_loop_ms / row.product_multi_ms,
                row.reencrypt_loop_ms,
                row.reencrypt_batch_ms,
                row.reencrypt_loop_ms / row.reencrypt_batch_ms,
            )
        })
        .collect();
    let gate_row = rows.iter().find(|row| row.label.starts_with("80-bit"));
    let gate_speedup = gate_row
        .map(|row| row.product_loop_ms / row.product_multi_ms)
        .unwrap_or(0.0);
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e15_multipairing\",\n",
            "  \"batch_size\": {},\n",
            "  \"iters\": {},\n",
            "  \"levels\": [\n{}\n  ],\n",
            "  \"gate_level\": \"80-bit\",\n",
            "  \"gate_min_speedup\": {:.2},\n",
            "  \"gate_multi_pairing_speedup\": {:.2}\n",
            "}}\n"
        ),
        batch,
        iters,
        level_entries.join(",\n"),
        min_speedup,
        gate_speedup,
    );
    print!("{json}");

    let out = std::env::var("TIBPRE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_e15.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).unwrap();
    eprintln!("e15: wrote {out}");

    // Acceptance gate: the shared-accumulator product must beat the
    // per-pairing product by the configured factor at the 80-bit level.
    // Sweeps that exclude 80-bit (e.g. the toy CI smoke) skip the gate.
    if let Some(row) = gate_row {
        assert!(
            gate_speedup >= min_speedup,
            "multi_pairing at {:.3} ms is under {min_speedup}x the {:.3} ms per-pairing \
             product on a {batch}-pairing batch at the 80-bit level",
            row.product_multi_ms,
            row.product_loop_ms,
        );
    } else {
        eprintln!("e15: sweep excludes the 80-bit level — skipping the {min_speedup}x gate");
    }
}
