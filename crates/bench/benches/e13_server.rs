//! Experiment E13 — the network service layer under load.
//!
//! Boots a full kgc/store/proxy node set on loopback ephemeral ports and
//! drives it with the `tibpre-load` generator: N concurrent clients issuing
//! decrypt-heavy disclosure traffic with Zipf patient popularity and
//! grant/revoke churn riding along.  Every counted success is a complete
//! extract → encrypt → store → grant → re-encrypt → decrypt round trip over
//! real TCP.  Reports p50/p99 end-to-end latency and requests/second.
//!
//! Scale knobs: `TIBPRE_E13_CLIENTS`, `TIBPRE_E13_REQUESTS`,
//! `TIBPRE_E13_PATIENTS`, `TIBPRE_E13_RECORDS_PER_PATIENT`,
//! `TIBPRE_E13_CHURN_EVERY`, `TIBPRE_E13_PAYLOAD`.

use tibpre_client::NodeRole;
use tibpre_server::load::{run_load, LoadConfig};
use tibpre_server::{node, NodeConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    let clients = env_usize("TIBPRE_E13_CLIENTS", 4);
    let requests = env_usize("TIBPRE_E13_REQUESTS", 800) as u64;
    let patients = env_usize("TIBPRE_E13_PATIENTS", 16);
    let records_per_patient = env_usize("TIBPRE_E13_RECORDS_PER_PATIENT", 4);
    let churn_every = env_usize("TIBPRE_E13_CHURN_EVERY", 25) as u64;
    let payload_len = env_usize("TIBPRE_E13_PAYLOAD", 256);

    // The node set: kgc + store + proxy, in-process, ephemeral ports, toy
    // parameters (the pairing level scales crypto cost, not protocol cost,
    // and E13 measures the protocol).
    let kgc = node::start(NodeConfig::new(NodeRole::Kgc)).expect("kgc node");
    let store = node::start(NodeConfig::new(NodeRole::Store)).expect("store node");
    let mut proxy_config = NodeConfig::new(NodeRole::Proxy);
    proxy_config.store_addr = Some(store.addr().to_string());
    let proxy = node::start(proxy_config).expect("proxy node");
    eprintln!(
        "e13: kgc {} / store {} / proxy {}",
        kgc.addr(),
        store.addr(),
        proxy.addr()
    );

    let config = LoadConfig {
        kgc_addr: kgc.addr().to_string(),
        store_addr: store.addr().to_string(),
        proxy_addr: proxy.addr().to_string(),
        clients,
        requests,
        patients,
        records_per_patient,
        churn_every,
        payload_len,
        ..LoadConfig::default()
    };
    eprintln!(
        "e13: {clients} clients x {requests} requests, {patients} patients x \
         {records_per_patient} records, churn every {churn_every}"
    );
    let report = run_load(&config).expect("load run");
    eprintln!(
        "e13: {} ok / {} denied / {} errors in {:.2}s — p50 {}us p99 {}us, {:.0} req/s",
        report.ok,
        report.denied,
        report.errors,
        report.elapsed.as_secs_f64(),
        report.p50_us,
        report.p99_us,
        report.req_per_sec,
    );

    for handle in [proxy, store, kgc] {
        handle.shutdown();
        handle.wait();
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e13_server\",\n",
            "  \"level\": \"toy\",\n",
            "  \"clients\": {},\n",
            "  \"requests\": {},\n",
            "  \"patients\": {},\n",
            "  \"records_per_patient\": {},\n",
            "  \"zipf_exponent\": {:.2},\n",
            "  \"churn_every\": {},\n",
            "  \"payload_bytes\": {},\n",
            "  \"ok\": {},\n",
            "  \"denied\": {},\n",
            "  \"errors\": {},\n",
            "  \"churn_ops\": {},\n",
            "  \"elapsed_s\": {:.3},\n",
            "  \"p50_us\": {},\n",
            "  \"p99_us\": {},\n",
            "  \"max_us\": {},\n",
            "  \"req_per_sec\": {:.1}\n",
            "}}\n"
        ),
        clients,
        requests,
        patients,
        records_per_patient,
        config.zipf_exponent,
        churn_every,
        payload_len,
        report.ok,
        report.denied,
        report.errors,
        report.churn_ops,
        report.elapsed.as_secs_f64(),
        report.p50_us,
        report.p99_us,
        report.max_us,
        report.req_per_sec,
    );
    print!("{json}");

    let out = std::env::var("TIBPRE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_e13.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).unwrap();
    eprintln!("e13: wrote {out}");

    // Acceptance gates: every request got a definite answer, nothing
    // errored, and the only non-successes are the revoke→regrant race
    // window the churn traffic deliberately opens.
    assert_eq!(report.errors, 0, "transport or decrypt errors under load");
    assert_eq!(
        report.ok + report.denied,
        requests,
        "every request must be answered"
    );
    let denied_share = report.denied as f64 / requests as f64;
    assert!(
        denied_share <= 0.10,
        "denied share {denied_share:.3} exceeds the churn race budget"
    );
    assert!(
        report.req_per_sec >= 50.0,
        "throughput {:.1} req/s below the 50 req/s floor",
        report.req_per_sec
    );
}
