//! E10: durable-store throughput and recovery time.
//!
//! Two questions the WAL + snapshot subsystem must answer with numbers:
//!
//! 1. **What does durability cost per record?**  `put` into an in-memory
//!    store vs. a durable store with `fsync=never` (group commit reaches the
//!    OS, the kernel flushes) vs. `fsync=always` (every commit hits stable
//!    storage).  The `thrpt:` column is records/sec.  Expect the `never` row
//!    within a small factor of in-memory (the frame encode + `write` is
//!    cheap next to the ciphertext clone) and the `always` row dominated by
//!    device sync latency — that gap *is* the durability price, and
//!    `TIBPRE_FSYNC=every=N` buys it back N-fold at N commits of power-loss
//!    exposure.
//!
//! 2. **How long does recovery take, and how does it scale with log
//!    length?**  `open` replays a WAL of 128 / 512 / 2048 puts (no
//!    snapshots) — recovery must be linear in the log.  Then a put/delete
//!    *churn* history (live set stays small while the log grows) is
//!    recovered twice, without and with snapshots: the snapshot row must sit
//!    far below its WAL-only twin, because replay starts at the newest
//!    snapshot's offset and the dead prefix — records long deleted — is
//!    never decoded again.  (On an append-only history a snapshot is the
//!    same bytes as the log and buys nothing; churn is where it pays.)
//!
//! Levels honour `TIBPRE_BENCH_LEVELS` (toy by default; 80 adds the
//! paper-era parameter size, which grows every logged ciphertext).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tibpre_bench::{bench_rng, sweep_levels, Fixture};
use tibpre_core::{HybridCiphertext, TypeTag};
use tibpre_ibe::Identity;
use tibpre_pairing::SecurityLevel;
use tibpre_phr::category::Category;
use tibpre_phr::durable::Durability;
use tibpre_phr::store::EncryptedPhrStore;
use tibpre_phr::FsyncPolicy;
use tibpre_storage::TempDir;

/// Ops-per-shard between snapshots in the snapshot-enabled recovery row.
const SNAPSHOT_EVERY: u64 = 256;

/// The WAL lengths of the recovery sweep.
const RECOVERY_OPS: [usize; 3] = [128, 512, 2048];

fn fixture_ciphertext(f: &Fixture) -> HybridCiphertext {
    let mut rng = bench_rng();
    f.delegator.encrypt_bytes(
        &[0x42u8; 256],
        b"e10",
        &TypeTag::new("lab-results"),
        &mut rng,
    )
}

fn durability(f: &Fixture, fsync: FsyncPolicy, snapshot_every: u64) -> Durability {
    Durability::new(f.params.clone())
        .shards(4)
        .fsync(fsync)
        .snapshot_every(snapshot_every)
}

/// Fills a fresh durable store under `dir` with `ops` logged operations:
/// pure puts, or — with `churn` — alternating put/delete so the live set
/// stays tiny while the log keeps growing.
fn populate(f: &Fixture, dir: &std::path::Path, ops: usize, snapshot_every: u64, churn: bool) {
    let ciphertext = fixture_ciphertext(f);
    let store =
        EncryptedPhrStore::open(dir, durability(f, FsyncPolicy::Never, snapshot_every)).unwrap();
    let alice = Identity::new("alice");
    let mut live = std::collections::VecDeque::new();
    for i in 0..ops {
        if churn && i % 2 == 1 {
            let id = live.pop_front().expect("a put precedes every delete");
            store.delete(id, &alice).unwrap();
        } else {
            live.push_back(store.put(
                &alice,
                &Category::LabResults,
                &format!("r{i}"),
                ciphertext.clone(),
            ));
        }
    }
    store.sync().unwrap();
}

fn put_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_durability");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .throughput(Throughput::Elements(1));

    let levels: Vec<SecurityLevel> = sweep_levels()
        .into_iter()
        .filter(|level| matches!(level, SecurityLevel::Toy | SecurityLevel::Low80))
        .collect();

    for level in levels {
        let f = Fixture::new(level);
        let label = level.label();
        let ciphertext = fixture_ciphertext(&f);
        let alice = Identity::new("alice");

        let memory_store = EncryptedPhrStore::in_memory("bench");
        group.bench_function(BenchmarkId::new("put/in-memory", label), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                memory_store.put(
                    &alice,
                    &Category::LabResults,
                    &format!("r{i}"),
                    ciphertext.clone(),
                )
            })
        });

        for (policy, policy_label) in [
            (FsyncPolicy::Never, "fsync=never"),
            (FsyncPolicy::Always, "fsync=always"),
        ] {
            let tmp = TempDir::new("e10-put").unwrap();
            let store =
                EncryptedPhrStore::open(tmp.path().join("db"), durability(&f, policy, 0)).unwrap();
            group.bench_function(
                BenchmarkId::new(format!("put/{policy_label}"), label),
                |b| {
                    let mut i = 0u64;
                    b.iter(|| {
                        i += 1;
                        store.put(
                            &alice,
                            &Category::LabResults,
                            &format!("r{i}"),
                            ciphertext.clone(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn recovery_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_durability");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let levels: Vec<SecurityLevel> = sweep_levels()
        .into_iter()
        .filter(|level| matches!(level, SecurityLevel::Toy | SecurityLevel::Low80))
        .collect();

    for level in levels {
        let f = Fixture::new(level);
        let label = level.label();

        // WAL-only recovery of an append-only history: cost grows linearly
        // with the log length.
        for ops in RECOVERY_OPS {
            let tmp = TempDir::new("e10-recovery").unwrap();
            let dir = tmp.path().join("db");
            populate(&f, &dir, ops, 0, false);
            group.throughput(Throughput::Elements(ops as u64));
            group.bench_function(
                BenchmarkId::new(format!("recovery/wal-only/ops={ops}"), label),
                |b| {
                    b.iter(|| {
                        let store =
                            EncryptedPhrStore::open(&dir, durability(&f, FsyncPolicy::Never, 0))
                                .unwrap();
                        assert_eq!(store.record_count(), ops);
                        store
                    })
                },
            );
        }

        // Churn history (half the ops are deletes), recovered without and
        // with snapshots: the snapshot run skips the dead prefix entirely
        // and must beat its WAL-only twin.
        let ops = *RECOVERY_OPS.last().unwrap();
        for (snapshot_every, mode) in [(0u64, "wal-only"), (SNAPSHOT_EVERY, "snapshot")] {
            let tmp = TempDir::new("e10-recovery-churn").unwrap();
            let dir = tmp.path().join("db");
            populate(&f, &dir, ops, snapshot_every, true);
            group.throughput(Throughput::Elements(ops as u64));
            group.bench_function(
                BenchmarkId::new(format!("recovery/churn-{mode}/ops={ops}"), label),
                |b| {
                    b.iter(|| {
                        let store = EncryptedPhrStore::open(
                            &dir,
                            durability(&f, FsyncPolicy::Never, snapshot_every),
                        )
                        .unwrap();
                        assert!(store.record_count() <= ops);
                        store
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, put_throughput, recovery_time);
criterion_main!(benches);
