//! E2 ("Table 2"): cost of every algorithm of the TIB-PRE scheme at the
//! paper-era (~80-bit) security level, next to the baselines it replaces
//! (plain Boneh–Franklin IBE, identity-only PRE).
//!
//! Expected shape: Encrypt1 ≈ plain-IBE encrypt plus one extra hash;
//! Pextract ≈ one encryption plus one hash-to-curve; Preenc and the delegatee
//! decryption each cost about one pairing — i.e. fine-grained delegation costs
//! the same order of magnitude as the coarse-grained baseline, not more.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tibpre_bench::{bench_rng, Fixture};
use tibpre_core::baseline::identity_pre::IdentityPreDelegator;
use tibpre_core::{proxy, TypeTag};
use tibpre_ibe::{bf, Identity, Kgc};
use tibpre_pairing::SecurityLevel;

fn scheme_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_scheme_ops");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let fixture = Fixture::new(SecurityLevel::Low80);
    let mut rng = bench_rng();
    let params = fixture.params.clone();
    let t = TypeTag::new("illness-history");
    let m = params.random_gt(&mut rng);

    // --- Setup / Extract ---
    group.bench_function("setup_kgc", |b| {
        b.iter(|| Kgc::setup(params.clone(), "bench", &mut rng))
    });
    group.bench_function("extract_private_key", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            fixture.kgc1.extract(&Identity::new(format!("user-{i}")))
        })
    });

    // --- The TIB-PRE algorithms ---
    group.bench_function("tibpre_encrypt1_typed", |b| {
        b.iter(|| fixture.delegator.encrypt_typed(&m, &t, &mut rng))
    });
    let ct = fixture.delegator.encrypt_typed(&m, &t, &mut rng);
    group.bench_function("tibpre_decrypt1_by_delegator", |b| {
        b.iter(|| fixture.delegator.decrypt_typed(&ct).unwrap())
    });
    group.bench_function("tibpre_pextract_rekey_gen", |b| {
        b.iter(|| {
            fixture
                .delegator
                .make_reencryption_key(&fixture.delegatee_id, fixture.kgc2_public(), &t, &mut rng)
                .unwrap()
        })
    });
    let rk = fixture
        .delegator
        .make_reencryption_key(&fixture.delegatee_id, fixture.kgc2_public(), &t, &mut rng)
        .unwrap();
    group.bench_function("tibpre_preenc_by_proxy", |b| {
        b.iter(|| proxy::re_encrypt(&ct, &rk).unwrap())
    });
    let transformed = proxy::re_encrypt(&ct, &rk).unwrap();
    group.bench_function("tibpre_decrypt_by_delegatee", |b| {
        b.iter(|| fixture.delegatee.decrypt_reencrypted(&transformed).unwrap())
    });

    // --- Baseline: plain Boneh–Franklin (patient decrypts on demand) ---
    let alice = Identity::new("alice@bench.example");
    let sk_alice = fixture.kgc1.extract(&alice);
    group.bench_function("baseline_ibe_encrypt", |b| {
        b.iter(|| bf::encrypt_gt(fixture.kgc1.public_params(), &alice, &m, &mut rng))
    });
    let ibe_ct = bf::encrypt_gt(fixture.kgc1.public_params(), &alice, &m, &mut rng);
    group.bench_function("baseline_ibe_decrypt", |b| {
        b.iter(|| bf::decrypt_gt(&sk_alice, &ibe_ct).unwrap())
    });

    // --- Baseline: identity-only PRE (coarse-grained) ---
    let id_delegator = IdentityPreDelegator::new(
        fixture.kgc1.public_params().clone(),
        fixture.kgc1.extract(&alice),
    );
    group.bench_function("baseline_idpre_encrypt", |b| {
        b.iter(|| id_delegator.encrypt(&m, &mut rng))
    });
    group.bench_function("baseline_idpre_rekey_gen", |b| {
        b.iter(|| {
            id_delegator
                .make_reencryption_key(&fixture.delegatee_id, fixture.kgc2_public(), &mut rng)
                .unwrap()
        })
    });
    let id_ct = id_delegator.encrypt(&m, &mut rng);
    let id_rk = id_delegator
        .make_reencryption_key(&fixture.delegatee_id, fixture.kgc2_public(), &mut rng)
        .unwrap();
    group.bench_function("baseline_idpre_reencrypt", |b| {
        b.iter(|| tibpre_core::baseline::identity_pre::re_encrypt(&id_ct, &id_rk))
    });

    group.finish();
}

criterion_group!(benches, scheme_ops);
criterion_main!(benches);
