//! E7: hybrid (KEM/DEM) throughput for realistic PHR payload sizes.
//!
//! The claim under test: the pairing work is a fixed per-record cost, so
//! end-to-end throughput approaches the symmetric-cipher rate as payloads grow
//! — and the proxy's re-encryption cost is *independent* of the payload size
//! (it only touches the KEM header).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tibpre_bench::{bench_rng, Fixture};
use tibpre_core::{hybrid, TypeTag};
use tibpre_pairing::SecurityLevel;

fn hybrid_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_hybrid_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let fixture = Fixture::new(SecurityLevel::Low80);
    let mut rng = bench_rng();
    let t = TypeTag::new("imaging");
    let rk = fixture
        .delegator
        .make_reencryption_key(&fixture.delegatee_id, fixture.kgc2_public(), &t, &mut rng)
        .unwrap();

    for size in [256usize, 4 * 1024, 64 * 1024, 1024 * 1024] {
        let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));

        group.bench_with_input(
            BenchmarkId::new("hybrid_encrypt", size),
            &payload,
            |b, payload| {
                b.iter(|| {
                    fixture
                        .delegator
                        .encrypt_bytes(payload, b"aad", &t, &mut rng)
                })
            },
        );

        let ct = fixture
            .delegator
            .encrypt_bytes(&payload, b"aad", &t, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("proxy_reencrypt_header_only", size),
            &ct,
            |b, ct| b.iter(|| hybrid::re_encrypt_hybrid(ct, &rk).unwrap()),
        );

        let transformed = hybrid::re_encrypt_hybrid(&ct, &rk).unwrap();
        group.bench_with_input(
            BenchmarkId::new("delegatee_hybrid_decrypt", size),
            &transformed,
            |b, transformed| {
                b.iter(|| {
                    fixture
                        .delegatee
                        .decrypt_bytes(transformed, b"aad")
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, hybrid_throughput);
criterion_main!(benches);
