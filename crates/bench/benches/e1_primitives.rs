//! E1 ("Table 1"): cost of the pairing-level primitives the construction
//! composes — the pairing itself, scalar multiplication in `G`, exponentiation
//! in `G_1`, hash-to-curve and hash-to-scalar — across security levels.
//!
//! The paper reports no absolute numbers; the series to check is the *shape*:
//! the pairing dominates everything else at every level, and costs grow
//! steeply with the field size (embedding degree 2 forces large `p`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tibpre_bench::{bench_rng, sweep_levels};
use tibpre_pairing::PairingParams;

fn primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_primitives");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for level in sweep_levels() {
        let params = PairingParams::cached(level);
        let mut rng = bench_rng();
        let p = params.random_g1(&mut rng);
        let q = params.random_g1(&mut rng);
        let scalar = params.random_nonzero_scalar(&mut rng);
        let gt = params.random_gt(&mut rng);
        let label = level.label();

        group.bench_function(BenchmarkId::new("pairing", label), |b| {
            b.iter(|| params.pairing(&p, &q))
        });
        group.bench_function(BenchmarkId::new("g1_scalar_mul", label), |b| {
            b.iter(|| p.mul_scalar(&scalar))
        });
        group.bench_function(BenchmarkId::new("gt_exponentiation", label), |b| {
            b.iter(|| gt.pow_scalar(&scalar))
        });
        group.bench_function(BenchmarkId::new("hash_to_curve_H1", label), |b| {
            let mut counter = 0u64;
            b.iter(|| {
                counter += 1;
                params
                    .hash_to_g1("TIBPRE-BF-H1", &[&counter.to_be_bytes()])
                    .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("hash_to_scalar_H2", label), |b| {
            let mut counter = 0u64;
            b.iter(|| {
                counter += 1;
                params.hash_to_zq("TIBPRE-H2", &[&counter.to_be_bytes()])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, primitives);
criterion_main!(benches);
