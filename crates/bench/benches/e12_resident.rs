//! E12: the wire-resident store against the decoded-struct baseline.
//!
//! The tentpole claim of the residency refactor, with numbers attached:
//!
//! * **puts/sec** — the resident ingest pipeline (encode once, WAL and
//!   shard share the buffer, snapshots memcpy resident bytes) vs. the PR-5
//!   decoded-struct pipeline (encode for the WAL, retain the struct,
//!   re-encode the entire live set at every snapshot), emulated here
//!   faithfully from public pieces since the old store no longer exists;
//! * **bytes/record** — resident payload bytes per record against the v1
//!   wire size (the gate: ≤ 1.05×; in fact identical bytes);
//! * **cold vs hot get** — first read decodes from the mapped snapshot
//!   (page fault + CRC + decode), repeat reads hit the per-shard LRU;
//! * **reopen time** — O(index) opens at two store sizes (the full set and
//!   a quarter of it), plus the number of record decodes the open performed
//!   (must be zero: recovery replays only the WAL tail).
//!
//! Not a Criterion bench: one pass over a sizeable record set, wall-clock
//! timed, emitting `BENCH_e12.json` at the workspace root (override the
//! path with `TIBPRE_BENCH_JSON`) so the perf trajectory is a committed
//! artifact.  Record count defaults to 10k; `TIBPRE_E12_RECORDS=1000000`
//! is the nightly's 1M-record run.  The decoded-struct baseline is rate-
//! measured on at most 10k records — its snapshot re-encode is quadratic-ish
//! in the live set, which is precisely the point.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Instant;
use tibpre_bench::Fixture;
use tibpre_core::{Delegator, HybridCiphertext, TypeTag};
use tibpre_ibe::Identity;
use tibpre_pairing::SecurityLevel;
use tibpre_phr::category::Category;
use tibpre_phr::durable::Durability;
use tibpre_phr::metrics;
use tibpre_phr::record::RecordId;
use tibpre_phr::store::{EncryptedPhrStore, StoredRecord};
use tibpre_phr::FsyncPolicy;
use tibpre_storage::{snapshot, TempDir, WalWriter};
use tibpre_wire::{encode_bare, WireVersion};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn sample_ciphertext(delegator: &Delegator, rng: &mut StdRng) -> HybridCiphertext {
    delegator.encrypt_bytes(&[0x42u8; 64], b"e12", &TypeTag::new("lab-results"), rng)
}

/// The PR-5 decoded-struct ingest pipeline, emulated: encode each record for
/// the WAL, retain the decoded struct, and at every snapshot re-encode the
/// whole shard state — every live record *and* the audit trail, exactly what
/// `encode_shard_state` persisted — into a monolithic payload.  Same fsync
/// policy (never), same on-disk artifacts, same snapshot cadence as the
/// resident run.
fn baseline_puts_per_sec(
    ciphertext: &HybridCiphertext,
    alice: &Identity,
    records: usize,
    cadence: usize,
) -> f64 {
    use tibpre_phr::audit::AuditEvent;
    let tmp = TempDir::new("e12-baseline").unwrap();
    let dir = tmp.path().to_path_buf();
    let mut wal = WalWriter::open(&dir.join("shard-00.wal"), 0, FsyncPolicy::Never).unwrap();
    let mut live: BTreeMap<RecordId, StoredRecord> = BTreeMap::new();
    let mut by_patient: std::collections::HashMap<Vec<u8>, std::collections::BTreeSet<RecordId>> =
        std::collections::HashMap::new();
    let mut audit: Vec<AuditEvent> = Vec::new();
    let mut gen = 0u64;
    let mut timed = std::time::Duration::ZERO;
    let mut i = 0usize;
    while i < records {
        // Ciphertexts and titles are prepared outside the timed region (a
        // real ingester moves freshly encrypted blobs in; cloning one
        // fixture ciphertext per put is harness cost, not pipeline cost).
        let chunk = CHUNK.min(records - i);
        let mut cts: Vec<HybridCiphertext> = (0..chunk).map(|_| ciphertext.clone()).collect();
        let titles: Vec<String> = (i..i + chunk).map(|n| format!("r{n}")).collect();
        let start = Instant::now();
        for (ct, title) in cts.drain(..).zip(titles) {
            i += 1;
            let record = StoredRecord {
                id: RecordId(i as u64),
                patient: alice.clone(),
                category: Category::LabResults,
                title,
                ciphertext: ct,
            };
            let frame = encode_bare(&record, WireVersion::DEFAULT);
            wal.append(&frame);
            wal.commit().unwrap();
            audit.push(AuditEvent::RecordStored {
                id: record.id,
                patient: record.patient.clone(),
                category: record.category.clone(),
                at: i as u64,
            });
            by_patient
                .entry(record.patient.as_bytes().to_vec())
                .or_default()
                .insert(record.id);
            live.insert(record.id, record);
            if i.is_multiple_of(cadence) {
                // The decoded-struct snapshot: every live record and every
                // audit event re-encoded (the resident store's snapshot
                // copies record bytes and re-encodes only the audit
                // metadata).
                let mut payload = Vec::new();
                for record in live.values() {
                    payload.extend_from_slice(&encode_bare(record, WireVersion::DEFAULT));
                }
                for event in &audit {
                    payload.extend_from_slice(&encode_bare(event, WireVersion::DEFAULT));
                }
                gen += 1;
                snapshot::write_snapshot(&dir, "shard-00", gen, 0, &payload, false).unwrap();
            }
        }
        timed += start.elapsed();
    }
    records as f64 / timed.as_secs_f64()
}

/// Pre-clone chunk size: big enough to amortize, small enough that the 1M
/// nightly never holds more than a few MB of pre-built ciphertexts.
const CHUNK: usize = 4096;

/// Drives `range` puts into `store` with ciphertexts and titles prepared
/// outside the timed region; returns the timed duration.
fn timed_puts(
    store: &EncryptedPhrStore,
    ciphertext: &HybridCiphertext,
    alice: &Identity,
    range: std::ops::Range<usize>,
    ids: &mut Vec<RecordId>,
) -> std::time::Duration {
    let mut timed = std::time::Duration::ZERO;
    let mut i = range.start;
    while i < range.end {
        let chunk = CHUNK.min(range.end - i);
        let mut cts: Vec<HybridCiphertext> = (0..chunk).map(|_| ciphertext.clone()).collect();
        let titles: Vec<String> = (i..i + chunk).map(|n| format!("r{n}")).collect();
        let start = Instant::now();
        for (ct, title) in cts.drain(..).zip(&titles) {
            ids.push(store.put(alice, &Category::LabResults, title, ct));
        }
        timed += start.elapsed();
        i += chunk;
    }
    timed
}

fn main() {
    let records = env_usize("TIBPRE_E12_RECORDS", 10_000);
    let baseline_records = records.min(env_usize("TIBPRE_E12_BASELINE_RECORDS", 10_000));
    // The store's default snapshot cadence, stretched only at nightly scale
    // so total snapshot volume stays bounded (each snapshot rewrites the
    // live set; at 1M records a 256-op cadence would write terabytes).
    let cadence = (records / 64).max(256);
    // Rates are best-of-N at smoke scale: the box CI runs on is small and
    // noisy, and best-of-N is the standard way to measure the pipelines
    // rather than the scheduler.  The 1M nightly runs a single pass.
    let trials = if records <= 100_000 { 3 } else { 1 };
    let f = Fixture::new(SecurityLevel::Toy);
    let mut rng = StdRng::seed_from_u64(0xE12);
    let ciphertext = sample_ciphertext(&f.delegator, &mut rng);
    let alice = Identity::new("alice");
    eprintln!("e12: {records} records (baseline rate over {baseline_records}), snapshot cadence {cadence}");

    let baseline_rate = (0..trials)
        .map(|_| baseline_puts_per_sec(&ciphertext, &alice, baseline_records, cadence))
        .fold(f64::MIN, f64::max);
    eprintln!("e12: baseline {baseline_rate:.0} puts/s (best of {trials})");

    // --- Resident ingest: the real store, same cadence and fsync policy. ---
    let tmp = TempDir::new("e12-resident").unwrap();
    let dir = tmp.path().join("db");
    let durability = || {
        Durability::new(f.params.clone())
            .shards(1)
            .fsync(FsyncPolicy::Never)
            .snapshot_every(cadence as u64)
    };
    let quarter = records / 4;
    let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
    let mut ids = Vec::with_capacity(records);
    let quarter_elapsed = timed_puts(&store, &ciphertext, &alice, 0..quarter, &mut ids);
    // Reopen checkpoint at a quarter of the data, for the sublinearity row.
    store.force_snapshot().unwrap();
    drop(store);
    let open_start = Instant::now();
    let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
    let reopen_quarter = open_start.elapsed();
    assert_eq!(store.record_count(), quarter);

    let put_elapsed =
        quarter_elapsed + timed_puts(&store, &ciphertext, &alice, quarter..records, &mut ids);
    let mut resident_rate = records as f64 / put_elapsed.as_secs_f64();
    // Extra rate trials on a throwaway store (same cadence, same inline
    // snapshots) — the artifact-producing store above stays untouched.
    for _ in 1..trials {
        let trial_tmp = TempDir::new("e12-resident-trial").unwrap();
        let trial_store =
            EncryptedPhrStore::open(trial_tmp.path().join("db"), durability()).unwrap();
        let mut trial_ids = Vec::with_capacity(records);
        let elapsed = timed_puts(
            &trial_store,
            &ciphertext,
            &alice,
            0..records,
            &mut trial_ids,
        );
        resident_rate = resident_rate.max(records as f64 / elapsed.as_secs_f64());
    }
    eprintln!("e12: resident {resident_rate:.0} puts/s (best of {trials})");

    // --- Bytes per record vs the v1 wire size. ---
    let resident_bytes = store.encoded_payload_bytes();
    let reference_bytes = encode_bare(store.get(ids[0]).unwrap().as_ref(), WireVersion::V1).len()
        as u64
        * records as u64;
    let bytes_ratio = resident_bytes as f64 / reference_bytes as f64;

    // --- Reopen at full size: O(index), zero record decodes. ---
    store.force_snapshot().unwrap();
    drop(store);
    let decodes_before = metrics::record_decodes();
    let open_start = Instant::now();
    let store = EncryptedPhrStore::open(&dir, durability()).unwrap();
    let reopen_full = open_start.elapsed();
    let reopen_decodes = metrics::record_decodes() - decodes_before;
    assert_eq!(store.record_count(), records);

    // --- Cold vs hot gets over an LRU-sized sample of mapped records. ---
    let sample: Vec<RecordId> = ids
        .iter()
        .step_by((records / 64).max(1))
        .copied()
        .take(64)
        .collect();
    let start = Instant::now();
    for &id in &sample {
        store.get(id).unwrap();
    }
    let cold_ns = start.elapsed().as_nanos() as f64 / sample.len() as f64;
    let start = Instant::now();
    for &id in &sample {
        store.get(id).unwrap();
    }
    let hot_ns = start.elapsed().as_nanos() as f64 / sample.len() as f64;

    let speedup = resident_rate / baseline_rate;
    let reopen_scaling = reopen_full.as_secs_f64() / reopen_quarter.as_secs_f64().max(1e-9);
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e12_resident\",\n",
            "  \"level\": \"toy\",\n",
            "  \"records\": {},\n",
            "  \"baseline_records\": {},\n",
            "  \"snapshot_cadence\": {},\n",
            "  \"baseline_puts_per_sec\": {:.1},\n",
            "  \"resident_puts_per_sec\": {:.1},\n",
            "  \"puts_speedup\": {:.2},\n",
            "  \"resident_bytes_per_record\": {:.1},\n",
            "  \"v1_wire_bytes_per_record\": {:.1},\n",
            "  \"bytes_ratio\": {:.4},\n",
            "  \"cold_get_ns\": {:.0},\n",
            "  \"hot_get_ns\": {:.0},\n",
            "  \"reopen_quarter_ms\": {:.3},\n",
            "  \"reopen_full_ms\": {:.3},\n",
            "  \"reopen_scaling_4x_data\": {:.2},\n",
            "  \"reopen_record_decodes\": {}\n",
            "}}\n"
        ),
        records,
        baseline_records,
        cadence,
        baseline_rate,
        resident_rate,
        speedup,
        resident_bytes as f64 / records as f64,
        reference_bytes as f64 / records as f64,
        bytes_ratio,
        cold_ns,
        hot_ns,
        reopen_quarter.as_secs_f64() * 1e3,
        reopen_full.as_secs_f64() * 1e3,
        reopen_scaling,
        reopen_decodes,
    );
    print!("{json}");

    let out = std::env::var("TIBPRE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_e12.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).unwrap();
    eprintln!("e12: wrote {out}");

    // The acceptance gates, enforced here so `cargo bench e12` is the smoke
    // test CI runs.
    assert!(
        bytes_ratio <= 1.05,
        "bytes/record ratio {bytes_ratio:.4} exceeds 1.05"
    );
    assert_eq!(reopen_decodes, 0, "reopen must decode zero records");
    // The speedup gate applies only when both pipelines ran the *identical*
    // workload (same record count, same cadence).  At nightly scale the
    // baseline's rate is sampled on a capped record set whose live-set —
    // and therefore snapshot re-encode cost — is far smaller, which
    // flatters it into meaninglessness; the ratio is then reported but not
    // gated.  `TIBPRE_E12_MIN_SPEEDUP` lets a noisy shared CI runner gate a
    // looser regression tripwire; the default is the acceptance bar.
    let min_speedup = std::env::var("TIBPRE_E12_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1.5);
    if baseline_records == records {
        assert!(
            speedup >= min_speedup,
            "resident puts/sec only {speedup:.2}x the decoded-struct baseline (gate {min_speedup})"
        );
    } else {
        eprintln!(
            "e12: speedup gate skipped (baseline sampled on {baseline_records} of {records} records)"
        );
    }
}
