//! E8: effect of the precomputation subsystem — prepared (fixed-argument)
//! pairings, fixed-base multiplication tables, and batched re-encryption —
//! against the naive paths they replace.
//!
//! The series to check: `pairing_prepared` must beat `pairing_naive` and
//! `g1_mul_fixed_base` must beat `g1_mul_naive` by ≥ 2x at every level (the
//! gap widens with the field size, because the avoided Miller-loop work grows
//! faster than the shared final exponentiation).  The one-time table build
//! costs (`prepare_pairing`, `build_g1_table`) are reported so the
//! amortisation break-even point can be read off directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tibpre_bench::{bench_rng, sweep_levels, Fixture};
use tibpre_core::{proxy, TypeTag};
use tibpre_pairing::{G1Precomp, PairingParams, SecurityLevel};

fn fixed_argument_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_precomp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for level in sweep_levels() {
        let params = PairingParams::cached(level);
        let mut rng = bench_rng();
        let fixed = params.random_g1(&mut rng);
        let other = params.random_g1(&mut rng);
        let scalar = params.random_nonzero_scalar(&mut rng);
        let label = level.label();

        // Pairing against a fixed argument: naive Miller loop per call vs.
        // stored line coefficients.
        group.bench_function(BenchmarkId::new("pairing_naive", label), |b| {
            b.iter(|| params.pairing(&other, &fixed))
        });
        let prepared = params.prepare(&fixed);
        group.bench_function(BenchmarkId::new("pairing_prepared", label), |b| {
            b.iter(|| prepared.pairing(&other))
        });
        group.bench_function(BenchmarkId::new("prepare_pairing", label), |b| {
            b.iter(|| params.prepare(&fixed))
        });

        // Fixed-base scalar multiplication: generic windowed ladder vs. the
        // doubling-free window table.
        group.bench_function(BenchmarkId::new("g1_mul_naive", label), |b| {
            b.iter(|| params.generator().mul_scalar(&scalar))
        });
        let table = params.generator_precomp();
        group.bench_function(BenchmarkId::new("g1_mul_fixed_base", label), |b| {
            b.iter(|| table.mul_scalar(&scalar))
        });
        group.bench_function(BenchmarkId::new("build_g1_table", label), |b| {
            b.iter(|| G1Precomp::new(params.generator(), params.q().bits()))
        });
    }
    group.finish();
}

/// Proxy-side batching: converting a burst of same-type ciphertexts with one
/// re-encryption key, naive pairing per ciphertext vs. `re_encrypt_batch`.
fn batched_reencryption(c: &mut Criterion) {
    const BATCH: usize = 32;
    let mut group = c.benchmark_group("e8_precomp_batch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let f = Fixture::new(SecurityLevel::Toy);
    let mut rng = bench_rng();
    let t = TypeTag::new("illness-history");
    let rekey = f
        .delegator
        .make_reencryption_key(&f.delegatee_id, f.kgc2_public(), &t, &mut rng)
        .expect("shared parameters");
    let ciphertexts: Vec<_> = (0..BATCH)
        .map(|_| {
            let m = f.params.random_gt(&mut rng);
            f.delegator.encrypt_typed(&m, &t, &mut rng)
        })
        .collect();

    group.bench_function(
        BenchmarkId::new("reencrypt_naive_pairing", format!("batch{BATCH}")),
        |b| {
            b.iter(|| {
                // The pre-PR per-ciphertext cost: one full Miller loop each.
                ciphertexts
                    .iter()
                    .map(|ct| {
                        let adjustment = f.params.pairing(&ct.c1, rekey.rk_point());
                        ct.c2.mul(&adjustment)
                    })
                    .collect::<Vec<_>>()
            })
        },
    );
    group.bench_function(
        BenchmarkId::new("reencrypt_batch", format!("batch{BATCH}")),
        |b| b.iter(|| proxy::re_encrypt_batch(&ciphertexts, &rekey).expect("types match")),
    );
    group.finish();
}

criterion_group!(benches, fixed_argument_primitives, batched_reencryption);
criterion_main!(benches);
