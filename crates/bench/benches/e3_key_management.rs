//! E3 ("Figure 1"): key-management cost as the number of categories (types)
//! and delegatees grows — the paper's "the delegator only needs one key pair"
//! claim, against the per-type-virtual-identity baseline.
//!
//! Two series are produced for T ∈ {1, 2, 4, 8, 16, 32} types:
//!   * time to provision T delegations with the TIB-PRE scheme
//!     (re-encryption keys only; the delegator's key material stays constant),
//!   * time to provision T delegations with the multi-key baseline
//!     (extract one per-type key *and* build one re-encryption key each).
//!
//! In addition the bench prints the stored-key-material table (bytes) that the
//! size experiment E5 references.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use tibpre_bench::{bench_rng, Fixture};
use tibpre_core::baseline::multikey::MultiKeyDelegator;
use tibpre_core::sizes::SizeReport;
use tibpre_core::TypeTag;
use tibpre_pairing::SecurityLevel;

fn key_management(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_key_management");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let fixture = Fixture::new(SecurityLevel::Toy);
    let mut rng = bench_rng();
    let report = SizeReport::for_params(&fixture.params);

    println!("\nE3 stored key material (bytes) — one delegator, T categories");
    println!(
        "{:>6} {:>16} {:>22}",
        "T", "TIB-PRE (ours)", "multi-key baseline"
    );
    for t_count in [1usize, 2, 4, 8, 16, 32] {
        println!(
            "{:>6} {:>16} {:>22}",
            t_count,
            report.tibpre_delegator_storage(t_count),
            report.multikey_delegator_storage(t_count)
        );
    }
    println!();

    for t_count in [1usize, 2, 4, 8, 16, 32] {
        let types: Vec<TypeTag> = (0..t_count)
            .map(|i| TypeTag::new(format!("category-{i}")))
            .collect();
        group.throughput(Throughput::Elements(t_count as u64));

        // Ours: one key pair; provisioning = T × Pextract.
        group.bench_with_input(
            BenchmarkId::new("tibpre_provision_T_delegations", t_count),
            &types,
            |b, types| {
                b.iter(|| {
                    for t in types {
                        fixture
                            .delegator
                            .make_reencryption_key(
                                &fixture.delegatee_id,
                                fixture.kgc2_public(),
                                t,
                                &mut rng,
                            )
                            .unwrap();
                    }
                })
            },
        );

        // Baseline: T key extractions + T re-encryption keys.
        group.bench_with_input(
            BenchmarkId::new("multikey_provision_T_delegations", t_count),
            &types,
            |b, types| {
                b.iter(|| {
                    let mut delegator = MultiKeyDelegator::new(
                        fixture.kgc1.public_params().clone(),
                        fixture.delegator.identity().clone(),
                    );
                    for t in types {
                        delegator.register_type(&fixture.kgc1, t);
                        delegator
                            .make_reencryption_key(
                                &fixture.delegatee_id,
                                fixture.kgc2_public(),
                                t,
                                &mut rng,
                            )
                            .unwrap();
                    }
                    delegator.stored_key_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, key_management);
criterion_main!(benches);
