//! E5 ("Table 3"): communication and storage cost — serialized sizes of every
//! object the scheme transmits, per security level, plus the time spent on
//! (de)serialization itself.
//!
//! The size table is printed to stdout when the bench runs; EXPERIMENTS.md
//! records the values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tibpre_bench::{bench_rng, sweep_levels, Fixture};
use tibpre_core::sizes::SizeReport;
use tibpre_core::{ReEncryptionKey, TypeTag, TypedCiphertext};
use tibpre_pairing::PairingParams;

fn sizes(c: &mut Criterion) {
    // ---- The size table itself (pure accounting, printed once) ----
    println!("\nE5 serialized sizes per security level (bytes, v0 → v1)");
    println!(
        "{:<22} {:>14} {:>14} {:>12} {:>16} {:>16}",
        "level", "G elem", "G1 elem", "private key", "typed ctext", "re-enc key"
    );
    for level in sweep_levels() {
        let params = PairingParams::cached(level);
        let report = SizeReport::for_params(&params);
        let pair = |a: usize, b: usize| format!("{a}→{b}");
        println!(
            "{:<22} {:>14} {:>14} {:>12} {:>16} {:>16}",
            level.label(),
            pair(report.v0.g1_element, report.v1.g1_element),
            pair(report.v0.gt_element, report.v1.gt_element),
            report.private_key,
            pair(report.v0.typed_ciphertext, report.v1.typed_ciphertext),
            pair(report.v0.reencryption_key, report.v1.reencryption_key),
        );
    }
    println!();

    // ---- Serialization / deserialization timing ----
    let mut group = c.benchmark_group("e5_serialization");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for level in sweep_levels() {
        let fixture = Fixture::new(level);
        let mut rng = bench_rng();
        let t = TypeTag::new("illness-history");
        let m = fixture.params.random_gt(&mut rng);
        let ct = fixture.delegator.encrypt_typed(&m, &t, &mut rng);
        let rk = fixture
            .delegator
            .make_reencryption_key(&fixture.delegatee_id, fixture.kgc2_public(), &t, &mut rng)
            .unwrap();
        let ct_bytes = ct.to_bytes();
        let rk_bytes = rk.to_bytes();
        let label = level.label();

        group.bench_function(BenchmarkId::new("typed_ciphertext_encode", label), |b| {
            b.iter(|| ct.to_bytes())
        });
        group.bench_function(BenchmarkId::new("typed_ciphertext_decode", label), |b| {
            b.iter(|| TypedCiphertext::from_bytes(&fixture.params, &ct_bytes).unwrap())
        });
        group.bench_function(BenchmarkId::new("rekey_decode", label), |b| {
            b.iter(|| ReEncryptionKey::from_bytes(&fixture.params, &rk_bytes).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, sizes);
criterion_main!(benches);
