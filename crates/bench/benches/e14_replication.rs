//! Experiment E14 — read replicas under load.
//!
//! Boots a kgc/store/proxy node set plus two read replicas tailing the
//! primary's WAL, then drives `tibpre-load` twice: once with every read on
//! the primary (the single-node baseline) and once round-robined across
//! the replicas (`--read-replicas`).  Finishes with a stale-revocation
//! drill: delete a record and log a revocation on the primary, wait for
//! both replicas to report the primary's exact applied offsets, and count
//! any replica that still serves the record — the count must be zero.
//!
//! Gates: zero errors in both phases, replica aggregate req/s at least
//! `TIBPRE_E14_MIN_SPEEDUP` (default 1.5) times the 50 req/s single-node
//! floor E13 has enforced since the node layer landed (multi-core hosts
//! only), and zero stale-revocation reads.
//!
//! Scale knobs: `TIBPRE_E14_CLIENTS`, `TIBPRE_E14_REQUESTS`,
//! `TIBPRE_E14_PATIENTS`, `TIBPRE_E14_RECORDS_PER_PATIENT`,
//! `TIBPRE_E14_PAYLOAD`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use tibpre_client::{
    params_for_level, ClientConfig, ClientError, Connection, KgcClient, NodeRole, RemoteError,
    Request, Response, StoreClient,
};
use tibpre_core::Delegator;
use tibpre_ibe::Identity;
use tibpre_pairing::SecurityLevel;
use tibpre_phr::{Category, HealthRecord};
use tibpre_server::load::{run_load, LoadConfig, LoadReport};
use tibpre_server::{node, NodeConfig};

/// The single-node req/s floor E13 enforces (PR 7's service-layer gate).
const SINGLE_NODE_FLOOR: f64 = 50.0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn positions(conn: &mut Connection) -> Vec<u64> {
    match conn.call(&Request::ReplicationStatus).expect("status") {
        Response::ReplicaStatus { positions, .. } => positions,
        other => panic!("expected ReplicaStatus, got {other:?}"),
    }
}

fn wait_caught_up(primary: &mut StoreClient, replicas: &mut [StoreClient]) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let want = positions(primary.connection());
        if replicas
            .iter_mut()
            .all(|replica| positions(replica.connection()) == want)
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replicas never reached the primary's applied offsets"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn summarize(tag: &str, report: &LoadReport, requests: u64) {
    eprintln!(
        "e14 [{tag}]: {} ok / {} denied / {} errors in {:.2}s — p50 {}us p99 {}us, {:.0} req/s",
        report.ok,
        report.denied,
        report.errors,
        report.elapsed.as_secs_f64(),
        report.p50_us,
        report.p99_us,
        report.req_per_sec,
    );
    assert_eq!(report.errors, 0, "[{tag}] transport errors under load");
    assert_eq!(
        report.ok + report.denied,
        requests,
        "[{tag}] every request must be answered"
    );
}

fn main() {
    let clients = env_usize("TIBPRE_E14_CLIENTS", 4);
    let requests = env_usize("TIBPRE_E14_REQUESTS", 800) as u64;
    let patients = env_usize("TIBPRE_E14_PATIENTS", 16);
    let records_per_patient = env_usize("TIBPRE_E14_RECORDS_PER_PATIENT", 4);
    let payload_len = env_usize("TIBPRE_E14_PAYLOAD", 256);
    let min_speedup = env_f64("TIBPRE_E14_MIN_SPEEDUP", 1.5);

    // The topology: kgc + durable primary store + proxy, plus two read
    // replicas tailing the primary's WAL over TCP.  Toy parameters — the
    // pairing level scales crypto cost, and E14 measures the read path.
    let tmp = tibpre_storage::TempDir::new("e14-primary").expect("tempdir");
    let kgc = node::start(NodeConfig::new(NodeRole::Kgc)).expect("kgc node");
    let mut store_config = NodeConfig::new(NodeRole::Store);
    store_config.data_dir = Some(tmp.path().to_path_buf());
    let store = node::start(store_config).expect("primary store node");
    let mut proxy_config = NodeConfig::new(NodeRole::Proxy);
    proxy_config.store_addr = Some(store.addr().to_string());
    let proxy = node::start(proxy_config).expect("proxy node");
    let replicas: Vec<_> = (0..2)
        .map(|i| {
            let mut config = NodeConfig::new(NodeRole::Store);
            config.replica_of = Some(store.addr().to_string());
            node::start(config).unwrap_or_else(|e| panic!("replica {i}: {e}"))
        })
        .collect();
    eprintln!(
        "e14: kgc {} / primary {} / proxy {} / replicas {} + {}",
        kgc.addr(),
        store.addr(),
        proxy.addr(),
        replicas[0].addr(),
        replicas[1].addr(),
    );

    let base = LoadConfig {
        kgc_addr: kgc.addr().to_string(),
        store_addr: store.addr().to_string(),
        proxy_addr: proxy.addr().to_string(),
        clients,
        requests,
        patients,
        records_per_patient,
        churn_every: 25,
        payload_len,
        ..LoadConfig::default()
    };

    // Phase 1 — baseline: every read hits the primary alone.
    let baseline_config = LoadConfig {
        read_replicas: vec![store.addr().to_string()],
        ..base.clone()
    };
    let baseline = run_load(&baseline_config).expect("baseline load run");
    summarize("primary-only", &baseline, requests);

    // Phase 2 — the real topology: reads round-robin across both replicas
    // while the write/churn traffic stays on the primary.
    let replica_config = LoadConfig {
        read_replicas: replicas
            .iter()
            .map(|handle| handle.addr().to_string())
            .collect(),
        seed: base.seed + 1,
        ..base.clone()
    };
    let replicated = run_load(&replica_config).expect("replica load run");
    summarize("read-replicas", &replicated, requests);

    // Phase 3 — the stale-revocation drill.  Store a record, replicate it,
    // then delete it and log the matching revocation on the primary; once
    // both replicas report the primary's applied offsets, any replica
    // still serving the record is a stale read.
    let params = params_for_level(SecurityLevel::Toy);
    let client_config = ClientConfig::default();
    let mut rng = StdRng::seed_from_u64(0xE14);
    let mut kgc_client = KgcClient::connect(kgc.addr(), &params, &client_config).unwrap();
    let domain = kgc_client.public_params().unwrap();
    let patient = Identity::new("e14-revoked-patient");
    let delegator = Delegator::new(domain, kgc_client.extract(&patient).unwrap());
    let mut primary = StoreClient::connect(store.addr(), &params, &client_config).unwrap();
    let mut replica_clients: Vec<StoreClient> = replicas
        .iter()
        .map(|handle| StoreClient::connect(handle.addr(), &params, &client_config).unwrap())
        .collect();

    let category = Category::LabResults;
    let aad = HealthRecord::associated_data(&patient, &category, "revoked");
    let ciphertext = delegator.encrypt_bytes(b"stale?", &aad, &category.type_tag(), &mut rng);
    let id = primary
        .put(&patient, &category, "revoked", ciphertext)
        .unwrap();
    wait_caught_up(&mut primary, &mut replica_clients);
    for replica in &mut replica_clients {
        replica.get(id).expect("replicated record must be readable");
    }
    let ok = primary
        .connection()
        .call(&Request::LogPolicyChange {
            patient: patient.clone(),
            category: category.clone(),
            grantee: Identity::new("e14-grantee"),
            granted: false,
        })
        .unwrap();
    assert!(matches!(ok, Response::Ok));
    primary.delete(id, &patient).unwrap();
    wait_caught_up(&mut primary, &mut replica_clients);
    let stale_revocation_reads = replica_clients
        .iter_mut()
        .map(|replica| replica.get(id))
        .filter(|read| !matches!(read, Err(ClientError::Remote(RemoteError::NotFound))))
        .count();
    let primary_audit = primary.audit_snapshot().unwrap();
    for replica in &mut replica_clients {
        assert_eq!(
            replica.audit_snapshot().unwrap(),
            primary_audit,
            "replica audit trail diverged from the primary"
        );
    }

    for handle in replicas {
        handle.shutdown();
        handle.wait();
    }
    for handle in [proxy, store, kgc] {
        handle.shutdown();
        handle.wait();
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup_vs_floor = replicated.req_per_sec / SINGLE_NODE_FLOOR;
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e14_replication\",\n",
            "  \"level\": \"toy\",\n",
            "  \"clients\": {},\n",
            "  \"requests\": {},\n",
            "  \"patients\": {},\n",
            "  \"records_per_patient\": {},\n",
            "  \"payload_bytes\": {},\n",
            "  \"read_replicas\": 2,\n",
            "  \"baseline_req_per_sec\": {:.1},\n",
            "  \"replica_req_per_sec\": {:.1},\n",
            "  \"replica_p50_us\": {},\n",
            "  \"replica_p99_us\": {},\n",
            "  \"single_node_floor_req_per_sec\": {:.1},\n",
            "  \"speedup_vs_floor\": {:.2},\n",
            "  \"stale_revocation_reads\": {},\n",
            "  \"errors\": {}\n",
            "}}\n"
        ),
        clients,
        requests,
        patients,
        records_per_patient,
        payload_len,
        baseline.req_per_sec,
        replicated.req_per_sec,
        replicated.p50_us,
        replicated.p99_us,
        SINGLE_NODE_FLOOR,
        speedup_vs_floor,
        stale_revocation_reads,
        baseline.errors + replicated.errors,
    );
    print!("{json}");

    let out = std::env::var("TIBPRE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_e14.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).unwrap();
    eprintln!("e14: wrote {out}");

    // Acceptance gates.
    assert_eq!(
        stale_revocation_reads, 0,
        "a replica served a record past its revocation's applied offset"
    );
    if cores >= 4 {
        assert!(
            speedup_vs_floor >= min_speedup,
            "replica reads at {:.1} req/s are below {min_speedup}x the \
             {SINGLE_NODE_FLOOR} req/s single-node floor",
            replicated.req_per_sec,
        );
    } else {
        eprintln!("e14: {cores} cores — skipping the {min_speedup}x floor gate");
    }
}
