//! E6 ("Figure 3"): proxy-compromise containment.
//!
//! For a patient with 1000 records split over T ∈ {2, 4, 8, 16} categories,
//! one proxy (and the grantee it serves) is fully compromised.  The series
//! reports the fraction of the patient's records the attacker can recover:
//!
//!   * TIB-PRE (this paper): ≈ 1/T of the records (only the delegated category),
//!   * identity-only PRE baseline: 100% regardless of T.
//!
//! The fractions are printed; the timed portion measures the attacker's work
//! for the TIB-PRE case (converting everything it can with the leaked keys).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;
use tibpre_bench::bench_rng;
use tibpre_core::baseline::identity_pre;
use tibpre_core::Delegatee;
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::{
    category::Category, patient::Patient, proxy_service::ProxyService, record::HealthRecord,
    store::EncryptedPhrStore,
};

const TOTAL_RECORDS: usize = 1000;

fn compromise(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_compromise");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    let mut rng = bench_rng();
    let params = PairingParams::insecure_toy();
    let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
    let provider_kgc = Kgc::setup(params.clone(), "providers", &mut rng);

    println!(
        "\nE6 fraction of records exposed when one proxy is compromised ({TOTAL_RECORDS} records)"
    );
    println!(
        "{:>6} {:>18} {:>26}",
        "T", "TIB-PRE (ours)", "identity-only baseline"
    );

    for t_count in [2usize, 4, 8, 16] {
        // --- Build the patient's store with T categories and one proxy per category ---
        let store = Arc::new(EncryptedPhrStore::new("compromise-store"));
        let mut patient = Patient::new("alice@bench", &patient_kgc);
        let categories: Vec<Category> = (0..t_count)
            .map(|i| Category::Custom(format!("cat-{i}")))
            .collect();
        for i in 0..TOTAL_RECORDS {
            let record = HealthRecord::new(
                patient.identity().clone(),
                categories[i % t_count].clone(),
                format!("r{i}"),
                vec![0xEE; 64],
            );
            patient.store_record(&store, &record, &mut rng).unwrap();
        }
        let mut proxies = Vec::new();
        let mut grantees = Vec::new();
        for category in &categories {
            let grantee = Identity::new(format!("provider-{category}"));
            let mut proxy = ProxyService::new(format!("proxy-{category}"), store.clone());
            patient
                .grant_access(
                    category.clone(),
                    &grantee,
                    provider_kgc.public_params(),
                    &mut proxy,
                    &mut rng,
                )
                .unwrap();
            proxies.push(proxy);
            grantees.push(grantee);
        }

        // --- The breach: proxy 0 and its grantee collude ---
        let exposed = proxies[0].simulate_compromise(patient.identity(), &grantees[0]);
        let ours_fraction = exposed.len() as f64 / TOTAL_RECORDS as f64;

        // --- Identity-only baseline: one key converts everything ---
        let baseline_delegator = identity_pre::IdentityPreDelegator::new(
            patient_kgc.public_params().clone(),
            patient_kgc.extract(&Identity::new("alice@bench")),
        );
        let colluder = Identity::new("colluder");
        let colluder_delegatee = Delegatee::new(provider_kgc.extract(&colluder));
        let baseline_rk = baseline_delegator
            .make_reencryption_key(&colluder, provider_kgc.public_params(), &mut rng)
            .unwrap();
        // Sample 30 records to confirm the 100% exposure without re-running
        // a thousand pairings per T.
        let sample = 30usize;
        let mut recovered = 0usize;
        for _ in 0..sample {
            let secret = params.random_gt(&mut rng);
            let ct = baseline_delegator.encrypt(&secret, &mut rng);
            let converted = identity_pre::re_encrypt(&ct, &baseline_rk);
            if colluder_delegatee.decrypt_reencrypted(&converted).unwrap() == secret {
                recovered += 1;
            }
        }
        let baseline_fraction = recovered as f64 / sample as f64;

        println!(
            "{:>6} {:>17.1}% {:>25.1}%",
            t_count,
            100.0 * ours_fraction,
            100.0 * baseline_fraction
        );

        // --- Timed portion: the attacker's conversion work under TIB-PRE ---
        group.bench_with_input(
            BenchmarkId::new("attacker_work_tibpre", t_count),
            &t_count,
            |b, _| {
                b.iter(|| {
                    proxies[0]
                        .simulate_compromise(patient.identity(), &grantees[0])
                        .len()
                })
            },
        );
    }
    println!();
    group.finish();
}

criterion_group!(benches, compromise);
criterion_main!(benches);
