//! Experiment E16 — pipelined framing + the cross-request batch scheduler.
//!
//! Boots one shared kgc + store and TWO proxy nodes against the same store:
//!
//! * **plain** — `batch_max = 1`, the scheduler fully disabled: every
//!   request is handled inline on its connection thread.  For the
//!   throughput baseline the bit-identical crypto caches (the `G1`
//!   validation memo and the delegatee mask cache) are switched **off**,
//!   reproducing the pre-scheduler (PR-7) per-request cost path;
//! * **batched** — the full fast path: the scheduler on, draining up to
//!   `batch_max` disclosures per tick across all connections into one
//!   engine batch, with the caches on.
//!
//! Both proxies hold the *same* installed re-encryption keys, and TIB-PRE
//! disclosure is deterministic, so before any timing the harness asserts
//! the batched proxy's pipelined cached responses are **byte-identical**
//! to the plain proxy's sequential *uncached* ones — which simultaneously
//! proves the scheduler and the caches change no output.  Then it measures
//! closed-loop requests/second under pipelined multi-client load on each,
//! and finally re-measures a single lockstep client against both proxies
//! with caches on to prove the adaptive drain window keeps idle latency
//! flat (that comparison isolates the scheduler, so both idle arms run the
//! same validation config).
//!
//! Scale knobs: `TIBPRE_E16_CLIENTS`, `TIBPRE_E16_REQUESTS`,
//! `TIBPRE_E16_PIPELINE`, `TIBPRE_E16_BATCH_MAX`,
//! `TIBPRE_E16_IDLE_REQUESTS`.  Gate knobs (for noisy CI runners):
//! `TIBPRE_E16_MIN_SPEEDUP`, `TIBPRE_E16_IDLE_SLACK`.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use tibpre_client::{
    params_for_level, ClientConfig, Connection, KgcClient, NodeRole, ProxyClient, Request,
    StoreClient,
};
use tibpre_core::Delegator;
use tibpre_ibe::Identity;
use tibpre_pairing::SecurityLevel;
use tibpre_phr::{Category, HealthRecord};
use tibpre_server::load::{run_load, LoadConfig, LoadReport};
use tibpre_server::{node, NodeConfig, NodeHandle};
use tibpre_wire::WireEncode;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Proves the batched path is an optimization, not a behaviour change: the
/// same disclosure sequence, pipelined through the scheduler-enabled proxy,
/// must produce response frames byte-identical to the plain proxy answering
/// one request at a time.  Both proxies share the store and the installed
/// re-encryption key, and disclosure is deterministic, so any divergence is
/// a bug in the batch path.
fn assert_bit_identical(
    kgc: &NodeHandle,
    store: &NodeHandle,
    plain: &NodeHandle,
    batched: &NodeHandle,
) {
    let params = params_for_level(SecurityLevel::Toy);
    let config = ClientConfig::default();
    let mut kgc_client = KgcClient::connect(kgc.addr(), &params, &config).unwrap();
    let mut store_client = StoreClient::connect(store.addr(), &params, &config).unwrap();
    let domain = kgc_client.public_params().unwrap();

    let patient = Identity::new("identity-check-patient");
    let provider = Identity::new("identity-check-provider");
    let category = Category::LabResults;
    let delegator = Delegator::new(domain.clone(), kgc_client.extract(&patient).unwrap());
    let mut rng = StdRng::seed_from_u64(0x000E_161D);
    let mut requests = Vec::new();
    for r in 0..8 {
        let title = format!("check-{r}");
        let mut body = vec![0u8; 64];
        rng.fill_bytes(&mut body);
        let aad = HealthRecord::associated_data(&patient, &category, &title);
        let ct = delegator.encrypt_bytes(&body, &aad, &category.type_tag(), &mut rng);
        let id = store_client.put(&patient, &category, &title, ct).unwrap();
        requests.push(Request::Disclose {
            patient: patient.clone(),
            id,
            requester: provider.clone(),
        });
    }
    // ONE key, installed on BOTH proxies — the precondition for comparing
    // their outputs at all.
    let key = delegator
        .make_reencryption_key(&provider, &domain, &category.type_tag(), &mut rng)
        .unwrap();
    for proxy in [plain, batched] {
        let mut client = ProxyClient::connect(proxy.addr(), &params, &config).unwrap();
        client.install_key(key.clone()).unwrap();
    }

    // Oracle: one-at-a-time, caches off — the PR-7 cost path exactly.
    // Probe: pipelined through the scheduler with caches on.  Byte equality
    // proves neither the batch path nor the caches change any output.
    tibpre_pairing::set_crypto_caches_enabled(false);
    let mut plain_conn = Connection::connect(plain.addr(), &params, &config).unwrap();
    let oracle: Vec<Vec<u8>> = requests
        .iter()
        .map(|request| {
            plain_conn
                .call_pipelined(std::slice::from_ref(request))
                .unwrap()[0]
                .to_wire_bytes()
        })
        .collect();
    tibpre_pairing::set_crypto_caches_enabled(true);
    let mut batched_conn = Connection::connect(batched.addr(), &params, &config).unwrap();
    let piped = batched_conn.call_pipelined(&requests).unwrap();
    assert_eq!(piped.len(), oracle.len());
    for (i, (response, want)) in piped.iter().zip(&oracle).enumerate() {
        assert_eq!(
            &response.to_wire_bytes(),
            want,
            "batched+cached response {i} is not bit-identical to the uncached \
             one-at-a-time path"
        );
    }
    eprintln!("e16: batched+cached responses bit-identical to the uncached one-at-a-time path");
}

fn drive(
    label: &str,
    kgc: &NodeHandle,
    store: &NodeHandle,
    proxy: &NodeHandle,
    clients: usize,
    requests: u64,
    pipeline: usize,
) -> LoadReport {
    let config = LoadConfig {
        kgc_addr: kgc.addr().to_string(),
        store_addr: store.addr().to_string(),
        proxy_addr: proxy.addr().to_string(),
        clients,
        requests,
        pipeline,
        // Churn off: E16 isolates the protocol/batching win, and the two
        // arms must serve identical traffic.
        churn_every: 0,
        ..LoadConfig::default()
    };
    let report = run_load(&config).expect("load run");
    eprintln!(
        "e16[{label}]: {} ok / {} denied / {} errors / {} reordered in {:.2}s — \
         p50 {}us p99 {}us, {:.0} req/s",
        report.ok,
        report.denied,
        report.errors,
        report.reordered,
        report.elapsed.as_secs_f64(),
        report.p50_us,
        report.p99_us,
        report.req_per_sec,
    );
    assert_eq!(report.errors, 0, "e16[{label}]: errors under load");
    assert_eq!(report.reordered, 0, "e16[{label}]: reordered responses");
    assert_eq!(
        report.ok + report.denied,
        requests,
        "e16[{label}]: every request must be answered"
    );
    report
}

fn main() {
    let clients = env_usize("TIBPRE_E16_CLIENTS", 8);
    let requests = env_usize("TIBPRE_E16_REQUESTS", 1600) as u64;
    let pipeline = env_usize("TIBPRE_E16_PIPELINE", 8);
    let batch_max = env_usize("TIBPRE_E16_BATCH_MAX", 16);
    let idle_requests = env_usize("TIBPRE_E16_IDLE_REQUESTS", 300) as u64;
    // The acceptance gates.  CI smoke runs relax them (shared multi-core
    // runners are noisy and parallelise the one-at-a-time arm); the
    // committed BENCH_e16.json carries the acceptance-grade defaults.
    let min_speedup = env_f64("TIBPRE_E16_MIN_SPEEDUP", 1.3);
    let idle_slack = env_f64("TIBPRE_E16_IDLE_SLACK", 1.10);

    let kgc = node::start(NodeConfig::new(NodeRole::Kgc)).expect("kgc node");
    let store = node::start(NodeConfig::new(NodeRole::Store)).expect("store node");
    let mut plain_config = NodeConfig::new(NodeRole::Proxy);
    plain_config.store_addr = Some(store.addr().to_string());
    plain_config.batch_max = 1; // scheduler off: the PR-7 one-at-a-time path
    let plain = node::start(plain_config).expect("plain proxy");
    let mut batched_config = NodeConfig::new(NodeRole::Proxy);
    batched_config.store_addr = Some(store.addr().to_string());
    batched_config.batch_max = batch_max;
    let batched = node::start(batched_config).expect("batched proxy");
    eprintln!(
        "e16: kgc {} / store {} / plain proxy {} / batched proxy {} \
         (batch_max {batch_max})",
        kgc.addr(),
        store.addr(),
        plain.addr(),
        batched.addr()
    );

    // Correctness before any timing.
    assert_bit_identical(&kgc, &store, &plain, &batched);

    // Throughput: the same multi-client load on each arm.  The baseline arm
    // is the PR-7 configuration end to end — one request per round trip AND
    // the per-request validation cost path (caches off); the batched arm is
    // this PR's full fast path.
    eprintln!("e16: {clients} clients x {requests} requests, pipeline {pipeline}");
    tibpre_pairing::set_crypto_caches_enabled(false);
    let base = drive("plain", &kgc, &store, &plain, clients, requests, 1);
    tibpre_pairing::set_crypto_caches_enabled(true);
    let coal = drive(
        "batched", &kgc, &store, &batched, clients, requests, pipeline,
    );
    let speedup = coal.req_per_sec / base.req_per_sec.max(1e-9);

    // Idle-latency guard: one lockstep client must not pay for the
    // scheduler it does not need (the adaptive window dispatches a lone
    // request immediately).  Caches stay on in BOTH idle arms so the
    // comparison isolates the scheduler alone.
    let idle_base = drive("idle-plain", &kgc, &store, &plain, 1, idle_requests, 1);
    let idle_coal = drive("idle-batched", &kgc, &store, &batched, 1, idle_requests, 1);

    let sched = coal.sched.clone().unwrap_or_default();
    eprintln!(
        "e16: speedup {speedup:.2}x ({:.0} → {:.0} req/s); idle p50 {}us → {}us; \
         scheduler ran {} batches over {} requests, histogram {:?}",
        base.req_per_sec,
        coal.req_per_sec,
        idle_base.p50_us,
        idle_coal.p50_us,
        sched.batches,
        sched.batched_requests,
        sched.hist,
    );

    for handle in [batched, plain, store, kgc] {
        handle.shutdown();
        handle.wait();
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e16_coalesce\",\n",
            "  \"level\": \"toy\",\n",
            "  \"clients\": {},\n",
            "  \"requests\": {},\n",
            "  \"pipeline\": {},\n",
            "  \"batch_max\": {},\n",
            "  \"bit_identical\": true,\n",
            "  \"baseline_arm\": \"pr7 path: one-at-a-time, crypto caches off\",\n",
            "  \"batched_arm\": \"scheduler + pipelining, crypto caches on\",\n",
            "  \"baseline_req_per_sec\": {:.1},\n",
            "  \"batched_req_per_sec\": {:.1},\n",
            "  \"speedup\": {:.3},\n",
            "  \"baseline_p50_us\": {},\n",
            "  \"batched_p50_us\": {},\n",
            "  \"idle_baseline_p50_us\": {},\n",
            "  \"idle_batched_p50_us\": {},\n",
            "  \"errors\": {},\n",
            "  \"reordered\": {},\n",
            "  \"sched_batches\": {},\n",
            "  \"sched_batched_requests\": {},\n",
            "  \"sched_bypass\": {},\n",
            "  \"sched_hist\": {:?}\n",
            "}}\n"
        ),
        clients,
        requests,
        pipeline,
        batch_max,
        base.req_per_sec,
        coal.req_per_sec,
        speedup,
        base.p50_us,
        coal.p50_us,
        idle_base.p50_us,
        idle_coal.p50_us,
        base.errors + coal.errors + idle_base.errors + idle_coal.errors,
        base.reordered + coal.reordered + idle_base.reordered + idle_coal.reordered,
        sched.batches,
        sched.batched_requests,
        sched.bypass,
        sched.hist,
    );
    print!("{json}");

    let out = std::env::var("TIBPRE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_e16.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).unwrap();
    eprintln!("e16: wrote {out}");

    // Acceptance gates.
    assert!(
        speedup >= min_speedup,
        "batched throughput {:.1} req/s is only {speedup:.2}x the one-at-a-time \
         path's {:.1} req/s (gate: {min_speedup}x)",
        coal.req_per_sec,
        base.req_per_sec
    );
    assert!(
        idle_coal.p50_us as f64 <= idle_base.p50_us as f64 * idle_slack,
        "single-client p50 {}us on the batched proxy exceeds the one-at-a-time \
         path's {}us by more than the {idle_slack}x allowance",
        idle_coal.p50_us,
        idle_base.p50_us
    );
}
