//! Property-based tests for the big-integer layer.
//!
//! Small values are cross-checked against native `u128` arithmetic; larger
//! values are checked against algebraic identities (ring axioms, division
//! identity, Montgomery round trips, Fermat vs. extended-GCD inversion).

use proptest::prelude::*;
use tibpre_bigint::{MontCtx, Uint};

fn uint_from_u128(v: u128) -> Uint {
    Uint::from_u128(v)
}

/// Arbitrary `Uint` of up to 512 bits built from 8 random limbs.
fn arb_uint_512() -> impl Strategy<Value = Uint> {
    proptest::collection::vec(any::<u64>(), 1..=8)
        .prop_map(|limbs| Uint::from_limbs_le(&limbs).expect("at most 8 limbs"))
}

/// A 127-bit odd modulus > 1 (so it always fits comfortably and is valid for MontCtx).
fn arb_odd_modulus() -> impl Strategy<Value = Uint> {
    (any::<u128>()).prop_map(|v| {
        let v = (v >> 1) | 1 | (1 << 100); // odd, at least 101 bits
        Uint::from_u128(v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = uint_from_u128(a as u128).checked_add(&uint_from_u128(b as u128)).unwrap();
        prop_assert_eq!(sum.low_u128(), a as u128 + b as u128);
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = uint_from_u128(a as u128).mul_wide(&uint_from_u128(b as u128));
        prop_assert!(hi.is_zero());
        prop_assert_eq!(lo.low_u128(), a as u128 * b as u128);
    }

    #[test]
    fn addition_commutes_and_associates(a in arb_uint_512(), b in arb_uint_512(), c in arb_uint_512()) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
        prop_assert_eq!(
            a.wrapping_add(&b).wrapping_add(&c),
            a.wrapping_add(&b.wrapping_add(&c))
        );
    }

    #[test]
    fn multiplication_commutes(a in arb_uint_512(), b in arb_uint_512()) {
        prop_assert_eq!(a.mul_wide(&b), b.mul_wide(&a));
    }

    #[test]
    fn multiplication_distributes(a in arb_uint_512(), b in arb_uint_512(), c in arb_uint_512()) {
        // (a + b) * c == a*c + b*c, all well within the 1792-bit capacity
        // because the operands are at most 512 bits.
        let sum = a.checked_add(&b).unwrap();
        let (lhs, lhs_hi) = sum.mul_wide(&c);
        prop_assert!(lhs_hi.is_zero());
        let (ac, ac_hi) = a.mul_wide(&c);
        let (bc, bc_hi) = b.mul_wide(&c);
        prop_assert!(ac_hi.is_zero() && bc_hi.is_zero());
        prop_assert_eq!(lhs, ac.checked_add(&bc).unwrap());
    }

    #[test]
    fn subtraction_inverts_addition(a in arb_uint_512(), b in arb_uint_512()) {
        let sum = a.checked_add(&b).unwrap();
        prop_assert_eq!(sum.checked_sub(&b).unwrap(), a);
        prop_assert_eq!(sum.checked_sub(&a).unwrap(), b);
    }

    #[test]
    fn division_identity(n in arb_uint_512(), d in arb_uint_512()) {
        prop_assume!(!d.is_zero());
        let (q, r) = n.div_rem(&d).unwrap();
        prop_assert!(r < d);
        let (qd, hi) = q.mul_wide(&d);
        prop_assert!(hi.is_zero());
        prop_assert_eq!(qd.checked_add(&r).unwrap(), n);
    }

    #[test]
    fn shifts_are_mul_div_by_powers_of_two(a in any::<u64>(), s in 0usize..60) {
        let v = Uint::from_u64(a);
        prop_assert_eq!(v.shl(s).low_u128(), (a as u128) << s);
        prop_assert_eq!(v.shr(s), Uint::from_u64(a >> s));
        prop_assert_eq!(v.shl(s).shr(s), v);
    }

    #[test]
    fn hex_and_bytes_round_trip(a in arb_uint_512()) {
        prop_assert_eq!(Uint::from_hex(&a.to_hex()).unwrap(), a);
        prop_assert_eq!(Uint::from_be_bytes(&a.to_be_bytes_minimal()).unwrap(), a);
        let fixed = a.to_be_bytes(64).unwrap();
        prop_assert_eq!(fixed.len(), 64);
        prop_assert_eq!(Uint::from_be_bytes(&fixed).unwrap(), a);
    }

    #[test]
    fn montgomery_round_trip(a in any::<u128>(), m in arb_odd_modulus()) {
        let ctx = MontCtx::new(&m).unwrap();
        let a_red = ctx.reduce(&Uint::from_u128(a));
        let mont = ctx.to_mont(&a_red);
        prop_assert_eq!(ctx.from_mont(&mont), a_red);
    }

    #[test]
    fn montgomery_mul_matches_reference(a in any::<u128>(), b in any::<u128>(), m in arb_odd_modulus()) {
        let ctx = MontCtx::new(&m).unwrap();
        let a_red = ctx.reduce(&Uint::from_u128(a));
        let b_red = ctx.reduce(&Uint::from_u128(b));
        let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a_red), &ctx.to_mont(&b_red)));
        let (lo, hi) = a_red.mul_wide(&b_red);
        let expect = Uint::rem_wide(&lo, &hi, &m).unwrap();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn montgomery_pow_small_exponents(a in 1u64..u64::MAX, e in 0u32..40, m in arb_odd_modulus()) {
        let ctx = MontCtx::new(&m).unwrap();
        let base = ctx.reduce(&Uint::from_u64(a));
        let got = ctx.pow(&base, &Uint::from_u64(e as u64));
        // Naive reference with repeated Montgomery multiplication.
        let base_m = ctx.to_mont(&base);
        let mut acc = ctx.one_mont();
        for _ in 0..e {
            acc = ctx.mont_mul(&acc, &base_m);
        }
        prop_assert_eq!(got, ctx.from_mont(&acc));
    }

    #[test]
    fn inversion_really_inverts(a in any::<u128>()) {
        // Fixed 127-bit Mersenne prime modulus: every non-zero residue is invertible.
        let m = Uint::from_u128((1u128 << 127) - 1);
        let ctx = MontCtx::new(&m).unwrap();
        let a_red = ctx.reduce(&Uint::from_u128(a));
        prop_assume!(!a_red.is_zero());
        let a_mont = ctx.to_mont(&a_red);
        let inv_gcd = ctx.mont_inv(&a_mont).unwrap();
        let inv_fermat = ctx.mont_inv_fermat(&a_mont).unwrap();
        prop_assert_eq!(inv_gcd, inv_fermat);
        prop_assert!(ctx.from_mont(&ctx.mont_mul(&a_mont, &inv_gcd)).is_one());
    }

    #[test]
    fn gcd_divides_both(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != 0 && b != 0);
        let g = Uint::from_u64(a).gcd(&Uint::from_u64(b));
        prop_assert!(!g.is_zero());
        prop_assert!(Uint::from_u64(a).rem(&g).unwrap().is_zero());
        prop_assert!(Uint::from_u64(b).rem(&g).unwrap().is_zero());
        // Cross-check with the Euclidean gcd on native integers.
        let mut x = a;
        let mut y = b;
        while y != 0 {
            let t = x % y;
            x = y;
            y = t;
        }
        prop_assert_eq!(g, Uint::from_u64(x));
    }
}
