//! Random sampling helpers for [`Uint`].

use crate::uint::{Uint, MAX_BITS, MAX_LIMBS};
use rand::{CryptoRng, RngCore};

/// Samples a uniformly random value in `[0, 2^bits)`.
///
/// # Panics
/// Panics if `bits > MAX_BITS`.
pub fn random_bits<R: RngCore + CryptoRng>(rng: &mut R, bits: usize) -> Uint {
    assert!(bits <= MAX_BITS, "requested more bits than capacity");
    if bits == 0 {
        return Uint::ZERO;
    }
    let mut out = Uint::ZERO;
    let full_limbs = bits / 64;
    let rem_bits = bits % 64;
    for limb in out.limbs.iter_mut().take(full_limbs) {
        *limb = rng.next_u64();
    }
    if rem_bits > 0 && full_limbs < MAX_LIMBS {
        out.limbs[full_limbs] = rng.next_u64() >> (64 - rem_bits);
    }
    out
}

/// Samples a uniformly random value in `[0, bound)` by rejection sampling.
///
/// # Panics
/// Panics if `bound` is zero.
pub fn random_below<R: RngCore + CryptoRng>(rng: &mut R, bound: &Uint) -> Uint {
    assert!(!bound.is_zero(), "bound must be non-zero");
    let bits = bound.bits();
    loop {
        let candidate = random_bits(rng, bits);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Samples a uniformly random value in `[1, bound)`.
///
/// # Panics
/// Panics if `bound <= 1`.
pub fn random_nonzero_below<R: RngCore + CryptoRng>(rng: &mut R, bound: &Uint) -> Uint {
    assert!(bound > &Uint::ONE, "bound must exceed one");
    loop {
        let candidate = random_below(rng, bound);
        if !candidate.is_zero() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_bits_respects_width() {
        let mut r = rng();
        for bits in [0usize, 1, 7, 63, 64, 65, 127, 500, MAX_BITS] {
            for _ in 0..20 {
                let v = random_bits(&mut r, bits);
                assert!(
                    v.bits() <= bits,
                    "{} bits exceeded request {bits}",
                    v.bits()
                );
            }
        }
    }

    #[test]
    fn random_bits_hits_high_bits() {
        // With 200 samples of 64 bits the top bit is set with overwhelming probability.
        let mut r = rng();
        let any_top = (0..200).any(|_| random_bits(&mut r, 64).bit(63));
        assert!(any_top);
    }

    #[test]
    fn random_below_is_in_range() {
        let mut r = rng();
        let bound = Uint::from_u64(1000);
        let mut seen_small = false;
        let mut seen_large = false;
        for _ in 0..500 {
            let v = random_below(&mut r, &bound);
            assert!(v < bound);
            if v < Uint::from_u64(500) {
                seen_small = true;
            } else {
                seen_large = true;
            }
        }
        assert!(seen_small && seen_large, "samples look non-uniform");
    }

    #[test]
    fn random_nonzero_below_never_zero() {
        let mut r = rng();
        let bound = Uint::from_u64(3);
        for _ in 0..100 {
            let v = random_nonzero_below(&mut r, &bound);
            assert!(!v.is_zero());
            assert!(v < bound);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn random_below_zero_bound_panics() {
        let mut r = rng();
        random_below(&mut r, &Uint::ZERO);
    }
}
