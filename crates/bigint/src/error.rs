//! Error type shared by all big-integer operations.

use core::fmt;

/// Errors produced by the big-integer layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BigIntError {
    /// The value does not fit into the fixed [`crate::MAX_LIMBS`] capacity.
    Overflow,
    /// A modulus was zero, even, or too large for the Montgomery machinery.
    InvalidModulus(&'static str),
    /// Division by zero was attempted.
    DivisionByZero,
    /// The element has no inverse modulo the given modulus.
    NotInvertible,
    /// A hex string could not be parsed.
    InvalidHex,
    /// A byte string could not be decoded into a `Uint`.
    InvalidBytes(&'static str),
    /// Prime generation failed within the iteration budget.
    PrimeGenerationFailed,
    /// A parameter was outside the accepted range.
    InvalidParameter(&'static str),
}

impl fmt::Display for BigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BigIntError::Overflow => write!(f, "value exceeds fixed Uint capacity"),
            BigIntError::InvalidModulus(why) => write!(f, "invalid modulus: {why}"),
            BigIntError::DivisionByZero => write!(f, "division by zero"),
            BigIntError::NotInvertible => write!(f, "element is not invertible"),
            BigIntError::InvalidHex => write!(f, "invalid hexadecimal string"),
            BigIntError::InvalidBytes(why) => write!(f, "invalid byte encoding: {why}"),
            BigIntError::PrimeGenerationFailed => {
                write!(f, "prime generation exceeded its iteration budget")
            }
            BigIntError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
        }
    }
}

impl std::error::Error for BigIntError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let s = BigIntError::InvalidModulus("must be odd").to_string();
        assert!(s.contains("must be odd"));
        assert!(BigIntError::Overflow.to_string().contains("capacity"));
        assert!(BigIntError::DivisionByZero.to_string().contains("zero"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(BigIntError::NotInvertible, BigIntError::NotInvertible);
        assert_ne!(BigIntError::NotInvertible, BigIntError::InvalidHex);
    }
}
