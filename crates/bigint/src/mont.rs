//! Montgomery-form modular arithmetic context.
//!
//! A [`MontCtx`] is created once per modulus (field prime or group order) and
//! then shared (typically behind an `Arc`) by every element of that ring.  All
//! hot-path operations — CIOS multiplication, squaring, exponentiation — only
//! iterate over the limbs actually occupied by the modulus, so a 512-bit prime
//! pays nothing for the 1792-bit capacity of [`Uint`].

use crate::error::BigIntError;
use crate::limb::{adc, inv_mod_u64, mac};
use crate::uint::{Uint, WideAcc, MAX_LIMBS};
use crate::Result;

/// Montgomery reduction context for an odd modulus `m`.
///
/// Values handled by the context come in two flavours:
/// * *plain* residues in `[0, m)`, and
/// * *Montgomery* residues `a·R mod m` where `R = 2^(64·nlimbs)`.
///
/// Methods are explicit about which representation they expect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontCtx {
    modulus: Uint,
    nlimbs: usize,
    /// `-m^{-1} mod 2^64`
    n0: u64,
    /// `R mod m` — the Montgomery form of 1.
    r1: Uint,
    /// `R^2 mod m` — used to convert into Montgomery form.
    r2: Uint,
    /// `m - 2`, cached for Fermat inversion.
    m_minus_2: Uint,
}

impl MontCtx {
    /// Creates a context for the odd modulus `m`.
    ///
    /// The modulus must be odd, greater than one, and leave at least one spare
    /// limb of capacity (so modular addition cannot wrap).
    pub fn new(m: &Uint) -> Result<Self> {
        if m.is_zero() || m.is_one() {
            return Err(BigIntError::InvalidModulus("modulus must be > 1"));
        }
        if m.is_even() {
            return Err(BigIntError::InvalidModulus("modulus must be odd"));
        }
        let nlimbs = m.limb_len();
        if nlimbs > MAX_LIMBS - 1 {
            return Err(BigIntError::InvalidModulus(
                "modulus too large for Montgomery context",
            ));
        }
        let n0 = inv_mod_u64(m.limbs()[0]).wrapping_neg();

        // R mod m via 64*nlimbs modular doublings of 1.
        let mut r1 = Uint::ONE;
        for _ in 0..(64 * nlimbs) {
            r1 = r1.mod_double(m);
        }
        // R^2 mod m via another 64*nlimbs doublings.
        let mut r2 = r1;
        for _ in 0..(64 * nlimbs) {
            r2 = r2.mod_double(m);
        }
        let m_minus_2 = m.wrapping_sub(&Uint::from_u64(2));
        Ok(MontCtx {
            modulus: *m,
            nlimbs,
            n0,
            r1,
            r2,
            m_minus_2,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Uint {
        &self.modulus
    }

    /// Number of 64-bit limbs occupied by the modulus.
    pub fn nlimbs(&self) -> usize {
        self.nlimbs
    }

    /// The Montgomery form of 1 (`R mod m`).
    pub fn one_mont(&self) -> Uint {
        self.r1
    }

    /// Converts a plain residue (must already be `< m`) into Montgomery form.
    pub fn to_mont(&self, a: &Uint) -> Uint {
        debug_assert!(a < &self.modulus);
        self.mont_mul(a, &self.r2)
    }

    /// Converts a Montgomery-form value back to a plain residue.
    pub fn from_mont(&self, a: &Uint) -> Uint {
        self.mont_mul(a, &Uint::ONE)
    }

    /// Reduces an arbitrary `Uint` modulo `m` (plain representation).
    pub fn reduce(&self, a: &Uint) -> Uint {
        if a < &self.modulus {
            *a
        } else {
            a.rem(&self.modulus).expect("modulus is non-zero")
        }
    }

    /// Montgomery multiplication (CIOS): returns `a·b·R^{-1} mod m`.
    ///
    /// Both inputs must be `< m`.
    pub fn mont_mul(&self, a: &Uint, b: &Uint) -> Uint {
        let n = self.nlimbs;
        let al = a.limbs();
        let bl = b.limbs();
        let ml = self.modulus.limbs();
        // t has n + 2 significant slots during the loop.
        let mut t = [0u64; MAX_LIMBS + 2];

        for &bi in bl.iter().take(n) {
            // t += a * b[i]
            let mut carry = 0u64;
            for j in 0..n {
                let (lo, hi) = mac(t[j], al[j], bi, carry);
                t[j] = lo;
                carry = hi;
            }
            let (lo, hi) = adc(t[n], carry, 0);
            t[n] = lo;
            t[n + 1] = hi;

            // m' = t[0] * n0 mod 2^64; t += m' * m; t >>= 64
            let m_prime = t[0].wrapping_mul(self.n0);
            let (_, mut carry) = mac(t[0], m_prime, ml[0], 0);
            for j in 1..n {
                let (lo, hi) = mac(t[j], m_prime, ml[j], carry);
                t[j - 1] = lo;
                carry = hi;
            }
            let (lo, hi) = adc(t[n], carry, 0);
            t[n - 1] = lo;
            t[n] = t[n + 1] + hi;
            t[n + 1] = 0;
        }

        let mut out = Uint::ZERO;
        out.limbs[..n].copy_from_slice(&t[..n]);
        // The CIOS invariant guarantees the intermediate (including the carry
        // limb t[n]) is < 2m; since nlimbs <= MAX_LIMBS - 1 the carry limb fits
        // into the capacity, so a single conditional subtraction finishes the job.
        out.limbs[n] = t[n];
        if out >= self.modulus {
            out = out.wrapping_sub(&self.modulus);
        }
        out
    }

    /// Montgomery squaring.
    pub fn mont_sqr(&self, a: &Uint) -> Uint {
        self.mont_mul(a, a)
    }

    /// Lazy-reduction sum of products: returns `(Σ aᵢ·bᵢ)·R^{-1} mod m`.
    ///
    /// Every product is accumulated unreduced into a double-width
    /// [`WideAcc`] and the whole sum is Montgomery-reduced **once**, so a
    /// k-term expression pays one reduction pass (plus up to k
    /// conditional subtractions) instead of k interleaved CIOS
    /// reductions.  For Montgomery-form inputs `aᵢR, bᵢR` the result is
    /// the Montgomery form of the sum of products, `(Σ aᵢbᵢ)·R`, exactly
    /// as if each product had been computed with [`mont_mul`](Self::mont_mul)
    /// and added with [`add`](Self::add) — the canonical representative is
    /// bit-identical.
    ///
    /// Subtractions are expressed by negating one operand of the pair
    /// first ([`neg`](Self::neg) is a cheap n-limb subtraction), which
    /// keeps the accumulator unsigned.  All operands must be `< m`; the
    /// term count must stay below `2^64` (field code uses a handful).
    pub fn mont_mul_sum(&self, pairs: &[(&Uint, &Uint)]) -> Uint {
        let mut acc = WideAcc::zero();
        for (a, b) in pairs {
            debug_assert!(*a < &self.modulus && *b < &self.modulus);
            acc.accumulate(a, b, self.nlimbs);
        }
        self.mont_reduce_wide(acc, pairs.len())
    }

    /// Montgomery-reduces an accumulated double-width sum of `terms`
    /// products of residues `< m`: returns `acc·R^{-1} mod m`.
    ///
    /// Word-by-word reduction (the reduction half of CIOS, run once over
    /// the whole buffer): for each of the `n` low limbs, add the multiple
    /// of `m` that zeroes it, then read the result from the limbs above.
    /// The input is `< terms·m²`, so the pre-subtraction result is
    /// `< (terms + 1)·m` — a short subtraction loop canonicalises it.
    pub fn mont_reduce_wide(&self, mut acc: WideAcc, terms: usize) -> Uint {
        let n = self.nlimbs;
        let ml = self.modulus.limbs();
        let t = acc.limbs_mut();
        for i in 0..n {
            let m_prime = t[i].wrapping_mul(self.n0);
            let (_, mut carry) = mac(t[i], m_prime, ml[0], 0);
            for j in 1..n {
                let (lo, hi) = mac(t[i + j], m_prime, ml[j], carry);
                t[i + j] = lo;
                carry = hi;
            }
            let mut k = i + n;
            while carry != 0 {
                let (lo, hi) = adc(t[k], carry, 0);
                t[k] = lo;
                carry = hi;
                k += 1;
            }
        }
        // acc / R now sits in t[n..]; it spans at most n + 1 limbs because
        // the reduced value is < (terms + 1)·m and nlimbs ≤ MAX_LIMBS − 1.
        debug_assert!(t[2 * n + 1..].iter().all(|&l| l == 0));
        let mut out = Uint::ZERO;
        out.limbs[..=n].copy_from_slice(&t[n..=2 * n]);
        let mut subs = 0usize;
        while out >= self.modulus {
            out = out.wrapping_sub(&self.modulus);
            subs += 1;
            debug_assert!(subs <= terms + 1);
        }
        out
    }

    /// Modular addition of plain or Montgomery residues (both `< m`).
    pub fn add(&self, a: &Uint, b: &Uint) -> Uint {
        a.mod_add(b, &self.modulus)
    }

    /// Modular subtraction of plain or Montgomery residues (both `< m`).
    pub fn sub(&self, a: &Uint, b: &Uint) -> Uint {
        a.mod_sub(b, &self.modulus)
    }

    /// Modular negation.
    pub fn neg(&self, a: &Uint) -> Uint {
        a.mod_neg(&self.modulus)
    }

    /// Modular doubling.
    pub fn double(&self, a: &Uint) -> Uint {
        a.mod_double(&self.modulus)
    }

    /// Montgomery exponentiation: `base^exp · R mod m` for a Montgomery-form base.
    ///
    /// Square-and-multiply from the most significant bit of `exp`.
    pub fn mont_pow(&self, base_mont: &Uint, exp: &Uint) -> Uint {
        let bits = exp.bits();
        if bits == 0 {
            return self.r1;
        }
        let mut acc = self.r1;
        for i in (0..bits).rev() {
            acc = self.mont_sqr(&acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, base_mont);
            }
        }
        acc
    }

    /// Plain modular exponentiation on plain residues: `base^exp mod m`.
    pub fn pow(&self, base: &Uint, exp: &Uint) -> Uint {
        let base_m = self.to_mont(&self.reduce(base));
        let out = self.mont_pow(&base_m, exp);
        self.from_mont(&out)
    }

    /// Inversion of a Montgomery-form value via Fermat's little theorem.
    ///
    /// Only valid when the modulus is prime.  Returns an error for zero.
    pub fn mont_inv_fermat(&self, a_mont: &Uint) -> Result<Uint> {
        if a_mont.is_zero() {
            return Err(BigIntError::NotInvertible);
        }
        Ok(self.mont_pow(a_mont, &self.m_minus_2))
    }

    /// Inversion of a *plain* residue using the binary extended-GCD algorithm
    /// (HAC 14.61 specialised to odd moduli).  Works for any odd modulus as
    /// long as `gcd(a, m) = 1`.
    ///
    /// Every intermediate value is bounded by `2m`, so the whole computation
    /// runs on `nlimbs + 1` limbs instead of the full [`MAX_LIMBS`] capacity
    /// of [`Uint`] — for a 3-limb field prime that is roughly an order of
    /// magnitude less limb traffic per GCD iteration, and inversion sits on
    /// the pairing's final-exponentiation path.
    pub fn inv_plain(&self, a: &Uint) -> Result<Uint> {
        // Limb-bounded helpers over the first `n` limbs of a Uint buffer.
        #[inline]
        fn is_zero_n(x: &[u64], n: usize) -> bool {
            x[..n].iter().all(|&l| l == 0)
        }
        #[inline]
        fn shr1_n(x: &mut [u64], n: usize) {
            for i in 0..n - 1 {
                x[i] = (x[i] >> 1) | (x[i + 1] << 63);
            }
            x[n - 1] >>= 1;
        }
        /// `x += y` over `n` limbs; the caller guarantees no carry out.
        #[inline]
        fn add_assign_n(x: &mut [u64], y: &[u64], n: usize) {
            let mut carry = 0u64;
            for i in 0..n {
                let (lo, hi) = adc(x[i], y[i], carry);
                x[i] = lo;
                carry = hi;
            }
            debug_assert_eq!(carry, 0);
        }
        /// `x -= y` over `n` limbs; the caller guarantees `x >= y`.
        #[inline]
        fn sub_assign_n(x: &mut [u64], y: &[u64], n: usize) {
            let mut borrow = 0u64;
            for i in 0..n {
                let (diff, b1) = x[i].overflowing_sub(y[i]);
                let (diff, b2) = diff.overflowing_sub(borrow);
                x[i] = diff;
                borrow = u64::from(b1) | u64::from(b2);
            }
            debug_assert_eq!(borrow, 0);
        }
        #[inline]
        fn lt_n(x: &[u64], y: &[u64], n: usize) -> bool {
            for i in (0..n).rev() {
                if x[i] != y[i] {
                    return x[i] < y[i];
                }
            }
            false
        }
        /// Halves `x`, adding the odd modulus first when `x` is odd.
        #[inline]
        fn halve_mod_n(x: &mut [u64], m: &[u64], n: usize) {
            if x[0] & 1 == 1 {
                add_assign_n(x, m, n);
            }
            shr1_n(x, n);
        }

        let m = &self.modulus;
        let a = self.reduce(a);
        if a.is_zero() {
            return Err(BigIntError::NotInvertible);
        }
        // One spare limb absorbs the `x + m` carry before halving; the
        // MontCtx constructor guarantees it exists.
        let n = self.nlimbs + 1;
        let ml = m.limbs();
        let mut u = *a.limbs(); // invariant: x1 · a ≡ u (mod m)
        let mut v = *ml; // invariant: x2 · a ≡ v (mod m)
        let mut x1 = *Uint::ONE.limbs();
        let mut x2 = [0u64; MAX_LIMBS];
        while !is_zero_n(&u, n) {
            while u[0] & 1 == 0 {
                shr1_n(&mut u, n);
                halve_mod_n(&mut x1, ml, n);
            }
            while v[0] & 1 == 0 {
                shr1_n(&mut v, n);
                halve_mod_n(&mut x2, ml, n);
            }
            if lt_n(&u, &v, n) {
                sub_assign_n(&mut v, &u, n);
                // x2 <- x2 - x1 (mod m)
                if lt_n(&x2, &x1, n) {
                    add_assign_n(&mut x2, ml, n);
                }
                sub_assign_n(&mut x2, &x1, n);
            } else {
                sub_assign_n(&mut u, &v, n);
                if lt_n(&x1, &x2, n) {
                    add_assign_n(&mut x1, ml, n);
                }
                sub_assign_n(&mut x1, &x2, n);
            }
        }
        let v = Uint::from_limbs_le(&v[..n]).expect("n <= MAX_LIMBS");
        if !v.is_one() {
            return Err(BigIntError::NotInvertible);
        }
        let mut out = Uint::from_limbs_le(&x2[..n]).expect("n <= MAX_LIMBS");
        // x2 stays < 2m through the loop; one conditional subtraction
        // canonicalises it.
        if &out >= m {
            out = out.wrapping_sub(m);
        }
        Ok(out)
    }

    /// Inversion of a Montgomery-form value using the binary extended GCD.
    ///
    /// `a_mont = a·R`, so `inv_plain` yields `a^{-1}·R^{-1}`; two extra
    /// Montgomery multiplications by `R^2` restore the Montgomery form of the
    /// inverse: `a^{-1}·R`.
    pub fn mont_inv(&self, a_mont: &Uint) -> Result<Uint> {
        if a_mont.is_zero() {
            return Err(BigIntError::NotInvertible);
        }
        let inv = self.inv_plain(a_mont)?; // (a R)^{-1} mod m = a^{-1} R^{-1}
        let step = self.mont_mul(&inv, &self.r2); // a^{-1} R^{-1} · R^2 · R^{-1} = a^{-1}
        Ok(self.mont_mul(&step, &self.r2)) // a^{-1} · R^2 · R^{-1} = a^{-1} R
    }

    /// Checks whether a plain residue is a quadratic residue modulo a prime
    /// modulus, via Euler's criterion.
    pub fn is_quadratic_residue(&self, a: &Uint) -> bool {
        if a.is_zero() {
            return true;
        }
        // a^((m-1)/2) == 1 ?
        let exp = self.modulus.wrapping_sub(&Uint::ONE).shr1();
        self.pow(a, &exp).is_one()
    }

    /// Square root modulo a prime `m ≡ 3 (mod 4)`: returns `a^((m+1)/4)`.
    ///
    /// The caller must check the result squares back to `a` (it will not when
    /// `a` is a non-residue).  Returns an error if the modulus is not ≡ 3 mod 4.
    pub fn sqrt_3mod4(&self, a: &Uint) -> Result<Uint> {
        if self.modulus.limbs()[0] & 3 != 3 {
            return Err(BigIntError::InvalidParameter(
                "sqrt_3mod4 requires modulus ≡ 3 (mod 4)",
            ));
        }
        let exp = self.modulus.wrapping_add(&Uint::ONE).shr(2);
        Ok(self.pow(a, &exp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(m: u64) -> MontCtx {
        MontCtx::new(&Uint::from_u64(m)).unwrap()
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(MontCtx::new(&Uint::ZERO).is_err());
        assert!(MontCtx::new(&Uint::ONE).is_err());
        assert!(MontCtx::new(&Uint::from_u64(100)).is_err());
        let mut too_big = Uint::ZERO;
        for l in too_big.limbs.iter_mut() {
            *l = u64::MAX;
        }
        assert!(MontCtx::new(&too_big).is_err());
    }

    #[test]
    fn mont_round_trip() {
        let c = ctx(1_000_003);
        for v in [0u64, 1, 2, 999_999, 1_000_002] {
            let plain = Uint::from_u64(v);
            let m = c.to_mont(&plain);
            assert_eq!(c.from_mont(&m), plain);
        }
    }

    #[test]
    fn mont_mul_matches_u128() {
        let p = 0xFFFF_FFFF_FFFF_FFC5u64; // largest 64-bit prime
        let c = ctx(p);
        let cases = [
            (0u64, 0u64),
            (1, 1),
            (p - 1, p - 1),
            (0x1234_5678_9ABC_DEF0, 0x0FED_CBA9_8765_4321),
            (p - 2, 7),
        ];
        for (a, b) in cases {
            let am = c.to_mont(&Uint::from_u64(a));
            let bm = c.to_mont(&Uint::from_u64(b));
            let got = c.from_mont(&c.mont_mul(&am, &bm));
            let expect = ((a as u128) * (b as u128) % (p as u128)) as u64;
            assert_eq!(got, Uint::from_u64(expect), "failed for {a} * {b}");
        }
    }

    #[test]
    fn multi_limb_mont_mul() {
        // 2^127 - 1 is a Mersenne prime; two limbs exercise the CIOS carries.
        let p = Uint::from_u128((1u128 << 127) - 1);
        let c = MontCtx::new(&p).unwrap();
        let a = Uint::from_u128(0x0123_4567_89AB_CDEF_0011_2233_4455_6677u128);
        let b = Uint::from_u128(0x7FFF_FFFF_FFFF_FFFF_FFFF_FFFF_FFFF_FFFEu128);
        let am = c.to_mont(&a);
        let bm = c.to_mont(&b);
        let got = c.from_mont(&c.mont_mul(&am, &bm));
        // Verify with wide multiplication + reduction.
        let (lo, hi) = a.mul_wide(&b);
        let expect = Uint::rem_wide(&lo, &hi, &p).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn pow_matches_naive() {
        let c = ctx(1_000_003);
        let base = Uint::from_u64(12345);
        let exp = Uint::from_u64(67);
        let got = c.pow(&base, &exp);
        let mut expect = 1u128;
        for _ in 0..67 {
            expect = expect * 12345 % 1_000_003;
        }
        assert_eq!(got, Uint::from_u64(expect as u64));
        // Edge cases.
        assert!(c.pow(&base, &Uint::ZERO).is_one());
        assert_eq!(c.pow(&base, &Uint::ONE), base);
        assert!(c.pow(&Uint::ZERO, &Uint::ZERO).is_one());
    }

    #[test]
    fn fermat_and_binary_inversion_agree() {
        let p = 0xFFFF_FFFF_FFFF_FFC5u64;
        let c = ctx(p);
        for v in [1u64, 2, 3, 0xDEAD_BEEF, p - 1, p / 2] {
            let vm = c.to_mont(&Uint::from_u64(v));
            let inv_f = c.mont_inv_fermat(&vm).unwrap();
            let inv_b = c.mont_inv(&vm).unwrap();
            assert_eq!(inv_f, inv_b, "disagree for {v}");
            let prod = c.from_mont(&c.mont_mul(&vm, &inv_f));
            assert!(prod.is_one(), "not an inverse for {v}");
        }
    }

    #[test]
    fn inversion_of_zero_fails() {
        let c = ctx(1_000_003);
        assert!(c.mont_inv(&Uint::ZERO).is_err());
        assert!(c.mont_inv_fermat(&Uint::ZERO).is_err());
        assert!(c.inv_plain(&Uint::ZERO).is_err());
    }

    #[test]
    fn inversion_of_modulus_multiples_fails() {
        // A multiple of the modulus is a zero residue in disguise:
        // `inv_plain` reduces first, so k·m must hit the same typed error
        // as literal zero, never a bogus "inverse" or a non-terminating
        // GCD.  Regression for the batch-inversion zero-operand audit.
        let p = 0xFFFF_FFFF_FFFF_FFC5u64;
        let c = ctx(p);
        let m = Uint::from_u64(p);
        for k in 1u64..4 {
            let (multiple, carry) = m.mul_u64(k);
            assert_eq!(carry, 0);
            assert_eq!(
                c.inv_plain(&multiple).unwrap_err(),
                BigIntError::NotInvertible,
                "k = {k}"
            );
        }
        // Multi-limb modulus, same contract.
        let p2 = Uint::from_u128((1u128 << 127) - 1);
        let c2 = MontCtx::new(&p2).unwrap();
        let (double, carry) = p2.mul_u64(2);
        assert_eq!(carry, 0);
        assert_eq!(
            c2.inv_plain(&double).unwrap_err(),
            BigIntError::NotInvertible
        );
    }

    #[test]
    fn mont_mul_sum_matches_strict_chain() {
        // Σ aᵢ·bᵢ through the lazy path must be bit-identical to the
        // strict mont_mul + add chain, including adversarial near-m and
        // all-ones-limb operands.
        let p = Uint::from_u128((1u128 << 127) - 1);
        let c = MontCtx::new(&p).unwrap();
        let near_p = p.wrapping_sub(&Uint::ONE);
        let ones = c.reduce(&Uint::from_u128(u128::MAX));
        let mid = Uint::from_u128(0x0123_4567_89AB_CDEF_0011_2233_4455_6677u128);
        let operands = [Uint::ZERO, Uint::ONE, mid, ones, near_p];
        for a0 in &operands {
            for b0 in &operands {
                for a1 in &operands {
                    for b1 in &operands {
                        let lazy = c.mont_mul_sum(&[(a0, b0), (a1, b1)]);
                        let strict = c.add(&c.mont_mul(a0, b0), &c.mont_mul(a1, b1));
                        assert_eq!(lazy, strict, "{a0:?}*{b0:?} + {a1:?}*{b1:?}");
                    }
                }
            }
        }
        // Degenerate term counts.
        assert_eq!(c.mont_mul_sum(&[]), Uint::ZERO);
        assert_eq!(c.mont_mul_sum(&[(&mid, &ones)]), c.mont_mul(&mid, &ones));
        // Many terms: the subtraction loop runs more than once.
        let sixteen: Vec<(&Uint, &Uint)> = (0..16).map(|_| (&near_p, &near_p)).collect();
        let mut strict = Uint::ZERO;
        for _ in 0..16 {
            strict = c.add(&strict, &c.mont_mul(&near_p, &near_p));
        }
        assert_eq!(c.mont_mul_sum(&sixteen), strict);
    }

    #[test]
    fn mont_mul_sum_subtraction_via_negation() {
        // a·b − c·d is expressed as a·b + (−c)·d; the lazy result must
        // match the strict sub of the two strict products.
        let p = Uint::from_u128((1u128 << 127) - 1);
        let c = MontCtx::new(&p).unwrap();
        let a = Uint::from_u128(0x5EAD_BEEF_0000_0001_1234_5678_9ABC_DEF0u128);
        let b = Uint::from_u128(0x0FED_CBA9_8765_4321_0000_0000_0000_0007u128);
        let d = p.wrapping_sub(&Uint::from_u64(3));
        let e = Uint::from_u64(0x1111_2222_3333_4444);
        let neg_d = c.neg(&d);
        let lazy = c.mont_mul_sum(&[(&a, &b), (&neg_d, &e)]);
        let strict = c.sub(&c.mont_mul(&a, &b), &c.mont_mul(&d, &e));
        assert_eq!(lazy, strict);
    }

    #[test]
    fn non_coprime_inversion_fails() {
        // 15 shares a factor with modulus 45 (odd, composite).
        let c = MontCtx::new(&Uint::from_u64(45)).unwrap();
        assert!(c.inv_plain(&Uint::from_u64(15)).is_err());
        assert!(c.inv_plain(&Uint::from_u64(7)).is_ok());
    }

    #[test]
    fn quadratic_residue_detection() {
        let c = ctx(1_000_003); // 1_000_003 ≡ 3 (mod 4)
        let a = Uint::from_u64(4);
        assert!(c.is_quadratic_residue(&a));
        let sqrt = c.sqrt_3mod4(&a).unwrap();
        let check = c.pow(&sqrt, &Uint::from_u64(2));
        assert_eq!(check, a);
        // A known non-residue: -1 mod p when p ≡ 3 (mod 4).
        let minus_one = Uint::from_u64(1_000_002);
        assert!(!c.is_quadratic_residue(&minus_one));
    }

    #[test]
    fn sqrt_requires_3_mod_4() {
        // 1_000_033 ≡ 1 (mod 4)
        let c = ctx(1_000_033);
        assert!(c.sqrt_3mod4(&Uint::from_u64(4)).is_err());
    }

    #[test]
    fn add_sub_neg_double() {
        let c = ctx(97);
        let a = Uint::from_u64(90);
        let b = Uint::from_u64(15);
        assert_eq!(c.add(&a, &b), Uint::from_u64(8));
        assert_eq!(c.sub(&b, &a), Uint::from_u64(22));
        assert_eq!(c.neg(&a), Uint::from_u64(7));
        assert_eq!(c.double(&a), Uint::from_u64(83));
    }
}
