//! Hexadecimal and big-endian byte encodings for [`Uint`].

use crate::uint::{Uint, MAX_LIMBS};
use crate::{BigIntError, Result};

impl Uint {
    /// Encodes the value as lowercase hexadecimal without leading zeros
    /// (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        let mut started = false;
        for i in (0..MAX_LIMBS).rev() {
            if !started {
                if self.limbs[i] == 0 {
                    continue;
                }
                s.push_str(&format!("{:x}", self.limbs[i]));
                started = true;
            } else {
                s.push_str(&format!("{:016x}", self.limbs[i]));
            }
        }
        s
    }

    /// Parses a hexadecimal string (with or without a `0x` prefix).
    pub fn from_hex(s: &str) -> Result<Self> {
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        if s.is_empty() {
            return Err(BigIntError::InvalidHex);
        }
        let mut out = Uint::ZERO;
        for ch in s.chars() {
            let digit = ch.to_digit(16).ok_or(BigIntError::InvalidHex)? as u64;
            // out = out * 16 + digit, checking for overflow.
            if out.bits() + 4 > crate::uint::MAX_BITS {
                return Err(BigIntError::Overflow);
            }
            out = out.shl(4);
            out.limbs[0] |= digit;
        }
        Ok(out)
    }

    /// Encodes the value as a fixed-length big-endian byte string.
    ///
    /// Returns an error if the value does not fit in `len` bytes.
    pub fn to_be_bytes(&self, len: usize) -> Result<Vec<u8>> {
        if self.bits() > len * 8 {
            return Err(BigIntError::Overflow);
        }
        let mut out = vec![0u8; len];
        for (byte_idx, slot) in out.iter_mut().rev().enumerate() {
            let limb = byte_idx / 8;
            let shift = (byte_idx % 8) * 8;
            if limb < MAX_LIMBS {
                *slot = (self.limbs[limb] >> shift) as u8;
            }
        }
        Ok(out)
    }

    /// Minimal-length big-endian byte encoding (empty for zero).
    pub fn to_be_bytes_minimal(&self) -> Vec<u8> {
        let len = self.bits().div_ceil(8);
        self.to_be_bytes(len).expect("minimal length always fits")
    }

    /// Decodes a big-endian byte string.
    ///
    /// Returns an error if the value would exceed the capacity.
    pub fn from_be_bytes(bytes: &[u8]) -> Result<Self> {
        // Skip leading zero bytes so oversized-but-zero-padded inputs still parse.
        let bytes = {
            let first_nonzero = bytes.iter().position(|&b| b != 0).unwrap_or(bytes.len());
            &bytes[first_nonzero..]
        };
        if bytes.len() * 8 > crate::uint::MAX_BITS {
            return Err(BigIntError::InvalidBytes("value exceeds Uint capacity"));
        }
        let mut out = Uint::ZERO;
        for (byte_idx, &b) in bytes.iter().rev().enumerate() {
            let limb = byte_idx / 8;
            let shift = (byte_idx % 8) * 8;
            out.limbs[limb] |= (b as u64) << shift;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let cases = [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
        ];
        for c in cases {
            let v = Uint::from_hex(c).unwrap();
            assert_eq!(v.to_hex(), c, "round trip failed for {c}");
        }
    }

    #[test]
    fn hex_prefix_and_case() {
        assert_eq!(
            Uint::from_hex("0xDEADBEEF").unwrap(),
            Uint::from_u64(0xDEAD_BEEF)
        );
        assert_eq!(
            Uint::from_hex("DeadBeef").unwrap(),
            Uint::from_u64(0xDEAD_BEEF)
        );
    }

    #[test]
    fn invalid_hex_rejected() {
        assert!(Uint::from_hex("").is_err());
        assert!(Uint::from_hex("0x").is_err());
        assert!(Uint::from_hex("xyz").is_err());
        assert!(Uint::from_hex("12 34").is_err());
        // 1793 bits worth of hex digits overflows the capacity.
        let too_long = "f".repeat(449);
        assert!(Uint::from_hex(&too_long).is_err());
    }

    #[test]
    fn byte_round_trip() {
        let v = Uint::from_hex("0123456789abcdef00ff").unwrap();
        let bytes = v.to_be_bytes(16).unwrap();
        assert_eq!(bytes.len(), 16);
        assert_eq!(Uint::from_be_bytes(&bytes).unwrap(), v);
        // Minimal encoding strips the leading zeros.
        let min = v.to_be_bytes_minimal();
        assert_eq!(min.len(), 10);
        assert_eq!(Uint::from_be_bytes(&min).unwrap(), v);
    }

    #[test]
    fn zero_encodings() {
        assert_eq!(Uint::ZERO.to_hex(), "0");
        assert_eq!(Uint::ZERO.to_be_bytes_minimal(), Vec::<u8>::new());
        assert_eq!(Uint::from_be_bytes(&[]).unwrap(), Uint::ZERO);
        assert_eq!(Uint::from_be_bytes(&[0, 0, 0]).unwrap(), Uint::ZERO);
        assert_eq!(Uint::ZERO.to_be_bytes(4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn to_be_bytes_checks_length() {
        let v = Uint::from_u64(0x1_0000);
        assert!(v.to_be_bytes(2).is_err());
        assert_eq!(v.to_be_bytes(3).unwrap(), vec![1, 0, 0]);
        assert_eq!(v.to_be_bytes(5).unwrap(), vec![0, 0, 1, 0, 0]);
    }

    #[test]
    fn from_be_bytes_ignores_leading_zero_padding() {
        let mut padded = vec![0u8; 300];
        padded.extend_from_slice(&[0xAB, 0xCD]);
        assert_eq!(
            Uint::from_be_bytes(&padded).unwrap(),
            Uint::from_u64(0xABCD)
        );
        // A genuinely too-large value is still rejected.
        let huge = vec![0xFFu8; 300];
        assert!(Uint::from_be_bytes(&huge).is_err());
    }

    #[test]
    fn display_and_debug_use_hex() {
        let v = Uint::from_u64(0xBEEF);
        assert_eq!(format!("{v}"), "0xbeef");
        assert!(format!("{v:?}").contains("beef"));
    }
}
