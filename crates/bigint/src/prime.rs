//! Primality testing and random prime generation.
//!
//! The pairing parameter generator needs two kinds of primes: the group order
//! `q` (160–256 bits) and the field prime `p = h·q − 1` with `p ≡ 3 (mod 4)`.
//! Miller–Rabin with 40 random rounds gives an error probability below 2⁻⁸⁰,
//! which is more than adequate for parameters that are additionally validated
//! structurally (curve order, subgroup order, pairing non-degeneracy) by the
//! layers above.

use crate::mont::MontCtx;
use crate::random::random_bits;
use crate::uint::Uint;
use crate::{BigIntError, Result};
use rand::{CryptoRng, RngCore};

/// Number of Miller–Rabin rounds used by [`is_prime`].
pub const MILLER_RABIN_ROUNDS: usize = 40;

/// Iteration budget for [`generate_prime`] before giving up.
const PRIME_SEARCH_BUDGET: usize = 100_000;

/// Small primes used for cheap trial division before Miller–Rabin.
fn small_primes() -> &'static [u64] {
    use std::sync::OnceLock;
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        // Sieve of Eratosthenes up to 2000.
        let limit = 2000usize;
        let mut sieve = vec![true; limit + 1];
        sieve[0] = false;
        sieve[1] = false;
        let mut i = 2;
        while i * i <= limit {
            if sieve[i] {
                let mut j = i * i;
                while j <= limit {
                    sieve[j] = false;
                    j += i;
                }
            }
            i += 1;
        }
        (2..=limit as u64).filter(|&n| sieve[n as usize]).collect()
    })
}

/// Deterministically checks divisibility by the small-prime table.
///
/// Returns `Some(true)` / `Some(false)` when the answer is decided by trial
/// division, `None` when Miller–Rabin is still needed.
fn trial_division(n: &Uint) -> Option<bool> {
    for &p in small_primes() {
        let p_uint = Uint::from_u64(p);
        if n == &p_uint {
            return Some(true);
        }
        if n < &p_uint {
            return Some(false);
        }
        if n.rem_u64(p) == 0 {
            return Some(false);
        }
    }
    None
}

/// Probabilistic primality test: trial division followed by Miller–Rabin with
/// [`MILLER_RABIN_ROUNDS`] uniformly random bases.
pub fn is_prime<R: RngCore + CryptoRng>(n: &Uint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n.is_even() {
        return n == &Uint::from_u64(2);
    }
    if let Some(answer) = trial_division(n) {
        return answer;
    }
    let ctx = match MontCtx::new(n) {
        Ok(c) => c,
        Err(_) => return false,
    };
    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.wrapping_sub(&Uint::ONE);
    let mut d = n_minus_1;
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr1();
        s += 1;
    }
    let one_m = ctx.one_mont();
    let minus_one_m = ctx.neg(&one_m);

    'witness: for _ in 0..MILLER_RABIN_ROUNDS {
        // Random base in [2, n-2].
        let base = loop {
            let candidate = random_bits(rng, n.bits());
            let reduced = ctx.reduce(&candidate);
            if !reduced.is_zero() && !reduced.is_one() && reduced != n_minus_1 {
                break reduced;
            }
        };
        let base_m = ctx.to_mont(&base);
        let mut x = ctx.mont_pow(&base_m, &d);
        if x == one_m || x == minus_one_m {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = ctx.mont_sqr(&x);
            if x == minus_one_m {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random prime with exactly `bits` bits (top bit set, odd).
pub fn generate_prime<R: RngCore + CryptoRng>(bits: usize, rng: &mut R) -> Result<Uint> {
    if bits < 2 {
        return Err(BigIntError::InvalidParameter(
            "prime must have at least 2 bits",
        ));
    }
    for _ in 0..PRIME_SEARCH_BUDGET {
        let mut candidate = random_bits(rng, bits);
        candidate.set_bit(bits - 1);
        candidate.set_bit(0);
        if is_prime(&candidate, rng) {
            return Ok(candidate);
        }
    }
    Err(BigIntError::PrimeGenerationFailed)
}

/// Generates a random prime `p` of (approximately) `p_bits` bits of the form
/// `p = h·q − 1` with `h ≡ 0 (mod 4)`, so that `p ≡ 3 (mod 4)` and `q | p + 1`.
///
/// This is exactly the "type A" construction used by the pairing crate: the
/// supersingular curve `y² = x³ + x` over `F_p` then has order `p + 1 = h·q`,
/// and the order-`q` subgroup is the pairing group.
///
/// Returns `(p, h)`.
pub fn generate_cofactor_prime<R: RngCore + CryptoRng>(
    q: &Uint,
    p_bits: usize,
    rng: &mut R,
) -> Result<(Uint, Uint)> {
    let q_bits = q.bits();
    if p_bits < q_bits + 4 {
        return Err(BigIntError::InvalidParameter(
            "field prime must be at least 4 bits larger than the group order",
        ));
    }
    let h_bits = p_bits - q_bits;
    for _ in 0..PRIME_SEARCH_BUDGET {
        // Random cofactor with the top bit set, forced to be a multiple of 4.
        let mut h = random_bits(rng, h_bits);
        h.set_bit(h_bits - 1);
        h.limbs[0] &= !3u64;
        if h.is_zero() {
            continue;
        }
        let hq = match h.checked_mul(q) {
            Some(v) => v,
            None => continue,
        };
        let p = hq.wrapping_sub(&Uint::ONE);
        // p = h·q - 1 with h ≡ 0 (mod 4) and q odd gives p ≡ 3 (mod 4).
        debug_assert_eq!(p.limbs()[0] & 3, 3);
        if is_prime(&p, rng) {
            return Ok((p, h));
        }
    }
    Err(BigIntError::PrimeGenerationFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn small_values_classified_correctly() {
        let mut r = rng();
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 101, 997, 1009, 7919, 104729];
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 91, 1001, 7917, 104730, 561, 41041];
        for p in primes {
            assert!(is_prime(&Uint::from_u64(p), &mut r), "{p} should be prime");
        }
        for c in composites {
            assert!(
                !is_prime(&Uint::from_u64(c), &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers defeat Fermat tests but not Miller–Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 825265] {
            assert!(!is_prime(&Uint::from_u64(c), &mut r), "{c} is Carmichael");
        }
    }

    #[test]
    fn large_known_prime_accepted() {
        let mut r = rng();
        // 2^127 - 1 (Mersenne) and 2^61 - 1.
        assert!(is_prime(&Uint::from_u128((1u128 << 127) - 1), &mut r));
        assert!(is_prime(&Uint::from_u64((1u64 << 61) - 1), &mut r));
        // 2^128 - 159 is the largest 128-bit prime.
        assert!(is_prime(&Uint::from_u128(u128::MAX - 158), &mut r));
        // ... and an even composite neighbour is rejected.
        assert!(!is_prime(&Uint::from_u128(u128::MAX - 157), &mut r));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut r = rng();
        for bits in [32usize, 64, 96, 128] {
            let p = generate_prime(bits, &mut r).unwrap();
            assert_eq!(p.bits(), bits);
            assert!(p.is_odd());
            assert!(is_prime(&p, &mut r));
        }
    }

    #[test]
    fn tiny_prime_request_rejected() {
        let mut r = rng();
        assert!(generate_prime(1, &mut r).is_err());
        assert!(generate_prime(0, &mut r).is_err());
    }

    #[test]
    fn cofactor_prime_has_required_structure() {
        let mut r = rng();
        let q = generate_prime(80, &mut r).unwrap();
        let (p, h) = generate_cofactor_prime(&q, 240, &mut r).unwrap();
        assert!(is_prime(&p, &mut r));
        // p ≡ 3 (mod 4)
        assert_eq!(p.limbs()[0] & 3, 3);
        // q divides p + 1 and the cofactor matches.
        let p_plus_1 = p.wrapping_add(&Uint::ONE);
        let (quot, rem) = p_plus_1.div_rem(&q).unwrap();
        assert!(rem.is_zero());
        assert_eq!(quot, h);
        // The size is close to the request (the top bit of h is set).
        assert!(p.bits() >= 236 && p.bits() <= 242, "got {} bits", p.bits());
    }

    #[test]
    fn cofactor_prime_rejects_silly_sizes() {
        let mut r = rng();
        let q = generate_prime(80, &mut r).unwrap();
        assert!(generate_cofactor_prime(&q, 82, &mut r).is_err());
    }
}
