//! Multi-precision integer arithmetic for the TIB-PRE pairing substrate.
//!
//! The crate provides a single fixed-capacity unsigned integer type, [`Uint`],
//! that holds up to [`MAX_BITS`] bits in a stack-allocated little-endian limb
//! array, together with the modular machinery the rest of the workspace needs:
//!
//! * plain ring arithmetic (addition, subtraction, schoolbook multiplication,
//!   binary long division, shifts, bit access),
//! * [`MontCtx`], a Montgomery-form modular context with CIOS multiplication,
//!   exponentiation and both Fermat and binary-extended-GCD inversion,
//! * [`prime`], Miller–Rabin primality testing and random prime generation,
//! * hex / big-endian byte encoding and random sampling helpers.
//!
//! The capacity ([`MAX_LIMBS`] 64-bit limbs, i.e. 1792 bits) is chosen so the
//! largest field prime used by the pairing crate (1536 bits) plus the headroom
//! needed for modular addition fits comfortably.  All operations are *not*
//! constant time; the workspace documents that side-channel resistance is out
//! of scope for the reproduction.
//!
//! # Example
//!
//! ```
//! use tibpre_bigint::{Uint, MontCtx};
//!
//! let p = Uint::from_u64(1_000_003); // a small prime
//! let ctx = MontCtx::new(&p).unwrap();
//! let a = ctx.to_mont(&Uint::from_u64(12345));
//! let b = ctx.to_mont(&Uint::from_u64(67890));
//! let prod = ctx.from_mont(&ctx.mont_mul(&a, &b));
//! assert_eq!(prod, Uint::from_u64(12345u64 * 67890 % 1_000_003));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod error;
pub mod limb;
pub mod mont;
pub mod prime;
pub mod random;
pub mod uint;

pub use error::BigIntError;
pub use mont::MontCtx;
pub use uint::{Uint, WideAcc, MAX_BITS, MAX_LIMBS};

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, BigIntError>;
