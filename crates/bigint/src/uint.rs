//! Fixed-capacity unsigned multi-precision integer.

use crate::error::BigIntError;
use crate::limb::{adc, mac, sbb};
use crate::Result;
use core::cmp::Ordering;
use core::fmt;

/// Number of 64-bit limbs held by a [`Uint`].
///
/// 28 limbs = 1792 bits, enough for the largest field prime used by the
/// pairing crate (1536 bits) plus headroom for carries.
pub const MAX_LIMBS: usize = 28;

/// Capacity of a [`Uint`] in bits.
pub const MAX_BITS: usize = MAX_LIMBS * 64;

/// Fixed-capacity unsigned integer stored as little-endian 64-bit limbs.
///
/// `Uint` behaves as an integer in the range `[0, 2^1792)`.  Arithmetic is
/// provided through explicit, overflow-reporting methods (`overflowing_add`,
/// `checked_sub`, `mul_wide`, `div_rem`, …) rather than operator overloading so
/// call sites in the field/curve code always state how overflow is handled.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint {
    pub(crate) limbs: [u64; MAX_LIMBS],
}

impl Uint {
    /// The value `0`.
    pub const ZERO: Uint = Uint {
        limbs: [0; MAX_LIMBS],
    };

    /// The value `1`.
    pub const ONE: Uint = {
        let mut limbs = [0u64; MAX_LIMBS];
        limbs[0] = 1;
        Uint { limbs }
    };

    /// Constructs a `Uint` from a single 64-bit value.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; MAX_LIMBS];
        limbs[0] = v;
        Uint { limbs }
    }

    /// Constructs a `Uint` from a 128-bit value.
    pub const fn from_u128(v: u128) -> Self {
        let mut limbs = [0u64; MAX_LIMBS];
        limbs[0] = v as u64;
        limbs[1] = (v >> 64) as u64;
        Uint { limbs }
    }

    /// Constructs a `Uint` from little-endian limbs.  Extra capacity is zero-filled.
    ///
    /// Returns an error if more than [`MAX_LIMBS`] limbs are supplied.
    pub fn from_limbs_le(src: &[u64]) -> Result<Self> {
        if src.len() > MAX_LIMBS {
            return Err(BigIntError::Overflow);
        }
        let mut limbs = [0u64; MAX_LIMBS];
        limbs[..src.len()].copy_from_slice(src);
        Ok(Uint { limbs })
    }

    /// Returns the little-endian limb array.
    pub const fn limbs(&self) -> &[u64; MAX_LIMBS] {
        &self.limbs
    }

    /// Returns the low 64 bits.
    pub const fn low_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Returns the low 128 bits.
    pub const fn low_u128(&self) -> u128 {
        self.limbs[0] as u128 | ((self.limbs[1] as u128) << 64)
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs[0] == 1 && self.limbs[1..].iter().all(|&l| l == 0)
    }

    /// Returns `true` if the value is odd.
    pub const fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Returns `true` if the value is even.
    pub const fn is_even(&self) -> bool {
        self.limbs[0] & 1 == 0
    }

    /// Returns bit `i` (little-endian bit numbering).  Bits beyond capacity read as 0.
    pub fn bit(&self, i: usize) -> bool {
        if i >= MAX_BITS {
            return false;
        }
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to 1.
    ///
    /// # Panics
    /// Panics if `i >= MAX_BITS`.
    pub fn set_bit(&mut self, i: usize) {
        assert!(i < MAX_BITS, "bit index out of range");
        self.limbs[i / 64] |= 1 << (i % 64);
    }

    /// Returns the position of the most significant set bit plus one
    /// (i.e. the minimal number of bits needed to represent the value).
    /// Returns 0 for zero.
    pub fn bits(&self) -> usize {
        for i in (0..MAX_LIMBS).rev() {
            if self.limbs[i] != 0 {
                return i * 64 + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Number of active limbs (ceil(bits / 64)), 0 for zero.
    pub fn limb_len(&self) -> usize {
        self.bits().div_ceil(64)
    }

    /// Addition returning the wrapped result and whether an overflow occurred.
    pub fn overflowing_add(&self, rhs: &Uint) -> (Uint, bool) {
        let mut out = Uint::ZERO;
        let mut carry = 0u64;
        for i in 0..MAX_LIMBS {
            let (l, c) = adc(self.limbs[i], rhs.limbs[i], carry);
            out.limbs[i] = l;
            carry = c;
        }
        (out, carry != 0)
    }

    /// Checked addition; `None` when the result exceeds the capacity.
    pub fn checked_add(&self, rhs: &Uint) -> Option<Uint> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Wrapping addition modulo 2^[`MAX_BITS`].
    pub fn wrapping_add(&self, rhs: &Uint) -> Uint {
        self.overflowing_add(rhs).0
    }

    /// Subtraction returning the wrapped result and whether a borrow occurred.
    pub fn overflowing_sub(&self, rhs: &Uint) -> (Uint, bool) {
        let mut out = Uint::ZERO;
        let mut borrow = 0u64;
        for i in 0..MAX_LIMBS {
            let (l, b) = sbb(self.limbs[i], rhs.limbs[i], borrow);
            out.limbs[i] = l;
            borrow = b;
        }
        (out, borrow != 0)
    }

    /// Checked subtraction; `None` when `rhs > self`.
    pub fn checked_sub(&self, rhs: &Uint) -> Option<Uint> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Wrapping subtraction modulo 2^[`MAX_BITS`].
    pub fn wrapping_sub(&self, rhs: &Uint) -> Uint {
        self.overflowing_sub(rhs).0
    }

    /// Adds a single 64-bit value, reporting overflow.
    pub fn overflowing_add_u64(&self, rhs: u64) -> (Uint, bool) {
        self.overflowing_add(&Uint::from_u64(rhs))
    }

    /// Full schoolbook multiplication; the product is returned as `(lo, hi)`
    /// where the mathematical result equals `lo + hi * 2^MAX_BITS`.
    pub fn mul_wide(&self, rhs: &Uint) -> (Uint, Uint) {
        let a_len = self.limb_len();
        let b_len = rhs.limb_len();
        let mut w = [0u64; 2 * MAX_LIMBS];
        for i in 0..a_len {
            let mut carry = 0u64;
            for j in 0..b_len {
                let (lo, hi) = mac(w[i + j], self.limbs[i], rhs.limbs[j], carry);
                w[i + j] = lo;
                carry = hi;
            }
            w[i + b_len] = carry;
        }
        let mut lo = Uint::ZERO;
        let mut hi = Uint::ZERO;
        lo.limbs.copy_from_slice(&w[..MAX_LIMBS]);
        hi.limbs.copy_from_slice(&w[MAX_LIMBS..]);
        (lo, hi)
    }

    /// Checked multiplication; `None` when the product does not fit the capacity.
    pub fn checked_mul(&self, rhs: &Uint) -> Option<Uint> {
        let (lo, hi) = self.mul_wide(rhs);
        if hi.is_zero() {
            Some(lo)
        } else {
            None
        }
    }

    /// Multiplies by a single 64-bit value, reporting overflow via the returned carry limb.
    pub fn mul_u64(&self, rhs: u64) -> (Uint, u64) {
        let mut out = Uint::ZERO;
        let mut carry = 0u64;
        for i in 0..MAX_LIMBS {
            let (lo, hi) = mac(0, self.limbs[i], rhs, carry);
            out.limbs[i] = lo;
            carry = hi;
        }
        (out, carry)
    }

    /// Logical left shift by `n` bits.  Bits shifted beyond the capacity are lost.
    pub fn shl(&self, n: usize) -> Uint {
        if n >= MAX_BITS {
            return Uint::ZERO;
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = Uint::ZERO;
        for i in (0..MAX_LIMBS).rev() {
            if i < limb_shift {
                break;
            }
            let src = i - limb_shift;
            let mut v = self.limbs[src] << bit_shift;
            if bit_shift > 0 && src > 0 {
                v |= self.limbs[src - 1] >> (64 - bit_shift);
            }
            out.limbs[i] = v;
        }
        out
    }

    /// Logical right shift by `n` bits.
    pub fn shr(&self, n: usize) -> Uint {
        if n >= MAX_BITS {
            return Uint::ZERO;
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = Uint::ZERO;
        for i in 0..MAX_LIMBS {
            let src = i + limb_shift;
            if src >= MAX_LIMBS {
                break;
            }
            let mut v = self.limbs[src] >> bit_shift;
            if bit_shift > 0 && src + 1 < MAX_LIMBS {
                v |= self.limbs[src + 1] << (64 - bit_shift);
            }
            out.limbs[i] = v;
        }
        out
    }

    /// Shift left by one bit (doubling), reporting whether the top bit was lost.
    pub fn overflowing_shl1(&self) -> (Uint, bool) {
        let overflow = self.bit(MAX_BITS - 1);
        (self.shl(1), overflow)
    }

    /// Shift right by one bit (halving).
    pub fn shr1(&self) -> Uint {
        self.shr(1)
    }

    /// Division with remainder: returns `(quotient, remainder)` such that
    /// `self = quotient * divisor + remainder` and `remainder < divisor`.
    ///
    /// Implemented as binary long division over the significant bits, which is
    /// amply fast for the non-hot-path uses in this workspace (hash reduction
    /// and parameter generation).
    pub fn div_rem(&self, divisor: &Uint) -> Result<(Uint, Uint)> {
        if divisor.is_zero() {
            return Err(BigIntError::DivisionByZero);
        }
        if self < divisor {
            return Ok((Uint::ZERO, *self));
        }
        let shift = self.bits() - divisor.bits();
        let mut remainder = *self;
        let mut quotient = Uint::ZERO;
        let mut shifted = divisor.shl(shift);
        for i in (0..=shift).rev() {
            if remainder >= shifted {
                remainder = remainder.wrapping_sub(&shifted);
                quotient.set_bit(i);
            }
            shifted = shifted.shr1();
        }
        Ok((quotient, remainder))
    }

    /// Remainder of `self` modulo `m`.
    pub fn rem(&self, m: &Uint) -> Result<Uint> {
        Ok(self.div_rem(m)?.1)
    }

    /// Reduces a double-width value `(lo, hi)` (meaning `lo + hi * 2^MAX_BITS`)
    /// modulo `m`.  Used when hashing into large prime fields.
    pub fn rem_wide(lo: &Uint, hi: &Uint, m: &Uint) -> Result<Uint> {
        if m.is_zero() {
            return Err(BigIntError::DivisionByZero);
        }
        if hi.is_zero() {
            return lo.rem(m);
        }
        // Reduce the high half first: hi * 2^MAX_BITS mod m, computed by
        // repeated modular doubling of (hi mod m).
        let mut acc = hi.rem(m)?;
        for _ in 0..MAX_BITS {
            acc = acc.mod_double(m);
        }
        let lo_red = lo.rem(m)?;
        Ok(acc.mod_add(&lo_red, m))
    }

    /// Modular addition of two values already reduced modulo `m`.
    ///
    /// Requires `m` to occupy at most `MAX_BITS - 1` bits so the intermediate
    /// sum cannot wrap.
    pub fn mod_add(&self, rhs: &Uint, m: &Uint) -> Uint {
        debug_assert!(self < m && rhs < m);
        let (sum, carry) = self.overflowing_add(rhs);
        debug_assert!(!carry, "modulus too close to capacity for mod_add");
        if &sum >= m {
            sum.wrapping_sub(m)
        } else {
            sum
        }
    }

    /// Modular subtraction of two values already reduced modulo `m`.
    pub fn mod_sub(&self, rhs: &Uint, m: &Uint) -> Uint {
        debug_assert!(self < m && rhs < m);
        match self.overflowing_sub(rhs) {
            (v, false) => v,
            (v, true) => v.wrapping_add(m),
        }
    }

    /// Modular doubling of a value already reduced modulo `m`.
    pub fn mod_double(&self, m: &Uint) -> Uint {
        self.mod_add(self, m)
    }

    /// Modular negation of a value already reduced modulo `m`.
    pub fn mod_neg(&self, m: &Uint) -> Uint {
        if self.is_zero() {
            Uint::ZERO
        } else {
            m.wrapping_sub(self)
        }
    }

    /// Remainder of `self` modulo a single non-zero 64-bit divisor.
    ///
    /// Runs in one pass over the limbs, which keeps trial division during
    /// prime generation cheap.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn rem_u64(&self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u128;
        for i in (0..MAX_LIMBS).rev() {
            rem = ((rem << 64) | self.limbs[i] as u128) % d as u128;
        }
        rem as u64
    }

    /// Greatest common divisor via the binary GCD algorithm.
    pub fn gcd(&self, other: &Uint) -> Uint {
        let mut a = *self;
        let mut b = *other;
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Count common factors of two.
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr1();
            b = b.shr1();
            shift += 1;
        }
        while a.is_even() {
            a = a.shr1();
        }
        loop {
            while b.is_even() {
                b = b.shr1();
            }
            if a > b {
                core::mem::swap(&mut a, &mut b);
            }
            b = b.wrapping_sub(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl(shift)
    }
}

/// Limb capacity of a [`WideAcc`]: a full double-width product plus two
/// headroom limbs so sums of many products never wrap.
pub const WIDE_LIMBS: usize = 2 * MAX_LIMBS + 2;

/// Unreduced double-width accumulator for sums of limb products.
///
/// This is the lazy-reduction primitive of the workspace: `Σ aᵢ·bᵢ` is
/// accumulated limb-by-limb with carries flowing into the headroom limbs
/// instead of being folded back by a modular reduction after every
/// product.  The accumulated value is reduced exactly once, by
/// [`MontCtx::mont_mul_sum`](crate::MontCtx::mont_mul_sum), so a k-term
/// product pays one Montgomery reduction instead of k.
///
/// The two headroom limbs above the `2·MAX_LIMBS` product width admit up
/// to `2^128` accumulated terms — effectively unbounded for field code,
/// where k is the handful of cross terms in an `Fp2` product or a fused
/// line evaluation.
#[derive(Clone, Debug)]
pub struct WideAcc {
    limbs: [u64; WIDE_LIMBS],
}

impl Default for WideAcc {
    fn default() -> Self {
        WideAcc::zero()
    }
}

impl WideAcc {
    /// The empty accumulator.
    pub const fn zero() -> Self {
        WideAcc {
            limbs: [0u64; WIDE_LIMBS],
        }
    }

    /// Accumulates the schoolbook product `a·b` over the first `n` limbs of
    /// each operand, without reducing.  Carries out of the product width
    /// propagate into the headroom limbs.
    ///
    /// Both operands must fit in `n` limbs (`n ≤ MAX_LIMBS − 1`, the same
    /// spare-limb bound [`MontCtx`](crate::MontCtx) enforces).
    pub fn accumulate(&mut self, a: &Uint, b: &Uint, n: usize) {
        debug_assert!(n < MAX_LIMBS);
        debug_assert!(a.limb_len() <= n && b.limb_len() <= n);
        let al = &a.limbs;
        let bl = &b.limbs;
        for (i, &bi) in bl.iter().take(n).enumerate() {
            let mut carry = 0u64;
            for (j, &aj) in al.iter().take(n).enumerate() {
                let (lo, hi) = mac(self.limbs[i + j], aj, bi, carry);
                self.limbs[i + j] = lo;
                carry = hi;
            }
            // Carry out of the product window rides up the headroom limbs.
            let mut k = i + n;
            while carry != 0 {
                let (lo, hi) = adc(self.limbs[k], carry, 0);
                self.limbs[k] = lo;
                carry = hi;
                k += 1;
            }
        }
    }

    /// Whether nothing has been accumulated (or the sum is zero).
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// The raw little-endian limb buffer (for the reducer).
    pub(crate) fn limbs_mut(&mut self) -> &mut [u64; WIDE_LIMBS] {
        &mut self.limbs
    }
}

impl Ord for Uint {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..MAX_LIMBS).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for Uint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Default for Uint {
    fn default() -> Self {
        Uint::ZERO
    }
}

impl fmt::Debug for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint(0x{})", self.to_hex())
    }
}

impl fmt::Display for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for Uint {
    fn from(v: u64) -> Self {
        Uint::from_u64(v)
    }
}

impl From<u128> for Uint {
    fn from(v: u128) -> Self {
        Uint::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_behave() {
        assert!(Uint::ZERO.is_zero());
        assert!(Uint::ONE.is_one());
        assert!(Uint::ONE.is_odd());
        assert!(Uint::ZERO.is_even());
        assert_eq!(Uint::ZERO.bits(), 0);
        assert_eq!(Uint::ONE.bits(), 1);
    }

    #[test]
    fn from_u128_round_trips() {
        let v = 0x0123_4567_89AB_CDEF_0011_2233_4455_6677u128;
        let u = Uint::from_u128(v);
        assert_eq!(u.low_u128(), v);
        assert_eq!(u.bits(), 121);
    }

    #[test]
    fn addition_and_subtraction_invert() {
        let a = Uint::from_u128(u128::MAX);
        let b = Uint::from_u64(0xDEAD_BEEF);
        let (sum, c) = a.overflowing_add(&b);
        assert!(!c);
        let (diff, borrow) = sum.overflowing_sub(&b);
        assert!(!borrow);
        assert_eq!(diff, a);
    }

    #[test]
    fn overflow_is_reported() {
        let mut max = Uint::ZERO;
        for l in max.limbs.iter_mut() {
            *l = u64::MAX;
        }
        let (wrapped, carry) = max.overflowing_add(&Uint::ONE);
        assert!(carry);
        assert!(wrapped.is_zero());
        assert!(max.checked_add(&Uint::ONE).is_none());

        let (under, borrow) = Uint::ZERO.overflowing_sub(&Uint::ONE);
        assert!(borrow);
        assert_eq!(under, max);
    }

    #[test]
    fn multiplication_matches_u128() {
        let a = 0xFFFF_FFFF_FFFFu64;
        let b = 0x1234_5678_9ABCu64;
        let (lo, hi) = Uint::from_u64(a).mul_wide(&Uint::from_u64(b));
        assert!(hi.is_zero());
        assert_eq!(lo.low_u128(), a as u128 * b as u128);
    }

    #[test]
    fn wide_multiplication_hits_high_half() {
        // (2^MAX_BITS - 1)^2 = 2^(2*MAX_BITS) - 2^(MAX_BITS+1) + 1
        let mut max = Uint::ZERO;
        for l in max.limbs.iter_mut() {
            *l = u64::MAX;
        }
        let (lo, hi) = max.mul_wide(&max);
        assert_eq!(lo, Uint::ONE);
        assert_eq!(hi, max.wrapping_sub(&Uint::ONE));
    }

    #[test]
    fn shifts_behave() {
        let v = Uint::from_u64(1);
        assert_eq!(v.shl(64).limbs[1], 1);
        assert_eq!(v.shl(65).limbs[1], 2);
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shl(MAX_BITS), Uint::ZERO);
        let w = Uint::from_u128(0x8000_0000_0000_0000_0000_0000_0000_0000u128);
        assert_eq!(w.shr(127), Uint::ONE);
    }

    #[test]
    fn bits_and_set_bit() {
        let mut v = Uint::ZERO;
        v.set_bit(200);
        assert!(v.bit(200));
        assert!(!v.bit(199));
        assert_eq!(v.bits(), 201);
        assert_eq!(v.limb_len(), 4);
    }

    #[test]
    fn division_identity() {
        let n = Uint::from_u128(0x1234_5678_9ABC_DEF0_1111_2222_3333_4444u128);
        let d = Uint::from_u64(0xFEDC_BA98);
        let (q, r) = n.div_rem(&d).unwrap();
        let (back, hi) = q.mul_wide(&d);
        assert!(hi.is_zero());
        assert_eq!(back.wrapping_add(&r), n);
        assert!(r < d);
    }

    #[test]
    fn division_by_zero_errors() {
        assert_eq!(
            Uint::ONE.div_rem(&Uint::ZERO).unwrap_err(),
            BigIntError::DivisionByZero
        );
    }

    #[test]
    fn division_small_by_large() {
        let small = Uint::from_u64(42);
        let large = Uint::from_u128(u128::MAX);
        let (q, r) = small.div_rem(&large).unwrap();
        assert!(q.is_zero());
        assert_eq!(r, small);
    }

    #[test]
    fn rem_wide_matches_manual() {
        // (lo + hi * 2^MAX_BITS) mod m with hi small enough to verify by hand.
        let m = Uint::from_u64(1_000_000_007);
        let lo = Uint::from_u64(123_456_789);
        let hi = Uint::from_u64(3);
        let got = Uint::rem_wide(&lo, &hi, &m).unwrap();
        // 2^MAX_BITS mod m computed with modular doubling from 1.
        let mut pow = Uint::ONE;
        for _ in 0..MAX_BITS {
            pow = pow.mod_double(&m);
        }
        let mut expect = Uint::ZERO;
        for _ in 0..3 {
            expect = expect.mod_add(&pow, &m);
        }
        expect = expect.mod_add(&lo.rem(&m).unwrap(), &m);
        assert_eq!(got, expect);
    }

    #[test]
    fn modular_helpers() {
        let m = Uint::from_u64(97);
        let a = Uint::from_u64(90);
        let b = Uint::from_u64(15);
        assert_eq!(a.mod_add(&b, &m), Uint::from_u64(8));
        assert_eq!(b.mod_sub(&a, &m), Uint::from_u64(22));
        assert_eq!(a.mod_double(&m), Uint::from_u64(83));
        assert_eq!(a.mod_neg(&m), Uint::from_u64(7));
        assert_eq!(Uint::ZERO.mod_neg(&m), Uint::ZERO);
    }

    #[test]
    fn rem_u64_matches_div_rem() {
        let n = Uint::from_u128(0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210u128).shl(100);
        for d in [1u64, 2, 3, 97, 65537, u64::MAX] {
            let expect = n.div_rem(&Uint::from_u64(d)).unwrap().1;
            assert_eq!(Uint::from_u64(n.rem_u64(d)), expect, "divisor {d}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn rem_u64_by_zero_panics() {
        let _ = Uint::ONE.rem_u64(0);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            Uint::from_u64(48).gcd(&Uint::from_u64(36)),
            Uint::from_u64(12)
        );
        assert_eq!(Uint::from_u64(17).gcd(&Uint::from_u64(13)), Uint::ONE);
        assert_eq!(Uint::ZERO.gcd(&Uint::from_u64(5)), Uint::from_u64(5));
        assert_eq!(Uint::from_u64(5).gcd(&Uint::ZERO), Uint::from_u64(5));
    }

    #[test]
    fn ordering_is_numeric() {
        let a = Uint::from_u64(5).shl(300);
        let b = Uint::from_u64(7).shl(200);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn from_limbs_le_checks_length() {
        assert!(Uint::from_limbs_le(&[1u64; MAX_LIMBS]).is_ok());
        assert!(Uint::from_limbs_le(&[1u64; MAX_LIMBS + 1]).is_err());
        let v = Uint::from_limbs_le(&[7, 9]).unwrap();
        assert_eq!(v.limbs[0], 7);
        assert_eq!(v.limbs[1], 9);
    }

    #[test]
    fn wide_acc_matches_mul_wide() {
        let a = Uint::from_u128(0x0123_4567_89AB_CDEF_0011_2233_4455_6677u128);
        let b = Uint::from_u128(0xFFFF_FFFF_FFFF_FFFF_FFFF_FFFF_FFFF_FFFEu128);
        let mut acc = WideAcc::zero();
        assert!(acc.is_zero());
        acc.accumulate(&a, &b, 2);
        let (lo, _) = a.mul_wide(&b);
        let limbs = acc.limbs_mut();
        assert_eq!(&limbs[..4], &lo.limbs[..4]);
        assert!(limbs[4..].iter().all(|&l| l == 0));
    }

    #[test]
    fn wide_acc_sums_products_without_wrapping() {
        // Accumulate k copies of the all-ones two-limb square: the sum is
        // exactly k · (2^128 − 1)², verified against mul_wide + additions.
        let ones = Uint::from_u128(u128::MAX);
        let k = 5u64;
        let mut acc = WideAcc::zero();
        for _ in 0..k {
            acc.accumulate(&ones, &ones, 2);
        }
        let (sq, _) = ones.mul_wide(&ones);
        let (expect, carry) = sq.mul_u64(k);
        assert_eq!(carry, 0);
        let limbs = acc.limbs_mut();
        assert_eq!(&limbs[..5], &expect.limbs[..5]);
        assert!(limbs[5..].iter().all(|&l| l == 0));
    }

    #[test]
    fn mul_u64_reports_carry() {
        let (v, carry) = Uint::from_u64(u64::MAX).mul_u64(2);
        assert_eq!(carry, 0);
        assert_eq!(v.low_u128(), (u64::MAX as u128) * 2);
        let mut top = Uint::ZERO;
        top.limbs[MAX_LIMBS - 1] = u64::MAX;
        let (_, carry) = top.mul_u64(4);
        assert!(carry > 0);
    }
}
