//! Single-limb (64-bit) carry/borrow primitives used by the multi-precision code.
//!
//! Every routine returns the low 64 bits of the result together with the carry
//! or borrow that must be propagated to the next limb.  The functions are kept
//! tiny and `#[inline]` so the schoolbook loops in [`crate::uint`] and the CIOS
//! loop in [`crate::mont`] compile down to the obvious add-with-carry chains.

/// Adds `a + b + carry_in`, returning the low limb and the carry out (0 or 1).
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let wide = a as u128 + b as u128 + carry as u128;
    (wide as u64, (wide >> 64) as u64)
}

/// Subtracts `a - b - borrow_in`, returning the low limb and the borrow out (0 or 1).
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let wide = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (wide as u64, ((wide >> 64) as u64) & 1)
}

/// Computes `acc + a * b + carry_in`, returning the low limb and the carry out.
///
/// The maximum value `(2^64-1) + (2^64-1)^2 + (2^64-1)` fits in 128 bits, so the
/// computation never overflows the intermediate.
#[inline(always)]
pub const fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let wide = acc as u128 + (a as u128) * (b as u128) + carry as u128;
    (wide as u64, (wide >> 64) as u64)
}

/// Computes the inverse of `x` modulo 2^64.  Requires `x` to be odd.
///
/// Used to derive the Montgomery constant `n0 = -m^{-1} mod 2^64`.
#[inline]
pub const fn inv_mod_u64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    // Newton–Hensel lifting: starting from an inverse modulo 2, each iteration
    // doubles the number of correct low-order bits; six iterations reach 2^64.
    let mut inv: u64 = 1;
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
        i += 1;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_propagates_carry() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 1), (4, 0));
    }

    #[test]
    fn sbb_propagates_borrow() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u64::MAX, 1));
        assert_eq!(sbb(0, u64::MAX, 1), (0, 1));
    }

    #[test]
    fn mac_handles_extremes() {
        // (2^64-1)^2 + (2^64-1) + (2^64-1) = 2^128 - 1
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        assert_eq!(lo, u64::MAX);
        assert_eq!(hi, u64::MAX);
        assert_eq!(mac(10, 3, 4, 5), (27, 0));
    }

    #[test]
    fn inv_mod_u64_inverts_odd_values() {
        for x in [1u64, 3, 5, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF1] {
            let inv = inv_mod_u64(x);
            assert_eq!(x.wrapping_mul(inv), 1, "inverse failed for {x}");
        }
    }
}
