//! Error type for the pairing substrate.

use core::fmt;
use tibpre_bigint::BigIntError;
use tibpre_wire::DecodeError;

/// Errors produced by the pairing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairingError {
    /// An error bubbled up from the big-integer layer.
    BigInt(BigIntError),
    /// A wire decode failed (truncation, bad tag, invalid field element).
    Decode(DecodeError),
    /// A point failed the curve-membership check.
    NotOnCurve,
    /// A point failed the subgroup-membership check.
    NotInSubgroup,
    /// A byte string could not be decoded into a group or field element.
    InvalidEncoding(&'static str),
    /// Elements from different parameter sets were mixed in one operation.
    MismatchedParameters,
    /// Parameter generation failed (e.g. the prime search gave up).
    ParameterGeneration(&'static str),
    /// An element was not invertible (zero in a field, identity where not allowed).
    NotInvertible,
    /// A hash-to-curve / hash-to-field loop exceeded its iteration budget.
    HashToGroupFailed,
}

impl fmt::Display for PairingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PairingError::BigInt(e) => write!(f, "big-integer error: {e}"),
            PairingError::Decode(e) => write!(f, "decode error: {e}"),
            PairingError::NotOnCurve => write!(f, "point is not on the curve"),
            PairingError::NotInSubgroup => write!(f, "point is not in the prime-order subgroup"),
            PairingError::InvalidEncoding(why) => write!(f, "invalid encoding: {why}"),
            PairingError::MismatchedParameters => {
                write!(f, "elements belong to different parameter sets")
            }
            PairingError::ParameterGeneration(why) => {
                write!(f, "parameter generation failed: {why}")
            }
            PairingError::NotInvertible => write!(f, "element is not invertible"),
            PairingError::HashToGroupFailed => {
                write!(f, "hash-to-group exceeded its iteration budget")
            }
        }
    }
}

impl std::error::Error for PairingError {}

impl From<BigIntError> for PairingError {
    fn from(e: BigIntError) -> Self {
        PairingError::BigInt(e)
    }
}

impl From<DecodeError> for PairingError {
    fn from(e: DecodeError) -> Self {
        PairingError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: PairingError = BigIntError::NotInvertible.into();
        assert!(e.to_string().contains("big-integer"));
        assert!(PairingError::NotOnCurve.to_string().contains("curve"));
        assert!(PairingError::MismatchedParameters
            .to_string()
            .contains("parameter"));
    }
}
