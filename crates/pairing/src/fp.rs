//! The prime field `F_p` underlying the curve.
//!
//! Elements store their value in Montgomery form together with a shared
//! [`FpCtx`] handle; all arithmetic is delegated to the Montgomery context of
//! `tibpre-bigint`.  Operator overloading is provided for references so the
//! curve and pairing formulas read like the textbook equations.

use crate::error::PairingError;
use crate::Result;
use rand::{CryptoRng, RngCore};
use std::sync::Arc;
use tibpre_bigint::random::random_below;
use tibpre_bigint::{MontCtx, Uint};

/// Shared context for a prime field `F_p` with `p ≡ 3 (mod 4)`.
#[derive(Debug)]
pub struct FpCtx {
    mont: MontCtx,
    byte_len: usize,
}

impl FpCtx {
    /// Creates a field context for the prime `p`.
    ///
    /// The primality of `p` is the caller's responsibility (the parameter
    /// generator proves it); this constructor only validates the structural
    /// requirements (odd, `p ≡ 3 (mod 4)`).
    pub fn new(p: &Uint) -> Result<Arc<Self>> {
        if p.limbs()[0] & 3 != 3 {
            return Err(PairingError::ParameterGeneration(
                "field prime must be ≡ 3 (mod 4) so that i² = −1 is irreducible",
            ));
        }
        let mont = MontCtx::new(p)?;
        let byte_len = p.bits().div_ceil(8);
        Ok(Arc::new(FpCtx { mont, byte_len }))
    }

    /// The field prime `p`.
    pub fn modulus(&self) -> &Uint {
        self.mont.modulus()
    }

    /// Length of the canonical byte encoding of one element.
    pub fn byte_len(&self) -> usize {
        self.byte_len
    }
}

/// An element of `F_p` (Montgomery form internally).
#[derive(Clone)]
pub struct Fp {
    ctx: Arc<FpCtx>,
    mont_repr: Uint,
}

impl Fp {
    /// The additive identity.
    pub fn zero(ctx: &Arc<FpCtx>) -> Self {
        Fp {
            ctx: Arc::clone(ctx),
            mont_repr: Uint::ZERO,
        }
    }

    /// The multiplicative identity.
    pub fn one(ctx: &Arc<FpCtx>) -> Self {
        Fp {
            ctx: Arc::clone(ctx),
            mont_repr: ctx.mont.one_mont(),
        }
    }

    /// Constructs an element from an arbitrary integer (reduced modulo `p`).
    pub fn from_uint(ctx: &Arc<FpCtx>, value: &Uint) -> Self {
        let reduced = ctx.mont.reduce(value);
        Fp {
            ctx: Arc::clone(ctx),
            mont_repr: ctx.mont.to_mont(&reduced),
        }
    }

    /// Constructs an element from a small integer.
    pub fn from_u64(ctx: &Arc<FpCtx>, value: u64) -> Self {
        Self::from_uint(ctx, &Uint::from_u64(value))
    }

    /// Samples a uniformly random element.
    pub fn random<R: RngCore + CryptoRng>(ctx: &Arc<FpCtx>, rng: &mut R) -> Self {
        let v = random_below(rng, ctx.modulus());
        Self::from_uint(ctx, &v)
    }

    /// The plain (non-Montgomery) integer representative in `[0, p)`.
    pub fn to_uint(&self) -> Uint {
        self.ctx.mont.from_mont(&self.mont_repr)
    }

    /// The field context this element belongs to.
    pub fn ctx(&self) -> &Arc<FpCtx> {
        &self.ctx
    }

    /// Returns `true` if this is the additive identity.
    pub fn is_zero(&self) -> bool {
        self.mont_repr.is_zero()
    }

    /// Returns `true` if this is the multiplicative identity.
    pub fn is_one(&self) -> bool {
        self.mont_repr == self.ctx.mont.one_mont()
    }

    fn assert_same_ctx(&self, other: &Fp) {
        debug_assert!(
            Arc::ptr_eq(&self.ctx, &other.ctx) || self.ctx.modulus() == other.ctx.modulus(),
            "mixed field contexts"
        );
    }

    /// Field addition.
    pub fn add(&self, other: &Fp) -> Fp {
        self.assert_same_ctx(other);
        Fp {
            ctx: Arc::clone(&self.ctx),
            mont_repr: self.ctx.mont.add(&self.mont_repr, &other.mont_repr),
        }
    }

    /// Field subtraction.
    pub fn sub(&self, other: &Fp) -> Fp {
        self.assert_same_ctx(other);
        Fp {
            ctx: Arc::clone(&self.ctx),
            mont_repr: self.ctx.mont.sub(&self.mont_repr, &other.mont_repr),
        }
    }

    /// Field negation.
    pub fn neg(&self) -> Fp {
        Fp {
            ctx: Arc::clone(&self.ctx),
            mont_repr: self.ctx.mont.neg(&self.mont_repr),
        }
    }

    /// Doubling (`2·self`).
    pub fn double(&self) -> Fp {
        Fp {
            ctx: Arc::clone(&self.ctx),
            mont_repr: self.ctx.mont.double(&self.mont_repr),
        }
    }

    /// Field multiplication.
    pub fn mul(&self, other: &Fp) -> Fp {
        self.assert_same_ctx(other);
        Fp {
            ctx: Arc::clone(&self.ctx),
            mont_repr: self.ctx.mont.mont_mul(&self.mont_repr, &other.mont_repr),
        }
    }

    /// Squaring.
    pub fn square(&self) -> Fp {
        Fp {
            ctx: Arc::clone(&self.ctx),
            mont_repr: self.ctx.mont.mont_sqr(&self.mont_repr),
        }
    }

    /// Lazy-reduction sum of products `Σ aᵢ·bᵢ`: each product is
    /// accumulated into an unreduced double-width buffer and the whole sum
    /// pays a *single* Montgomery reduction instead of one per term
    /// ([`MontCtx::mont_mul_sum`]).  The result is bit-identical to the
    /// strict `mul` + `add` chain — this is the hot-path primitive behind
    /// `Fp2` products and the fused line evaluations.
    ///
    /// Subtractions are expressed by negating one operand of a pair
    /// (negation is a cheap single subtraction): `a·b − c·d` is
    /// `sum_of_products(&[(a, b), (&c.neg(), d)])`.
    ///
    /// # Panics
    /// Panics if `pairs` is empty (there is no context to borrow; callers
    /// always have at least one term).
    pub fn sum_of_products(pairs: &[(&Fp, &Fp)]) -> Fp {
        let ctx = &pairs
            .first()
            .expect("sum_of_products needs at least one term")
            .0
            .ctx;
        let mut uint_pairs = Vec::with_capacity(pairs.len());
        for (a, b) in pairs {
            a.assert_same_ctx(b);
            debug_assert!(
                Arc::ptr_eq(&a.ctx, ctx) || a.ctx.modulus() == ctx.modulus(),
                "mixed field contexts"
            );
            uint_pairs.push((&a.mont_repr, &b.mont_repr));
        }
        Fp {
            ctx: Arc::clone(ctx),
            mont_repr: ctx.mont.mont_mul_sum(&uint_pairs),
        }
    }

    /// Multiplication by a small integer constant.
    pub fn mul_u64(&self, k: u64) -> Fp {
        self.mul(&Fp::from_u64(&self.ctx, k))
    }

    /// Multiplicative inverse.  Fails for zero.
    pub fn invert(&self) -> Result<Fp> {
        let inv = self
            .ctx
            .mont
            .mont_inv(&self.mont_repr)
            .map_err(|_| PairingError::NotInvertible)?;
        Ok(Fp {
            ctx: Arc::clone(&self.ctx),
            mont_repr: inv,
        })
    }

    /// Inverts every element of a slice at the cost of a *single* field
    /// inversion plus `3(n − 1)` multiplications (Montgomery's
    /// simultaneous-inversion trick: prefix products, one inversion,
    /// back-substitution).
    ///
    /// # Zero operands
    ///
    /// A zero anywhere in the batch would silently poison the whole
    /// prefix-product chain (every product from that index on is zero, and
    /// the final inversion would fail with no indication of *which*
    /// element was at fault).  The contract is therefore explicit: each
    /// element is checked **before** it enters the chain, and the first
    /// zero aborts with [`PairingError::NotInvertible`] without touching
    /// the accumulator — no partial results, no wrong inverses for the
    /// non-zero prefix.  (A p-multiple cannot arise here: `Fp` reduces on
    /// construction, so the zero residue class is exactly `is_zero()`;
    /// the same audit for plain `Uint` residues lives in
    /// `MontCtx::inv_plain`, which reduces first.)
    ///
    /// The precomputation layer uses this to normalise whole tables of
    /// Miller-loop line coefficients and Jacobian points in one shot, and
    /// the batched final exponentiation uses it to share one GCD inversion
    /// across a multi-pairing chunk.
    pub fn batch_invert(values: &[Fp]) -> Result<Vec<Fp>> {
        let Some(first) = values.first() else {
            return Ok(Vec::new());
        };
        let mut prefix = Vec::with_capacity(values.len());
        let mut acc = Fp::one(first.ctx());
        for v in values {
            if v.is_zero() {
                return Err(PairingError::NotInvertible);
            }
            prefix.push(acc.clone());
            acc = acc.mul(v);
        }
        let mut suffix_inv = acc.invert()?;
        let mut out = vec![Fp::zero(first.ctx()); values.len()];
        for i in (0..values.len()).rev() {
            out[i] = suffix_inv.mul(&prefix[i]);
            suffix_inv = suffix_inv.mul(&values[i]);
        }
        Ok(out)
    }

    /// Exponentiation by an arbitrary integer exponent.
    pub fn pow(&self, exp: &Uint) -> Fp {
        Fp {
            ctx: Arc::clone(&self.ctx),
            mont_repr: self.ctx.mont.mont_pow(&self.mont_repr, exp),
        }
    }

    /// Euler-criterion quadratic-residue test.
    pub fn is_square(&self) -> bool {
        self.ctx.mont.is_quadratic_residue(&self.to_uint())
    }

    /// Square root for `p ≡ 3 (mod 4)`.  Returns `None` for non-residues.
    pub fn sqrt(&self) -> Option<Fp> {
        if self.is_zero() {
            return Some(self.clone());
        }
        let candidate_plain = self
            .ctx
            .mont
            .sqrt_3mod4(&self.to_uint())
            .expect("FpCtx::new guarantees p ≡ 3 (mod 4)");
        let candidate = Fp::from_uint(&self.ctx, &candidate_plain);
        if candidate.square() == *self {
            Some(candidate)
        } else {
            None
        }
    }

    /// Parity of the plain representative, used to fix the sign of square
    /// roots in point compression.
    pub fn is_odd_repr(&self) -> bool {
        self.to_uint().is_odd()
    }

    /// Canonical fixed-length big-endian encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_uint()
            .to_be_bytes(self.ctx.byte_len)
            .expect("reduced element always fits")
    }

    /// Decodes a canonical encoding.  Rejects values `≥ p` and wrong lengths.
    pub fn from_bytes(ctx: &Arc<FpCtx>, bytes: &[u8]) -> Result<Fp> {
        if bytes.len() != ctx.byte_len {
            return Err(PairingError::InvalidEncoding("wrong field-element length"));
        }
        let value = Uint::from_be_bytes(bytes)
            .map_err(|_| PairingError::InvalidEncoding("field element does not parse"))?;
        if &value >= ctx.modulus() {
            return Err(PairingError::InvalidEncoding(
                "field element not reduced modulo p",
            ));
        }
        Ok(Fp::from_uint(ctx, &value))
    }
}

impl PartialEq for Fp {
    fn eq(&self, other: &Self) -> bool {
        self.mont_repr == other.mont_repr && self.ctx.modulus() == other.ctx.modulus()
    }
}

impl Eq for Fp {}

impl core::fmt::Debug for Fp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp(0x{})", self.to_uint().to_hex())
    }
}

macro_rules! impl_fp_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl core::ops::$trait<&Fp> for &Fp {
            type Output = Fp;
            fn $method(self, rhs: &Fp) -> Fp {
                Fp::$inner(self, rhs)
            }
        }
        impl core::ops::$trait<Fp> for Fp {
            type Output = Fp;
            fn $method(self, rhs: Fp) -> Fp {
                Fp::$inner(&self, &rhs)
            }
        }
        impl core::ops::$trait<&Fp> for Fp {
            type Output = Fp;
            fn $method(self, rhs: &Fp) -> Fp {
                Fp::$inner(&self, rhs)
            }
        }
    };
}

impl_fp_binop!(Add, add, add);
impl_fp_binop!(Sub, sub, sub);
impl_fp_binop!(Mul, mul, mul);

impl core::ops::Neg for &Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        Fp::neg(self)
    }
}

impl core::ops::Neg for Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        Fp::neg(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Arc<FpCtx> {
        // 2^127 - 1 ≡ 3 (mod 4), prime.
        FpCtx::new(&Uint::from_u128((1u128 << 127) - 1)).unwrap()
    }

    #[test]
    fn rejects_primes_not_3_mod_4() {
        // 1_000_033 ≡ 1 (mod 4)
        assert!(FpCtx::new(&Uint::from_u64(1_000_033)).is_err());
        assert!(FpCtx::new(&Uint::from_u64(1_000_003)).is_ok());
    }

    #[test]
    fn basic_arithmetic() {
        let c = ctx();
        let a = Fp::from_u64(&c, 1234567);
        let b = Fp::from_u64(&c, 7654321);
        assert_eq!((&a + &b).to_uint(), Uint::from_u64(1234567 + 7654321));
        assert_eq!((&b - &a).to_uint(), Uint::from_u64(7654321 - 1234567));
        assert_eq!((&a * &b).to_uint(), Uint::from_u128(1234567u128 * 7654321));
        assert_eq!(a.double(), &a + &a);
        assert_eq!(a.square(), &a * &a);
        assert_eq!(&a + &a.neg(), Fp::zero(&c));
        assert_eq!(a.mul_u64(3), &(&a + &a) + &a);
    }

    #[test]
    fn identities() {
        let c = ctx();
        let a = Fp::from_u64(&c, 42);
        assert_eq!(&a + &Fp::zero(&c), a);
        assert_eq!(&a * &Fp::one(&c), a);
        assert!(Fp::zero(&c).is_zero());
        assert!(Fp::one(&c).is_one());
        assert!(!a.is_zero());
    }

    #[test]
    fn inversion() {
        let c = ctx();
        let a = Fp::from_u64(&c, 987654321);
        let inv = a.invert().unwrap();
        assert!((&a * &inv).is_one());
        assert!(Fp::zero(&c).invert().is_err());
    }

    #[test]
    fn batch_inversion_matches_individual() {
        let c = ctx();
        let values: Vec<Fp> = (1u64..=17).map(|v| Fp::from_u64(&c, v * 7919)).collect();
        let inverses = Fp::batch_invert(&values).unwrap();
        assert_eq!(inverses.len(), values.len());
        for (v, inv) in values.iter().zip(&inverses) {
            assert_eq!(inv, &v.invert().unwrap());
            assert!((v * inv).is_one());
        }
        // Empty input, single element, and zero rejection.
        assert!(Fp::batch_invert(&[]).unwrap().is_empty());
        let one = vec![Fp::from_u64(&c, 42)];
        assert_eq!(Fp::batch_invert(&one).unwrap()[0], one[0].invert().unwrap());
        let with_zero = vec![Fp::from_u64(&c, 1), Fp::zero(&c)];
        assert!(Fp::batch_invert(&with_zero).is_err());
    }

    #[test]
    fn batch_inversion_zero_mid_batch_is_a_clean_typed_error() {
        // Regression for the zero-operand audit: a zero at *any* position
        // (front, middle, back) must yield NotInvertible — never a poisoned
        // chain that returns wrong inverses for the non-zero prefix, and
        // never a panic.  A p-multiple constructs to the same zero residue.
        let c = ctx();
        for pos in 0..5 {
            let mut values: Vec<Fp> = (1u64..=5).map(|v| Fp::from_u64(&c, v * 31)).collect();
            values[pos] = Fp::zero(&c);
            assert!(
                matches!(Fp::batch_invert(&values), Err(PairingError::NotInvertible)),
                "zero at {pos}"
            );
        }
        // p reduces to the zero residue on construction; the batch must
        // treat it exactly like a literal zero.
        let p_multiple = Fp::from_uint(&c, c.modulus());
        assert!(p_multiple.is_zero());
        let values = vec![Fp::from_u64(&c, 7), p_multiple, Fp::from_u64(&c, 9)];
        assert!(matches!(
            Fp::batch_invert(&values),
            Err(PairingError::NotInvertible)
        ));
    }

    #[test]
    fn sum_of_products_matches_strict_chain() {
        let c = ctx();
        let near_p = Fp::from_uint(&c, &c.modulus().wrapping_sub(&Uint::ONE));
        let ones = Fp::from_uint(&c, &Uint::from_u128(u128::MAX));
        let a = Fp::from_u64(&c, 0xDEAD_BEEF);
        let b = Fp::from_u64(&c, 0x1234_5678);
        for x in [&near_p, &ones, &a, &b, &Fp::zero(&c), &Fp::one(&c)] {
            for y in [&near_p, &ones, &a, &b] {
                let lazy = Fp::sum_of_products(&[(x, y), (&a, &b)]);
                let strict = &(x * y) + &(&a * &b);
                assert_eq!(lazy, strict);
                // Subtraction via negation.
                let lazy = Fp::sum_of_products(&[(x, y), (&a.neg(), &b)]);
                let strict = &(x * y) - &(&a * &b);
                assert_eq!(lazy, strict);
            }
        }
        // Single term degenerates to a plain product.
        assert_eq!(Fp::sum_of_products(&[(&a, &b)]), &a * &b);
    }

    #[test]
    fn pow_and_fermat() {
        let c = ctx();
        let a = Fp::from_u64(&c, 5);
        assert!(a.pow(&Uint::ZERO).is_one());
        assert_eq!(a.pow(&Uint::ONE), a);
        assert_eq!(a.pow(&Uint::from_u64(5)).to_uint(), Uint::from_u64(3125));
        // Fermat: a^(p-1) = 1.
        let p_minus_1 = c.modulus().wrapping_sub(&Uint::ONE);
        assert!(a.pow(&p_minus_1).is_one());
    }

    #[test]
    fn sqrt_round_trip() {
        let c = ctx();
        for v in [1u64, 2, 4, 9, 1_000_000, 123_456_789] {
            let a = Fp::from_u64(&c, v);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == a.neg());
        }
        assert_eq!(Fp::zero(&c).sqrt().unwrap(), Fp::zero(&c));
    }

    #[test]
    fn non_residues_have_no_sqrt() {
        let c = ctx();
        // -1 is a non-residue when p ≡ 3 (mod 4).
        let minus_one = Fp::one(&c).neg();
        assert!(!minus_one.is_square());
        assert!(minus_one.sqrt().is_none());
        // A residue times a non-residue is a non-residue.
        let nr = &minus_one * &Fp::from_u64(&c, 4);
        assert!(nr.sqrt().is_none());
    }

    #[test]
    fn byte_round_trip() {
        let c = ctx();
        let mut rng = rand::rngs::mock::StepRng::new(12345, 67891);
        // StepRng is not a CryptoRng; use from_uint with varied values instead.
        let _ = &mut rng;
        for v in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            let a = Fp::from_u64(&c, v);
            let bytes = a.to_bytes();
            assert_eq!(bytes.len(), c.byte_len());
            assert_eq!(Fp::from_bytes(&c, &bytes).unwrap(), a);
        }
    }

    #[test]
    fn from_bytes_rejects_bad_input() {
        let c = ctx();
        assert!(Fp::from_bytes(&c, &[]).is_err());
        assert!(Fp::from_bytes(&c, &vec![0u8; c.byte_len() + 1]).is_err());
        // p itself is not a reduced representative.
        let p_bytes = c.modulus().to_be_bytes(c.byte_len()).unwrap();
        assert!(Fp::from_bytes(&c, &p_bytes).is_err());
    }

    #[test]
    fn random_elements_differ() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        let a = Fp::random(&c, &mut rng);
        let b = Fp::random(&c, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn distributivity_spot_check() {
        let c = ctx();
        let a = Fp::from_u64(&c, 0xAAAA_BBBB);
        let b = Fp::from_u64(&c, 0xCCCC_DDDD);
        let d = Fp::from_u64(&c, 0xEEEE_FFFF);
        assert_eq!(&a * &(&b + &d), &(&a * &b) + &(&a * &d));
    }
}
