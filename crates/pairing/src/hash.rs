//! Hash-to-field, hash-to-scalar and hash-to-curve random oracles.
//!
//! These instantiate the paper's `H1 : {0,1}* → G` and `H2 : {0,1}* → Z_q^*`
//! (and the auxiliary oracles the scheme layers need) from the SHAKE-256 based
//! domain-separated hasher of `tibpre-hash`:
//!
//! * **hash-to-field / hash-to-scalar** — squeeze `len(p) + 16` bytes and
//!   reduce; the 128 extra bits make the reduction bias negligible.
//! * **hash-to-curve** — try-and-increment: derive candidate x-coordinates
//!   from `(domain, message, counter)`, pick the first one on the curve, fix
//!   the sign of `y` with one more hash bit, and multiply by the cofactor to
//!   land in the order-`q` subgroup.  This is the `MapToPoint` approach of the
//!   original Boneh–Franklin paper adapted to the curve `y² = x³ + x`.

use crate::curve::G1Affine;
use crate::error::PairingError;
use crate::fp::{Fp, FpCtx};
use crate::params::PairingParams;
use crate::scalar::{Scalar, ScalarCtx};
use crate::Result;
use std::sync::Arc;
use tibpre_bigint::Uint;
use tibpre_hash::DomainSeparatedHasher;

/// Iteration budget for the try-and-increment loops.
const HASH_TO_CURVE_BUDGET: u64 = 1000;

/// Hashes the given fields into `F_p` (uniform up to negligible bias).
pub fn hash_to_fp(ctx: &Arc<FpCtx>, domain: &str, fields: &[&[u8]]) -> Fp {
    let out_len = ctx.byte_len() + 16;
    let bytes = DomainSeparatedHasher::hash(domain, fields, out_len);
    let wide = Uint::from_be_bytes(&bytes).expect("output fits the Uint capacity");
    let reduced = wide.rem(ctx.modulus()).expect("modulus is non-zero");
    Fp::from_uint(ctx, &reduced)
}

/// Hashes the given fields into `Z_q^*` (never returns zero).
///
/// This is the paper's `H2` when invoked with the `"TIBPRE-H2"` domain.
pub fn hash_to_scalar(ctx: &Arc<ScalarCtx>, domain: &str, fields: &[&[u8]]) -> Scalar {
    let out_len = ctx.byte_len() + 16;
    for counter in 0..HASH_TO_CURVE_BUDGET {
        let mut hasher = DomainSeparatedHasher::new(domain);
        for f in fields {
            hasher.absorb(f);
        }
        hasher.absorb_u64(counter);
        let bytes = hasher.finalize(out_len);
        let wide = Uint::from_be_bytes(&bytes).expect("output fits the Uint capacity");
        let reduced = wide.rem(ctx.order()).expect("order is non-zero");
        if !reduced.is_zero() {
            return Scalar::from_uint(ctx, &reduced);
        }
    }
    // The probability of reaching this point is ~ q^{-1000}; treat it as
    // logically unreachable rather than plumbing an error everywhere.
    unreachable!("hash_to_scalar failed to find a non-zero value")
}

/// Hashes the given fields onto the order-`q` subgroup of the curve.
///
/// This is the paper's `H1` when invoked with the `"TIBPRE-H1"` domain.
pub fn hash_to_curve(params: &PairingParams, domain: &str, fields: &[&[u8]]) -> Result<G1Affine> {
    let ctx = params.fp_ctx();
    for counter in 0..HASH_TO_CURVE_BUDGET {
        let mut hasher = DomainSeparatedHasher::new(domain);
        for f in fields {
            hasher.absorb(f);
        }
        hasher.absorb_u64(counter);
        // One extra byte decides the sign of y.
        let bytes = hasher.finalize(ctx.byte_len() + 17);
        let (sign_byte, x_bytes) = bytes.split_first().expect("non-empty output");
        let wide = Uint::from_be_bytes(x_bytes).expect("output fits the Uint capacity");
        let x = Fp::from_uint(ctx, &wide.rem(ctx.modulus())?);
        // y² = x³ + x
        let rhs = &x.square().mul(&x) + &x;
        let Some(y) = rhs.sqrt() else {
            continue;
        };
        let y = if (sign_byte & 1) == 1 { y.neg() } else { y };
        if x.is_zero() && y.is_zero() {
            // The 2-torsion point maps to the identity after cofactor clearing.
            continue;
        }
        let point = G1Affine::new_unchecked(x, y);
        // Clear the cofactor to land in the order-q subgroup.
        let in_subgroup = point.mul_uint(params.cofactor());
        if in_subgroup.is_identity() {
            continue;
        }
        debug_assert!(in_subgroup.is_on_curve());
        debug_assert!(in_subgroup.is_in_subgroup(params.q()));
        return Ok(in_subgroup);
    }
    Err(PairingError::HashToGroupFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tibpre_bigint::Uint;

    fn fp_ctx() -> Arc<FpCtx> {
        FpCtx::new(&Uint::from_u128((1u128 << 127) - 1)).unwrap()
    }

    fn scalar_ctx() -> Arc<ScalarCtx> {
        ScalarCtx::new(&Uint::from_u64((1u64 << 61) - 1)).unwrap()
    }

    #[test]
    fn hash_to_fp_is_deterministic_and_domain_separated() {
        let c = fp_ctx();
        let a = hash_to_fp(&c, "D1", &[b"input"]);
        let b = hash_to_fp(&c, "D1", &[b"input"]);
        let d = hash_to_fp(&c, "D2", &[b"input"]);
        let e = hash_to_fp(&c, "D1", &[b"other"]);
        assert_eq!(a, b);
        assert_ne!(a, d);
        assert_ne!(a, e);
    }

    #[test]
    fn hash_to_scalar_is_nonzero_and_reduced() {
        let c = scalar_ctx();
        for i in 0..50u64 {
            let s = hash_to_scalar(&c, "H2", &[&i.to_be_bytes()]);
            assert!(!s.is_zero());
            assert!(&s.to_uint() < c.order());
        }
    }

    #[test]
    fn hash_to_scalar_field_separation() {
        let c = scalar_ctx();
        let a = hash_to_scalar(&c, "H2", &[b"ab", b"c"]);
        let b = hash_to_scalar(&c, "H2", &[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    // hash_to_curve needs full pairing parameters; its tests live in params.rs
    // and the crate integration tests.
}
